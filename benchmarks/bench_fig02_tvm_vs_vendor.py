"""Paper Fig. 2 — searched compilation beats the vendor library.

The MKL-DNN stand-in dispatches fixed heuristic kernels; the tuned
library is the auto-scheduler's isolation-best version per layer.
"""

from conftest import record

from repro.compiler.vendor import vendor_schedule

_MODELS = ("resnet50", "googlenet", "mobilenet_v2", "efficientnet_b0")


def test_fig2_vendor_vs_tuned(stack, benchmark):
    cores = stack.cpu.cores

    def run():
        rows = {}
        for name in _MODELS:
            graph = stack.compiled[name].graph
            vendor = sum(
                stack.cost_model.latency(layer, vendor_schedule(layer),
                                         cores, 0.0)
                for layer in graph.layers)
            tuned = sum(
                stack.cost_model.latency(
                    layer,
                    stack.compiled[name].layers[i].static_version(),
                    cores, 0.0)
                for i, layer in enumerate(graph.layers))
            rows[name] = (vendor, tuned)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'model':18s} {'vendor (ms)':>12s} {'tuned (ms)':>11s}"
             f" {'speedup':>8s}"]
    faster = 0
    for name, (vendor, tuned) in rows.items():
        lines.append(f"{name:18s} {vendor * 1e3:12.2f} {tuned * 1e3:11.2f}"
                     f" {vendor / tuned:7.2f}x")
        if tuned < vendor:
            faster += 1
    record("fig02", "Fig 2: vendor library vs searched code",
           "\n".join(lines),
           metrics={f"speedup_{name}": vendor / tuned
                    for name, (vendor, tuned) in rows.items()})

    # Paper Fig. 2: the compiler generally outperforms the library.
    assert faster >= len(_MODELS) - 1
