"""Ablations called out in DESIGN.md (beyond the paper's own figures).

* threshold policy: the dynamic Sec. 4.3 threshold vs pinned thresholds;
* interference estimation: counter proxy vs oracle (simulator pressure);
* soon-to-finish filter on vs off.
"""

from conftest import record

from repro.runtime.engine import Engine
from repro.scheduling.dynamic_block import (
    DynamicBlockScheduler,
    ProportionalThresholdPolicy,
)
from repro.scheduling.veltair import VeltairScheduler
from repro.serving.metrics import summarize
from repro.serving.workload import uniform_queries


class _PinnedThreshold(ProportionalThresholdPolicy):
    def __init__(self, value):
        self.value = value

    def threshold_for(self, scheduler, engine, query):
        return self.value


def _run(stack, scheduler, qps, count):
    queries = uniform_queries(stack.compiled, "resnet50", qps, count)
    engine = Engine(stack.cost_model)
    done = engine.run(queries, scheduler)
    return summarize(done, engine.metrics, qps)


def test_ablation_threshold_policy(stack, benchmark, bench_queries):
    qps = 170.0

    def run():
        rows = {}
        rows["dynamic (Sec 4.3)"] = _run(
            stack, DynamicBlockScheduler(stack.cost_model, stack.profiles),
            qps, bench_queries)
        for pinned in (0, 8, 24):
            scheduler = DynamicBlockScheduler(
                stack.cost_model, stack.profiles,
                threshold_policy=_PinnedThreshold(pinned))
            rows[f"pinned thres={pinned}"] = _run(stack, scheduler, qps,
                                                  bench_queries)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'policy':20s} {'satisfaction':>13s} {'avg lat ms':>11s}"
             f" {'avg cores':>10s}"]
    for label, report in rows.items():
        lines.append(
            f"{label:20s} {report.satisfaction_rate:13.0%}"
            f" {min(report.average_latency_s * 1e3, 999):11.1f}"
            f" {report.average_cores_used:10.1f}")
    record("ablation_thresholds",
           "Ablation: dynamic vs pinned thresholds", "\n".join(lines),
           metrics={"sat_dynamic":
                    rows["dynamic (Sec 4.3)"].satisfaction_rate,
                    **{f"sat_pinned_{p}":
                       rows[f"pinned thres={p}"].satisfaction_rate
                       for p in (0, 8, 24)}})

    dynamic = rows["dynamic (Sec 4.3)"]
    # The dynamic threshold must be competitive with the best pinned one
    # (it cannot dominate at every single load point).
    assert dynamic.satisfaction_rate >= max(
        rows[k].satisfaction_rate for k in rows if k.startswith("pinned")
    ) - 0.35
    assert dynamic.completed == max(r.completed for r in rows.values())


def test_ablation_proxy_vs_oracle(stack, benchmark, bench_queries):
    qps = 170.0

    def run():
        proxy_sched = VeltairScheduler(stack.cost_model, stack.profiles,
                                       proxy=stack.proxy)
        oracle_sched = VeltairScheduler(stack.cost_model, stack.profiles,
                                        proxy=None)
        return {
            "counter proxy": _run(stack, proxy_sched, qps, bench_queries),
            "oracle pressure": _run(stack, oracle_sched, qps,
                                    bench_queries),
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'estimator':16s} {'satisfaction':>13s} {'avg lat ms':>11s}"]
    for label, report in rows.items():
        lines.append(f"{label:16s} {report.satisfaction_rate:13.0%}"
                     f" {min(report.average_latency_s * 1e3, 999):11.1f}")
    record("ablation_proxy",
           "Ablation: proxy vs oracle interference estimate",
           "\n".join(lines),
           metrics={"sat_proxy":
                    rows["counter proxy"].satisfaction_rate,
                    "sat_oracle":
                    rows["oracle pressure"].satisfaction_rate})

    # The cheap proxy should stay close to the oracle's outcome.
    assert (rows["counter proxy"].satisfaction_rate
            >= rows["oracle pressure"].satisfaction_rate - 0.2)


def test_ablation_soon_to_finish(stack, benchmark, bench_queries):
    qps = 170.0

    def run():
        rows = {}
        for label, threshold in (("filter on (10%)", 0.10),
                                 ("filter off", 0.0)):
            queries = uniform_queries(stack.compiled, "resnet50", qps,
                                      bench_queries)
            engine = Engine(stack.cost_model)
            engine.soon_to_finish_threshold = threshold
            scheduler = VeltairScheduler(stack.cost_model, stack.profiles,
                                         proxy=None)
            done = engine.run(queries, scheduler)
            rows[label] = summarize(done, engine.metrics, qps)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'config':18s} {'satisfaction':>13s} {'avg lat ms':>11s}"]
    for label, report in rows.items():
        lines.append(f"{label:18s} {report.satisfaction_rate:13.0%}"
                     f" {min(report.average_latency_s * 1e3, 999):11.1f}")
    record("ablation_soon_filter", "Ablation: soon-to-finish filter",
           "\n".join(lines),
           metrics={"sat_filter_on":
                    rows["filter on (10%)"].satisfaction_rate,
                    "sat_filter_off":
                    rows["filter off"].satisfaction_rate})
    assert all(r.completed == bench_queries for r in rows.values())
