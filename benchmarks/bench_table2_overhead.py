"""Paper Table 2 + Sec. 5.5 — serving configuration and scheduler overhead.

Table 2: the evaluated models with their QoS targets (plus measured model
stats from this reproduction).  Sec. 5.5: the runtime scheduler's own
decision cost must be negligible (paper: <0.1 ms per served model on
native code; this is interpreted Python, so the bound is scaled).
"""

import time

from conftest import record

from repro.models.registry import get_entry, model_names
from repro.runtime.engine import Engine
from repro.serving.workload import uniform_queries


def test_table2_models(stack, benchmark):
    def run():
        rows = []
        for name in model_names():
            entry = get_entry(name)
            compiled = stack.compiled[name]
            profile = stack.profiles[name]
            rows.append((name, entry.category, entry.workload_class,
                         entry.qos_ms, compiled.graph.flops / 1e9,
                         len(compiled.layers), profile.avg_cores))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'model':17s} {'category':15s} {'class':7s} {'QoS ms':>7s}"
             f" {'GFLOPs':>8s} {'layers':>7s} {'Avg_C':>6s}"]
    for name, cat, cls, qos, gflops, layers, avg in rows:
        lines.append(f"{name:17s} {cat:15s} {cls:7s} {qos:7.0f}"
                     f" {gflops:8.2f} {layers:7d} {avg:6d}")
    record("table2", "Table 2: evaluated models", "\n".join(lines),
           metrics={"n_models": float(len(rows)),
                    "total_gflops": sum(r[4] for r in rows)})

    assert len(rows) == 7
    classes = {cls for _, _, cls, *_ in rows}
    assert classes == {"light", "medium", "heavy"}


def test_sec55_scheduler_overhead(stack, benchmark):
    scheduler = stack.make_scheduler("veltair_full")
    queries = uniform_queries(stack.compiled, "resnet50", 100.0, 30)
    engine = Engine(stack.cost_model)

    calls = 0
    spent = 0.0
    original_plan = scheduler.plan

    def timed_plan(eng, query):
        nonlocal calls, spent
        start = time.perf_counter()
        result = original_plan(eng, query)
        spent += time.perf_counter() - start
        calls += 1
        return result

    scheduler.plan = timed_plan

    def run():
        return engine.run(queries, scheduler)

    done = benchmark.pedantic(run, rounds=1, iterations=1)
    per_model_ms = spent / max(len(done), 1) * 1e3
    record("sec55_overhead", "Sec 5.5: scheduler overhead",
           f"plan() calls        : {calls}\n"
           f"total decision time : {spent * 1e3:.2f} ms\n"
           f"per served model    : {per_model_ms:.3f} ms "
           f"(paper: <0.1 ms native; Python here)",
           metrics={"plan_calls": float(calls)})

    assert len(done) == 30
    # Python is ~50x slower than native; keep the same complexity class.
    assert per_model_ms < 5.0
