"""Engine hot-path microbenchmark: events pushed / prices computed per query.

Gauges the discrete-event overhaul on a production-scale node
(:data:`PRODUCTION_SERVER_256`, where dozens of tenants co-locate) under
a high-QPS mixed workload:

* **A/B identity** — the incremental engine must produce bit-equal
  ``ServingReport`` metrics (within 1e-9) to the legacy
  reprice-everything mode on the same fixed-seed stream.
* **Hot-path reduction** — finish-event heap pushes and block
  repricings per query, legacy vs incremental (the acceptance bar is
  >= 3x for the full system at >= 500 QPS).
* **Cross-run pricing reuse** — a second sweep over the same engine
  configurations through the shared :class:`PricingCache` should barely
  touch the cost model at all (the QPS-bisection scenario).

Run standalone (the CI smoke test uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_engine_scale.py --quick

``--json DIR`` additionally writes the machine-readable
``BENCH_engine_scale.json`` the perf ratchet compares (see
``python -m repro.bench``).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time

from repro.hardware.platform import PRODUCTION_SERVER_256
from repro.runtime.engine import Engine
from repro.runtime.pricing import PricingCache
from repro.serving.metrics import ServingReport, summarize
from repro.serving.server import ServingStack
from repro.serving.workload import WorkloadSpec, poisson_queries

FULL_MODELS = ("mobilenet_v2", "efficientnet_b0", "tiny_yolov2",
               "googlenet", "resnet50")
QUICK_MODELS = ("mobilenet_v2", "efficientnet_b0", "tiny_yolov2")


@dataclasses.dataclass
class ModeResult:
    report: ServingReport
    pushes: int
    repricings: int
    prices: int
    heap_peak: int
    stale_dropped: int
    wall_s: float


def _run_mode(stack: ServingStack, policy: str, spec: WorkloadSpec,
              qps: float, count: int, seed: int, incremental: bool,
              cache: PricingCache) -> ModeResult:
    queries = poisson_queries(stack.compiled, spec, qps, count, seed=seed)
    engine = Engine(stack.cost_model, price_cache=cache,
                    incremental=incremental)
    scheduler = stack.make_scheduler(policy)
    start = time.perf_counter()
    completed = engine.run(queries, scheduler)
    wall = time.perf_counter() - start
    m = engine.metrics
    return ModeResult(
        report=summarize(completed, m, qps),
        pushes=m.finish_events_pushed,
        repricings=m.repricings,
        prices=m.prices_computed,
        heap_peak=m.heap_peak,
        stale_dropped=m.stale_events_dropped,
        wall_s=wall,
    )


def reports_match(a: ServingReport, b: ServingReport,
                  tolerance: float = 1e-9) -> bool:
    for field in dataclasses.fields(a):
        va, vb = getattr(a, field.name), getattr(b, field.name)
        if isinstance(va, float):
            if va == vb:  # covers inf == inf
                continue
            if abs(va - vb) > tolerance:
                return False
        elif va != vb:
            return False
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small stack / stream (the CI smoke config)")
    parser.add_argument("--qps", type=float, default=600.0,
                        help="offered load (acceptance regime: >= 500)")
    parser.add_argument("--queries", type=int, default=None,
                        help="queries per simulation")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--no-check", action="store_true",
                        help="report only; skip the acceptance assertions")
    parser.add_argument("--json", metavar="DIR", default=None,
                        help="also write BENCH_engine_scale.json into DIR")
    args = parser.parse_args(argv)

    lines: list[str] = []

    def out(text: str = "") -> None:
        print(text)
        lines.append(text)

    models = QUICK_MODELS if args.quick else FULL_MODELS
    count = (args.queries if args.queries is not None
             else (150 if args.quick else 400))
    if count <= 0:
        parser.error("--queries must be positive")
    trials = 64 if args.quick else 96
    spec = WorkloadSpec(name="mixed",
                        entries=tuple((m, 1.0) for m in models))

    t0 = time.perf_counter()
    stack = ServingStack(cpu=PRODUCTION_SERVER_256, models=list(models),
                         trials=trials, proxy_scenarios=60, seed=11)
    out(f"stack: {len(models)} models on {stack.cpu.name}, "
        f"compiled in {time.perf_counter() - t0:.1f}s")
    out(f"workload: {spec.name} @ {args.qps:.0f} QPS, {count} queries, "
        f"seed {args.seed}\n")

    failures: list[str] = []
    header = (f"{'policy':14s} {'mode':12s} {'pushes/q':>9s} "
              f"{'reprices/q':>11s} {'prices/q':>9s} {'heap':>6s} "
              f"{'sat':>6s} {'wall':>7s}")
    out(header)
    out("-" * len(header))

    ratios: dict[str, tuple[float, float]] = {}
    for policy in ("layerwise", "veltair_full"):
        results = {}
        for incremental in (False, True):
            cache = PricingCache()  # fresh per mode: cold-start fairness
            results[incremental] = _run_mode(
                stack, policy, spec, args.qps, count, args.seed,
                incremental, cache)
        for incremental, label in ((False, "legacy"), (True, "incremental")):
            r = results[incremental]
            out(f"{policy:14s} {label:12s} {r.pushes / count:9.1f} "
                f"{r.repricings / count:11.1f} {r.prices / count:9.2f} "
                f"{r.heap_peak:6d} {r.report.satisfaction_rate:6.2f} "
                f"{r.wall_s:6.2f}s")
        legacy, incr = results[False], results[True]
        push_ratio = legacy.pushes / max(1, incr.pushes)
        reprice_ratio = legacy.repricings / max(1, incr.repricings)
        ratios[policy] = (push_ratio, reprice_ratio)
        identical = reports_match(legacy.report, incr.report)
        out(f"{policy:14s} {'reduction':12s} {push_ratio:8.2f}x "
            f"{reprice_ratio:10.2f}x {'':9s} "
            f"reports_identical={identical}")
        if not identical:
            failures.append(f"{policy}: legacy vs incremental reports "
                            "diverged beyond 1e-9")
        if incr.heap_peak > legacy.heap_peak:
            failures.append(f"{policy}: incremental heap peak "
                            f"{incr.heap_peak} above legacy "
                            f"{legacy.heap_peak}")
        out()

    # Cross-run reuse: the same stream re-simulated through one shared
    # cache — the QPS-bisection access pattern.
    shared = PricingCache()
    cold = _run_mode(stack, "veltair_full", spec, args.qps, count,
                     args.seed, True, shared)
    warm = _run_mode(stack, "veltair_full", spec, args.qps, count,
                     args.seed, True, shared)
    out(f"shared-cache rerun: prices/q {cold.prices / count:.2f} -> "
        f"{warm.prices / count:.2f} "
        f"(hit rate {shared.hit_rate:.1%}, {len(shared)} entries)")
    if warm.prices > max(8, cold.prices // 10):
        failures.append("shared cache barely reused across runs")

    if not args.no_check:
        push_ratio, reprice_ratio = ratios["veltair_full"]
        if push_ratio < 3.0 or reprice_ratio < 3.0:
            failures.append(
                f"veltair_full reduction below 3x (pushes {push_ratio:.2f}x,"
                f" repricings {reprice_ratio:.2f}x)")

    if args.json is not None:
        from repro.bench.results import BenchResult, write_result
        metrics = {
            "full_push_reduction": ratios["veltair_full"][0],
            "full_reprice_reduction": ratios["veltair_full"][1],
            "layerwise_push_reduction": ratios["layerwise"][0],
            "layerwise_reprice_reduction": ratios["layerwise"][1],
            "reports_identical": 0.0 if any(
                "diverged" in f for f in failures) else 1.0,
            "warm_prices_per_query": warm.prices / count,
            "incremental_sat": incr.report.satisfaction_rate,
            "cache_hit_rate": shared.hit_rate,
        }
        write_result(BenchResult(
            name="engine_scale",
            title="Engine hot path: pushes/repricings per query, "
                  "legacy vs incremental",
            metrics=metrics,
            knobs={"quick": args.quick, "qps": args.qps,
                   "queries": count, "trials": trials,
                   "models": list(models)},
            info={"failures": list(failures)},
            tables={"Engine scale: hot-path reductions":
                    "\n".join(lines)},
            seed=args.seed), args.json)

    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: acceptance checks passed" if not args.no_check
          else "\ndone (checks skipped)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
