"""Paper Fig. 10 — dynamic layer blocks: smooth demand, efficient usage.

Two co-located ResNet-50 streams; compares average and maximum CPU usage
across granularities.  Paper Fig. 10b: dynamic blocks stay near the
layer-wise minimal average while cutting the maximal usage.
"""

from conftest import record

from repro.serving.experiments import reports_over_qps

_POLICIES = ("model_fcfs", "layerwise", "block6", "block11", "veltair_as")
_QPS = 100.0  # two-ish concurrent ResNet-50 queries on average


def test_fig10_core_usage(stack, benchmark, bench_queries):
    def run():
        return {policy: reports_over_qps(stack, policy, "resnet50",
                                         [_QPS], bench_queries)[0]
                for policy in _POLICIES}

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'policy':12s} {'avg cores':>10s} {'max cores':>10s}"
             f" {'satisfaction':>13s}"]
    for policy, report in reports.items():
        lines.append(f"{policy:12s} {report.average_cores_used:10.1f}"
                     f" {report.max_cores_used:10d}"
                     f" {report.satisfaction_rate:13.0%}")
    metrics = {}
    for policy, report in reports.items():
        metrics[f"avg_cores_{policy}"] = report.average_cores_used
        metrics[f"sat_{policy}"] = report.satisfaction_rate
    record("fig10b", "Fig 10b: avg/max CPU usage by granularity",
           "\n".join(lines), metrics=metrics)

    dynamic = reports["veltair_as"]
    layer = reports["layerwise"]
    # Dynamic blocks serve the load (layer-wise may not) while keeping
    # peak demand no worse than the layer-wise spikes.
    assert dynamic.satisfaction_rate >= layer.satisfaction_rate
    assert dynamic.max_cores_used <= stack.cpu.cores
    assert dynamic.average_cores_used > 0
