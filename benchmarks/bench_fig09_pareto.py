"""Paper Fig. 9 — the parallelism/locality Pareto pipeline, step by step.

Uses the paper's example layer (7x7 input, 832->384 channels, 1x1
kernel).  Step 1 collects samples, step 2 filters by the QoS-derived
FLOPS bound, step 3 extracts the dominant (Pareto) implementations.
"""

from conftest import record

from repro.models.layers import Conv2D
from repro.compiler.autoscheduler import AutoScheduler
from repro.compiler.multiversion import extract_dominant, uniform_pick

_LAYER = Conv2D(name="fig9", height=7, width=7, in_channels=832,
                out_channels=384, kernel_h=1, kernel_w=1)


def test_fig9_pareto_steps(stack, benchmark):
    searcher = AutoScheduler(stack.cost_model)

    def run():
        search = searcher.search(_LAYER, trials=512, seed=2)
        budget = 120e-6  # a generous per-layer budget for this shape
        qualified = [m for m in search.samples if m.latency_s <= budget]
        frontier = extract_dominant(qualified)
        picks = uniform_pick(frontier, 5)
        return search, qualified, frontier, picks

    search, qualified, frontier, picks = benchmark.pedantic(
        run, rounds=1, iterations=1)

    lines = [
        f"step 1 samples     : {search.trials}",
        f"step 2 QoS-qualified: {len(qualified)} "
        f"({len(qualified) / search.trials:.0%})",
        f"step 3 dominant     : {len(frontier)}",
        f"step 4 picked       : {len(picks)}",
        "",
        f"{'blocking':>9s} {'parallelism':>12s} {'latency us':>11s}",
    ]
    for m in frontier:
        mark = "  <-- picked" if m in picks else ""
        lines.append(f"{m.schedule.blocking_size:9d} {m.parallelism:12d}"
                     f" {m.latency_s * 1e6:11.2f}{mark}")
    record("fig09", "Fig 9: Pareto frontier pipeline", "\n".join(lines),
           metrics={"samples": float(search.trials),
                    "qualified": float(len(qualified)),
                    "dominant": float(len(frontier)),
                    "picked": float(len(picks))})

    # The QoS filter must actually remove something, and the frontier
    # must trade blocking against parallelism monotonically.
    assert 0 < len(qualified) < search.trials
    assert 1 <= len(picks) <= 5
    ordered = sorted(frontier, key=lambda m: m.schedule.blocking_size)
    parallelisms = [m.parallelism for m in ordered]
    assert parallelisms == sorted(parallelisms, reverse=True)
