"""Paper Fig. 14 — sensitivity: core-usage gap and version-count choice.

Fig. 14a: dynamic blocks keep the gap to the optimal (layer-wise
minimal) core usage small even at high load, unlike model-wise.
Fig. 14b: the benefit of more versions saturates around four or five.
Fig. 14c: how many versions each layer actually kept (3% of layers need
five in the paper).
"""

from collections import Counter

import numpy as np
from conftest import record

from repro.models.layers import Conv2D
from repro.compiler.multiversion import SinglePassCompiler
from repro.serving.experiments import reports_over_qps


def test_fig14a_core_usage_gap(stack, benchmark, bench_queries):
    loads = {"25% load": 60.0, "75% load": 170.0}

    def run():
        rows = {}
        for label, qps in loads.items():
            for policy in ("model_fcfs", "veltair_as"):
                report = reports_over_qps(stack, policy, "resnet50",
                                          [qps], bench_queries)[0]
                rows[(label, policy)] = report.average_cores_used
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'load':10s} {'model-wise':>11s} {'dynamic':>9s}"
             f" {'gap':>7s}"]
    gaps = {}
    for label in loads:
        model_cores = rows[(label, "model_fcfs")]
        dyn_cores = rows[(label, "veltair_as")]
        gap = (model_cores - dyn_cores) / max(model_cores, 1e-9)
        gaps[label] = gap
        lines.append(f"{label:10s} {model_cores:11.1f} {dyn_cores:9.1f}"
                     f" {gap:7.1%}")
    record("fig14a", "Fig 14a: avg core usage, model-wise vs dynamic "
           "blocks", "\n".join(lines),
           metrics={f"gap_{label.split('%')[0]}": gap
                    for label, gap in gaps.items()})

    # Dynamic blocks never use more cores than the model-wise grant.
    assert all(rows[(label, "veltair_as")]
               <= rows[(label, "model_fcfs")] * 1.10 for label in loads)


def test_fig14b_improvement_vs_versions(stack, benchmark):
    layer = Conv2D(name="fig6", height=14, width=14, in_channels=256,
                   out_channels=256)

    def run():
        scores = {}
        for max_versions in (1, 2, 3, 4, 5):
            compiler = SinglePassCompiler(stack.cost_model, trials=384,
                                          max_versions=max_versions,
                                          keep_threshold=1.0, seed=31)
            compiled = compiler.compile_layer(layer, 400e-6)
            per_level = [min(row[li] for row in compiled.latency_table)
                         for li in range(len(compiled.levels))]
            scores[max_versions] = float(np.mean(per_level))
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)

    base = scores[1]
    lines = [f"{'versions':>9s} {'mean latency us':>16s} {'gain':>7s}"]
    for n, value in scores.items():
        lines.append(f"{n:9d} {value * 1e6:16.1f}"
                     f" {(base - value) / base:7.1%}")
    record("fig14b", "Fig 14b: improvement vs version count",
           "\n".join(lines),
           metrics={f"gain_{n}": (base - value) / base
                    for n, value in scores.items()})

    # Paper Fig. 14b: improvement grows then saturates by 4-5 versions.
    assert scores[5] <= scores[1]
    gain_4 = (base - scores[4]) / base
    gain_5 = (base - scores[5]) / base
    assert gain_5 - gain_4 < 0.05


def test_fig14c_version_distribution(stack, benchmark):
    def run():
        counts = Counter()
        for compiled in stack.compiled.values():
            counts.update(compiled.version_counts)
        return counts

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    total = sum(counts.values())
    lines = [f"{n} version(s): {counts.get(n, 0) / total:6.1%}"
             for n in sorted(counts)]
    record("fig14c", "Fig 14c: retained versions across all layers",
           "\n".join(lines),
           metrics={f"share_{n}": counts.get(n, 0) / total
                    for n in sorted(counts)})

    # Multi-versioning is actually used, but most layers need few
    # versions (paper Fig. 14c).
    multi = sum(v for n, v in counts.items() if n >= 2)
    assert multi / total > 0.2
    assert counts.get(1, 0) > 0
