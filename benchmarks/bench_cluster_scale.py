"""Fleet-scale benchmark: cluster capacity vs router and node count.

The cluster analogue of the paper's Fig. 12 protocol, run on a 4-node
heterogeneous fleet (2x 64-core, 1x 256-core, 1x 32-core edge node)
under a mixed-class workload (light + heavy QoS):

* **Router headroom** — fleet capacity (max QPS at >= 99% QoS
  satisfaction, shed queries counting as violations) per router.  The
  acceptance bar: ``pressure_aware`` must sustain strictly higher
  capacity than ``round_robin``, which hands the edge node a full
  quarter of the traffic and lets it cap the whole fleet.
* **One compile pass** — the entire fleet (three distinct CPU specs)
  must serve from a single ``ServingStack`` compile
  (``stack.artifact_builds == 1``); per-node runtimes re-profile, never
  re-compile.
* **Exact reconciliation** — every ``ClusterReport`` fleet total must
  equal the sum of its per-node constituents, query for query.
* **Fleet scaling** — capacity of homogeneous 1/2/4-node fleets under
  ``pressure_aware`` (how close to linear the router keeps the fleet).

Run standalone (the CI smoke test uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_cluster_scale.py --quick

``--json DIR`` additionally writes the machine-readable
``BENCH_cluster_scale.json`` the perf ratchet compares (see
``python -m repro.bench``).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.cluster import (
    AdmissionPolicy,
    Cluster,
    cluster_capacity,
    homogeneous,
    mixed_fleet,
)
from repro.serving.server import ServingStack
from repro.serving.workload import WorkloadSpec

FULL_MODELS = ("mobilenet_v2", "tiny_yolov2", "googlenet",
               "resnet50", "ssd_resnet34")
QUICK_MODELS = ("mobilenet_v2", "tiny_yolov2", "ssd_resnet34")

#: The routers this benchmark's committed baseline covers.  Pinned
#: explicitly (not the live registry) so new routers — benchmarked by
#: their own suites, e.g. bench_hetero_fleet for ``device_affinity`` —
#: don't change this baseline's metric set or wall time.
CAPACITY_ROUTERS = ("round_robin", "least_outstanding",
                    "join_shortest_queue", "pressure_aware")


def _bracket_note(qps: float, high_qps: float) -> str:
    """Flag capacities pinned by the search's bracket-expansion limit.

    ``max_qps_at_satisfaction`` doubles its bracket up to 16x the
    initial ``high_qps`` before giving up; a result at that ceiling is
    a search bound, not a measured capacity, and must not read as one.
    """
    return "  [bracket-limited]" if qps >= 16 * high_qps else ""


def mixed_class_spec(models: tuple[str, ...]) -> WorkloadSpec:
    """Light models dominate the stream; the heavy detector rides along."""
    weights = {"ssd_resnet34": 1.0}
    return WorkloadSpec(
        name="mixed-class",
        entries=tuple((name, weights.get(name, 4.0)) for name in models))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small stack / stream (the CI smoke config)")
    parser.add_argument("--queries", type=int, default=None,
                        help="queries per fleet simulation")
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--workers", type=int,
                        default=int(os.environ.get("REPRO_BENCH_WORKERS",
                                                   "4")),
                        help="fork workers per capacity-search round")
    parser.add_argument("--no-check", action="store_true",
                        help="report only; skip the acceptance assertions")
    parser.add_argument("--json", metavar="DIR", default=None,
                        help="also write BENCH_cluster_scale.json into "
                             "DIR")
    args = parser.parse_args(argv)

    models = QUICK_MODELS if args.quick else FULL_MODELS
    count = (args.queries if args.queries is not None
             else (200 if args.quick else 400))
    if count <= 0:
        parser.error("--queries must be positive")
    trials = 64 if args.quick else 96
    tolerance = 40.0 if args.quick else 25.0
    spec = mixed_class_spec(models)

    t0 = time.perf_counter()
    stack = ServingStack(models=list(models), trials=trials,
                         proxy_scenarios=60, seed=11)
    fleet = mixed_fleet()
    print(f"stack: {len(models)} models compiled once in "
          f"{time.perf_counter() - t0:.1f}s; fleet: {fleet.name} "
          f"({', '.join(f'{n.name}:{n.cores}c' for n in fleet.nodes)})")
    print(f"workload: {spec.name} ({count} queries/point, seed "
          f"{args.seed}), target 99% QoS fleet-wide\n")

    failures: list[str] = []

    # -- router headroom on the heterogeneous fleet ---------------------
    header = (f"{'router':22s} {'capacity':>9s} {'sat':>6s} "
              f"{'goodput':>8s} {'imbalance':>10s} {'wall':>7s}")
    print(header)
    print("-" * len(header))
    capacities: dict[str, float] = {}
    for router in CAPACITY_ROUTERS:
        t0 = time.perf_counter()
        result = cluster_capacity(
            stack, fleet, spec, count=count, router=router, target=0.99,
            low_qps=10.0, high_qps=800.0, tolerance_qps=tolerance,
            seed=args.seed, workers=args.workers)
        capacities[router] = result.qps
        report = result.report
        note = _bracket_note(result.qps, 800.0)
        print(f"{router:22s} {result.qps:8.0f}q {report.satisfaction_rate:6.1%} "
              f"{report.goodput_qps:7.0f}/s {report.load_imbalance:10.2f} "
              f"{time.perf_counter() - t0:6.1f}s{note}")
    headroom = capacities["pressure_aware"] / max(1.0,
                                                  capacities["round_robin"])
    print(f"\npressure_aware vs round_robin headroom: {headroom:.2f}x")
    if capacities["pressure_aware"] <= capacities["round_robin"]:
        failures.append(
            f"pressure_aware capacity {capacities['pressure_aware']:.0f} "
            f"not strictly above round_robin "
            f"{capacities['round_robin']:.0f}")

    if stack.artifact_builds != 1:
        failures.append(f"fleet triggered {stack.artifact_builds} compile "
                        "passes; sharing is broken")
    else:
        print("artifact build count fleet-wide: 1 (three CPU specs, one "
              "compile pass)")

    # -- exact per-node reconciliation ----------------------------------
    probe_qps = max(50.0, capacities["pressure_aware"] * 0.8)
    cluster = Cluster(stack, fleet, router="pressure_aware")
    report = cluster.report(spec, qps=probe_qps, count=count,
                            seed=args.seed)
    print(f"\nreconciliation probe @ {probe_qps:.0f} QPS: {report}")
    print("  per-class p99: " + "  ".join(
        f"{name}={p99 * 1e3:.1f}ms" for name, p99 in report.class_p99_s))
    for node in report.nodes:
        print(f"  {node.name:8s} {node.cores:4d}c assigned={node.assigned:4d} "
              f"completed={node.completed:4d} satisfied={node.satisfied:4d}")
    exact = (
        report.admitted == sum(n.assigned for n in report.nodes)
        and report.completed == sum(n.completed for n in report.nodes)
        and report.satisfied == sum(n.satisfied for n in report.nodes)
        and report.offered == report.admitted + report.shed
        and report.completed == report.admitted)
    print(f"fleet totals == sum(per-node totals): {exact}")
    if not exact:
        failures.append("ClusterReport totals do not reconcile with "
                        "per-node totals")

    # -- admission under overload (informational) -----------------------
    overload_qps = capacities["pressure_aware"] * 1.5
    baseline = Cluster(stack, fleet, router="pressure_aware").report(
        spec, qps=overload_qps, count=count, seed=args.seed)
    print(f"\nadmission @ {overload_qps:.0f} QPS (1.5x capacity); "
          f"unguarded fleet sat={baseline.satisfaction_rate:.1%}:")
    for mode in ("shed", "defer"):
        policy = AdmissionPolicy(max_fleet_pressure=0.85,
                                 max_outstanding_per_core=0.02,
                                 mode=mode)
        over = Cluster(stack, fleet, router="pressure_aware",
                       admission=policy).report(spec, qps=overload_qps,
                                                count=count,
                                                seed=args.seed)
        print(f"  {mode:5s} shed={over.shed_rate:5.1%} "
              f"deferrals={over.deferrals:3d} "
              f"admitted-sat={over.satisfied / max(1, over.admitted):.1%} "
              f"fleet-sat={over.satisfaction_rate:.1%}")

    # -- fleet scaling under pressure_aware -----------------------------
    # Homogeneous 64-core fleets, 95% target (the paper's single-node
    # SLA; a 99% bar on 200-query streams is two misses and pure noise
    # at this scale).  Scaling is super-linear on mixed-class load: one
    # node cannot isolate the heavy detector from the 10 ms-QoS lights,
    # a fleet routes them apart.
    print(f"\nhomogeneous 64c fleet scaling (95% target):")
    print(f"{'nodes':>5s} {'capacity':>9s} {'per-node':>9s}")
    scaling: dict[int, float] = {}
    for node_count in (1, 2, 4):
        result = cluster_capacity(
            stack, homogeneous(node_count), spec, count=count,
            router="pressure_aware", target=0.95, low_qps=5.0,
            high_qps=150.0 * node_count, tolerance_qps=15.0,
            seed=args.seed, workers=args.workers)
        scaling[node_count] = result.qps
        print(f"{node_count:5d} {result.qps:8.0f}q "
              f"{result.qps / node_count:8.0f}q"
              f"{_bracket_note(result.qps, 150.0 * node_count)}")

    if args.json is not None:
        from repro.bench.results import BenchResult, write_result
        metrics = {f"capacity_{router}": qps
                   for router, qps in capacities.items()}
        metrics.update({
            "headroom": headroom,
            "artifact_builds": float(stack.artifact_builds),
            "totals_reconcile": 1.0 if exact else 0.0,
            **{f"scaling_{n}_nodes": qps
               for n, qps in scaling.items()},
        })
        table = "\n".join(
            [f"{'router':22s} {'capacity':>9s}"]
            + [f"{router:22s} {qps:8.0f}q"
               for router, qps in capacities.items()]
            + ["", f"headroom pressure_aware/round_robin: "
                   f"{headroom:.2f}x",
               f"homogeneous 64c scaling: "
               + " ".join(f"{n}n={qps:.0f}q"
                          for n, qps in scaling.items())])
        write_result(BenchResult(
            name="cluster_scale",
            title="Cluster scale: fleet capacity per router",
            metrics=metrics,
            knobs={"quick": args.quick, "queries": count,
                   "trials": trials, "models": list(models),
                   "workers": args.workers},
            info={"failures": list(failures)},
            tables={"Cluster scale: fleet capacity per router": table},
            seed=args.seed), args.json)

    if failures and not args.no_check:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: acceptance checks passed" if not args.no_check
          else "\ndone (checks skipped)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
