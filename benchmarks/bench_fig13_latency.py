"""Paper Fig. 13 — query latency vs the isolated solo run.

Average query latency under load, normalised to the model's solo-run
latency on the whole machine.  Paper: VELTAIR-FULL lands within ~1.1x of
isolated execution, AS alone ~1.6x, AC alone ~1.17x.
"""

from conftest import record

from repro.serving.experiments import reports_over_qps

_MODELS = ("mobilenet_v2", "googlenet", "resnet50")
_POLICIES = ("veltair_as", "veltair_ac", "veltair_full")
#: Moderate per-model load: high enough for real co-location, low enough
#: that every policy still completes the stream.
_QPS = {"mobilenet_v2": 250.0, "googlenet": 150.0, "resnet50": 120.0}


def test_fig13_latency_vs_isolated(stack, benchmark, bench_queries,
                                   bench_workers):
    def run():
        rows = {}
        for model in _MODELS:
            iso = stack.isolated_model_latency(model)
            for policy in _POLICIES:
                report = reports_over_qps(stack, policy, model,
                                          [_QPS[model]], bench_queries,
                                          workers=bench_workers)[0]
                rows[(model, policy)] = report.average_latency_s / iso
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'model':16s}" + "".join(f"{p:>14s}" for p in _POLICIES)]
    for model in _MODELS:
        lines.append(f"{model:16s}" + "".join(
            f"{rows[(model, p)]:13.2f}x" for p in _POLICIES))
    averages = {p: sum(rows[(m, p)] for m in _MODELS) / len(_MODELS)
                for p in _POLICIES}
    lines.append(f"{'average':16s}" + "".join(
        f"{averages[p]:13.2f}x" for p in _POLICIES))
    metrics = {f"{model}_{policy}": ratio
               for (model, policy), ratio in rows.items()}
    metrics.update({f"avg_{policy}": value
                    for policy, value in averages.items()})
    record("fig13", "Fig 13: latency normalised to isolated run",
           "\n".join(lines), metrics=metrics)

    # Paper Fig. 13: the full system runs close to the isolated bound
    # (the bound itself uses the whole 64-core machine, which co-located
    # queries never get, so a gap of ~2-3x is the simulator's isolation
    # premium rather than scheduling loss).
    assert averages["veltair_full"] < 3.5
    for policy in _POLICIES:
        assert averages[policy] >= 0.9  # nothing beats isolation
