"""Closed-loop and batching benchmark: the request model's two claims.

Acceptance protocol for the generalized request model
(``repro.workloads.requests`` + engine-side ``BatchPolicy``):

**Feedback (closed loop).**  A closed-loop tenant population served
through an admission controller that sheds must exhibit feedback: every
shed request still hands control back to its tenant (offered == admitted
+ shed, nothing vanishes), and the goodput achieved *under shedding*
stays strictly below the open-loop offered rate — the rate the same
tenant population sustains when nothing is shed.  An open-loop trace
has no such coupling: shed queries just disappear from a pre-drawn
stream.  The guarded serve is also run twice and must be bit-identical
(the closed-loop event plumbing stays deterministic).

**Batching (throughput-for-latency).**  On an accelerator node past the
unbatched engine's capacity knee, with QoS slack enough to absorb fused
service times (8x), dynamic batching must deliver **>= 1.3x goodput at
an equal-or-better p99** than the plain engine at the same offered
load.  The win is structural: a batch-B block pays one launch stream
and shares weight traffic across B members, so its core-seconds per
query are strictly cheaper — past the plain knee the unbatched queue
grows without bound while the batched engine keeps satisfying every
request.  (Below the knee batching only adds wait; this benchmark pins
the regime where it pays.)

Run standalone (the CI perf ratchet uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_closed_loop.py --quick

``--json DIR`` additionally writes the machine-readable
``BENCH_closed_loop.json`` the perf ratchet compares (see
``python -m repro.bench``).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.cluster import AdmissionPolicy, Cluster, homogeneous
from repro.hardware.platform import DATACENTER_ACCEL_80
from repro.runtime.engine import BatchPolicy, Engine
from repro.serving.server import ServingStack
from repro.serving.workload import WorkloadSpec, poisson_queries
from repro.workloads import ClosedLoopSpec, ScenarioSpec

MODELS = ("mobilenet_v2", "googlenet")

#: Acceptance bars (see the module docstring).
BATCH_RATIO_FLOOR = 1.3

#: The closed-loop population: six tenants, two requests in flight
#: each, a short think time between completion and the next issue.
CLOSED_LOOP = ClosedLoopSpec(tenants=6, concurrency=2, think_s=0.005)

#: The batching act's regime: a mono-model (maximally fusable) stream
#: on the accelerator, offered past the unbatched knee, QoS relaxed 8x.
BATCH_QPS = 3600.0
BATCH_QOS_SCALE = 8.0
BATCH_POLICY = BatchPolicy(max_batch=8, max_wait_s=0.002)


def closed_loop_scenario(spec: WorkloadSpec) -> ScenarioSpec:
    return ScenarioSpec(name="closed-quick", workload=spec,
                        closed_loop=CLOSED_LOOP)


def run_closed_loop(stack: ServingStack, count: int,
                    seed: int) -> tuple[dict[str, float], list[str]]:
    """The feedback act: free-running vs guarded closed-loop serves."""
    spec = WorkloadSpec(name="quick-mix", entries=(("mobilenet_v2", 2.0),
                                                   ("googlenet", 1.0)))
    scenario = closed_loop_scenario(spec)

    def serve(cluster: Cluster):
        stream = scenario.stream(stack.compiled, qps=0.0, count=count,
                                 seed=seed)
        return cluster.serve_stream(stream)

    free = serve(Cluster(stack, homogeneous(1)))
    guarded_cluster = Cluster(
        stack, homogeneous(1),
        admission=AdmissionPolicy(max_outstanding_per_core=0.05,
                                  max_defers=1))
    guarded = serve(guarded_cluster)
    again = serve(guarded_cluster)

    open_rate = free.offered / free.span_s if free.span_s > 0 else 0.0
    goodput = guarded.goodput_qps
    totals_ok = (guarded.offered == guarded.admitted + guarded.shed
                 and guarded.offered == count
                 and sum(s.issued for s in guarded.sessions) == count)
    shed_ok = guarded.shed > 0
    below_ok = shed_ok and goodput < open_rate
    repeat_ok = (
        guarded.satisfied == again.satisfied
        and guarded.shed == again.shed
        and guarded.average_latency_s == again.average_latency_s
        and [(s.session, s.issued, s.satisfied, s.shed)
             for s in guarded.sessions]
        == [(s.session, s.issued, s.satisfied, s.shed)
            for s in again.sessions])

    metrics = {
        "closed_open_rate_qps": open_rate,
        "closed_free_sat": free.satisfaction_rate,
        "closed_shed": float(guarded.shed),
        "closed_shed_goodput_qps": goodput,
        "closed_shed_sat": guarded.satisfaction_rate,
        "closed_sessions": float(len(guarded.sessions)),
        "closed_totals_ok": 1.0 if totals_ok else 0.0,
        "closed_shed_occurred_ok": 1.0 if shed_ok else 0.0,
        "closed_below_open_ok": 1.0 if below_ok else 0.0,
        "closed_repeat_identical_ok": 1.0 if repeat_ok else 0.0,
    }
    failures = []
    if not totals_ok:
        failures.append(
            f"closed-loop totals do not reconcile: offered "
            f"{guarded.offered} != admitted {guarded.admitted} + shed "
            f"{guarded.shed} (count {count})")
    if not shed_ok:
        failures.append("guarded closed-loop serve shed nothing; the "
                        "feedback regime was never entered")
    if shed_ok and not below_ok:
        failures.append(
            f"goodput under shedding {goodput:.1f}/s is not strictly "
            f"below the open-loop offered rate {open_rate:.1f}/s")
    if not repeat_ok:
        failures.append("guarded closed-loop serve is not deterministic "
                        "across repeats")
    return metrics, failures


def run_batching(stack: ServingStack, count: int,
                 seed: int) -> tuple[dict[str, float], list[str]]:
    """The batching act: plain vs fused engine past the plain knee."""
    runtime = stack.runtime_for(DATACENTER_ACCEL_80)
    spec = WorkloadSpec(name="mono", entries=(("mobilenet_v2", 1.0),))

    def serve(batching: BatchPolicy | None):
        queries = poisson_queries(stack.compiled, spec, qps=BATCH_QPS,
                                  count=count, seed=seed)
        for query in queries:
            query.qos_s *= BATCH_QOS_SCALE
        engine = Engine(runtime.cost_model,
                        price_cache=runtime.price_cache,
                        batching=batching)
        scheduler = stack.make_scheduler("veltair_full", runtime=runtime)
        done = engine.run(queries, scheduler)
        sat = sum(q.satisfied for q in done)
        window = max(q.finished_s for q in done)
        latencies = sorted(q.finished_s - q.arrival_s for q in done)
        p99 = latencies[min(len(latencies) - 1,
                            int(len(latencies) * 0.99))]
        return sat, sat / window, p99

    plain_sat, plain_goodput, plain_p99 = serve(None)
    fused_sat, fused_goodput, fused_p99 = serve(BATCH_POLICY)
    ratio = fused_goodput / plain_goodput if plain_goodput > 0 else 0.0
    ratio_ok = ratio >= BATCH_RATIO_FLOOR
    p99_ok = fused_p99 <= plain_p99

    metrics = {
        "batch_plain_sat": float(plain_sat),
        "batch_fused_sat": float(fused_sat),
        "batch_plain_goodput_qps": plain_goodput,
        "batch_fused_goodput_qps": fused_goodput,
        "batch_plain_p99_ms": plain_p99 * 1e3,
        "batch_fused_p99_ms": fused_p99 * 1e3,
        "batch_goodput_ratio": ratio,
        "batch_ratio_ok": 1.0 if ratio_ok else 0.0,
        "batch_p99_ok": 1.0 if p99_ok else 0.0,
    }
    failures = []
    if not ratio_ok:
        failures.append(
            f"batched goodput ratio {ratio:.2f} below the "
            f"{BATCH_RATIO_FLOOR}x floor "
            f"({fused_goodput:.0f}/s vs {plain_goodput:.0f}/s)")
    if not p99_ok:
        failures.append(
            f"batched p99 {fused_p99 * 1e3:.1f}ms exceeds plain p99 "
            f"{plain_p99 * 1e3:.1f}ms — not an equal-QoS comparison")
    return metrics, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small stack / stream (the CI ratchet config)")
    parser.add_argument("--queries", type=int, default=None,
                        help="closed-loop requests per serve")
    parser.add_argument("--batch-queries", type=int, default=None,
                        help="arrivals per batching-act serve")
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--no-check", action="store_true",
                        help="report only; skip the acceptance assertions")
    parser.add_argument("--json", metavar="DIR", default=None,
                        help="also write BENCH_closed_loop.json into DIR")
    args = parser.parse_args(argv)

    count = (args.queries if args.queries is not None
             else (600 if args.quick else 1200))
    batch_count = (args.batch_queries if args.batch_queries is not None
                   else (2400 if args.quick else 4800))
    if count <= 0 or batch_count <= 0:
        parser.error("query counts must be positive")
    trials = 64 if args.quick else 96

    t0 = time.perf_counter()
    stack = ServingStack(models=list(MODELS), trials=trials,
                         proxy_scenarios=60, seed=11)
    stack.ensure_compiled()
    print(f"stack: {len(MODELS)} models compiled in "
          f"{time.perf_counter() - t0:.1f}s")
    print(f"closed loop: {CLOSED_LOOP.tenants} tenants x concurrency "
          f"{CLOSED_LOOP.concurrency}, think "
          f"{CLOSED_LOOP.think_s * 1e3:.0f}ms, {count} requests")
    print(f"batching: mono mobilenet_v2 at {BATCH_QPS:.0f} QPS on "
          f"{DATACENTER_ACCEL_80.name}, QoS x{BATCH_QOS_SCALE:.0f}, "
          f"{batch_count} arrivals, max_batch={BATCH_POLICY.max_batch}, "
          f"wait<={BATCH_POLICY.max_wait_s * 1e3:.0f}ms\n")

    t0 = time.perf_counter()
    closed_metrics, failures = run_closed_loop(stack, count, args.seed)
    batch_metrics, batch_failures = run_batching(stack, batch_count,
                                                 args.seed)
    failures.extend(batch_failures)
    wall = time.perf_counter() - t0
    metrics = {**closed_metrics, **batch_metrics}

    lines = [
        f"closed loop: open-rate {metrics['closed_open_rate_qps']:8.1f}/s"
        f"  (free sat {metrics['closed_free_sat']:6.1%})",
        f"  guarded:   goodput   {metrics['closed_shed_goodput_qps']:8.1f}"
        f"/s  shed {metrics['closed_shed']:.0f}  sat "
        f"{metrics['closed_shed_sat']:6.1%}",
        f"batching:    plain     {metrics['batch_plain_goodput_qps']:8.1f}"
        f"/s  p99 {metrics['batch_plain_p99_ms']:6.1f}ms  sat "
        f"{metrics['batch_plain_sat']:.0f}/{batch_count}",
        f"  fused:     goodput   {metrics['batch_fused_goodput_qps']:8.1f}"
        f"/s  p99 {metrics['batch_fused_p99_ms']:6.1f}ms  sat "
        f"{metrics['batch_fused_sat']:.0f}/{batch_count}  "
        f"ratio {metrics['batch_goodput_ratio']:.2f}x",
    ]
    print("\n".join(lines))
    print(f"\n({wall:.1f}s for both acts)")

    if args.json is not None:
        from repro.bench.results import BenchResult, write_result
        title = "Closed loop + batching: request-model acceptance"
        write_result(BenchResult(
            name="closed_loop", title=title, metrics=metrics,
            knobs={"quick": args.quick, "queries": count,
                   "batch_queries": batch_count, "trials": trials,
                   "models": list(MODELS),
                   "tenants": CLOSED_LOOP.tenants,
                   "concurrency": CLOSED_LOOP.concurrency,
                   "batch_qps": BATCH_QPS,
                   "max_batch": BATCH_POLICY.max_batch},
            info={"failures": list(failures)},
            tables={title: "\n".join(lines)},
            seed=args.seed), args.json)

    if failures and not args.no_check:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: acceptance checks passed" if not args.no_check
          else "\ndone (checks skipped)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
