"""Autoscale benchmark: the cost-vs-QoS frontier of the elastic fleet.

The acceptance protocol of the autoscaling control plane
(``repro.cluster.autoscale``): on the diurnal and flash-crowd arrival
shapes — the load patterns fleet elasticity exists for — an autoscaled
fleet that starts at 2 nodes and follows demand must deliver

* **>= 95% of the static-peak fleet's QoS satisfaction** (the 4-node
  fleet sized for the peak and held for the whole run), using
* **<= 70% of its node-seconds** (provision-to-retire capacity cost,
  warm-up included).

Both fleets serve bit-identical streams (same seed, same scenario), so
the comparison isolates the control plane.  Additional invariants
checked on the autoscaled runs: the scaling timeline is consistent
(every provision is followed by exactly one join, drains retire, peak
live count within policy bounds), fleet node-seconds reconcile exactly
with per-node sums, drained nodes complete everything assigned to
them, and query totals reconcile (nothing lost across membership
changes).

Run standalone (the CI perf ratchet uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_autoscale.py --quick

``--json DIR`` additionally writes the machine-readable
``BENCH_autoscale.json`` the perf ratchet compares (see
``python -m repro.bench``).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.cluster import (
    JOIN,
    PROVISION,
    RETIRE,
    RETIRED,
    AutoscalePolicy,
    NodeSpec,
    homogeneous,
    sweep_autoscale,
)
from repro.cluster.experiments import AutoscalePoint
from repro.hardware.platform import THREADRIPPER_3990X
from repro.serving.server import ServingStack
from repro.serving.workload import WorkloadSpec
from repro.workloads import ScenarioSpec
from repro.workloads.arrivals import FlashCrowdArrivals

MODELS = ("mobilenet_v2", "googlenet")

#: Acceptance bars (see the module docstring).
QOS_RATIO_FLOOR = 0.95
NODE_SECONDS_CEIL = 0.70

#: The flash-crowd cell: a 5x spike over 15% of the span.  (The
#: registered ``flash_crowd`` scenario's 8x spike saturates even the
#: static-peak fleet; the 5x variant keeps the comparison about
#: elasticity, not mutual collapse.)
FLASH = ScenarioSpec(name="flash_x5", arrival=FlashCrowdArrivals(
    spike_ratio=5.0, start_frac=0.4, width_frac=0.15))

#: (metric prefix, scenario, mean offered QPS) cells.
CELLS = (("diurnal", "diurnal", 400.0), ("flash", FLASH, 170.0))


def reference_policy() -> AutoscalePolicy:
    """The benchmark's control policy (also the tour example's).

    Time constants are in simulated seconds and sized to this
    simulator's millisecond-scale service times; a wall-clock fleet
    would scale them with its own model latencies.
    """
    return AutoscalePolicy(
        template=NodeSpec(name="auto", cpu=THREADRIPPER_3990X),
        min_nodes=2, max_nodes=4,
        tick_s=0.015, warmup_s=0.03, cooldown_s=0.06,
        up_pressure=0.45, down_pressure=0.20,
        up_backlog_per_core=0.06, down_backlog_per_core=0.015,
        up_violation_rate=0.10, down_violation_rate=0.02,
        slo_window_s=0.20, panic_severity=2.0, quiet_ticks=6)


def check_timeline(point: AutoscalePoint) -> list[str]:
    """Structural invariants of one autoscaled run's scaling record.

    Cross-checks are against *independent* sources wherever possible:
    per-node lifecycle stamps must match the scaling timeline's event
    times (not the rollup's own sums), and query totals are compared
    against the offered stream and shed list, which the rollup does
    not derive from the per-node reports.
    """
    report = point.autoscaled
    problems: list[str] = []
    timeline = report.scaling_timeline
    if not timeline:
        problems.append(f"{point.scenario}: no scaling events at all")
    provisions = [e.node for e in timeline if e.action == PROVISION]
    joins = [e.node for e in timeline if e.action == JOIN]
    if sorted(provisions) != sorted(joins):
        problems.append(f"{point.scenario}: provisions {provisions} do "
                        f"not pair with joins {joins}")
    times = [e.time_s for e in timeline]
    if times != sorted(times):
        problems.append(f"{point.scenario}: timeline out of order")

    # Node-seconds reconcile against the independent event record: a
    # provisioned node's lifecycle stamps must equal its timeline
    # entries, and every span must fit the serve window.
    stamped = {e.node: e.time_s for e in timeline if e.action == PROVISION}
    retired_at = {e.node: e.time_s for e in timeline
                  if e.action == RETIRE}
    for node in report.nodes:
        if node.name in stamped and (
                abs(node.provisioned_s - stamped[node.name]) > 1e-12):
            problems.append(
                f"{point.scenario}: node {node.name} provisioned_s "
                f"{node.provisioned_s} != timeline {stamped[node.name]}")
        if node.name in retired_at and (
                abs(node.retired_s - retired_at[node.name]) > 1e-12):
            problems.append(
                f"{point.scenario}: node {node.name} retired_s "
                f"{node.retired_s} != timeline {retired_at[node.name]}")
        if abs(node.node_seconds
               - (node.retired_s - node.provisioned_s)) > 1e-9:
            problems.append(f"{point.scenario}: node {node.name} "
                            "node-seconds disagree with its lifecycle")
        if node.node_seconds > report.span_s + 1e-9:
            problems.append(f"{point.scenario}: node {node.name} outlived "
                            "the serve window")
        if node.final_state == RETIRED and node.completed != node.assigned:
            problems.append(
                f"{point.scenario}: retired node {node.name} completed "
                f"{node.completed}/{node.assigned} assigned queries")
    # Query totals: offered and shed are stream-side counts, so
    # admitted/completed reconciling against them is not circular.
    totals_ok = (
        report.offered == report.admitted + report.shed
        and report.completed == report.admitted)
    if not totals_ok:
        problems.append(f"{point.scenario}: query totals do not "
                        "reconcile across membership changes")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small stack / stream (the CI ratchet config)")
    parser.add_argument("--queries", type=int, default=None,
                        help="queries per fleet simulation")
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--workers", type=int,
                        default=int(os.environ.get("REPRO_BENCH_WORKERS",
                                                   "2")),
                        help="fork workers across scenario cells")
    parser.add_argument("--no-check", action="store_true",
                        help="report only; skip the acceptance assertions")
    parser.add_argument("--json", metavar="DIR", default=None,
                        help="also write BENCH_autoscale.json into DIR")
    args = parser.parse_args(argv)

    count = (args.queries if args.queries is not None
             else (600 if args.quick else 1200))
    if count <= 0:
        parser.error("--queries must be positive")
    trials = 64 if args.quick else 96
    spec = WorkloadSpec(name="quick-mix", entries=(("mobilenet_v2", 2.0),
                                                   ("googlenet", 1.0)))
    policy = reference_policy()
    static_fleet = homogeneous(policy.max_nodes)
    initial_fleet = homogeneous(policy.min_nodes)

    t0 = time.perf_counter()
    stack = ServingStack(models=list(MODELS), trials=trials,
                         proxy_scenarios=60, seed=11)
    stack.ensure_compiled()
    print(f"stack: {len(MODELS)} models compiled in "
          f"{time.perf_counter() - t0:.1f}s; static-peak fleet "
          f"{static_fleet.name}, autoscaled {initial_fleet.name} -> "
          f"[{policy.min_nodes}, {policy.max_nodes}] nodes "
          f"(warmup {policy.warmup_s * 1e3:.0f}ms, tick "
          f"{policy.tick_s * 1e3:.0f}ms)")
    print(f"workload: {spec.name} ({count} queries/cell, seed "
          f"{args.seed}); bars: QoS ratio >= {QOS_RATIO_FLOOR:.0%}, "
          f"node-seconds <= {NODE_SECONDS_CEIL:.0%}\n")

    t0 = time.perf_counter()
    points = sweep_autoscale(
        stack, static_fleet, initial_fleet, policy, spec,
        [(scenario, qps) for _, scenario, qps in CELLS], count=count,
        seed=args.seed, workers=args.workers)
    wall = time.perf_counter() - t0

    failures: list[str] = []
    metrics: dict[str, float] = {}
    header = (f"{'scenario':10s} {'qps':>5s} {'static sat':>10s} "
              f"{'auto sat':>9s} {'qos-ratio':>9s} {'node-s':>7s} "
              f"{'peak':>4s} {'avg':>5s} {'util s/a':>12s}")
    lines = [header, "-" * len(header)]
    for (prefix, _, _), point in zip(CELLS, points):
        auto = point.autoscaled
        qos_ok = point.qos_ratio >= QOS_RATIO_FLOOR
        ns_ok = point.node_seconds_ratio <= NODE_SECONDS_CEIL
        metrics.update({
            f"{prefix}_static_sat": point.static.satisfaction_rate,
            f"{prefix}_auto_sat": auto.satisfaction_rate,
            f"{prefix}_qos_ratio": point.qos_ratio,
            f"{prefix}_node_seconds_ratio": point.node_seconds_ratio,
            f"{prefix}_auto_peak_nodes": float(auto.peak_live_nodes),
            f"{prefix}_auto_avg_nodes": auto.average_live_nodes,
            f"{prefix}_auto_utilization": auto.utilization,
            f"{prefix}_scaling_events": float(len(auto.scaling_timeline)),
            f"{prefix}_qos_ratio_ok": 1.0 if qos_ok else 0.0,
            f"{prefix}_node_seconds_ok": 1.0 if ns_ok else 0.0,
        })
        lines.append(
            f"{point.scenario:10s} {point.qps:5.0f} "
            f"{point.static.satisfaction_rate:10.1%} "
            f"{auto.satisfaction_rate:9.1%} {point.qos_ratio:9.3f} "
            f"{point.node_seconds_ratio:7.2f} {auto.peak_live_nodes:4d} "
            f"{auto.average_live_nodes:5.2f} "
            f"{point.static.utilization:5.1%}/{auto.utilization:5.1%}")
        if not qos_ok:
            failures.append(
                f"{point.scenario}: QoS ratio {point.qos_ratio:.3f} below "
                f"the {QOS_RATIO_FLOOR:.0%} floor")
        if not ns_ok:
            failures.append(
                f"{point.scenario}: node-seconds ratio "
                f"{point.node_seconds_ratio:.3f} above the "
                f"{NODE_SECONDS_CEIL:.0%} ceiling")
        failures.extend(check_timeline(point))

    print("\n".join(lines))
    print(f"\n({wall:.1f}s for {len(points)} cells, "
          f"{args.workers} workers)")
    for point in points:
        print(f"\n{point.scenario} scaling timeline:")
        for event in point.autoscaled.scaling_timeline:
            print(f"  {event}")

    if args.json is not None:
        from repro.bench.results import BenchResult, write_result
        title = "Autoscale: elastic fleet vs static peak (cost-vs-QoS)"
        write_result(BenchResult(
            name="autoscale", title=title, metrics=metrics,
            knobs={"quick": args.quick, "queries": count,
                   "trials": trials, "models": list(MODELS),
                   "workers": args.workers,
                   "min_nodes": policy.min_nodes,
                   "max_nodes": policy.max_nodes},
            info={"failures": list(failures)},
            tables={title: "\n".join(lines)},
            seed=args.seed), args.json)

    if failures and not args.no_check:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: acceptance checks passed" if not args.no_check
          else "\ndone (checks skipped)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
