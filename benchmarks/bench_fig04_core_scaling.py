"""Paper Fig. 4 — layer scalability diversity and allocation waste.

Fig. 4a: different ResNet-50 convolutions scale differently with cores.
Fig. 4b: the model-wise fixed grant sits above the layer-wise minimal
allocation curve — the waste that motivates layer blocks.
"""

import numpy as np
from conftest import record

from repro.config import make_rng
from repro.models.layers import Conv2D
from repro.compiler.space import ScheduleSpace

#: The four conv layers of paper Fig. 4a.
_LAYERS = (
    Conv2D(name="56x56 c64->64 k1", height=56, width=56, in_channels=64,
           out_channels=64, kernel_h=1, kernel_w=1),
    Conv2D(name="224x224 c3->64 k7", height=224, width=224, in_channels=3,
           out_channels=64, kernel_h=7, kernel_w=7, stride=2),
    Conv2D(name="7x7 c512->1024 k1", height=7, width=7, in_channels=512,
           out_channels=1024, kernel_h=1, kernel_w=1),
    Conv2D(name="56x56 c64->64 k3", height=56, width=56, in_channels=64,
           out_channels=64, kernel_h=3, kernel_w=3),
)

_CORES = (8, 16, 24, 32, 40, 48, 56)


def test_fig4a_speedup_curves(stack, benchmark):
    def run():
        curves = {}
        for layer in _LAYERS:
            space = ScheduleSpace.for_layer(layer)
            samples = space.sample_many(300, make_rng(4))
            best = [min(stack.cost_model.latency(layer, s, c, 0.0)
                        for s in samples) for c in _CORES]
            curves[layer.name] = [best[0] / b for b in best]
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'layer':22s}" + "".join(f"{c:>7d}c" for c in _CORES)]
    for name, speedups in curves.items():
        lines.append(f"{name:22s}"
                     + "".join(f"{s:8.2f}" for s in speedups))
    record("fig04a", "Fig 4a: speedup vs cores (vs 8 cores)",
           "\n".join(lines),
           metrics={f"final_speedup_layer{i + 1}": speedups[-1]
                    for i, speedups in enumerate(curves.values())})

    finals = [c[-1] for c in curves.values()]
    # Paper Fig. 4a: speedups between ~2x and ~7.5x at 56 cores, and the
    # layers differ in how well they scale.
    assert all(1.2 < s < 7.5 for s in finals)
    assert max(finals) / min(finals) > 1.05


def test_fig4b_allocation_profile(stack, benchmark):
    def run():
        return stack.profiles["resnet50"]

    profile = benchmark.pedantic(run, rounds=1, iterations=1)
    required = np.array(profile.layer_required_cores)

    lines = [
        f"model-wise fixed grant : {profile.model_cores} cores",
        f"layer-wise requirement : min={required.min()} "
        f"p50={np.percentile(required, 50):.0f} "
        f"p90={np.percentile(required, 90):.0f} max={required.max()}",
        f"layer-wise average     : {profile.avg_cores} cores "
        f"(time-weighted Avg_C)",
        "first 20 layers        : "
        + " ".join(str(c) for c in required[:20]),
    ]
    record("fig04b", "Fig 4b: core allocation, model vs layer",
           "\n".join(lines),
           metrics={"model_cores": float(profile.model_cores),
                    "required_min": float(required.min()),
                    "required_p90": float(np.percentile(required, 90)),
                    "required_max": float(required.max()),
                    "avg_cores": float(profile.avg_cores)})

    # Paper Fig. 4b: requirements vary widely and the model-wise grant is
    # far from the per-layer minimum for many layers.
    assert required.max() >= 2 * required.min()
    assert profile.model_cores >= np.percentile(required, 25)
