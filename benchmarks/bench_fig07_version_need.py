"""Paper Fig. 7 — how many code versions are enough.

Fig. 7a: performance loss of keeping N versions vs the full per-level
optimum, as a function of interference level (paper: 1 version loses up
to ~65%, 5 versions stay within 10%).  Fig. 7b: the distribution of
versions needed per layer to stay within a loss bound.
"""

import numpy as np
from conftest import record

from repro.compiler.multiversion import SinglePassCompiler


def _loss_matrix(stack, graph_name, max_versions_range, levels=10):
    """Per N: average (over layers) relative loss per interference level."""
    graph = stack.compiled[graph_name].graph
    budgets = [e.qos_budget_s for e in stack.compiled[graph_name].layers]
    unique = {}
    for layer, budget in zip(graph.layers, budgets):
        unique.setdefault(layer.signature, (layer, budget))

    losses = {n: [] for n in max_versions_range}
    needed = []
    for layer, budget in unique.values():
        compilers = {n: SinglePassCompiler(stack.cost_model, trials=256,
                                           max_versions=n,
                                           keep_threshold=1.0, seed=13)
                     for n in max_versions_range}
        tables = {n: compilers[n].compile_layer(layer, budget)
                  for n in max_versions_range}
        reference = tables[max(max_versions_range)]
        ref_best = [min(row[li] for row in reference.latency_table)
                    for li in range(levels)]
        for n, compiled in tables.items():
            row = [min(r[li] for r in compiled.latency_table)
                   / ref_best[li] - 1.0 for li in range(levels)]
            losses[n].append(row)
        for n in max_versions_range:
            worst = max(min(r[li] for r in tables[n].latency_table)
                        / ref_best[li] for li in range(levels))
            if worst <= 1.10:
                needed.append(min(n, tables[n].version_count))
                break
        else:
            needed.append(max(max_versions_range))
    return losses, needed


def test_fig7_version_need(stack, benchmark):
    versions_range = (1, 2, 3, 4, 5)

    def run():
        return _loss_matrix(stack, "resnet50", versions_range)

    losses, needed = benchmark.pedantic(run, rounds=1, iterations=1)

    levels = np.linspace(0, 1, 10)
    lines = [f"{'versions':>9s}" + "".join(f"  I={lv:.1f}" for lv in
                                           levels[::3])]
    mean_loss = {}
    for n in versions_range:
        matrix = np.array(losses[n])
        per_level = matrix.mean(axis=0)
        mean_loss[n] = float(per_level.max())
        lines.append(f"{n:9d}" + "".join(f"{per_level[i]:7.1%}"
                                         for i in range(0, 10, 3)))
    record("fig07a", "Fig 7a: performance loss vs retained versions",
           "\n".join(lines),
           metrics={f"mean_loss_{n}": loss
                    for n, loss in mean_loss.items()})

    counts, freqs = np.unique(needed, return_counts=True)
    dist = "\n".join(f"{c} version(s): {f / len(needed):.0%}"
                     for c, f in zip(counts, freqs))
    record("fig07b", "Fig 7b: versions needed for <=10% loss", dist,
           metrics={"share_le3": sum(1 for n in needed if n <= 3)
                    / len(needed)})

    # Paper Fig. 7a: loss shrinks monotonically with more versions and
    # five versions are close to the full set.
    assert mean_loss[1] >= mean_loss[3] >= mean_loss[5]
    assert mean_loss[5] < 0.10
    assert mean_loss[1] > 0.03
    # Paper Fig. 7b: the majority of layers need at most three versions.
    assert sum(1 for n in needed if n <= 3) / len(needed) > 0.5
