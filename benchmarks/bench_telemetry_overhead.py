"""Telemetry overhead gauge: tracing must be observational and ~free.

Runs the production-scale mixed workload (600 QPS on
:data:`PRODUCTION_SERVER_256`) twice — tracer attached and tracer
``None`` — and enforces the telemetry layer's two contracts:

* **Bit-identity** — the ``ServingReport`` (and a 2-node fleet's
  ``ClusterReport``) must be *equal*, not merely close, with tracing on
  vs off.  The tracer observes; it never perturbs a decision.
* **Null-tracer cost <= 2%** — with ``tracer=None`` the only residue on
  the hot path is ``if tracer is not None`` guards.  The gauge counts
  the guard evaluations the run actually performed (from engine
  accounting: dispatches, block starts/finishes, conflicts, grows,
  completions, arrivals, repricing rounds), microbenchmarks the cost of
  one guard, and bounds the induced overhead against the untraced wall
  clock.  A direct A/B against a guard-free build is impossible inside
  one tree, so the bound is constructed, not sampled — and it lands
  orders of magnitude under the 2% bar.

The traced run's records additionally feed the exactness check the
trace CLI advertises: ``summarize_trace`` over the spans alone must
reproduce ``ServingReport.average_latency_s`` bit-for-bit, the span
nesting must validate clean, and the Chrome export must pass the
structural validator.

Run standalone (the CI smoke test uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py --quick

``--json DIR`` additionally writes the machine-readable
``BENCH_telemetry_overhead.json`` the perf ratchet compares (see
``python -m repro.bench``).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time

from repro.cluster import Cluster, homogeneous
from repro.hardware.platform import PRODUCTION_SERVER_256
from repro.runtime.engine import Engine
from repro.runtime.pricing import PricingCache
from repro.serving.metrics import ServingReport, summarize
from repro.serving.server import ServingStack
from repro.serving.workload import WorkloadSpec, poisson_queries
from repro.telemetry import (
    Tracer,
    summarize_trace,
    to_chrome,
    validate_chrome,
    validate_trace,
)

FULL_MODELS = ("mobilenet_v2", "efficientnet_b0", "tiny_yolov2",
               "googlenet", "resnet50")
QUICK_MODELS = ("mobilenet_v2", "efficientnet_b0", "tiny_yolov2")

#: The acceptance bar: constructed null-tracer overhead bound, percent.
OVERHEAD_BAR_PCT = 2.0


@dataclasses.dataclass
class ModeResult:
    report: ServingReport
    wall_s: float
    engine: Engine
    tracer: Tracer | None


def _run_mode(stack: ServingStack, spec: WorkloadSpec, qps: float,
              count: int, seed: int, cache: PricingCache,
              tracer: Tracer | None) -> ModeResult:
    queries = poisson_queries(stack.compiled, spec, qps, count, seed=seed)
    engine = Engine(stack.cost_model, price_cache=cache,
                    tracer=(tracer.bind("node0")
                            if tracer is not None else None))
    scheduler = stack.make_scheduler("veltair_full")
    start = time.perf_counter()
    completed = engine.run(queries, scheduler)
    wall = time.perf_counter() - start
    return ModeResult(report=summarize(completed, engine.metrics, qps),
                      wall_s=wall, engine=engine, tracer=tracer)


def _guard_cost_s(samples: int = 500_000) -> float:
    """Seconds per ``if self.tracer is not None`` hot-path guard.

    Measured on a plain attribute holder inside a Python loop, so the
    figure *includes* the loop overhead — a deliberate overestimate;
    the bound it feeds stays conservative.
    """

    class Holder:
        __slots__ = ("tracer",)

        def __init__(self) -> None:
            self.tracer = None

    holder = Holder()
    hits = 0
    start = time.perf_counter()
    for _ in range(samples):
        if holder.tracer is not None:
            hits += 1  # pragma: no cover - tracer is always None here
    elapsed = time.perf_counter() - start
    assert hits == 0
    return elapsed / samples


def _guard_count(engine: Engine, arrivals: int) -> int:
    """Guard evaluations an untraced run performed, from accounting.

    Per block: the scheduler dispatch guard, the ``start_block``
    conflict check (conflicting blocks only), and the finish-time span
    guard.  Per query: the completion-span guard and the arrival-event
    guard.  Per repricing round that moved the quantised pressure: the
    engine-counter guard (``pressure_epoch`` upper-bounds it).  Grows
    add one each.
    """
    m = engine.metrics
    return (3 * m.blocks_started + m.conflicts + m.grows
            + 2 * arrivals + engine.pressure_epoch)


def reports_match(a: ServingReport, b: ServingReport,
                  tolerance: float = 0.0) -> bool:
    for field in dataclasses.fields(a):
        left, right = getattr(a, field.name), getattr(b, field.name)
        if isinstance(left, float):
            if abs(left - right) > tolerance:
                return False
        elif left != right:
            return False
    return True


def _fleet_pair(stack: ServingStack, spec: WorkloadSpec, qps: float,
                count: int, seed: int):
    """Serve the same stream through a 2-node fleet, traced and not."""

    def fresh_stream():
        return poisson_queries(stack.compiled, spec, qps, count,
                               seed=seed)

    fleet = homogeneous(2)
    plain = Cluster(stack, fleet).serve(fresh_stream(), offered_qps=qps)
    tracer = Tracer(run_id="telemetry-overhead-fleet",
                    meta={"qps": qps, "count": count, "seed": seed})
    traced = Cluster(stack, fleet).serve(fresh_stream(), offered_qps=qps,
                                         tracer=tracer)
    return plain, traced, tracer


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small model set and stream (CI smoke)")
    parser.add_argument("--qps", type=float, default=600.0)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--no-check", action="store_true",
                        help="report without enforcing acceptance bars")
    parser.add_argument("--json", metavar="DIR", default=None,
                        help="write BENCH_telemetry_overhead.json to DIR")
    args = parser.parse_args()

    models = QUICK_MODELS if args.quick else FULL_MODELS
    count = args.queries or (150 if args.quick else 400)
    trials = 64 if args.quick else 96

    print(f"compiling stack ({len(models)} models, trials={trials})...")
    stack = ServingStack(cpu=PRODUCTION_SERVER_256, models=list(models),
                         trials=trials, proxy_scenarios=60, seed=11)
    spec = WorkloadSpec(
        name="mix", entries=tuple((name, 1.0) for name in models))

    # Single node, tracing off vs on — same stream, same shared cache.
    cache = PricingCache()
    off = _run_mode(stack, spec, args.qps, count, args.seed, cache, None)
    tracer = Tracer(run_id="telemetry-overhead",
                    meta={"qps": args.qps, "count": count,
                          "seed": args.seed})
    on = _run_mode(stack, spec, args.qps, count, args.seed, cache, tracer)

    identical = reports_match(off.report, on.report)
    trace = tracer.trace()
    summary = summarize_trace(trace)
    summarize_exact = (
        summary.completed == on.report.completed
        and summary.satisfied == round(on.report.satisfaction_rate
                                       * on.report.completed)
        and summary.average_latency_s == on.report.average_latency_s)
    nesting_errors = validate_trace(trace)
    chrome_errors = validate_chrome(to_chrome(trace))
    wellformed = not nesting_errors and not chrome_errors

    # Constructed null-tracer overhead bound.
    guards = _guard_count(off.engine, count)
    guard_s = _guard_cost_s()
    overhead_pct = 100.0 * guards * guard_s / off.wall_s

    # Fleet pair: router scores, admission, rollup — still identical.
    fleet_off, fleet_on, fleet_tracer = _fleet_pair(
        stack, spec, args.qps, count, args.seed + 1)
    fleet_identical = fleet_off == fleet_on
    fleet_records = len(fleet_tracer.records)

    print(f"\nsingle node @ {args.qps:.0f} QPS, {count} queries")
    print(f"  untraced wall {off.wall_s * 1e3:8.1f}ms   "
          f"traced wall {on.wall_s * 1e3:8.1f}ms")
    print(f"  reports identical on/off: {identical}")
    print(f"  trace: {len(tracer.records)} records, "
          f"{summary.completed} query spans")
    print(f"  summarize reproduces report exactly: {summarize_exact}")
    print(f"  nesting errors: {len(nesting_errors)}, "
          f"chrome errors: {len(chrome_errors)}")
    print(f"  guard bound: {guards} guards x {guard_s * 1e9:.1f}ns "
          f"/ {off.wall_s * 1e3:.1f}ms = {overhead_pct:.4f}% "
          f"(bar {OVERHEAD_BAR_PCT:.1f}%)")
    print(f"2-node fleet: reports identical on/off: {fleet_identical} "
          f"({fleet_records} records)")

    failures = []
    if not identical:
        failures.append("single-node report differs with tracing on")
    if not fleet_identical:
        failures.append("fleet report differs with tracing on")
    if not summarize_exact:
        failures.append("summarize_trace does not reproduce the report")
    if not wellformed:
        failures.append(f"trace invalid: {nesting_errors[:3]} "
                        f"{chrome_errors[:3]}")
    if overhead_pct > OVERHEAD_BAR_PCT:
        failures.append(f"null-tracer bound {overhead_pct:.3f}% exceeds "
                        f"{OVERHEAD_BAR_PCT}%")

    metrics = {
        "reports_identical_on_off": 1.0 if identical else 0.0,
        "cluster_identical_on_off": 1.0 if fleet_identical else 0.0,
        "summarize_matches_report": 1.0 if summarize_exact else 0.0,
        "trace_wellformed": 1.0 if wellformed else 0.0,
        "null_overhead_le_2pct": (
            1.0 if overhead_pct <= OVERHEAD_BAR_PCT else 0.0),
        "null_overhead_pct": overhead_pct,
        "records_per_query": len(tracer.records) / count,
        "guard_evaluations": float(guards),
    }
    if args.json:
        from repro.bench.results import BenchResult, write_result
        result = BenchResult(
            name="telemetry_overhead",
            title="Telemetry: null-tracer overhead bound + tracing "
                  "on/off bit-identity",
            metrics=metrics,
            knobs={"quick": args.quick, "qps": args.qps,
                   "queries": count, "seed": args.seed,
                   "models": list(models)},
            info={"failures": failures,
                  "untraced_wall_s": off.wall_s,
                  "traced_wall_s": on.wall_s,
                  "guard_cost_ns": guard_s * 1e9,
                  "single_records": len(tracer.records),
                  "fleet_records": fleet_records},
            seed=args.seed)
        path = write_result(result, args.json)
        print(f"wrote {path}")

    if failures and not args.no_check:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("acceptance checks passed" if not failures
          else "failures recorded (--no-check)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
