"""Paper Fig. 5 — scheduling conflicts and their per-layer overhead.

Fig. 5a: conflict rate vs load per granularity (layer-wise highest — the
paper reports 23.8% at 300 QPS).  Fig. 5b: the per-layer conflict
(expansion) overhead, mean ~220 us / median ~100 us in the paper.
"""

import numpy as np
from conftest import record

from repro.serving.experiments import reports_over_qps

_POLICIES = ("model_fcfs", "layerwise", "block6", "block11")
_QPS = (50.0, 150.0, 250.0, 300.0)


def test_fig5a_conflict_rate(stack, benchmark, bench_queries):
    def run():
        return {policy: reports_over_qps(stack, policy, "resnet50",
                                         list(_QPS), bench_queries)
                for policy in _POLICIES}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'policy':12s}" + "".join(f"{int(q):>9d}" for q in _QPS)]
    for policy, reports in results.items():
        lines.append(f"{policy:12s}" + "".join(
            f"{r.conflict_rate:9.1%}" for r in reports))
    final = {p: rs[-1].conflict_rate for p, rs in results.items()}
    record("fig05a", "Fig 5a: conflict rate vs QPS", "\n".join(lines),
           metrics={f"final_conflict_{p}": rate
                    for p, rate in final.items()})
    # Layer-wise conflicts dominate; model-wise has none by construction.
    assert final["layerwise"] >= max(final["block6"], final["block11"])
    assert final["model_fcfs"] == 0.0
    assert final["layerwise"] > 0.05


def test_fig5b_conflict_overhead(stack, benchmark):
    profile = stack.profiles["resnet50"]

    def run():
        # A conflicted layer starts on roughly half its demand and grows
        # by the rest — the overhead is the expansion re-spawn.
        return [stack.cost_model.expand_overhead(required - required // 2)
                for required in profile.layer_required_cores]

    overheads = benchmark.pedantic(run, rounds=1, iterations=1)
    mean_us = float(np.mean(overheads)) * 1e6
    median_us = float(np.median(overheads)) * 1e6
    record("fig05b", "Fig 5b: per-layer conflict overhead",
           f"mean   = {mean_us:6.1f} us   (paper: ~220 us)\n"
           f"median = {median_us:6.1f} us   (paper: ~100 us)\n"
           f"max    = {max(overheads) * 1e6:6.1f} us",
           metrics={"mean_us": mean_us, "median_us": median_us,
                    "max_us": max(overheads) * 1e6})

    # Same decade as the paper's measurement.
    assert 30 < mean_us < 700
