"""Shared benchmark fixtures and result reporting.

Every benchmark registers its paper-style result table via
:func:`record`; tables are printed in the terminal summary (so they
survive pytest's output capture) and written to ``benchmarks/results/``
for EXPERIMENTS.md.

Scale knobs (environment variables):

* ``REPRO_BENCH_QUERIES`` — queries per serving simulation (default 150).
* ``REPRO_BENCH_TRIALS``  — auto-scheduler trials per layer (default 192).
* ``REPRO_BENCH_TOL``     — capacity-search tolerance in QPS (default 25).
* ``REPRO_BENCH_WORKERS`` — processes per QPS sweep (default 1 = serial;
  higher values fan capacity searches and load curves out over
  ``sweep_qps`` worker processes).
"""

from __future__ import annotations

import os
import re
from pathlib import Path

import pytest

from repro.serving.server import ServingStack

BENCH_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "150"))
BENCH_TRIALS = int(os.environ.get("REPRO_BENCH_TRIALS", "192"))
BENCH_TOL = float(os.environ.get("REPRO_BENCH_TOL", "25"))
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))

_RESULTS_DIR = Path(__file__).parent / "results"
_REPORTS: list[tuple[str, str]] = []


def record(title: str, text: str) -> None:
    """Register a result table for the terminal summary and disk."""
    _REPORTS.append((title, text))
    _RESULTS_DIR.mkdir(exist_ok=True)
    # Portable filenames only: figure titles carry ':' and '%', which
    # are invalid on NTFS and would break a Windows checkout if the
    # results were ever committed.
    safe = re.sub(r"[^a-z0-9._-]+", "_", title.lower()).strip("_")
    (_RESULTS_DIR / f"{safe}.txt").write_text(text + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    for title, text in _REPORTS:
        terminalreporter.write_sep("=", title)
        terminalreporter.write_line(text)


@pytest.fixture(scope="session")
def stack():
    """The full Table 2 stack, compiled once per benchmark session."""
    return ServingStack(trials=BENCH_TRIALS, proxy_scenarios=200, seed=0)


@pytest.fixture(scope="session")
def bench_queries():
    return BENCH_QUERIES


@pytest.fixture(scope="session")
def bench_tolerance():
    return BENCH_TOL


@pytest.fixture(scope="session")
def bench_workers():
    return BENCH_WORKERS
