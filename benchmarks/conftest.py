"""Shared benchmark fixtures and result reporting.

Every benchmark registers its result via :func:`record`, naming it with
a stable id (``fig12``, ``ablation_proxy``, ...) and passing the gated
metrics alongside the paper-style table.  Results flow through
:mod:`repro.bench.results`: one schema-versioned ``BENCH_<name>.json``
plus the human ``.txt`` table per result, ownership tracked in
``results/MANIFEST.json`` so renaming a figure deletes its stale files
instead of stranding them (the pre-JSON writer leaked one orphaned
``.txt`` per rename).  ``python -m repro.bench`` collects the same
JSON files; CI ratchets on them.

Scale knobs (environment variables):

* ``REPRO_BENCH_QUERIES`` — queries per serving simulation (default 150).
* ``REPRO_BENCH_TRIALS``  — auto-scheduler trials per layer (default 192).
* ``REPRO_BENCH_TOL``     — capacity-search tolerance in QPS (default 25).
* ``REPRO_BENCH_WORKERS`` — processes per QPS sweep (default 1 = serial;
  higher values fan capacity searches and load curves out over
  ``sweep_qps`` worker processes).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Mapping

import pytest

from repro.bench.results import BenchResult, write_result
from repro.serving.server import ServingStack

BENCH_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "150"))
BENCH_TRIALS = int(os.environ.get("REPRO_BENCH_TRIALS", "192"))
BENCH_TOL = float(os.environ.get("REPRO_BENCH_TOL", "25"))
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))

#: Where results land; the unified runner redirects this so a custom
#: ``python -m repro.bench --out-dir`` collects pytest figures too.
_RESULTS_DIR = Path(os.environ.get("REPRO_BENCH_RESULTS_DIR",
                                   Path(__file__).parent / "results"))
_REPORTS: list[tuple[str, str]] = []


def record(name: str, title: str, text: str,
           metrics: Mapping[str, float] | None = None,
           seed: int | None = None) -> None:
    """Register one benchmark result: terminal table + JSON on disk.

    ``name`` is the stable machine id CI keys baselines on; ``title``
    is the human heading; ``metrics`` are the gated numbers (omit for
    display-only tables).
    """
    _REPORTS.append((title, text))
    write_result(
        BenchResult(
            name=name, title=title, metrics=dict(metrics or {}),
            knobs={"queries": BENCH_QUERIES, "trials": BENCH_TRIALS,
                   "tolerance_qps": BENCH_TOL},
            tables={title: text}, seed=seed),
        _RESULTS_DIR)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    for title, text in _REPORTS:
        terminalreporter.write_sep("=", title)
        terminalreporter.write_line(text)


@pytest.fixture(scope="session")
def stack():
    """The full Table 2 stack, compiled once per benchmark session."""
    return ServingStack(trials=BENCH_TRIALS, proxy_scenarios=200, seed=0)


@pytest.fixture(scope="session")
def bench_queries():
    return BENCH_QUERIES


@pytest.fixture(scope="session")
def bench_tolerance():
    return BENCH_TOL


@pytest.fixture(scope="session")
def bench_workers():
    return BENCH_WORKERS
