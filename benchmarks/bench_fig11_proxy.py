"""Paper Fig. 11 — the performance-counter interference proxy.

Fig. 11a: PCA over counter windows shows L3-related counters dominate.
Fig. 11b: the two-counter linear proxy recovers the interference
pressure level.
"""

from conftest import record

from repro.interference.proxy import (
    collect_aggregate_samples,
    collect_samples,
    fit_proxy,
    pca_analysis,
    proxy_accuracy,
)


def test_fig11a_pca(stack, benchmark):
    def run():
        samples = collect_samples(stack.cost_model,
                                  list(stack.compiled.values()),
                                  scenarios=400, seed=21)
        return pca_analysis(samples)

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'counter':22s} {'PC1 loading share':>18s}"]
    for name, share in sorted(report.dominant_loadings.items(),
                              key=lambda kv: -kv[1]):
        lines.append(f"{name:22s} {share:18.1%}")
    lines.append("")
    lines.append("explained variance: "
                 + " ".join(f"{r:.1%}" for r in report.explained_ratio[:3]))
    loadings = report.dominant_loadings
    l3_share = loadings["l3_miss_rate"] + loadings["l3_accesses_per_s"]
    record("fig11a", "Fig 11a: PCA over performance counters",
           "\n".join(lines),
           metrics={"l3_share": l3_share,
                    "branch_loading": loadings["branch_miss_rate"],
                    "frontend_loading":
                        loadings["frontend_stall_rate"],
                    "pc1_var": float(report.explained_ratio[0])})
    # Paper Fig. 11a: L3 counters carry the interference signal while
    # code-shape counters (branch, front-end) are noise.  IPC/FLOP rates
    # co-vary with slowdown by construction, so the robust claims are the
    # L3 share and the noise floor.
    assert l3_share > 0.3
    assert loadings["branch_miss_rate"] < 0.08
    assert loadings["frontend_stall_rate"] < 0.08


def test_fig11b_proxy_accuracy(stack, benchmark):
    def run():
        train = collect_aggregate_samples(stack.cost_model,
                                          list(stack.compiled.values()),
                                          scenarios=400, seed=22)
        test = collect_aggregate_samples(stack.cost_model,
                                         list(stack.compiled.values()),
                                         scenarios=200, seed=23)
        proxy = fit_proxy(train)
        return proxy, proxy_accuracy(proxy, test), test

    proxy, stats, test = benchmark.pedantic(run, rounds=1, iterations=1)

    buckets = {"light": [], "medium": [], "heavy": [], "severe": []}
    for sample in test:
        predicted = proxy.predict_sample(sample)
        actual = sample.measured_interference
        key = ("light" if actual < 0.25 else
               "medium" if actual < 0.5 else
               "heavy" if actual < 0.75 else "severe")
        buckets[key].append(abs(predicted - actual))
    lines = [f"held-out MAE = {stats['mae']:.3f}, R^2 = {stats['r2']:.3f}"]
    for key, errors in buckets.items():
        if errors:
            lines.append(f"{key:8s}: n={len(errors):3d} "
                         f"mae={sum(errors) / len(errors):.3f}")
    record("fig11b", "Fig 11b: linear proxy accuracy", "\n".join(lines),
           metrics={"mae": stats["mae"], "r2": stats["r2"]})

    # Paper Fig. 11b: predictions track measurements across all levels.
    assert stats["mae"] < 0.2
    assert stats["r2"] > 0.25
