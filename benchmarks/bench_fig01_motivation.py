"""Paper Fig. 1 — motivation: CPUs over-serve one model, co-location hurts.

Fig. 1a: MLPerf vision models meet their QoS targets with a fraction of
the 64 cores.  Fig. 1b: naive co-location slows tasks down (paper: up to
~1.8x at 4 co-located tasks).
"""

from conftest import record

from repro.runtime.engine import Engine
from repro.runtime.tasks import Query

_VISION = ("resnet50", "googlenet", "efficientnet_b0", "mobilenet_v2")
_CORES = (8, 16, 32, 64)


def test_fig1a_latency_vs_cores(stack, benchmark):
    def run():
        return {name: [stack.isolated_model_latency(name, cores=c)
                       for c in _CORES]
                for name in _VISION}

    latencies = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'model':18s}" + "".join(f"{c:>9d}c" for c in _CORES)
             + "      QoS"]
    for name, row in latencies.items():
        qos = stack.compiled[name].qos_s
        lines.append(f"{name:18s}"
                     + "".join(f"{v * 1e3:9.2f}" for v in row)
                     + f"  {qos * 1e3:6.1f}ms")
    record("fig01a", "Fig 1a: latency vs cores (ms)", "\n".join(lines),
           metrics={f"{name}_64c_ms": row[-1] * 1e3
                    for name, row in latencies.items()})

    for name, row in latencies.items():
        qos = stack.compiled[name].qos_s
        # Paper Fig. 1a: a few cores are enough for the QoS target.
        assert min(row) < qos, f"{name} cannot meet QoS even at 64 cores"
        assert row[-1] < row[0], f"{name} does not scale with cores"


class _FixedGrant:
    """Run each query as one whole-model block on a fixed grant."""

    def __init__(self, stack, cores):
        self.stack = stack
        self.cores = cores

    def schedule(self, engine):
        for queue in (engine.ready, engine.waiting):
            while queue and engine.allocator.available >= self.cores:
                query = queue.popleft()
                profile = self.stack.profiles[query.model.name]
                engine.start_block(query, len(query.model.layers),
                                   self.cores, profile.static_versions)


def _colocate(stack, names, cores=16):
    queries = [Query(query_id=i, model=stack.compiled[n], arrival_s=0.0,
                     qos_s=stack.compiled[n].qos_s)
               for i, n in enumerate(names)]
    engine = Engine(stack.cost_model)
    done = engine.run(queries, _FixedGrant(stack, cores))
    return {q.model.name: q.latency_s for q in done}


def test_fig1b_colocation_slowdown(stack, benchmark):
    def run():
        solo = {n: _colocate(stack, [n])[n]
                for n in ("resnet50", "googlenet", "bert_large")}
        rows = {}
        for count in (1, 2, 3, 4):
            mix = (["resnet50", "googlenet", "bert_large"] * 2)[:count]
            latencies = _colocate(stack, mix)
            rows[count] = {n: latencies[n] / solo[n] for n in latencies}
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'tasks':>6s} {'avg slowdown':>13s}  per-model"]
    final_avg = 1.0
    averages = {}
    for count, ratios in rows.items():
        avg = sum(ratios.values()) / len(ratios)
        final_avg = avg
        averages[count] = avg
        detail = " ".join(f"{n}={r:.2f}x" for n, r in ratios.items())
        lines.append(f"{count:6d} {avg:12.2f}x  {detail}")
    record("fig01b", "Fig 1b: co-location slowdown", "\n".join(lines),
           metrics={f"avg_slowdown_{count}": avg
                    for count, avg in averages.items()})

    assert rows[1] and all(abs(r - 1.0) < 1e-6 for r in rows[1].values())
    # Paper Fig. 1b: slowdown grows with co-location, up to ~1.8x.
    assert final_avg > 1.04
    assert final_avg < 4.0
