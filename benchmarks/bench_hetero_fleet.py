"""Heterogeneous-fleet benchmark: CPU+accelerator serving from one compile.

The DeviceSpec acceptance gauge, on the ``batch_heavy`` scenario (a
throughput-dominated heavy/medium mix with a latency-critical light
minority) at a 99% fleet QoS target:

* **Mixed beats CPU-only** — adding the 80-SM accelerator node to the
  CPU fleet must raise capacity (same compile pass, same router).
* **Affinity beats pressure-aware** — the ``device_affinity`` router,
  which learns per-(model, device-kind) cost from completions, must
  sustain at least the ``pressure_aware`` capacity on the mixed fleet.
* **One compile pass** — CPUs and the accelerator all serve from a
  single ``ServingStack`` compile (``stack.artifact_builds == 1``);
  per-device runtimes re-profile, never re-compile.
* **Routing determinism** — two ``device_affinity`` serves of the same
  stream must produce identical reports (learned state is rebuilt from
  the same observations in the same order).
* **Scheduler A/B on the accelerator** — per-policy QoS satisfaction at
  a fixed rate on the accelerator runtime, GACER included.

Run standalone (the CI smoke test uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_hetero_fleet.py --quick

``--json DIR`` additionally writes the machine-readable
``BENCH_hetero_fleet.json`` the perf ratchet compares (see
``python -m repro.bench``).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.cluster import Cluster, ClusterSpec, cluster_capacity, hetero_fleet
from repro.hardware import DATACENTER_ACCEL_80
from repro.runtime.engine import Engine
from repro.serving.metrics import summarize
from repro.serving.server import ServingStack
from repro.serving.workload import scenario_queries
from repro.workloads import get_scenario

MODELS = ("mobilenet_v2", "resnet50", "ssd_resnet34")
SCENARIO = "batch_heavy"
ACCEL_POLICIES = ("layerwise", "veltair_full", "gacer")


def cpu_only_fleet() -> ClusterSpec:
    """The hetero reference fleet minus its accelerator member."""
    hetero = hetero_fleet()
    return ClusterSpec(
        name="hetero-4-cpu-only",
        nodes=tuple(node for node in hetero.nodes
                    if node.device_kind == "cpu"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small stack / stream (the CI smoke config)")
    parser.add_argument("--queries", type=int, default=None,
                        help="queries per fleet simulation")
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--workers", type=int,
                        default=int(os.environ.get("REPRO_BENCH_WORKERS",
                                                   "4")),
                        help="fork workers per capacity-search round")
    parser.add_argument("--no-check", action="store_true",
                        help="report only; skip the acceptance assertions")
    parser.add_argument("--json", metavar="DIR", default=None,
                        help="also write BENCH_hetero_fleet.json into DIR")
    args = parser.parse_args(argv)

    count = (args.queries if args.queries is not None
             else (200 if args.quick else 400))
    if count <= 0:
        parser.error("--queries must be positive")
    trials = 64 if args.quick else 96
    tolerance = 40.0 if args.quick else 25.0
    scenario = get_scenario(SCENARIO)
    spec = scenario.workload

    t0 = time.perf_counter()
    stack = ServingStack(models=list(MODELS), trials=trials,
                         proxy_scenarios=60, seed=11)
    hetero = hetero_fleet()
    cpu_fleet = cpu_only_fleet()
    print(f"stack: {len(MODELS)} models compiled once in "
          f"{time.perf_counter() - t0:.1f}s")
    print(f"fleets: {hetero.name} ("
          + ", ".join(f"{n.name}:{n.cores}{'sm' if n.device_kind != 'cpu' else 'c'}"
                      for n in hetero.nodes)
          + f") vs {cpu_fleet.name} ({len(cpu_fleet)} nodes)")
    print(f"scenario: {SCENARIO} ({count} queries/point, seed "
          f"{args.seed}), target 99% QoS fleet-wide\n")

    failures: list[str] = []

    # -- capacity: fleets x routers -------------------------------------
    points = (
        ("cpu_pressure", cpu_fleet, "pressure_aware"),
        ("hetero_pressure", hetero, "pressure_aware"),
        ("hetero_affinity", hetero, "device_affinity"),
    )
    header = (f"{'fleet/router':22s} {'capacity':>9s} {'sat':>6s} "
              f"{'goodput':>8s} {'wall':>7s}")
    print(header)
    print("-" * len(header))
    capacities: dict[str, float] = {}
    for label, fleet, router in points:
        t0 = time.perf_counter()
        result = cluster_capacity(
            stack, fleet, spec, count=count, router=router, target=0.99,
            low_qps=10.0, high_qps=800.0, tolerance_qps=tolerance,
            seed=args.seed, workers=args.workers, scenario=scenario)
        capacities[label] = result.qps
        report = result.report
        print(f"{label:22s} {result.qps:8.0f}q "
              f"{report.satisfaction_rate:6.1%} "
              f"{report.goodput_qps:7.0f}/s "
              f"{time.perf_counter() - t0:6.1f}s")

    mixed_ge_cpu = capacities["hetero_pressure"] >= capacities["cpu_pressure"]
    affinity_ge = (capacities["hetero_affinity"]
                   >= capacities["hetero_pressure"])
    print(f"\nmixed fleet >= CPU-only: {mixed_ge_cpu} "
          f"({capacities['hetero_pressure']:.0f} vs "
          f"{capacities['cpu_pressure']:.0f})")
    print(f"device_affinity >= pressure_aware: {affinity_ge} "
          f"({capacities['hetero_affinity']:.0f} vs "
          f"{capacities['hetero_pressure']:.0f})")
    if not mixed_ge_cpu:
        failures.append("accelerator node lowered fleet capacity")
    if not affinity_ge:
        failures.append("device_affinity under pressure_aware on the "
                        "batch-heavy scenario")

    if stack.artifact_builds != 1:
        failures.append(f"fleet triggered {stack.artifact_builds} compile "
                        "passes; device sharing is broken")
    else:
        print("artifact build count fleet-wide: 1 (CPUs + accelerator, "
              "one compile pass)")

    # -- device_affinity determinism ------------------------------------
    probe_qps = max(50.0, capacities["hetero_affinity"] * 0.8)

    def affinity_report():
        queries = scenario_queries(stack.compiled, scenario, probe_qps,
                                   count, seed=args.seed)
        cluster = Cluster(stack, hetero, router="device_affinity")
        return cluster.serve(queries, offered_qps=probe_qps)

    first, second = affinity_report(), affinity_report()
    deterministic = (
        first.satisfaction_rate == second.satisfaction_rate
        and first.goodput_qps == second.goodput_qps
        and [n.assigned for n in first.nodes]
        == [n.assigned for n in second.nodes])
    print(f"\ndevice_affinity determinism probe @ {probe_qps:.0f} QPS: "
          f"{deterministic}")
    accel_nodes = [n for n in first.nodes if "accel" in n.name]
    for node in first.nodes:
        print(f"  {node.name:8s} assigned={node.assigned:4d} "
              f"satisfied={node.satisfied:4d}")
    if not deterministic:
        failures.append("device_affinity serves of one stream diverged")

    # -- scheduler A/B on the accelerator runtime -----------------------
    accel_qps = 80.0
    runtime = stack.runtime_for(DATACENTER_ACCEL_80)
    print(f"\nscheduler A/B on {DATACENTER_ACCEL_80.name} @ "
          f"{accel_qps:.0f} QPS:")
    print(f"{'policy':14s} {'sat':>7s} {'avg':>9s} {'p99':>9s}")
    accel_sat: dict[str, float] = {}
    for policy in ACCEL_POLICIES:
        queries = scenario_queries(stack.compiled, scenario, accel_qps,
                                   count, seed=args.seed)
        engine = Engine(runtime.cost_model,
                        price_cache=runtime.price_cache)
        scheduler = stack.make_scheduler(policy, runtime=runtime)
        completed = engine.run(queries, scheduler)
        report = summarize(completed, engine.metrics, accel_qps)
        accel_sat[policy] = report.satisfaction_rate
        print(f"{policy:14s} {report.satisfaction_rate:7.1%} "
              f"{report.average_latency_s * 1e3:7.2f}ms "
              f"{report.p99_latency_s * 1e3:7.2f}ms")
    if stack.artifact_builds != 1:
        failures.append("accelerator A/B triggered a recompile")

    if args.json is not None:
        from repro.bench.results import BenchResult, write_result
        metrics = {f"capacity_{label}": qps
                   for label, qps in capacities.items()}
        metrics.update({
            "artifact_builds": float(stack.artifact_builds),
            "mixed_ge_cpu_only": 1.0 if mixed_ge_cpu else 0.0,
            "affinity_ge_pressure": 1.0 if affinity_ge else 0.0,
            "affinity_deterministic": 1.0 if deterministic else 0.0,
            "accel_assigned_share": (sum(n.assigned for n in accel_nodes)
                                     / max(1, first.admitted)),
            **{f"accel_{policy}_sat": sat
               for policy, sat in accel_sat.items()},
        })
        table = "\n".join(
            [f"{'fleet/router':22s} {'capacity':>9s}"]
            + [f"{label:22s} {qps:8.0f}q"
               for label, qps in capacities.items()]
            + ["", "accelerator scheduler A/B "
                   f"(sat @ {accel_qps:.0f} QPS): "
               + " ".join(f"{p}={s:.1%}" for p, s in accel_sat.items())])
        write_result(BenchResult(
            name="hetero_fleet",
            title="Hetero fleet: CPU+accelerator capacity and affinity "
                  "routing",
            metrics=metrics,
            knobs={"quick": args.quick, "queries": count,
                   "trials": trials, "models": list(MODELS),
                   "scenario": SCENARIO, "workers": args.workers},
            info={"failures": list(failures)},
            tables={"Hetero fleet: capacity per fleet/router": table},
            seed=args.seed), args.json)

    if failures and not args.no_check:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: acceptance checks passed" if not args.no_check
          else "\ndone (checks skipped)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
