"""Paper Fig. 6 — per-level optimal code versions and their crossovers.

The naive multi-pass extension searches the Fig. 6 conv layer (14x14,
256->256, 3x3) at four interference levels; each version is then
evaluated at every level.  Expected shape: the isolation-best version
degrades by multiples under pressure (paper: up to ~7x), the heavy-
interference version stays nearly flat, and the envelope of all versions
beats any single one.
"""

from conftest import record

from repro.models.layers import Conv2D
from repro.compiler.autoscheduler import AutoScheduler
from repro.compiler.interference_aware import multi_pass_search

_LAYER = Conv2D(name="fig6", height=14, width=14, in_channels=256,
                out_channels=256)
_CORES = 32


def test_fig6_version_crossover(stack, benchmark):
    searcher = AutoScheduler(stack.cost_model)

    def run():
        return multi_pass_search(searcher, _LAYER, levels=4,
                                 trials_per_pass=512, cores=_CORES, seed=9)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    levels = result.levels
    table = [[stack.cost_model.latency(_LAYER, schedule, _CORES, level)
              for level in levels] for schedule in result.schedules]

    lines = [f"{'searched-at':>12s}" + "".join(
        f"   I={lv:.2f}" for lv in levels) + "   (latency us)"]
    for row_idx, row in enumerate(table):
        lines.append(f"impl-{row_idx + 1} @{levels[row_idx]:.2f}"
                     + "".join(f"{v * 1e6:9.1f}" for v in row))
    envelope = [min(table[r][c] for r in range(len(table)))
                for c in range(len(levels))]
    lines.append(f"{'envelope':>12s}"
                 + "".join(f"{v * 1e6:9.1f}" for v in envelope))
    iso_version = table[0]
    hot_version = table[-1]
    record("fig06", "Fig 6: versions across interference levels",
           "\n".join(lines),
           metrics={
               "iso_degradation": iso_version[-1] / iso_version[0],
               "hot_flatness": hot_version[-1] / hot_version[0],
               "envelope_gain": iso_version[-1] / envelope[-1],
           })
    # Isolation-best wins when quiet, loses badly when noisy.
    assert iso_version[0] <= hot_version[0]
    assert hot_version[-1] < iso_version[-1]
    degradation = iso_version[-1] / iso_version[0]
    assert degradation > 2.0, "iso-best should degrade by multiples"
    flat = hot_version[-1] / hot_version[0]
    assert flat < 1.8, "pressure-searched version should stay flat"
    # The envelope strictly beats committing to the single iso version.
    assert envelope[-1] < iso_version[-1]
