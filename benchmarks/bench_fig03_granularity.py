"""Paper Fig. 3 — scheduling granularity under rising load.

A uniform ResNet-50 stream served at increasing QPS by model-wise,
layer-wise, and fixed-block scheduling.  Fig. 3a reports QoS satisfaction,
Fig. 3b average query latency.
"""

from conftest import record

from repro.serving.experiments import reports_over_qps

_POLICIES = ("model_fcfs", "layerwise", "block6", "block11")
_QPS = (50.0, 100.0, 150.0, 200.0, 250.0, 300.0)


def test_fig3_granularity(stack, benchmark, bench_queries):
    def run():
        return {policy: reports_over_qps(stack, policy, "resnet50",
                                         list(_QPS), bench_queries)
                for policy in _POLICIES}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    header = f"{'policy':12s}" + "".join(f"{int(q):>9d}" for q in _QPS)
    sat_lines = [header]
    lat_lines = [header]
    for policy, reports in results.items():
        sat_lines.append(f"{policy:12s}" + "".join(
            f"{r.satisfaction_rate:9.0%}" for r in reports))
        lat_lines.append(f"{policy:12s}" + "".join(
            f"{min(r.average_latency_s * 1e3, 999):9.1f}" for r in reports))
    sat = {p: [r.satisfaction_rate for r in rs]
           for p, rs in results.items()}
    record("fig03a", "Fig 3a: QoS satisfaction vs QPS",
           "\n".join(sat_lines),
           metrics={f"sat_mean_{p}": sum(rates) / len(rates)
                    for p, rates in sat.items()})
    record("fig03b", "Fig 3b: average latency (ms) vs QPS",
           "\n".join(lat_lines),
           metrics={f"lat50_ms_{p}": rs[0].average_latency_s * 1e3
                    for p, rs in results.items()})
    # Everyone healthy at the lowest load.
    for policy in _POLICIES:
        assert sat[policy][0] > 0.9, f"{policy} unhealthy at 50 QPS"
    # Paper Fig. 3a: layer-wise degrades clearly below block scheduling
    # at high load.
    high = len(_QPS) - 3  # 200 QPS column
    assert max(sat["block6"][high], sat["block11"][high]) >= \
        sat["layerwise"][high]
    # Block scheduling holds satisfaction longer than layer-wise overall.
    assert sum(sat["block11"]) > sum(sat["layerwise"])
