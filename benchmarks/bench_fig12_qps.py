"""Paper Fig. 12 — the headline result: QPS at 95% QoS satisfaction.

Capacity (max offered QPS with >=95% of queries inside QoS) per policy
and workload class, normalised to the Planaria-style layer-wise spatial
baseline.  Paper: VELTAIR-FULL serves +71% / +62% / +45% more than
Planaria on light/medium/heavy, +68% on the mix, and PREMA trails the
spatial baseline.
"""

from conftest import record

from repro.serving.experiments import capacity
from repro.serving.workload import HEAVY_MIX, LIGHT_MIX, MEDIUM_MIX, full_mix

_POLICIES = ("layerwise", "prema", "veltair_as", "veltair_ac",
             "veltair_full", "gacer")
_WORKLOADS = (LIGHT_MIX, MEDIUM_MIX, HEAVY_MIX, full_mix())


def test_fig12_capacity(stack, benchmark, bench_queries, bench_tolerance,
                        bench_workers):
    def run():
        table = {}
        for spec in _WORKLOADS:
            for policy in _POLICIES:
                result = capacity(stack, policy, spec,
                                  count=bench_queries,
                                  tolerance_qps=bench_tolerance,
                                  low_qps=5.0, high_qps=600.0, seed=17,
                                  workers=bench_workers)
                table[(spec.name, policy)] = result.qps
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    names = [spec.name for spec in _WORKLOADS]
    lines = [f"{'policy':14s}" + "".join(f"{n:>10s}" for n in names)]
    for policy in _POLICIES:
        lines.append(f"{policy:14s}" + "".join(
            f"{table[(n, policy)]:10.0f}" for n in names))
    lines.append("")
    lines.append("normalised to layerwise (Planaria port):")
    for policy in _POLICIES:
        lines.append(f"{policy:14s}" + "".join(
            f"{table[(n, policy)] / max(table[(n, 'layerwise')], 1):9.2f}x"
            for n in names))
    metrics = {f"{workload}_{policy}": qps
               for (workload, policy), qps in table.items()}
    for name in names:
        metrics[f"speedup_{name}"] = (table[(name, "veltair_full")]
                                      / max(table[(name, "layerwise")],
                                            1.0))
    record("fig12", "Fig 12: QPS at 95% QoS satisfied",
           "\n".join(lines), metrics=metrics, seed=17)

    for name in names:
        full = table[(name, "veltair_full")]
        baseline = table[(name, "layerwise")]
        # Paper Fig. 12: the full system clearly outserves the baseline.
        assert full >= baseline, f"{name}: full below baseline"
    # On the light mix the paper reports +71%; require a clear win.
    assert table[("light", "veltair_full")] > 1.2 * table[("light",
                                                           "layerwise")]
    # Adaptive scheduling alone already helps.
    assert table[("light", "veltair_as")] >= table[("light", "layerwise")]
