"""A tour of the adaptive compiler (paper Sec. 3.3 + 4.1).

Walks one convolution layer through the whole pipeline:

1. the naive multi-pass search — one auto-scheduler run per interference
   level (what VELTAIR replaces);
2. the single-pass multi-version compiler (Alg. 1): QoS filter, Pareto
   frontier on (blocking, parallelism), uniform pick, redundancy prune;
3. the resulting version table and how the runtime would switch.

Run:  python examples/adaptive_compilation_tour.py
(REPRO_EXAMPLE_TRIALS shrinks the searches for CI.)
"""

import os

from repro.compiler import (
    AutoScheduler,
    CostModel,
    SinglePassCompiler,
    multi_pass_search,
)
from repro.hardware import THREADRIPPER_3990X
from repro.models import Conv2D

TRIALS = int(os.environ.get("REPRO_EXAMPLE_TRIALS", "512"))


def main() -> None:
    cost_model = CostModel(THREADRIPPER_3990X)
    layer = Conv2D(name="conv14x14", height=14, width=14,
                   in_channels=256, out_channels=256)
    cores = 32
    print(f"Layer: {layer}  ({layer.flops / 1e6:.0f} MFLOPs)\n")

    # -- 1. naive multi-pass extension -----------------------------------
    searcher = AutoScheduler(cost_model)
    multi = multi_pass_search(searcher, layer, levels=4,
                              trials_per_pass=TRIALS, cores=cores, seed=1)
    print("Naive multi-pass extension (one search per level):")
    print(f"  total evaluations: {multi.total_trials}")
    for level, schedule in zip(multi.levels, multi.schedules):
        lat_iso = cost_model.latency(layer, schedule, cores, 0.0)
        lat_hot = cost_model.latency(layer, schedule, cores, 1.0)
        print(f"  best@I={level:.2f}: blocking={schedule.blocking_size:6d}"
              f" parallelism={schedule.parallelism:5d}"
              f"  {lat_iso * 1e6:7.1f}us iso / {lat_hot * 1e6:7.1f}us hot")

    # -- 2. single-pass Alg. 1 -------------------------------------------
    compiler = SinglePassCompiler(cost_model, trials=TRIALS, seed=1)
    compiled = compiler.compile_layer(layer, qos_budget_s=400e-6)
    print(f"\nSingle-pass compiler (Alg. 1): {compiled.sample_count} "
          f"samples, {compiled.dominant_count} on the Pareto frontier, "
          f"{compiled.version_count} versions kept")

    # -- 3. the shipped version table -------------------------------------
    print("\nVersion table (latency in us at each interference level):")
    header = "          " + "".join(f"  I={lv:.1f}" for lv in
                                    compiled.levels[::3])
    print(header)
    for index, row in enumerate(compiled.latency_table):
        marker = " (static)" if index == compiled.version_for_level[0] \
            else ""
        print(f"  version{index}" + "".join(
            f"{row[li] * 1e6:7.1f}" for li in range(0, len(row), 3))
            + marker)
    print("\nRuntime switching: pressure -> version index")
    print("  " + "  ".join(
        f"{lv:.1f}->v{compiled.version_index_for(lv)}"
        for lv in compiled.levels[::2]))


if __name__ == "__main__":
    main()
