"""Cluster serving tour: one compile pass, a heterogeneous fleet.

Builds the serving stack once, deploys it across the 4-node mixed
fleet (2x 64-core, 1x 256-core, 1x 32-core edge), and serves a
mixed-class stream (10 ms-QoS vision models + the heavy 100 ms SSD
detector) through each router.  The interference proxy every node
already fits for its local scheduler doubles as the fleet routing
signal — the `pressure_aware` router steers latency-critical queries
away from pressured nodes and lets the heavy class sink to spare
width.  A final overload round shows the admission controller
shedding/deferring load the fleet could only turn into QoS misses.

Run:  python examples/cluster_serving.py
(REPRO_EXAMPLE_TRIALS / REPRO_EXAMPLE_QUERIES shrink it for CI.)
"""

import os

from repro.cluster import AdmissionPolicy, Cluster, mixed_fleet
from repro.serving import ServingStack, WorkloadSpec

TRIALS = int(os.environ.get("REPRO_EXAMPLE_TRIALS", "192"))
QUERIES = int(os.environ.get("REPRO_EXAMPLE_QUERIES", "300"))

MIXED_CLASS = WorkloadSpec(name="mixed-class", entries=(
    ("mobilenet_v2", 4.0),
    ("tiny_yolov2", 4.0),
    ("ssd_resnet34", 1.0),
))


def main() -> None:
    print("Compiling the model set once (shared fleet-wide)...")
    stack = ServingStack(
        models=["mobilenet_v2", "tiny_yolov2", "ssd_resnet34"],
        trials=TRIALS,
    )
    fleet = mixed_fleet()
    print(f"Fleet {fleet.name}: "
          + ", ".join(f"{n.name}({n.cores}c)" for n in fleet.nodes)
          + f" — {fleet.total_cores} cores total\n")

    qps = 160.0
    print(f"Serving {QUERIES} mixed-class queries at {qps:.0f} QPS "
          f"through each router:")
    for router in ("round_robin", "least_outstanding", "pressure_aware"):
        cluster = Cluster(stack, fleet, router=router)
        report = cluster.report(MIXED_CLASS, qps=qps, count=QUERIES,
                                seed=42)
        shares = "/".join(f"{n.assigned}" for n in report.nodes)
        print(f"  {router:18s} QoS sat={report.satisfaction_rate:6.1%}  "
              f"p99={report.p99_latency_s * 1e3:6.1f} ms  "
              f"imbalance={report.load_imbalance:.2f}  "
              f"assigned={shares}")
    print(f"(one compile pass for the whole fleet: "
          f"artifact_builds={stack.artifact_builds})\n")

    overload = 2.0 * qps
    print(f"Overload at {overload:.0f} QPS, pressure_aware routing:")
    unguarded = Cluster(stack, fleet, router="pressure_aware").report(
        MIXED_CLASS, qps=overload, count=QUERIES, seed=42)
    print(f"  no admission       fleet sat="
          f"{unguarded.satisfaction_rate:6.1%}")
    for mode in ("shed", "defer"):
        policy = AdmissionPolicy(max_fleet_pressure=0.85,
                                 max_outstanding_per_core=0.02,
                                 mode=mode)
        guarded = Cluster(stack, fleet, router="pressure_aware",
                          admission=policy).report(
            MIXED_CLASS, qps=overload, count=QUERIES, seed=42)
        admitted_sat = guarded.satisfied / max(1, guarded.admitted)
        print(f"  admission={mode:5s}    fleet sat="
              f"{guarded.satisfaction_rate:6.1%}  "
              f"shed={guarded.shed_rate:5.1%}  "
              f"deferrals={guarded.deferrals:3d}  "
              f"admitted sat={admitted_sat:6.1%}")

    print("\nThe proxy-driven router turns per-node interference "
          "estimates into fleet capacity; admission control trades a "
          "bounded shed rate for keeping admitted queries inside QoS.")


if __name__ == "__main__":
    main()
