"""Scenario tour: trace-driven load shapes beyond stationary Poisson.

Serves one workload mix under every built-in arrival shape (Poisson,
MMPP bursty, diurnal ramp, flash crowd, tenant churn), then records a
bursty stream to a JSON trace, reloads it, and replays it bit-identically
into both a single node and a 2-node fleet.

Run:  python examples/scenario_tour.py
(REPRO_EXAMPLE_TRIALS / REPRO_EXAMPLE_QUERIES shrink it for CI.)
"""

import os
import tempfile
from pathlib import Path

from repro.cluster import Cluster, homogeneous
from repro.serving import ServingStack, WorkloadSpec
from repro.serving.metrics import summarize
from repro.serving.workload import scenario_queries
from repro.workloads import ArrivalTrace, get_scenario, record_trace

TRIALS = int(os.environ.get("REPRO_EXAMPLE_TRIALS", "192"))
QUERIES = int(os.environ.get("REPRO_EXAMPLE_QUERIES", "200"))

SHAPES = ("poisson", "bursty", "diurnal", "flash_crowd", "tenant_churn")


def main() -> None:
    print("Compiling a two-model stack...")
    stack = ServingStack(models=["mobilenet_v2", "googlenet"],
                         trials=TRIALS)
    spec = WorkloadSpec(name="pair", entries=(("mobilenet_v2", 2.0),
                                              ("googlenet", 1.0)))
    qps = 150.0

    print(f"\nServing {QUERIES} queries at {qps:.0f} *mean* QPS under "
          "each arrival shape (veltair_full):")
    print(f"  {'scenario':14s} {'sat':>7s} {'avg lat':>9s} {'p99':>9s}")
    for name in SHAPES:
        report = stack.report("veltair_full", spec, qps, QUERIES,
                              seed=42, scenario=name)
        print(f"  {name:14s} {report.satisfaction_rate:7.1%} "
              f"{report.average_latency_s * 1e3:7.2f}ms "
              f"{report.p99_latency_s * 1e3:7.2f}ms")
    print("Same mean load, very different QoS: bursts and flash crowds "
          "are what capacity planning is about.")

    # -- record -> save -> load -> replay -------------------------------
    print("\nRecording a bursty stream to a JSON trace...")
    queries = scenario_queries(stack.compiled, get_scenario("bursty"),
                               qps, QUERIES, seed=42, spec=spec)
    trace = record_trace(queries, "tour-burst",
                         meta={"scenario": "bursty", "qps": qps})
    with tempfile.TemporaryDirectory() as tmp:
        path = trace.save(Path(tmp) / "tour-burst.json")
        size = path.stat().st_size
        loaded = ArrivalTrace.load(path)
    print(f"  {len(trace)} arrivals over {trace.span_s:.2f}s "
          f"({size} bytes); replays bit-identically:")

    completed, engine = stack.run("veltair_full",
                                  loaded.replay(stack.compiled))
    single = summarize(completed, engine.metrics, qps)
    print(f"  single node : sat={single.satisfaction_rate:.1%} "
          f"avg={single.average_latency_s * 1e3:.2f}ms")

    fleet = Cluster(stack, homogeneous(2), router="pressure_aware")
    report = fleet.serve(loaded.replay(stack.compiled), offered_qps=qps)
    print(f"  2-node fleet: sat={report.satisfaction_rate:.1%} "
          f"goodput={report.goodput_qps:.0f}/s "
          f"imbalance={report.load_imbalance:.2f}")

    print("\nThe same trace drives any engine or fleet — that is what "
          "makes results comparable across schedulers, routers, and "
          "commits (see `python -m repro.bench`).")


if __name__ == "__main__":
    main()
