"""Capacity planning: how many QPS can this box serve per policy?

An operator's view of the paper's Fig. 12 metric — sweep the offered
load on the medium mix and find each policy's maximal QPS at a 95% QoS
satisfaction SLA.

Run:  python examples/capacity_planning.py
(REPRO_EXAMPLE_TRIALS / REPRO_EXAMPLE_QUERIES shrink it for CI.)
"""

import os

from repro.serving import MEDIUM_MIX, ServingStack
from repro.serving.experiments import capacity

TRIALS = int(os.environ.get("REPRO_EXAMPLE_TRIALS", "192"))
QUERIES = int(os.environ.get("REPRO_EXAMPLE_QUERIES", "150"))


def main() -> None:
    print("Compiling the medium-mix models (ResNet-50, GoogLeNet)...")
    stack = ServingStack(models=["resnet50", "googlenet"], trials=TRIALS)

    print(f"Workload: {MEDIUM_MIX.name} mix, Poisson arrivals, "
          f"QoS 15 ms, SLA = 95% in-deadline\n")
    results = {}
    for policy in ("prema", "model_fcfs", "layerwise", "block11",
                   "veltair_as", "veltair_full"):
        result = capacity(stack, policy, MEDIUM_MIX, count=QUERIES,
                          tolerance_qps=20, low_qps=10, high_qps=600,
                          seed=3)
        results[policy] = result
        print(f"  {policy:14s} capacity = {result.qps:5.0f} QPS   "
              f"(latency at capacity: "
              f"{result.report.average_latency_s * 1e3:6.2f} ms, "
              f"avg cores {result.report.average_cores_used:4.1f})")

    baseline = results["layerwise"].qps
    best = results["veltair_full"].qps
    print(f"\nVELTAIR serves {best / max(baseline, 1):.2f}x the "
          f"Planaria-style baseline on this box before violating the SLA.")


if __name__ == "__main__":
    main()
