"""Auto-piloting scenario from the paper's introduction (Sec. 2.1).

A smart vehicle runs several DNN sub-tasks concurrently on one CPU:
multi-direction object sensing (Tiny-YOLOv2 per camera), scene
classification (MobileNet-V2), and a heavier detector for the front
camera (SSD).  All sub-tasks are latency-critical and share the machine.

The script compares what fraction of frames meet their deadlines under
naive layer-wise co-location vs VELTAIR.

Run:  python examples/autopilot_scenario.py
(REPRO_EXAMPLE_TRIALS / REPRO_EXAMPLE_QUERIES shrink it for CI.)
"""

import os

from repro.serving import ServingStack, WorkloadSpec, poisson_queries
from repro.serving.metrics import summarize

TRIALS = int(os.environ.get("REPRO_EXAMPLE_TRIALS", "192"))
QUERIES = int(os.environ.get("REPRO_EXAMPLE_QUERIES", "400"))

#: Sensor frame rates: two cameras at 30 fps each through the light
#: detector, scene classification at 30 fps, front detector at 5 fps.
CAMERA_MIX = WorkloadSpec(name="autopilot", entries=(
    ("tiny_yolov2", 60.0),
    ("mobilenet_v2", 30.0),
    ("ssd_resnet34", 5.0),
))


def main() -> None:
    print("Compiling the vehicle's model set...")
    stack = ServingStack(
        models=["tiny_yolov2", "mobilenet_v2", "ssd_resnet34"],
        trials=TRIALS,
    )
    total_fps = sum(weight for _, weight in CAMERA_MIX.entries)
    print(f"Aggregate sensor load: {total_fps:.0f} inferences/second\n")

    for policy in ("model_fcfs", "layerwise", "veltair_full"):
        queries = poisson_queries(stack.compiled, CAMERA_MIX, total_fps,
                                  QUERIES, seed=7)
        completed, engine = stack.run(policy, queries)
        report = summarize(completed, engine.metrics, total_fps)
        by_model = {}
        for query in completed:
            by_model.setdefault(query.model.name, []).append(
                query.satisfied)
        detail = "  ".join(
            f"{name}={sum(v) / len(v):.0%}"
            for name, v in sorted(by_model.items()))
        print(f"{policy:14s} frames in deadline: "
              f"{report.satisfaction_rate:6.1%}   by task: {detail}")

    print("\nThe heavy front detector and the per-camera detectors "
          "interfere through the shared LLC; VELTAIR's interference-"
          "matched code versions and layer blocks keep far more frames "
          "inside their deadline envelopes than naive co-location.")


if __name__ == "__main__":
    main()
