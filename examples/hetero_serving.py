"""Heterogeneous serving tour: CPUs and an accelerator, one compile pass.

Builds the serving stack once, deploys it across the mixed
CPU+accelerator reference fleet (2x 64-core CPU, 1x 80-SM accelerator,
1x 32-core edge node), and serves the ``batch_heavy`` scenario — a
throughput-dominated heavy/medium mix with a latency-critical light
minority.  The compiled multi-version libraries port across device
kinds untouched; per-device runtimes re-profile and re-price but never
re-compile.  The ``device_affinity`` router then learns from observed
completions which model belongs on which device kind: the batch-friendly
detector drifts to the accelerator (wide layers fill its warps and SMs),
the 10 ms-QoS light model stays on CPUs (warp-width waste and occupancy
stalls make the accelerator a poor fit).  A final round runs the
scheduler A/B on the accelerator runtime, GACER baseline included.

Run:  python examples/hetero_serving.py
(REPRO_EXAMPLE_TRIALS / REPRO_EXAMPLE_QUERIES shrink it for CI.)
"""

import os

from repro.cluster import Cluster, hetero_fleet
from repro.hardware import DATACENTER_ACCEL_80
from repro.runtime.engine import Engine
from repro.serving import ServingStack
from repro.serving.metrics import summarize
from repro.serving.workload import scenario_queries
from repro.workloads import get_scenario

TRIALS = int(os.environ.get("REPRO_EXAMPLE_TRIALS", "192"))
QUERIES = int(os.environ.get("REPRO_EXAMPLE_QUERIES", "300"))


def main() -> None:
    print("Compiling the model set once (shared across device kinds)...")
    stack = ServingStack(
        models=["mobilenet_v2", "resnet50", "ssd_resnet34"],
        trials=TRIALS,
    )
    fleet = hetero_fleet()
    scenario = get_scenario("batch_heavy")
    print(f"Fleet {fleet.name}: "
          + ", ".join(f"{n.name}({n.cores}"
                      f"{'sm' if n.device_kind != 'cpu' else 'c'})"
                      for n in fleet.nodes) + "\n")

    qps = 60.0
    print(f"Serving {QUERIES} batch_heavy queries at {qps:.0f} QPS "
          f"through each router:")
    for router in ("round_robin", "pressure_aware", "device_affinity"):
        cluster = Cluster(stack, fleet, router=router)
        report = cluster.report(scenario.workload, qps=qps,
                                count=QUERIES, seed=42,
                                scenario=scenario)
        shares = "/".join(f"{n.assigned}" for n in report.nodes)
        print(f"  {router:18s} QoS sat={report.satisfaction_rate:6.1%}  "
              f"p99={report.p99_latency_s * 1e3:6.1f} ms  "
              f"assigned={shares}")
    print(f"(one compile pass for CPUs and the accelerator: "
          f"artifact_builds={stack.artifact_builds})\n")

    accel_qps = 70.0
    runtime = stack.runtime_for(DATACENTER_ACCEL_80)
    print(f"Scheduler A/B on {DATACENTER_ACCEL_80.name} at "
          f"{accel_qps:.0f} QPS:")
    for policy in ("layerwise", "veltair_full", "gacer"):
        queries = scenario_queries(stack.compiled, scenario, accel_qps,
                                   QUERIES, seed=42)
        engine = Engine(runtime.cost_model,
                        price_cache=runtime.price_cache)
        scheduler = stack.make_scheduler(policy, runtime=runtime)
        completed = engine.run(queries, scheduler)
        report = summarize(completed, engine.metrics, accel_qps)
        print(f"  {policy:14s} QoS sat={report.satisfaction_rate:6.1%}  "
              f"avg={report.average_latency_s * 1e3:6.1f} ms  "
              f"p99={report.p99_latency_s * 1e3:6.1f} ms")

    print("\nThe DeviceSpec family lets one compiled library serve any "
          "device kind; affinity routing turns the per-kind cost "
          "asymmetry into fleet capacity instead of QoS misses.")


if __name__ == "__main__":
    main()
