"""Autoscale tour: an elastic fleet following diurnal and flash load.

A static fleet is sized for its peak and idles through the rest of the
day; the autoscale control plane (`repro.cluster.autoscale`) resizes
the fleet mid-run instead.  On control ticks interleaved with the
arrival stream it watches three SLO-feedback signals — fleet pressure,
backlog per core, and the rolling QoS-violation rate — and, with
hysteresis bands and a cool-down, provisions nodes from a template
(re-profiled via the shared compile pass, never recompiled; a warm-up
delay models spin-up) or drains them out (the node leaves the routing
set, finishes its in-flight work, then retires).

This tour serves the same diurnal stream through a 4-node static-peak
fleet and an autoscaled fleet starting at 2 nodes, prints the scaling
timeline, and compares QoS satisfaction against node-seconds — the
cost-vs-QoS frontier the `bench_autoscale` benchmark gates.

Run:  python examples/autoscale_serving.py
(REPRO_EXAMPLE_TRIALS / REPRO_EXAMPLE_QUERIES shrink it for CI.)
"""

import os

from repro.cluster import AutoscalePolicy, Cluster, NodeSpec, homogeneous
from repro.hardware.platform import THREADRIPPER_3990X
from repro.serving import ServingStack, WorkloadSpec
from repro.serving.workload import scenario_queries

TRIALS = int(os.environ.get("REPRO_EXAMPLE_TRIALS", "192"))
QUERIES = int(os.environ.get("REPRO_EXAMPLE_QUERIES", "600"))

MIX = WorkloadSpec(name="day-mix", entries=(
    ("mobilenet_v2", 2.0),
    ("googlenet", 1.0),
))


def main() -> None:
    print("Compiling the model set once (shared fleet-wide)...")
    stack = ServingStack(models=["mobilenet_v2", "googlenet"],
                         trials=TRIALS)

    policy = AutoscalePolicy(
        template=NodeSpec(name="auto", cpu=THREADRIPPER_3990X),
        min_nodes=2, max_nodes=4,
        tick_s=0.015, warmup_s=0.03, cooldown_s=0.06,
        up_pressure=0.45, down_pressure=0.20,
        up_backlog_per_core=0.06, down_backlog_per_core=0.015,
        up_violation_rate=0.10, down_violation_rate=0.02,
        slo_window_s=0.20, quiet_ticks=6)
    qps = 400.0

    def stream():
        # Engines mutate queries: each fleet gets its own regeneration
        # of the bit-identical seeded stream.
        return scenario_queries(stack.compiled, "diurnal", qps, QUERIES,
                                seed=42, spec=MIX)

    print(f"\nServing {QUERIES} diurnal queries at {qps:.0f} mean QPS "
          f"(rate swings {1 - 0.6:.0%}..{1 + 0.6:.0%} of mean):")

    static = Cluster(stack, homogeneous(policy.max_nodes),
                     router="pressure_aware")
    static_report = static.serve(stream(), offered_qps=qps)
    print(f"  static-peak {policy.max_nodes} nodes: "
          f"sat={static_report.satisfaction_rate:6.1%}  "
          f"node-s={static_report.node_seconds:5.2f}  "
          f"util={static_report.utilization:5.1%}")

    elastic = Cluster(stack, homogeneous(policy.min_nodes),
                      router="pressure_aware", autoscale=policy)
    auto_report = elastic.serve(stream(), offered_qps=qps)
    print(f"  autoscaled {policy.min_nodes}->"
          f"[{policy.min_nodes},{policy.max_nodes}] nodes: "
          f"sat={auto_report.satisfaction_rate:6.1%}  "
          f"node-s={auto_report.node_seconds:5.2f}  "
          f"util={auto_report.utilization:5.1%}  "
          f"peak={auto_report.peak_live_nodes}  "
          f"avg={auto_report.average_live_nodes:.2f}")

    print("\nScaling timeline (provision -> warm-up -> join; "
          "drain -> finish in-flight -> retire):")
    for event in auto_report.scaling_timeline:
        print(f"  {event}")

    print("\nPer-node lifecycle:")
    for node in auto_report.nodes:
        print(f"  {node.name:10s} {node.cores:3d}c "
              f"assigned={node.assigned:4d} "
              f"completed={node.completed:4d} "
              f"node-s={node.node_seconds:5.2f} "
              f"[{node.final_state}]")

    sat_ratio = (auto_report.satisfaction_rate
                 / max(1e-9, static_report.satisfaction_rate))
    ns_ratio = (auto_report.node_seconds
                / max(1e-9, static_report.node_seconds))
    print(f"\nFrontier: {sat_ratio:.1%} of static-peak QoS satisfaction "
          f"at {ns_ratio:.1%} of its node-seconds — capacity follows "
          "the demand curve instead of the peak.")


if __name__ == "__main__":
    main()
