"""Request-model tour: pipelines, closed-loop tenants, dynamic batching.

Three short acts over one compiled stack:

1. The `vision_pipeline` scenario (detector -> classifier) served
   through a 2-node fleet: stage 1 is offered the instant stage 0
   completes, per-stage latency shows where the chain's budget goes,
   and under an aggressive admission policy a shed stage fails its
   whole pipeline.
2. The `agent_loop` closed-loop scenario: six tenants each keep two
   requests in flight, issuing the next at each completion — so when
   admission sheds, the *offered* rate drops instead of a queue
   exploding (the feedback open-loop traces cannot express).
3. Engine-side dynamic batching on an accelerator node: same-model
   arrivals fuse into one block stream (`BatchPolicy`), trading a
   bounded wait plus longer per-request latency for strictly cheaper
   core-seconds per query (shared weight traffic, one launch stream
   instead of B) — so past the unbatched capacity knee, where the
   plain engine's queue grows without bound and QoS collapses, the
   batched engine keeps satisfying every request.  (Needs the full
   default query count to reach steady state; shrunk CI runs only
   smoke the mechanics.)

Run:  python examples/pipeline_serving.py
(REPRO_EXAMPLE_TRIALS / REPRO_EXAMPLE_QUERIES shrink it for CI.)
"""

import os

from repro.cluster import AdmissionPolicy, Cluster, homogeneous
from repro.hardware.platform import DATACENTER_ACCEL_80
from repro.runtime.engine import BatchPolicy, Engine
from repro.serving import ServingStack, WorkloadSpec
from repro.serving.workload import poisson_queries
from repro.workloads import get_scenario

TRIALS = int(os.environ.get("REPRO_EXAMPLE_TRIALS", "192"))
COUNT = int(os.environ.get("REPRO_EXAMPLE_QUERIES", "60"))


def main() -> None:
    print("Compiling the model set once (shared across all acts)...")
    stack = ServingStack(
        models=["ssd_resnet34", "resnet50", "mobilenet_v2", "googlenet"],
        trials=TRIALS,
    )

    # Act 1: detector -> classifier pipelines through a small fleet.
    scenario = get_scenario("vision_pipeline")
    stages = " -> ".join(scenario.pipeline.stages)
    print(f"\n[1] {scenario.name}: {stages}, {COUNT} chains at 30 QPS")
    cluster = Cluster(stack, homogeneous(2))
    stream = scenario.stream(stack.compiled, qps=30.0, count=COUNT, seed=7)
    report = cluster.serve_stream(stream, offered_qps=30.0)
    rollup = report.pipelines
    print(f"    chains: {rollup.offered} offered, "
          f"{rollup.completed} completed, "
          f"sat={rollup.satisfaction_rate:.1%}, "
          f"p99={rollup.p99_latency_s * 1e3:.1f} ms")
    for stage in rollup.stages:
        print(f"    stage {stage.stage} ({stage.model}): "
              f"avg={stage.average_latency_s * 1e3:.1f} ms  "
              f"p99={stage.p99_latency_s * 1e3:.1f} ms  "
              f"shed={stage.shed}")

    # A tight admission bound: shed stages kill their whole chain.
    guarded = Cluster(stack, homogeneous(2),
                      admission=AdmissionPolicy(
                          max_outstanding_per_core=0.05, max_defers=1))
    stream = scenario.stream(stack.compiled, qps=120.0, count=COUNT, seed=7)
    report = guarded.serve_stream(stream, offered_qps=120.0)
    rollup = report.pipelines
    print(f"    overloaded + admission: {rollup.failed} chains failed by "
          f"a shed stage (sat={rollup.satisfaction_rate:.1%})")

    # Act 2: closed-loop tenants — shedding reduces offered load.
    scenario = get_scenario("agent_loop")
    loop = scenario.closed_loop
    print(f"\n[2] {scenario.name}: {loop.tenants} tenants x "
          f"concurrency {loop.concurrency}, {COUNT} requests total")
    report = guarded.serve_stream(
        scenario.stream(stack.compiled, qps=0.0, count=COUNT, seed=7))
    print(f"    offered={report.offered} admitted={report.admitted} "
          f"shed={report.shed} sat={report.satisfaction_rate:.1%}")
    for session in report.sessions[:3]:
        print(f"    session {session.session}: issued={session.issued} "
              f"satisfied={session.satisfied} shed={session.shed} "
              f"avg={session.average_latency_s * 1e3:.2f} ms")
    print("    (every shed request still hands control back: the tenant "
          "issues its next — offered load adapts)")

    # Act 3: dynamic batching past the capacity knee, on an accelerator.
    # Throughput-oriented serving: QoS relaxed 8x, offered load above
    # the unbatched engine's knee — plain queues grow without bound
    # while fused batch-8 blocks (cheaper core-seconds per query) keep
    # up.  Small CI runs never reach steady state; use the defaults to
    # see the separation.
    runtime = stack.runtime_for(DATACENTER_ACCEL_80)
    spec = WorkloadSpec(name="mono", entries=(("mobilenet_v2", 1.0),))
    batch_count = COUNT * 40
    print(f"\n[3] dynamic batching: {batch_count} mobilenet_v2 arrivals "
          f"at 3600 QPS on one {DATACENTER_ACCEL_80.name} node, QoS x8")

    def accel_serve(batching: BatchPolicy | None):
        queries = poisson_queries(stack.compiled, spec, qps=3600.0,
                                  count=batch_count, seed=7)
        for query in queries:
            query.qos_s *= 8.0
        engine = Engine(runtime.cost_model,
                        price_cache=runtime.price_cache,
                        batching=batching)
        scheduler = stack.make_scheduler("veltair_full", runtime=runtime)
        return engine.run(queries, scheduler)

    plain = accel_serve(None)
    fused = accel_serve(BatchPolicy(max_batch=8, max_wait_s=0.002))
    for label, done in (("unbatched", plain),
                        ("batched (max_batch=8, wait<=2ms)", fused)):
        sat = sum(q.satisfied for q in done)
        window = max(q.finished_s for q in done)
        print(f"    {label}: {sat}/{len(done)} within QoS, "
              f"goodput {sat / window:.0f}/s")


if __name__ == "__main__":
    main()
