"""Quickstart: serve a multi-tenant query stream with VELTAIR.

Builds the serving stack (offline multi-version compilation + profiling +
proxy fitting), generates a Poisson stream over the MLPerf-style light
mix, and compares the full VELTAIR scheduler against the Planaria-style
layer-wise baseline.

Run:  python examples/quickstart.py
(REPRO_EXAMPLE_TRIALS / REPRO_EXAMPLE_QUERIES shrink it for CI.)
"""

import os

from repro.serving import LIGHT_MIX, ServingStack, poisson_queries
from repro.serving.metrics import summarize
from repro.telemetry import save_env_trace, tracer_from_env

TRIALS = int(os.environ.get("REPRO_EXAMPLE_TRIALS", "192"))
QUERIES = int(os.environ.get("REPRO_EXAMPLE_QUERIES", "300"))


def main() -> None:
    print("Compiling the light-mix models (multi-version, Alg. 1)...")
    stack = ServingStack(
        models=["efficientnet_b0", "mobilenet_v2", "tiny_yolov2"],
        trials=TRIALS,
    )
    for name, compiled in stack.compiled.items():
        versions = compiled.version_counts
        print(f"  {name:18s} {len(compiled):3d} layers, "
              f"{sum(versions)} compiled versions "
              f"(max {max(versions)}/layer)")

    qps = 220.0
    print(f"\nServing {QUERIES} queries at {qps:.0f} QPS "
          f"(Poisson arrivals, QoS per MLPerf Table 2)...")
    # Set REPRO_TRACE_DIR to record the veltair_full run's telemetry
    # (per-query spans, block spans, scheduler decisions) — free when
    # unset, and results are bit-identical either way.
    tracer = tracer_from_env(run_id="quickstart",
                             meta={"qps": qps, "queries": QUERIES})
    for policy in ("layerwise", "veltair_full"):
        queries = poisson_queries(stack.compiled, LIGHT_MIX, qps, QUERIES,
                                  seed=42)
        completed, engine = stack.run(
            policy, queries,
            tracer=tracer if policy == "veltair_full" else None)
        report = summarize(completed, engine.metrics, qps)
        print(f"  {policy:14s} "
              f"QoS satisfaction={report.satisfaction_rate:.1%}  "
              f"avg latency={report.average_latency_s * 1e3:.2f} ms  "
              f"conflicts={report.conflict_rate:.1%}")

    print("\nVELTAIR's adaptive blocks + interference-matched code "
          "versions keep QoS where the fixed baseline collapses.")
    trace_path = save_env_trace(tracer)
    if trace_path is not None:
        print(f"trace written to {trace_path} — inspect with "
              f"`python -m repro.telemetry summarize {trace_path}`")


if __name__ == "__main__":
    main()
