"""The legal schedule space of a layer, with enumeration and sampling.

Mirrors what a TVM/Ansor search sees on CPU: power-of-two tile candidates
bounded by the iteration space (plus the full extent, so a "no blocking in
this dim" point always exists), power-of-two parallel chunk counts bounded
by the tile count, and a small unroll menu.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.models.layers import GemmShape, LayerSpec
from repro.compiler.schedule import Schedule

#: Unroll factors the code generator offers.
UNROLL_CANDIDATES = (1, 2, 4, 8, 16)

#: Never emit more parallel chunks than this (pragma limit).
MAX_PARALLEL_CHUNKS = 4096


def _pow2_candidates(extent: int, minimum: int = 4) -> list[int]:
    """Power-of-two values <= extent, plus the extent itself."""
    values = []
    v = minimum
    while v < extent:
        values.append(v)
        v *= 2
    values.append(extent)
    return values


@dataclass(frozen=True)
class ScheduleSpace:
    """All legal code versions of one layer's implicit GEMM."""

    gemm: GemmShape

    @classmethod
    def for_layer(cls, layer: LayerSpec) -> "ScheduleSpace":
        return cls(gemm=layer.gemm)

    def tile_m_candidates(self) -> list[int]:
        return _pow2_candidates(self.gemm.m)

    def tile_n_candidates(self) -> list[int]:
        return _pow2_candidates(self.gemm.n, minimum=1)

    def tile_k_candidates(self) -> list[int]:
        return _pow2_candidates(self.gemm.k, minimum=8)

    def parallel_candidates(self, tile_m: int, tile_n: int) -> list[int]:
        tiles = (math.ceil(self.gemm.m / tile_m)
                 * math.ceil(self.gemm.n / tile_n))
        tiles = min(tiles, MAX_PARALLEL_CHUNKS)
        return _pow2_candidates(tiles, minimum=1)

    def size(self) -> int:
        """Loose upper bound on the space cardinality (for reporting)."""
        return (len(self.tile_m_candidates()) * len(self.tile_n_candidates())
                * len(self.tile_k_candidates()) * len(UNROLL_CANDIDATES)
                * 12)

    # -- construction --------------------------------------------------------

    def make(self, tile_m: int, tile_n: int, tile_k: int,
             parallel_chunks: int, unroll: int = 4) -> Schedule:
        """Build a schedule, clipping it to legality for this layer."""
        return Schedule(tile_m=tile_m, tile_n=tile_n, tile_k=tile_k,
                        parallel_chunks=parallel_chunks,
                        unroll=unroll).clipped_to(self.gemm)

    def default_schedule(self) -> Schedule:
        """A generic vendor-library-style schedule: moderate fixed blocking.

        This is deliberately *not* tuned per shape — it stands in for the
        one-size-fits-all kernels of a closed vendor library (paper Fig. 2).
        """
        return self.make(tile_m=64, tile_n=64, tile_k=256,
                         parallel_chunks=64, unroll=4)

    def sample(self, rng: np.random.Generator) -> Schedule:
        """Draw one uniformly random legal schedule."""
        tile_m = int(rng.choice(self.tile_m_candidates()))
        tile_n = int(rng.choice(self.tile_n_candidates()))
        tile_k = int(rng.choice(self.tile_k_candidates()))
        parallel = int(rng.choice(self.parallel_candidates(tile_m, tile_n)))
        unroll = int(rng.choice(UNROLL_CANDIDATES))
        return Schedule(tile_m=tile_m, tile_n=tile_n, tile_k=tile_k,
                        parallel_chunks=parallel, unroll=unroll)

    def sample_many(self, count: int,
                    rng: np.random.Generator) -> list[Schedule]:
        """Draw ``count`` legal schedules (duplicates removed, order kept)."""
        seen: set[Schedule] = set()
        result: list[Schedule] = []
        for _ in range(count):
            candidate = self.sample(rng)
            if candidate not in seen:
                seen.add(candidate)
                result.append(candidate)
        return result

    def neighbours(self, schedule: Schedule,
                   rng: np.random.Generator) -> Schedule:
        """Mutate one knob of a schedule — the evolutionary-search move."""
        knob = rng.integers(0, 5)
        tile_m, tile_n = schedule.tile_m, schedule.tile_n
        tile_k, parallel = schedule.tile_k, schedule.parallel_chunks
        unroll = schedule.unroll
        step = 2 if rng.random() < 0.5 else 0.5
        if knob == 0:
            tile_m = max(4, min(self.gemm.m, int(tile_m * step)))
        elif knob == 1:
            tile_n = max(1, min(self.gemm.n, int(tile_n * step)))
        elif knob == 2:
            tile_k = max(8, min(self.gemm.k, int(tile_k * step)))
        elif knob == 3:
            parallel = max(1, min(MAX_PARALLEL_CHUNKS, int(parallel * step)))
        else:
            candidates = list(UNROLL_CANDIDATES)
            unroll = int(rng.choice(candidates))
        return Schedule(tile_m=tile_m, tile_n=tile_n, tile_k=tile_k,
                        parallel_chunks=parallel,
                        unroll=unroll).clipped_to(self.gemm)
