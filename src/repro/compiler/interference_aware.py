"""The paper's *naive* interference-aware extension (Sec. 3.3).

To find the best code version for a target interference level, the paper
launches a background layer producing that level of pressure and re-runs
the whole auto-scheduler — one full pass per level.  Here the background
layer is the ``interference`` argument of the cost model, but the
structure (and the cost: ``levels x trials`` evaluations) is identical.

This module exists as the measured baseline that motivates the single-pass
compiler of :mod:`repro.compiler.multiversion`: same answers, one pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.layers import LayerSpec
from repro.compiler.autoscheduler import AutoScheduler, SearchResult
from repro.compiler.schedule import Schedule


def default_levels(count: int) -> tuple[float, ...]:
    """``count`` interference levels spanning [0, 1] inclusive."""
    if count < 2:
        raise ValueError("need at least two levels")
    return tuple(i / (count - 1) for i in range(count))


@dataclass(frozen=True)
class MultiPassResult:
    """Per-level optima found by the naive multi-pass search."""

    layer: LayerSpec
    levels: tuple[float, ...]
    passes: tuple[SearchResult, ...]

    @property
    def schedules(self) -> tuple[Schedule, ...]:
        """The per-level best schedule, aligned with :attr:`levels`."""
        return tuple(p.best_schedule for p in self.passes)

    @property
    def total_trials(self) -> int:
        """Total evaluations spent — the cost Alg. 1 eliminates."""
        return sum(p.trials for p in self.passes)

    def best_for(self, interference: float) -> Schedule:
        """Best known schedule for an arbitrary pressure level."""
        nearest = min(range(len(self.levels)),
                      key=lambda i: abs(self.levels[i] - interference))
        return self.passes[nearest].best_schedule


def multi_pass_search(scheduler: AutoScheduler, layer: LayerSpec,
                      levels: int = 4, trials_per_pass: int = 512,
                      cores: int | None = None,
                      seed: int | None = None) -> MultiPassResult:
    """Run one full auto-scheduler pass per interference level.

    This is the experiment behind paper Fig. 6: each pass emulates a
    background co-runner holding pressure at its level while the search
    optimises the foreground layer.
    """
    level_values = default_levels(levels)
    passes = []
    for index, level in enumerate(level_values):
        pass_seed = None if seed is None else seed + index
        passes.append(scheduler.search(layer, interference=level,
                                       cores=cores,
                                       trials=trials_per_pass,
                                       seed=pass_seed))
    return MultiPassResult(layer=layer, levels=level_values,
                           passes=tuple(passes))
