"""Simulated auto-scheduler: evolutionary search over the schedule space.

Stands in for TVM's Ansor (paper Sec. 2.2): given a layer and an objective
interference level, it samples the legal schedule space, evolves the best
candidates by knob mutation, and returns both the winner and *every*
evaluated sample — the paper's single-pass multi-version compiler (Alg. 1)
consumes the full sample population, not just the winner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import make_rng
from repro.models.layers import LayerSpec
from repro.compiler.costmodel import CostModel
from repro.compiler.schedule import Schedule
from repro.compiler.space import ScheduleSpace


@dataclass(frozen=True)
class Measured:
    """One evaluated schedule sample."""

    schedule: Schedule
    latency_s: float

    @property
    def parallelism(self) -> int:
        return self.schedule.parallelism

    @property
    def locality_bytes(self) -> int:
        return self.schedule.tile_footprint_bytes


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one auto-scheduler pass."""

    layer: LayerSpec
    interference: float
    cores: int
    samples: tuple[Measured, ...]

    @property
    def best(self) -> Measured:
        return min(self.samples, key=lambda m: m.latency_s)

    @property
    def best_schedule(self) -> Schedule:
        return self.best.schedule

    @property
    def trials(self) -> int:
        return len(self.samples)


class AutoScheduler:
    """Evolutionary schedule search against the analytic cost model.

    Parameters
    ----------
    cost_model:
        Platform-bound latency oracle.
    population:
        Survivor pool evolved each round.
    elite_fraction:
        Share of the pool kept unmutated between rounds.
    """

    def __init__(self, cost_model: CostModel, population: int = 64,
                 elite_fraction: float = 0.25) -> None:
        if population < 4:
            raise ValueError("population must be at least 4")
        if not 0.0 < elite_fraction < 1.0:
            raise ValueError("elite_fraction must be in (0, 1)")
        self.cost_model = cost_model
        self.population = population
        self.elite_fraction = elite_fraction
        #: Survivor-pool size after each evolution round of the last
        #: search — instrumentation for the pool-size invariant
        #: (``max(...) <= population``); reset per :meth:`search`.
        self.last_pool_sizes: list[int] = []

    def search(self, layer: LayerSpec, interference: float = 0.0,
               cores: int | None = None, trials: int = 512,
               seed: int | None = None) -> SearchResult:
        """Run one search pass; ``trials`` bounds total evaluations.

        ``cores`` is the grant assumed during tuning; the default is the
        whole machine, which is what an offline tuning run owns.
        """
        if trials < self.population:
            raise ValueError("trials must be >= population")
        cores = cores if cores is not None else self.cost_model.cpu.cores
        rng = make_rng(seed)
        space = ScheduleSpace.for_layer(layer)
        self.last_pool_sizes = []

        evaluated: dict[Schedule, float] = {}

        def measure(schedule: Schedule) -> float:
            cached = evaluated.get(schedule)
            if cached is None:
                cached = self.cost_model.latency(layer, schedule, cores,
                                                 interference)
                evaluated[schedule] = cached
            return cached

        # Half the budget is pure random exploration: the multi-version
        # compiler mines the *whole* sample population (paper Alg. 1
        # "record as many samples as possible"), so breadth matters as
        # much as the best point.
        explore = space.sample_many(trials // 2, rng)
        for schedule in explore:
            measure(schedule)
        pool = space.sample_many(self.population, rng)
        for schedule in pool:
            measure(schedule)

        elites = max(2, int(self.population * self.elite_fraction))
        previous_count = -1
        while len(evaluated) < trials and len(evaluated) > previous_count:
            # The count-growth guard terminates tiny spaces (fewer legal
            # schedules than trials) where mutation only finds duplicates.
            previous_count = len(evaluated)
            pool.sort(key=measure)
            parents = pool[:elites]
            children: list[Schedule] = list(parents)
            while (len(children) < self.population
                   and len(evaluated) + len(children) - elites < trials):
                parent = parents[int(rng.integers(0, len(parents)))]
                child = space.neighbours(parent, rng)
                children.append(child)
            if len(children) <= elites:
                break
            for child in children[elites:]:
                measure(child)
            # Occasional fresh immigrants keep the search from collapsing
            # into one basin of the space.
            if len(evaluated) < trials:
                for schedule in space.sample_many(
                        max(2, self.population // 8), rng):
                    if len(evaluated) >= trials:
                        break
                    measure(schedule)
                    children.append(schedule)
            # Re-cap the survivor pool: the immigrants above land on top
            # of an already population-sized fill, which used to ratchet
            # the pool above ``self.population`` every round.  Keeping
            # the best ``population`` members preserves the parent set
            # (the best ``elites`` of any superset containing the best
            # ``population`` are the same), so search results are
            # unchanged — only the invariant is restored.
            if len(children) > self.population:
                children.sort(key=measure)
                del children[self.population:]
            pool = children
            self.last_pool_sizes.append(len(pool))

        samples = tuple(Measured(schedule=s, latency_s=lat)
                        for s, lat in evaluated.items())
        return SearchResult(layer=layer, interference=interference,
                            cores=cores, samples=samples)
