"""Compiled model libraries: per-layer version tables ready for serving.

A :class:`CompiledModel` aligns one :class:`CompiledLayer` with each layer
of a fused model graph.  :class:`ModelCompiler` drives paper Alg. 1 over a
whole model, sharing compilation results between layers with identical
shape signatures (bottleneck stacks repeat the same convolutions many
times, so this saves most of the tuning cost — as TVM's tuning cache does).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.graph import ModelGraph
from repro.models.layers import LayerSpec
from repro.compiler.artifacts import (
    BUDGET_DECIMALS,
    ArtifactStore,
    artifact_key,
    compile_layers,
    compiler_context,
    context_fingerprint,
)
from repro.compiler.costmodel import CostModel
from repro.compiler.multiversion import CompiledLayer, SinglePassCompiler
from repro.compiler.schedule import Schedule


@dataclass(frozen=True)
class CompiledModel:
    """A model plus its per-layer multi-version code tables."""

    graph: ModelGraph
    qos_s: float
    layers: tuple[CompiledLayer, ...]

    def __post_init__(self) -> None:
        if len(self.layers) != len(self.graph.layers):
            raise ValueError(
                f"{self.graph.name}: {len(self.layers)} compiled layers for "
                f"{len(self.graph.layers)} graph layers")

    @property
    def name(self) -> str:
        return self.graph.name

    def __len__(self) -> int:
        return len(self.layers)

    def version_for(self, layer_index: int, interference: float) -> Schedule:
        """Adaptive selection: the version matching a pressure level."""
        return self.layers[layer_index].version_for(interference)

    def static_version(self, layer_index: int) -> Schedule:
        """The isolation-optimal version (static-compilation baselines)."""
        return self.layers[layer_index].static_version()

    @property
    def version_counts(self) -> list[int]:
        """Per-layer retained version counts (paper Fig. 14c)."""
        return [layer.version_count for layer in self.layers]

    @property
    def total_versions(self) -> int:
        return sum(self.version_counts)


@dataclass
class CompileStats:
    """Dedup/reuse accounting over one compiler's lifetime.

    ``layers_total`` counts every graph layer seen; ``store_hits`` the
    artifacts served from the persistent store; ``compiled_fresh`` the
    Alg. 1 runs actually paid for.  ``layers_total - store_hits -
    compiled_fresh`` is the in-process cross-model dedup win.
    """

    layers_total: int = 0
    store_hits: int = 0
    compiled_fresh: int = 0

    @property
    def memo_hits(self) -> int:
        return self.layers_total - self.store_hits - self.compiled_fresh


class ModelCompiler:
    """Compiles whole models through the single-pass compiler.

    Parameters
    ----------
    cost_model:
        Platform-bound latency oracle.
    single_pass:
        Optional pre-configured Alg. 1 driver (trials, versions, levels).
    qos_margin:
        Fraction of the model QoS handed to the layers; the rest absorbs
        scheduling overheads (thread spawns, launches, queueing slack).
    store:
        Optional :class:`~repro.compiler.artifacts.ArtifactStore`; each
        unique (signature, budget) is looked up before compiling and
        recorded after, so warm stores skip Alg. 1 entirely.
    workers:
        Fork-pool width for :meth:`compile_models`' missing-layer batch;
        1 (the default) compiles serially in-process.
    """

    def __init__(self, cost_model: CostModel,
                 single_pass: SinglePassCompiler | None = None,
                 qos_margin: float = 0.85,
                 min_layer_budget_s: float = 40e-6,
                 store: ArtifactStore | None = None,
                 workers: int = 1) -> None:
        if not 0.0 < qos_margin <= 1.0:
            raise ValueError("qos_margin must be in (0, 1]")
        if min_layer_budget_s < 0:
            raise ValueError("min_layer_budget_s must be non-negative")
        self.cost_model = cost_model
        self.single_pass = single_pass or SinglePassCompiler(cost_model)
        self.qos_margin = qos_margin
        self.min_layer_budget_s = min_layer_budget_s
        self.store = store
        self.workers = max(1, int(workers))
        self.stats = CompileStats()
        self._context_fp = context_fingerprint(
            compiler_context(self.single_pass))
        self._cache: dict[tuple, CompiledLayer] = {}

    @property
    def context_fingerprint(self) -> str:
        """Digest of everything a compile depends on besides the layer."""
        return self._context_fp

    @property
    def unique_layers(self) -> int:
        """Distinct (signature, budget) cells compiled or loaded so far."""
        return len(self._cache)

    def _layer_budgets(self, graph: ModelGraph, qos_s: float) -> list[float]:
        """Op-count-proportional QoS split with a per-layer floor.

        Pure flop-proportional splitting (Alg. 1 line 3) hands tiny
        layers (pools, classifier heads) budgets below their latency
        floor, which would demand infinite cores; the floor keeps every
        layer feasible, with the excess taken proportionally from the
        layers above the floor.
        """
        total = qos_s * self.qos_margin
        raw = [total * fraction for fraction in graph.op_fractions()]
        floor = min(self.min_layer_budget_s, total / (2 * len(raw)))
        floored = [max(b, floor) for b in raw]
        excess = sum(floored) - total
        if excess > 0:
            above = sum(b for b in floored if b > floor)
            if above > 0:
                scale = max(0.0, 1.0 - excess / above)
                floored = [b * scale if b > floor else b for b in floored]
        return floored

    def compile_model(self, graph: ModelGraph, qos_s: float) -> CompiledModel:
        """Run Alg. 1 over every layer of a fused model graph.

        The per-layer budget splits the (margin-discounted) model QoS
        proportionally to layer op count — Alg. 1 line 3 — floored so
        every layer stays feasible.
        """
        return self.compile_models([(graph, qos_s)])[0]

    def compile_models(self, specs: list[tuple[ModelGraph, float]]
                       ) -> list[CompiledModel]:
        """Compile several models in one deduplicated batch.

        All unique (signature, budget) cells missing from the
        in-process memo *and* the artifact store are compiled in one
        pass — across worker processes when ``workers > 1`` — so zoo
        models sharing conv/dense signatures pay for each shared layer
        once, and a warm store pays for none.
        """
        for _, qos_s in specs:
            if qos_s <= 0:
                raise ValueError("qos_s must be positive")
        plans: list[list[tuple]] = []
        missing: dict[tuple, tuple] = {}
        for graph, qos_s in specs:
            budgets = self._layer_budgets(graph, qos_s)
            plan = []
            for layer, layer_budget in zip(graph.layers, budgets):
                key = (layer.signature,
                       round(layer_budget, BUDGET_DECIMALS))
                plan.append((layer, key))
                self.stats.layers_total += 1
                if key in self._cache or key in missing:
                    continue
                entry = self._store_get(key, layer)
                if entry is not None:
                    self._cache[key] = entry
                    self.stats.store_hits += 1
                else:
                    missing[key] = (layer, layer_budget)
            plans.append(plan)

        if missing:
            items = list(missing.items())
            fresh = compile_layers(
                self.single_pass,
                [(layer, budget) for _, (layer, budget) in items],
                workers=self.workers)
            for (key, _), entry in zip(items, fresh):
                self._cache[key] = entry
                self.stats.compiled_fresh += 1
                self._store_put(key, entry)

        models = []
        for (graph, qos_s), plan in zip(specs, plans):
            compiled: list[CompiledLayer] = []
            for layer, key in plan:
                entry = self._cache[key]
                if entry.layer is not layer:
                    # Shared signature: re-point the table at this layer
                    # instance so diagnostics show the right name.
                    entry = CompiledLayer(
                        layer=layer,
                        qos_budget_s=entry.qos_budget_s,
                        levels=entry.levels,
                        versions=entry.versions,
                        latency_table=entry.latency_table,
                        version_for_level=entry.version_for_level,
                        dominant_count=entry.dominant_count,
                        sample_count=entry.sample_count,
                    )
                compiled.append(entry)
            models.append(CompiledModel(graph=graph, qos_s=qos_s,
                                        layers=tuple(compiled)))
        return models

    def _store_get(self, key: tuple,
                   layer: LayerSpec) -> CompiledLayer | None:
        if self.store is None:
            return None
        signature, budget = key
        return self.store.get(
            artifact_key(self._context_fp, signature, budget),
            self._context_fp, layer, budget)

    def _store_put(self, key: tuple, entry: CompiledLayer) -> None:
        if self.store is None:
            return
        signature, budget = key
        self.store.put(artifact_key(self._context_fp, signature, budget),
                       self._context_fp, entry)

    def compile_static(self, graph: ModelGraph, qos_s: float) -> CompiledModel:
        """Single-version compilation: what a stock Ansor deployment ships.

        Reuses the multi-version tables but pins every layer to its
        isolation-optimal version — the static-compilation baseline of
        the paper's evaluation (Planaria/PREMA rows of Table 1).
        """
        multi = self.compile_model(graph, qos_s)
        pinned = []
        for entry in multi.layers:
            static_index = entry.version_for_level[0]
            pinned.append(CompiledLayer(
                layer=entry.layer,
                qos_budget_s=entry.qos_budget_s,
                levels=entry.levels,
                versions=(entry.versions[static_index],),
                latency_table=(entry.latency_table[static_index],),
                version_for_level=tuple(0 for _ in entry.levels),
                dominant_count=entry.dominant_count,
                sample_count=entry.sample_count,
            ))
        return CompiledModel(graph=graph, qos_s=qos_s, layers=tuple(pinned))
