"""Persistent compiled-artifact store + parallel deduplicated compilation.

Paper Alg. 1 is the expensive offline step everything else rides on, yet
its output is a deterministic function of the compilation context: the
layer's shape signature, its QoS budget, the cost-model parameters, the
CPU spec, the compiler knobs, and the search seed.  This module makes
that determinism pay twice:

* **Dedup** — zoo models share many conv/dense signatures, so each
  unique ``(signature, budget)`` compiles once per process and, with an
  on-disk store, once *ever* per compilation context.
* **Persistence** — :class:`ArtifactStore` is a schema-versioned,
  content-addressed JSON store.  Keys chain ``zlib.crc32`` over the
  canonical context (the same salt-free discipline ``multiversion.py``
  uses for search seeds); every entry also records the full canonical
  key material, so a digest collision degrades to a miss, never to a
  wrong artifact.  Corrupt or schema-mismatched entries are skipped
  (the caller recompiles) and :meth:`ArtifactStore.gc` prunes them.
* **Parallelism** — :func:`compile_layers` fans independent layer
  compilations over the shared ``fork`` worker pool
  (:mod:`repro.parallel`); results are bit-identical to the serial
  path because each compilation is seeded per layer signature.

Cached artifacts are bit-identical to fresh compiles: floats survive the
JSON round trip exactly (``repr`` round-tripping), and the store key
covers everything the compile depends on, so no figure moves when a
stack is rebuilt from a warm store.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.models.layers import LayerSpec
from repro.compiler.multiversion import CompiledLayer, SinglePassCompiler
from repro.compiler.schedule import Schedule

#: Bump on any incompatible change to the artifact payload layout or to
#: anything the compile depends on that the key does not capture.
ARTIFACT_SCHEMA = "repro.compiler.artifact/1"

#: Environment variable naming the default on-disk store directory.
STORE_ENV = "REPRO_ARTIFACT_STORE"

#: Budget rounding shared with :class:`repro.compiler.library.ModelCompiler`
#: so in-memory dedup and the persistent store agree on identity.
BUDGET_DECIMALS = 9


# ---------------------------------------------------------------------------
# Content addressing


def _digest(parts: list[str]) -> str:
    """A 16-hex-digit digest chaining two independent crc32 streams.

    crc32 (not ``hash()``) keeps keys stable across processes —
    PYTHONHASHSEED salts str/tuple hashes, which would make every run
    miss a store the previous run wrote.
    """
    forward, backward = 0, 0x9E3779B9
    for part in parts:
        data = part.encode()
        forward = zlib.crc32(data, forward)
        backward = zlib.crc32(data[::-1], backward)
    return f"{forward & 0xFFFFFFFF:08x}{backward & 0xFFFFFFFF:08x}"


def compiler_context(single_pass: SinglePassCompiler) -> dict:
    """Everything the compile result depends on besides (layer, budget).

    Covers the cost-model parameters, the CPU spec, every Alg. 1 knob,
    the evolutionary-search shape, and the seed — the key schema the
    store is addressed by.

    This key schema is frozen: the ``frozen-key-schema`` static check
    diffs the keys built here (and the fields of the spec dataclasses
    they serialize) against ``src/repro/checks/schema_snapshot.json``.
    Adding, removing, or reordering a key — or changing a spec field's
    annotation or default — changes what stores address and silently
    strands or revalidates warm entries, so the check fails until the
    change is made deliberate: bump :data:`ARTIFACT_SCHEMA`, run
    ``python -m repro.checks --update-schema``, and commit the
    regenerated snapshot together with the code change.
    """
    cost_model = single_pass.cost_model
    scheduler = single_pass.scheduler
    context = {
        "schema": ARTIFACT_SCHEMA,
        "cpu": dataclasses.asdict(cost_model.cpu),
        "params": dataclasses.asdict(cost_model.params),
        "trials": single_pass.trials,
        "levels": list(single_pass.levels),
        "max_versions": single_pass.max_versions,
        "keep_threshold": single_pass.keep_threshold,
        "tuning_cores": single_pass.tuning_cores,
        "seed": single_pass.seed,
        "population": scheduler.population,
        "elite_fraction": scheduler.elite_fraction,
    }
    # Non-CPU device kinds join the key under their own name.  CPU
    # contexts stay byte-identical to the pre-DeviceSpec schema, so
    # every artifact a CPU store already holds keeps hitting.
    kind = getattr(cost_model.cpu, "kind", "cpu")
    if kind != "cpu":
        context["device_kind"] = kind
    return context


def context_fingerprint(context: dict) -> str:
    """Stable digest of a :func:`compiler_context` mapping."""
    return _digest([json.dumps(context, sort_keys=True)])


def artifact_key(context_fp: str, signature: tuple,
                 qos_budget_s: float) -> str:
    """The content address of one compiled layer."""
    return _digest([context_fp, repr(signature),
                    repr(round(qos_budget_s, BUDGET_DECIMALS))])


# ---------------------------------------------------------------------------
# CompiledLayer <-> JSON payload


def _schedule_payload(schedule: Schedule) -> dict:
    return {"tile_m": schedule.tile_m, "tile_n": schedule.tile_n,
            "tile_k": schedule.tile_k,
            "parallel_chunks": schedule.parallel_chunks,
            "unroll": schedule.unroll,
            "vector_lanes": schedule.vector_lanes}


def _schedule_from_payload(payload: dict) -> Schedule:
    return Schedule(tile_m=int(payload["tile_m"]),
                    tile_n=int(payload["tile_n"]),
                    tile_k=int(payload["tile_k"]),
                    parallel_chunks=int(payload["parallel_chunks"]),
                    unroll=int(payload["unroll"]),
                    vector_lanes=int(payload["vector_lanes"]))


def layer_payload(key: str, context_fp: str,
                  compiled: CompiledLayer) -> dict:
    """Serialise one compiled layer (the layer object itself excluded).

    The :class:`LayerSpec` is identified by its signature only: two
    layers with equal signatures behave identically under the cost
    model, so the store rebinds the table to whichever instance asks.
    """
    return {
        "schema": ARTIFACT_SCHEMA,
        "key": key,
        "context": context_fp,
        "signature": repr(compiled.layer.signature),
        "qos_budget_s": compiled.qos_budget_s,
        "levels": list(compiled.levels),
        "versions": [_schedule_payload(v) for v in compiled.versions],
        "latency_table": [list(row) for row in compiled.latency_table],
        "version_for_level": list(compiled.version_for_level),
        "dominant_count": compiled.dominant_count,
        "sample_count": compiled.sample_count,
    }


def layer_from_payload(payload: dict, layer: LayerSpec) -> CompiledLayer:
    """Rebuild a :class:`CompiledLayer` bound to ``layer``.

    Raises on any malformed payload; callers treat that as a miss.
    """
    return CompiledLayer(
        layer=layer,
        qos_budget_s=float(payload["qos_budget_s"]),
        levels=tuple(float(v) for v in payload["levels"]),
        versions=tuple(_schedule_from_payload(v)
                       for v in payload["versions"]),
        latency_table=tuple(tuple(float(x) for x in row)
                            for row in payload["latency_table"]),
        version_for_level=tuple(int(v)
                                for v in payload["version_for_level"]),
        dominant_count=int(payload["dominant_count"]),
        sample_count=int(payload["sample_count"]),
    )


# ---------------------------------------------------------------------------
# The store


@dataclass
class StoreStats:
    """Counters over one store's lifetime in this process."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0


class ArtifactStore:
    """Content-addressed compiled-layer store, optionally disk-backed.

    With ``path=None`` the store is in-memory only (pure cross-model
    dedup); with a directory path every entry is also one
    ``art_<key>.json`` file, shared across processes and CI runs.
    Entries self-describe their schema, key, context fingerprint, and
    signature; :meth:`get` verifies all four before trusting a file, so
    a stale schema, a digest collision, or plain corruption falls back
    to recompilation instead of serving a wrong artifact.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._memory: dict[str, dict] = {}
        self.stats = StoreStats()

    @classmethod
    def from_env(cls) -> "ArtifactStore | None":
        """The store named by ``REPRO_ARTIFACT_STORE``, or ``None``."""
        path = os.environ.get(STORE_ENV, "").strip()
        return cls(path) if path else None

    # -- persistence ---------------------------------------------------------

    def _entry_path(self, key: str) -> Path:
        return self.path / f"art_{key}.json"

    def _valid(self, payload: object, key: str, context_fp: str,
               signature: tuple, qos_budget_s: float) -> bool:
        if not (isinstance(payload, dict)
                and payload.get("schema") == ARTIFACT_SCHEMA
                and payload.get("key") == key
                and payload.get("context") == context_fp
                and payload.get("signature") == repr(signature)):
            return False
        # The full key material must match, budget included — a digest
        # collision between two budgets of one layer must degrade to a
        # miss, never serve the wrong version tables.  Compared at the
        # key's rounding precision (payloads record the unrounded
        # budget the compile ran with).
        recorded = payload.get("qos_budget_s")
        return (isinstance(recorded, (int, float))
                and round(float(recorded), BUDGET_DECIMALS)
                == round(qos_budget_s, BUDGET_DECIMALS))

    def get(self, key: str, context_fp: str,
            layer: LayerSpec, qos_budget_s: float) -> CompiledLayer | None:
        """The cached artifact rebound to ``layer``, or ``None`` (miss)."""
        payload = self._memory.get(key)
        if payload is None and self.path is not None:
            entry = self._entry_path(key)
            try:
                payload = json.loads(entry.read_text())
            except FileNotFoundError:
                payload = None
            except (OSError, ValueError):
                self.stats.corrupt += 1
                payload = None
        if payload is not None and self._valid(payload, key, context_fp,
                                               layer.signature,
                                               qos_budget_s):
            try:
                compiled = layer_from_payload(payload, layer)
            except (KeyError, TypeError, ValueError):
                self.stats.corrupt += 1
            else:
                self._memory[key] = payload
                self.stats.hits += 1
                return compiled
        self.stats.misses += 1
        return None

    def put(self, key: str, context_fp: str,
            compiled: CompiledLayer) -> None:
        """Record one compiled layer (memory, plus disk when backed)."""
        payload = layer_payload(key, context_fp, compiled)
        self._memory[key] = payload
        self.stats.writes += 1
        if self.path is not None:
            self._write_entry(key, payload)

    def _write_entry(self, key: str, payload: dict) -> None:
        # Atomic write: a crashed or concurrent writer must never leave
        # a half-file another process would read as corrupt.  Any
        # OSError — unwritable/read-only directory, full disk —
        # degrades to in-memory caching.
        tmp_name = None
        try:
            self.path.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=self.path, suffix=".tmp")
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(payload, sort_keys=True) + "\n")
            os.replace(tmp_name, self._entry_path(key))
        except OSError:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass

    # -- bulk operations -----------------------------------------------------

    def _disk_entries(self) -> list[Path]:
        if self.path is None or not self.path.is_dir():
            return []
        return sorted(self.path.glob("art_*.json"))

    def load(self) -> int:
        """Read every valid disk entry into memory; returns the count.

        Invalid entries are left on disk for :meth:`gc` to report.
        """
        loaded = 0
        for entry in self._disk_entries():
            try:
                payload = json.loads(entry.read_text())
            except (OSError, ValueError):
                self.stats.corrupt += 1
                continue
            if (isinstance(payload, dict)
                    and payload.get("schema") == ARTIFACT_SCHEMA
                    and isinstance(payload.get("key"), str)):
                self._memory[payload["key"]] = payload
                loaded += 1
            else:
                self.stats.corrupt += 1
        return loaded

    def save(self) -> int:
        """Flush every in-memory entry to disk; returns the count.

        Normal operation writes through on :meth:`put`; this exists for
        stores constructed in memory and given a path later, and for
        the CLI's explicit warm step.
        """
        if self.path is None:
            raise ValueError("store has no path; construct with a "
                             "directory to save")
        for key, payload in self._memory.items():
            self._write_entry(key, payload)
        return len(self._memory)

    def gc(self, drop_all: bool = False) -> list[str]:
        """Delete invalid (or, with ``drop_all``, every) disk entries.

        An entry is invalid when it cannot be parsed, fails schema
        validation, or its filename disagrees with its recorded key.
        Returns the deleted file names.
        """
        deleted = []
        for entry in self._disk_entries():
            drop = drop_all
            if not drop:
                try:
                    payload = json.loads(entry.read_text())
                except (OSError, ValueError):
                    drop = True
                else:
                    drop = not (isinstance(payload, dict)
                                and payload.get("schema") == ARTIFACT_SCHEMA
                                and entry.name ==
                                f"art_{payload.get('key')}.json")
            if drop:
                entry.unlink(missing_ok=True)
                deleted.append(entry.name)
        if drop_all:
            self._memory.clear()
        return deleted

    def entries(self) -> list[dict]:
        """Summaries of every disk entry (the CLI's inspect view)."""
        rows = []
        for entry in self._disk_entries():
            row = {"file": entry.name, "bytes": entry.stat().st_size,
                   "valid": False}
            try:
                payload = json.loads(entry.read_text())
            except (OSError, ValueError):
                rows.append(row)
                continue
            if isinstance(payload, dict):
                row.update(
                    valid=payload.get("schema") == ARTIFACT_SCHEMA,
                    schema=payload.get("schema"),
                    signature=payload.get("signature"),
                    context=payload.get("context"),
                    versions=len(payload.get("versions") or ()),
                    qos_budget_s=payload.get("qos_budget_s"))
            rows.append(row)
        return rows

    def __len__(self) -> int:
        return len(self._memory)


def resolve_store(store: "ArtifactStore | str | Path | None",
                  ) -> "ArtifactStore | None":
    """Normalise the ``artifact_store=`` argument of the serving layer.

    ``"auto"`` consults :data:`STORE_ENV`; ``None`` disables
    persistence (in-memory dedup still applies); a path string builds a
    disk-backed store; a store instance passes through.
    """
    if store == "auto":
        return ArtifactStore.from_env()
    if store is None or isinstance(store, ArtifactStore):
        return store
    return ArtifactStore(store)


# ---------------------------------------------------------------------------
# Parallel layer compilation

#: Compile description inherited by fork()-ed workers (copy-on-write,
#: never pickled) — the same discipline as the sweep pool's state.
_COMPILE_STATE: SinglePassCompiler | None = None


def _compile_worker(item: tuple[int, LayerSpec, float]
                    ) -> tuple[int, CompiledLayer]:
    index, layer, budget = item
    return index, _COMPILE_STATE.compile_layer(layer, budget)


def compile_layers(single_pass: SinglePassCompiler,
                   work: list[tuple[LayerSpec, float]],
                   workers: int = 1) -> list[CompiledLayer]:
    """Compile independent (layer, budget) items, optionally in parallel.

    Every item is an independent Alg. 1 run seeded by its layer
    signature, so the fan-out is embarrassingly parallel and the
    results are bit-identical to the serial path.  ``workers <= 1``, a
    platform without ``fork``, or a pool failure mid-run all fall back
    to in-process compilation.
    """
    global _COMPILE_STATE
    if workers <= 1 or len(work) <= 1:
        return [single_pass.compile_layer(layer, budget)
                for layer, budget in work]
    from repro.parallel import fork_worker_pool
    items = [(i, layer, budget) for i, (layer, budget) in enumerate(work)]
    _COMPILE_STATE = single_pass
    try:
        with fork_worker_pool(min(workers, len(work))) as pool:
            if pool is not None:
                try:
                    indexed = pool.map(_compile_worker, items)
                except OSError:
                    indexed = None  # worker/pipe died: recompute serially
                if indexed is not None:
                    ordered = [None] * len(work)
                    for index, compiled in indexed:
                        ordered[index] = compiled
                    return ordered
    finally:
        _COMPILE_STATE = None
    return [single_pass.compile_layer(layer, budget)
            for layer, budget in work]
