"""Loop-nest schedules and their parallelism / locality metrics.

A :class:`Schedule` captures the CPU code-generation knobs the paper
considers (Sec. 2.2): LLC-level loop blocking (``tile_m/n/k``), the number
of independent parallel chunks the outer loop is split into
(``parallel_chunks``), the inner-loop unroll factor, and the SIMD vector
width.

The two scalar metrics of paper Sec. 4.1 are exposed directly:

* ``parallelism``  = unroll factor x parallelization factor,
* ``blocking_size`` (the locality metric) = the tile's element area.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import FP32_BYTES
from repro.models.layers import GemmShape

#: AVX2 single-precision lanes — the paper's platform runs AVX2.
DEFAULT_VECTOR_LANES = 8


@dataclass(frozen=True, order=True)
class Schedule:
    """One concrete code version for a layer's implicit GEMM."""

    tile_m: int
    tile_n: int
    tile_k: int
    parallel_chunks: int
    unroll: int = 4
    vector_lanes: int = DEFAULT_VECTOR_LANES

    def __post_init__(self) -> None:
        if min(self.tile_m, self.tile_n, self.tile_k,
               self.parallel_chunks, self.unroll, self.vector_lanes) <= 0:
            raise ValueError(f"schedule fields must be positive: {self}")

    # -- paper metrics -------------------------------------------------------

    @property
    def parallelism(self) -> int:
        """Paper Sec. 4.1: unrolling factor x parallelization factor."""
        return self.unroll * self.parallel_chunks

    @property
    def blocking_size(self) -> int:
        """Paper Sec. 4.1 locality metric: the blocking (tile) size."""
        return self.tile_m * self.tile_n

    # -- footprints ----------------------------------------------------------

    @property
    def tile_footprint_bytes(self) -> int:
        """Bytes one tile keeps live: A, B panels plus the C tile."""
        return FP32_BYTES * (self.tile_m * self.tile_k
                             + self.tile_k * self.tile_n
                             + self.tile_m * self.tile_n)

    # -- legality ------------------------------------------------------------

    def is_legal_for(self, gemm: GemmShape) -> bool:
        """A schedule is legal when tiles fit the iteration space and the
        parallel chunk count does not exceed the number of tiles."""
        if self.tile_m > gemm.m or self.tile_n > gemm.n or self.tile_k > gemm.k:
            return False
        return self.parallel_chunks <= num_tiles(gemm, self)

    def clipped_to(self, gemm: GemmShape) -> "Schedule":
        """Return the nearest legal schedule for ``gemm``."""
        tile_m = min(self.tile_m, gemm.m)
        tile_n = min(self.tile_n, gemm.n)
        tile_k = min(self.tile_k, gemm.k)
        tiles = (math.ceil(gemm.m / tile_m) * math.ceil(gemm.n / tile_n))
        return Schedule(
            tile_m=tile_m,
            tile_n=tile_n,
            tile_k=tile_k,
            parallel_chunks=max(1, min(self.parallel_chunks, tiles)),
            unroll=self.unroll,
            vector_lanes=self.vector_lanes,
        )


def num_tiles(gemm: GemmShape, schedule: Schedule) -> int:
    """Number of output tiles — the natural parallel work units."""
    return (math.ceil(gemm.m / schedule.tile_m)
            * math.ceil(gemm.n / schedule.tile_n))


def gemm_traffic_bytes(gemm: GemmShape, tile_m: int, tile_n: int,
                       tile_k: int) -> float:
    """DRAM/next-level traffic of a tiled GEMM, in bytes.

    Classic blocked-GEMM accounting: the A panel is re-read once per column
    of tiles, the B panel once per row of tiles, and C is streamed once per
    K-pass (read + write):

    ``Q = M*K*ceil(N/tn) + K*N*ceil(M/tm) + 2*M*N*ceil(K/tk)`` elements.

    The result is floored at the compulsory traffic (each array touched
    once), which a perfect schedule achieves when its tiles span the array.
    """
    m, n, k = gemm.m, gemm.n, gemm.k
    tile_m = max(1, min(tile_m, m))
    tile_n = max(1, min(tile_n, n))
    tile_k = max(1, min(tile_k, k))
    passes_a = math.ceil(n / tile_n)
    passes_b = math.ceil(m / tile_m)
    passes_c = math.ceil(k / tile_k)
    traffic = (m * k * passes_a + k * n * passes_b + 2 * m * n * passes_c)
    compulsory = m * k + k * n + 2 * m * n
    return float(max(traffic, compulsory)) * FP32_BYTES


def fit_tiles_to_budget(tile_m: int, tile_n: int, tile_k: int,
                        budget_bytes: float,
                        floor: int = 4) -> tuple[int, int, int]:
    """Shrink the M/N tile dimensions until the footprint fits ``budget_bytes``.

    The K dimension is preserved (K-panels stream), M and N scale by the
    same factor; each dimension is floored so degenerate tiles cannot occur.
    This models what happens to an over-sized blocking when the effective
    cache share contracts under contention.
    """
    if budget_bytes <= 0:
        return floor, floor, tile_k
    footprint = FP32_BYTES * (tile_m * tile_k + tile_k * tile_n
                              + tile_m * tile_n)
    if footprint <= budget_bytes:
        return tile_m, tile_n, tile_k
    scale = budget_bytes / footprint
    new_m = max(floor, int(tile_m * scale))
    new_n = max(floor, int(tile_n * scale))
    return min(new_m, tile_m), min(new_n, tile_n), tile_k
