"""Paper Algorithm 1: static multi-version compilation in a single pass.

Pipeline per layer (Fig. 9b-d):

1. run ONE auto-scheduler pass and keep every evaluated sample;
2. drop samples that cannot meet the layer's QoS budget (the per-layer
   budget is the model QoS split proportionally to op count — Alg. 1
   line 3);
3. extract the *dominant* implementations: the Pareto-minimal set on
   (blocking size, parallelism).  Both metrics price a contended
   resource — blocking claims shared LLC, parallelism claims cores — so
   points with another implementation below-left of them are never the
   cheapest way to meet QoS.  The QoS filter is what bends this frontier:
   cheap-on-both points are too slow and have already been removed;
4. pick up to V versions uniformly along the frontier (by blocking size);
5. test the picks across interference levels and drop versions whose
   removal keeps the per-level best latency within ``keep_threshold`` of
   the full set — most layers need fewer than V versions (paper Fig. 7b).
"""

from __future__ import annotations

import math
import zlib
from bisect import bisect_right
from dataclasses import dataclass
from functools import cached_property

from repro.models.layers import LayerSpec
from repro.compiler.autoscheduler import AutoScheduler, Measured
from repro.compiler.costmodel import CostModel
from repro.compiler.interference_aware import default_levels
from repro.compiler.schedule import Schedule

#: Paper Sec. 5.5: the empirically-chosen maximal version count.
DEFAULT_MAX_VERSIONS = 5

#: Paper Sec. 3.3 / 4.1 evaluate ten interference levels.
DEFAULT_LEVELS = 10

#: Keep pruning while the per-level best stays within this fraction of the
#: full set's best (the paper's Sec. 4.1 redundancy-removal rule).
DEFAULT_KEEP_THRESHOLD = 0.95


def extract_dominant(samples: list[Measured]) -> list[Measured]:
    """Pareto-minimal samples on (blocking size, parallelism).

    A sample is dominated when another sample has blocking size and
    parallelism both no larger, at least one strictly smaller (Alg. 1
    ``ExtractDominant``).  Ties on both metrics keep the fastest sample.
    """
    best_by_point: dict[tuple[int, int], Measured] = {}
    for sample in samples:
        point = (sample.schedule.blocking_size, sample.parallelism)
        seen = best_by_point.get(point)
        if seen is None or sample.latency_s < seen.latency_s:
            best_by_point[point] = sample

    # Sweep by blocking size; keep points whose parallelism strictly
    # improves on everything with smaller-or-equal blocking.
    ordered = sorted(best_by_point.values(),
                     key=lambda s: (s.schedule.blocking_size,
                                    s.parallelism))
    frontier: list[Measured] = []
    best_parallelism = math.inf
    for sample in ordered:
        if sample.parallelism < best_parallelism:
            frontier.append(sample)
            best_parallelism = sample.parallelism
    return frontier


def uniform_pick(frontier: list[Measured],
                 max_versions: int) -> list[Measured]:
    """Up to ``max_versions`` frontier points, uniform along the frontier.

    The frontier arrives sorted by blocking size; the ends (most-local and
    most-parallel implementations) are always included.
    """
    if max_versions <= 0:
        raise ValueError("max_versions must be positive")
    if len(frontier) <= max_versions:
        return list(frontier)
    if max_versions == 1:
        return [frontier[0]]
    span = len(frontier) - 1
    indices = sorted({round(i * span / (max_versions - 1))
                      for i in range(max_versions)})
    return [frontier[i] for i in indices]


@dataclass(frozen=True)
class CompiledLayer:
    """Multi-version compilation result for one layer.

    ``versions`` are ordered by descending blocking size: index 0 is the
    most locality-heavy (light-interference) version, the last index the
    most parallelism-heavy (heavy-interference) version.
    """

    layer: LayerSpec
    qos_budget_s: float
    levels: tuple[float, ...]
    versions: tuple[Schedule, ...]
    #: versions x levels latency table measured at the tuning core grant.
    latency_table: tuple[tuple[float, ...], ...]
    #: Per level, the index of the best version.
    version_for_level: tuple[int, ...]
    #: Diagnostics: frontier size and total evaluated samples.
    dominant_count: int
    sample_count: int

    def __post_init__(self) -> None:
        if not self.versions:
            raise ValueError(f"layer {self.layer.name!r} has no versions")
        if len(self.latency_table) != len(self.versions):
            raise ValueError("latency table does not match versions")
        if len(self.version_for_level) != len(self.levels):
            raise ValueError("level map does not match levels")

    @property
    def version_count(self) -> int:
        return len(self.versions)

    @cached_property
    def _level_thresholds(self) -> tuple[float, ...]:
        """Exact selection boundaries between adjacent levels.

        ``thresholds[i]`` is the smallest float whose nearest level
        (with the scan's tie-break: equal distances resolve to the
        lower index) is ``i + 1``.  The arithmetic midpoint is only a
        starting guess — float rounding makes the two distances
        asymmetric within an ulp or two of it — so the boundary is
        pinned down by an ulp walk, keeping the bisect bit-identical
        to the scan it replaces.
        """
        thresholds = []
        for i in range(len(self.levels) - 1):
            low, high = self.levels[i], self.levels[i + 1]

            def picks_upper(x: float) -> bool:
                return abs(high - x) < abs(low - x)

            boundary = (low + high) / 2.0
            if picks_upper(boundary):
                while True:
                    prev = math.nextafter(boundary, low)
                    if prev <= low or not picks_upper(prev):
                        break
                    boundary = prev
            else:
                while boundary < high and not picks_upper(boundary):
                    boundary = math.nextafter(boundary, high)
            thresholds.append(boundary)
        return tuple(thresholds)

    def level_index(self, interference: float) -> int:
        """Nearest calibration level for a pressure value.

        This sits on the engine's pricing-miss hot path (every block
        price consults it per layer), so the O(levels) nearest scan is
        replaced by a bisect over precomputed thresholds; the
        thresholds reproduce the scan's selection exactly, float
        tie-breaks included.
        """
        return bisect_right(self._level_thresholds, interference)

    def version_index_for(self, interference: float) -> int:
        return self.version_for_level[self.level_index(interference)]

    def version_for(self, interference: float) -> Schedule:
        """The version the runtime should run at this pressure level."""
        return self.versions[self.version_index_for(interference)]

    def static_version(self) -> Schedule:
        """The isolation-optimal version (what plain Ansor would ship)."""
        return self.versions[self.version_for_level[0]]


class SinglePassCompiler:
    """Algorithm 1, bound to a cost model and an auto-scheduler."""

    def __init__(self, cost_model: CostModel,
                 scheduler: AutoScheduler | None = None,
                 trials: int = 512,
                 levels: int = DEFAULT_LEVELS,
                 max_versions: int = DEFAULT_MAX_VERSIONS,
                 keep_threshold: float = DEFAULT_KEEP_THRESHOLD,
                 tuning_cores: int | None = None,
                 seed: int = 0) -> None:
        if not 0.0 < keep_threshold <= 1.0:
            raise ValueError("keep_threshold must be in (0, 1]")
        self.cost_model = cost_model
        self.scheduler = scheduler or AutoScheduler(cost_model)
        self.trials = trials
        self.levels = default_levels(levels)
        self.max_versions = max_versions
        self.keep_threshold = keep_threshold
        # Per-level version tables are profiled at a realistic multi-tenant
        # grant (half the machine), not the whole chip the tuning pass
        # owns — co-located tasks never see all cores.
        self.tuning_cores = (tuning_cores if tuning_cores is not None
                             else max(1, cost_model.cpu.cores // 2))
        self.seed = seed

    # ------------------------------------------------------------------

    def compile_layer(self, layer: LayerSpec,
                      qos_budget_s: float) -> CompiledLayer:
        """Run Alg. 1 for one layer with a per-layer latency budget."""
        if qos_budget_s <= 0:
            raise ValueError("qos_budget_s must be positive")
        # zlib.crc32, not hash(): hashes of str/tuple values are salted
        # per process (PYTHONHASHSEED), which would make compiled
        # artifacts — and every simulation built on them —
        # irreproducible across runs.
        search = self.scheduler.search(
            layer, interference=0.0, trials=self.trials,
            seed=self.seed ^ (zlib.crc32(repr(layer.signature).encode())
                              & 0x7FFFFFFF))

        qualified = [m for m in search.samples
                     if m.latency_s <= qos_budget_s]
        if not qualified:
            # No sample meets the budget even alone on the machine: keep
            # the fastest few so serving degrades instead of failing.
            qualified = sorted(search.samples,
                               key=lambda m: m.latency_s)[:8]

        frontier = extract_dominant(qualified)

        # Candidate versions: the best-performing qualified sample at each
        # interference level (the paper's Sec. 3.3 per-level profiling),
        # re-scored at a realistic multi-tenant core grant.
        picks = self._per_level_winners(layer, qualified)
        if len(picks) > self.max_versions:
            picks.sort(key=lambda m: m.schedule.blocking_size)
            picks = uniform_pick(picks, self.max_versions)

        table = [[self.cost_model.latency(layer, m.schedule,
                                          self.tuning_cores, level)
                  for level in self.levels] for m in picks]
        kept = self._prune(picks, table)
        picks = [picks[i] for i in kept]
        table = [table[i] for i in kept]

        # Most-local version first (see CompiledLayer docstring).
        order = sorted(range(len(picks)),
                       key=lambda i: -picks[i].schedule.blocking_size)
        picks = [picks[i] for i in order]
        table = [table[i] for i in order]

        version_for_level = tuple(
            min(range(len(picks)), key=lambda v: table[v][li])
            for li in range(len(self.levels)))
        return CompiledLayer(
            layer=layer,
            qos_budget_s=qos_budget_s,
            levels=self.levels,
            versions=tuple(m.schedule for m in picks),
            latency_table=tuple(tuple(row) for row in table),
            version_for_level=version_for_level,
            dominant_count=len(frontier),
            sample_count=len(search.samples),
        )

    # ------------------------------------------------------------------

    def _per_level_winners(self, layer: LayerSpec,
                           qualified: list[Measured]) -> list[Measured]:
        """The per-interference-level best schedules among the samples.

        At most one candidate per level, deduplicated; this is the ideal
        version set the multi-pass extension would find, recovered from
        the single pass's sample population for free.
        """
        winners: dict = {}
        for level in self.levels:
            best = min(qualified,
                       key=lambda m, level=level: self.cost_model.latency(
                           layer, m.schedule, self.tuning_cores, level))
            winners.setdefault(best.schedule, best)
        return list(winners.values())

    def _prune(self, picks: list[Measured],
               table: list[list[float]]) -> list[int]:
        """Drop versions whose removal keeps per-level best within bound.

        Returns indices of the kept versions (at least one, and always at
        most ``max_versions``).  Greedy: repeatedly remove the version
        whose removal hurts least, while every level's best latency stays
        within ``1/keep_threshold`` of the full set's best.
        """
        levels = range(len(self.levels))
        full_best = [min(table[v][li] for v in range(len(picks)))
                     for li in levels]
        kept = list(range(len(picks)))
        while len(kept) > 1:
            best_candidate = None
            best_score = None
            for candidate in kept:
                remaining = [v for v in kept if v != candidate]
                worst_ratio = max(
                    min(table[v][li] for v in remaining) / full_best[li]
                    for li in levels)
                if worst_ratio <= 1.0 / self.keep_threshold:
                    if best_score is None or worst_ratio < best_score:
                        best_score = worst_ratio
                        best_candidate = candidate
            if best_candidate is None:
                break
            kept.remove(best_candidate)
        return kept
