"""A vendor-library stand-in (MKL-DNN-like) for the paper's Fig. 2 baseline.

Closed vendor libraries ship a small set of hand-written kernels selected
by coarse shape heuristics — good everywhere, optimal almost nowhere.
:class:`VendorLibrary` mimics that: a fixed blocking scheme bucketed only
by coarse shape class, never tuned per layer.  The searched compiler
(:mod:`repro.compiler.autoscheduler`) should beat it consistently, which
is the paper's argument for compiler-generated code.
"""

from __future__ import annotations

from repro.models.graph import ModelGraph
from repro.models.layers import LayerSpec
from repro.compiler.costmodel import CostModel
from repro.compiler.library import CompiledModel
from repro.compiler.multiversion import CompiledLayer
from repro.compiler.schedule import Schedule


def vendor_schedule(layer: LayerSpec) -> Schedule:
    """The fixed heuristic kernel a vendor library would dispatch to."""
    gemm = layer.gemm
    if gemm.n == 1:
        # Element-wise / pooling / depthwise path: flat parallel loop.
        base = Schedule(tile_m=256, tile_n=1, tile_k=8,
                        parallel_chunks=256, unroll=4)
    elif gemm.m == 1:
        # Vector-matrix path (classifier heads).
        base = Schedule(tile_m=1, tile_n=64, tile_k=256,
                        parallel_chunks=16, unroll=4)
    else:
        # Generic blocked GEMM/conv kernel: one size fits all.  Real
        # vendor kernels also stop scaling at moderate thread counts for
        # server-size shapes (intra-op partitioning is fixed at build
        # time), hence the modest chunk count.
        base = Schedule(tile_m=32, tile_n=64, tile_k=128,
                        parallel_chunks=32, unroll=4)
    return base.clipped_to(gemm)


class VendorLibrary:
    """Builds single-version compiled models from the fixed kernels."""

    def __init__(self, cost_model: CostModel, levels: int = 10) -> None:
        self.cost_model = cost_model
        self.levels = tuple(i / (levels - 1) for i in range(levels))

    def compile_model(self, graph: ModelGraph, qos_s: float) -> CompiledModel:
        """Wrap every layer's vendor kernel in the library interface."""
        cores = self.cost_model.cpu.cores
        fractions = graph.op_fractions()
        layers = []
        for layer, fraction in zip(graph.layers, fractions):
            schedule = vendor_schedule(layer)
            row = tuple(self.cost_model.latency(layer, schedule, cores,
                                                level)
                        for level in self.levels)
            layers.append(CompiledLayer(
                layer=layer,
                qos_budget_s=max(qos_s * fraction, 1e-7),
                levels=self.levels,
                versions=(schedule,),
                latency_table=(row,),
                version_for_level=tuple(0 for _ in self.levels),
                dominant_count=1,
                sample_count=1,
            ))
        return CompiledModel(graph=graph, qos_s=qos_s, layers=tuple(layers))
