"""Compilation substrate: schedule space, cost model, auto-scheduler, and
the paper's single-pass multi-version compiler (Alg. 1)."""

from repro.compiler.artifacts import (
    ARTIFACT_SCHEMA,
    ArtifactStore,
    artifact_key,
    compile_layers,
    compiler_context,
    context_fingerprint,
    resolve_store,
)
from repro.compiler.autoscheduler import AutoScheduler, Measured, SearchResult
from repro.compiler.costmodel import CostBreakdown, CostModel, CostModelParams
from repro.compiler.interference_aware import (
    MultiPassResult,
    default_levels,
    multi_pass_search,
)
from repro.compiler.library import CompiledModel, ModelCompiler
from repro.compiler.multiversion import (
    CompiledLayer,
    SinglePassCompiler,
    extract_dominant,
    uniform_pick,
)
from repro.compiler.schedule import (
    Schedule,
    fit_tiles_to_budget,
    gemm_traffic_bytes,
    num_tiles,
)
from repro.compiler.space import ScheduleSpace
from repro.compiler.vendor import VendorLibrary, vendor_schedule

__all__ = [
    "ARTIFACT_SCHEMA", "ArtifactStore", "artifact_key", "compile_layers",
    "compiler_context", "context_fingerprint", "resolve_store",
    "AutoScheduler", "Measured", "SearchResult",
    "CostBreakdown", "CostModel", "CostModelParams",
    "MultiPassResult", "default_levels", "multi_pass_search",
    "CompiledModel", "ModelCompiler",
    "CompiledLayer", "SinglePassCompiler", "extract_dominant", "uniform_pick",
    "Schedule", "fit_tiles_to_budget", "gemm_traffic_bytes", "num_tiles",
    "ScheduleSpace", "VendorLibrary", "vendor_schedule",
]
