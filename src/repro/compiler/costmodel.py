"""Analytic layer-latency model: (layer, schedule, cores, interference) -> time.

This module is the load-bearing substitution for the paper's physical
testbed (TVM-generated kernels on a 64-core Threadripper).  It has two
parts:

**Isolated execution** is a mechanistic roofline: per-core compute rate
derived from the schedule's vectorization / unrolling / tile micro-kernel
efficiency, and memory time from a two-level (private L2, shared LLC)
per-tensor traffic account — the input panel is re-read once per
output-channel block, the weight panel once per row block, and partial
output sums are re-streamed once per K panel.

**Contention scaling** multiplies isolated latency by a sensitivity
function calibrated to the paper's measurements (Fig. 1b, Fig. 6a):

``slowdown(I) = 1 + I * (V_cache * vuln_cache * reuse_fraction
                          + V_bw * mem_fraction * (1 - defense))``

* ``vuln_cache`` grows with the LLC-resident hot set the schedule's
  blocking relies on — large-blocking (high locality) code loses its LLC
  reuse to co-tenants and degrades by multiples, exactly the
  interference-vulnerable behaviour of paper Fig. 6a.
* ``defense`` grows with the cores the schedule can actually occupy —
  high-parallelism code keeps more memory requests in flight and defends
  its bandwidth share, the interference-tolerant behaviour.
* ``V_cache``/``V_bw`` are the two calibration constants; defaults put a
  locality-heavy version near the paper's ~7x worst-case degradation and
  parallelism-heavy versions near ~1.3x.

All latencies are seconds; ``interference`` is the system pressure level
in ``[0, 1]`` (paper Sec. 4.3 "interference pressure level").

**Device kinds.**  The model binds to any
:class:`~repro.hardware.platform.DeviceSpec`.  The CPU path is the
calibrated original, bit-for-bit: every constant a CPU execution reads
resolves to the same :class:`CostModelParams` field through the same
expressions.  An :class:`~repro.hardware.platform.AcceleratorSpec`
swaps in the SM/streams economics — warp-width (``simt_lanes``) lane
utilisation instead of the schedule's vector width, an occupancy ramp
that keeps under-parallelised kernels off peak (the batch-friendly
throughput curve), stream/kernel launch costs, and the accelerator's
own contention sensitivities (HBM bandwidth contended by resident
streams, device-L2 reuse less load-bearing than CPU LLC reuse).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import CACHE_LINE_BYTES, FP32_BYTES
from repro.hardware.platform import CpuSpec, DeviceSpec
from repro.models.layers import LayerSpec
from repro.compiler.schedule import Schedule, num_tiles


@dataclass(frozen=True)
class CostBreakdown:
    """Full accounting of one layer execution under the model."""

    total_s: float
    compute_s: float
    mem_s: float
    cores_used: int
    dram_bytes: float
    llc_bytes: float
    flops: int
    slowdown: float

    @property
    def dram_line_misses(self) -> float:
        """LLC->DRAM cache-line transfers (the L3 miss counter)."""
        return self.dram_bytes / CACHE_LINE_BYTES

    @property
    def llc_line_accesses(self) -> float:
        """L2->LLC cache-line transfers (the L3 access counter)."""
        return max(self.llc_bytes / CACHE_LINE_BYTES, 1.0)

    @property
    def llc_miss_rate(self) -> float:
        return min(1.0, self.dram_line_misses / self.llc_line_accesses)


@dataclass(frozen=True)
class CostModelParams:
    """Tunable constants of the analytic model (ablation knobs)."""

    #: Calibrated contention sensitivities (see module docstring).
    cache_sensitivity: float = 8.0
    bw_sensitivity: float = 1.4
    #: Hot-set size at which cache vulnerability saturates.  Co-tenant
    #: streams reliably destroy LLC reuse beyond a few MB of hot set.
    cache_vuln_ref_bytes: float = 3 * 1024 * 1024
    #: Bandwidth defense strength of fully occupying the chip.
    bw_defense_max: float = 0.8
    #: Cores needed for one task to saturate DRAM bandwidth.
    dram_saturation_cores: int = 8
    #: Exposed DRAM latency for streaming traffic and in-flight misses.
    miss_latency_s: float = 90e-9
    mlp_per_core: float = 10.0
    max_mlp: float = 256.0
    #: Non-overlapped fraction of the smaller of compute/memory time.
    overlap_slack: float = 0.10
    #: Per-core synchronisation/straggler tax on compute time: wide
    #: parallel regions pay barrier and work-stealing costs, so speedup
    #: saturates well below core count (paper Fig. 4a) and frugal grants
    #: are genuinely cheaper in core-seconds.
    sync_tax_per_core: float = 0.005
    #: Fixed kernel-launch cost charged per layer by the serving layer.
    layer_launch_s: float = 2e-6
    #: Usable fraction of the private L2 and the L2-level K-panel cap.
    l2_usable_fraction: float = 0.8
    l2_tile_k_cap: int = 512
    #: Weights of LLC occupancy vs DRAM bandwidth demand in a task's
    #: contribution to system pressure.  Calibrated so that ~4 typical
    #: co-located vision blocks produce the ~1.8x average slowdown of
    #: paper Fig. 1b (pressure ~0.3-0.4), saturating only under extreme
    #: fan-out.
    pressure_llc_weight: float = 0.2
    pressure_bw_weight: float = 0.2


def _core_grid(total_cores: int) -> list[int]:
    """Geometric-ish probe points for U-shaped latency-vs-cores curves."""
    grid = [1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48]
    return [c for c in grid if c < total_cores] + [total_cores]


@dataclass(frozen=True)
class _Profile:
    """Schedule-derived quantities shared by latency and counter math."""

    cores_used: int
    chunks: int
    compute_s: float
    compulsory: float
    beyond_l2: float
    hot_bytes: float


class CostModel:
    """Latency and traffic model bound to one device platform.

    ``cpu`` accepts any :class:`DeviceSpec`; the attribute keeps its
    historical name because every consumer reads ``cost_model.cpu``
    (``device`` is an alias).  Contention constants are resolved once at
    construction: the CPU kind reads them from :class:`CostModelParams`
    (whose field set is frozen into the artifact key schema), the
    accelerator kind from its own spec fields.
    """

    def __init__(self, cpu: CpuSpec | DeviceSpec,
                 params: CostModelParams | None = None) -> None:
        self.cpu = cpu
        self.device = cpu
        self.kind = getattr(cpu, "kind", "cpu")
        self.params = params or CostModelParams()
        self._memo: dict[tuple, CostBreakdown] = {}
        self._accel = self.kind == "accelerator"
        p = self.params
        if self._accel:
            self._cache_sensitivity = cpu.cache_sensitivity
            self._bw_sensitivity = cpu.bw_sensitivity
            self._cache_vuln_ref = cpu.cache_vuln_ref_bytes
            self._bw_defense_max = cpu.bw_defense_max
            self._dram_saturation = cpu.dram_saturation_units
            self._mlp_per_unit = cpu.mlp_per_unit
            self._max_mlp = cpu.max_mlp
            self._sync_tax = cpu.sync_tax_per_unit
        else:
            self._cache_sensitivity = p.cache_sensitivity
            self._bw_sensitivity = p.bw_sensitivity
            self._cache_vuln_ref = p.cache_vuln_ref_bytes
            self._bw_defense_max = p.bw_defense_max
            self._dram_saturation = p.dram_saturation_cores
            self._mlp_per_unit = p.mlp_per_core
            self._max_mlp = p.max_mlp
            self._sync_tax = p.sync_tax_per_core

    @property
    def launch_s(self) -> float:
        """Per-kernel launch cost for this device kind.

        The CPU reads :attr:`CostModelParams.layer_launch_s` (the
        paper's constant); the accelerator its own ``kernel_launch_s``.
        Every per-layer launch charge goes through here.
        """
        if self._accel:
            return self.device.kernel_launch_s
        return self.params.layer_launch_s

    # ------------------------------------------------------------------
    # schedule profile
    # ------------------------------------------------------------------

    def _per_core_rate(self, layer: LayerSpec, schedule: Schedule) -> float:
        """Sustained flops/s of one core running this schedule."""
        gemm = layer.gemm
        # On the accelerator the lane count is the warp width: all
        # ``simt_lanes`` lanes execute in lockstep, so skinny extents
        # waste lanes regardless of the schedule's CPU vector width.
        lanes = (self.device.simt_lanes if self._accel
                 else schedule.vector_lanes)
        # Vectorize along N when it is wide enough, else along M
        # (element-wise and depthwise layers have N == 1).
        vec_extent = schedule.tile_n if gemm.n >= lanes else schedule.tile_m
        vec_util = vec_extent / (math.ceil(vec_extent / lanes) * lanes)
        unroll = schedule.unroll
        unroll_eff = unroll / (unroll + 0.3)
        if unroll > 8:
            unroll_eff *= 0.98
        # Small tiles re-load accumulators and pay loop prologues more
        # often; short K panels break the FMA pipeline — the micro-kernel
        # cost of trading locality for parallel chunks.
        tile_n_eff = max(schedule.tile_n, lanes)
        tile_eff = ((schedule.tile_m / (schedule.tile_m + 6))
                    * (tile_n_eff / (tile_n_eff + 6))
                    * (schedule.tile_k / (schedule.tile_k + 24)))
        # Layer-shape efficiency: kernels over shallow reductions (stem
        # convs, depthwise) and small spatial extents (late 7x7 stages)
        # sustain a lower fraction of peak no matter the schedule — the
        # source of the per-layer core-requirement diversity of paper
        # Fig. 4.
        shape_eff = max(0.15, (gemm.k / (gemm.k + 48))
                        * (gemm.m / (gemm.m + 12)))
        return (self.cpu.sustained_flops_per_core
                * vec_util * unroll_eff * tile_eff * shape_eff)

    def _l2_tiles(self, schedule: Schedule) -> tuple[int, int, int]:
        """The schedule's tiles clipped to what the private L2 can hold.

        The K panel is capped first (accumulators stay in registers across
        K sub-panels), then M and N share the remaining budget in a
        balanced square — the shape a register/L2 blocking pass picks
        inside the LLC tile.
        """
        p = self.params
        budget = self.cpu.l2.capacity_bytes * p.l2_usable_fraction
        tile_k = min(schedule.tile_k, p.l2_tile_k_cap)
        span = budget / FP32_BYTES
        balanced = int(-tile_k + math.sqrt(tile_k * tile_k + span))
        balanced = max(4, balanced)
        return (max(1, min(schedule.tile_m, balanced)),
                max(1, min(schedule.tile_n, balanced)),
                tile_k)

    def _profile(self, layer: LayerSpec, schedule: Schedule,
                 cores: int) -> _Profile:
        gemm = layer.gemm
        chunks = min(schedule.parallel_chunks, num_tiles(gemm, schedule))
        cores_used = max(1, min(cores, chunks, self.cpu.cores))

        rate = self._per_core_rate(layer, schedule)
        rounds = math.ceil(chunks / cores_used)
        imbalance = (chunks / cores_used) / rounds
        sync = 1.0 + self._sync_tax * (cores_used - 1)
        compute_s = (layer.flops * sync
                     / (cores_used * rate * imbalance))
        if self._accel:
            # Occupancy ramp: an SM needs several resident blocks to
            # hide latency, so kernels exposing few parallel chunks per
            # SM run well below peak — the batch-friendly throughput
            # curve that makes skinny low-batch layers a poor fit.
            occ = min(1.0, chunks / (cores_used * self.device.occupancy_ramp))
            floor = self.device.min_occupancy_rate
            compute_s /= floor + (1.0 - floor) * occ

        compulsory = float(layer.data_bytes)
        tm2, tn2, tk2 = self._l2_tiles(schedule)
        passes_a = math.ceil(gemm.n / tn2)
        passes_b = math.ceil(gemm.m / tm2)
        passes_c = 1 + math.ceil(gemm.k / tk2)
        beyond_l2 = (layer.input_bytes * passes_a
                     + layer.weight_bytes * passes_b
                     + layer.output_bytes * passes_c)
        beyond_l2 = max(beyond_l2, compulsory)

        # LLC hot set: at the shared level the row blocking spans the
        # co-operating cores (they consume different row tiles of the same
        # resident panels).
        tile_m3 = min(gemm.m, schedule.tile_m * cores_used)
        hot = FP32_BYTES * (tile_m3 * schedule.tile_k
                            + schedule.tile_k * schedule.tile_n
                            + tile_m3 * schedule.tile_n)
        hot = min(float(hot), compulsory)
        return _Profile(cores_used=cores_used, chunks=chunks,
                        compute_s=compute_s, compulsory=compulsory,
                        beyond_l2=beyond_l2, hot_bytes=hot)

    # ------------------------------------------------------------------
    # main entry points
    # ------------------------------------------------------------------

    def execution(self, layer: LayerSpec, schedule: Schedule, cores: int,
                  interference: float = 0.0) -> CostBreakdown:
        """Latency breakdown of one layer execution.

        Parameters
        ----------
        layer, schedule:
            What runs.  The schedule is clipped to legality defensively.
        cores:
            Cores granted by the scheduler (>= 1).
        interference:
            System pressure in [0, 1] caused by co-runners.
        """
        if cores < 1:
            raise ValueError("cores must be >= 1")
        interference = min(1.0, max(0.0, interference))
        key = (layer.signature, schedule, cores, round(interference, 4))
        hit = self._memo.get(key)
        if hit is not None:
            return hit

        p = self.params
        cpu = self.cpu
        schedule = schedule.clipped_to(layer.gemm)
        prof = self._profile(layer, schedule, cores)
        cores_used = prof.cores_used

        # --- isolated memory time ---------------------------------------
        # In isolation the LLC serves all re-read traffic (single-layer hot
        # sets fit a 256 MB LLC), so DRAM sees compulsory traffic only.
        bw = (cpu.dram.bandwidth_bytes_per_s
              * min(1.0, cores_used / self._dram_saturation))
        bandwidth_s = prof.compulsory / bw
        mlp = min(cores_used * self._mlp_per_unit, self._max_mlp)
        latency_s = ((prof.compulsory / CACHE_LINE_BYTES)
                     * p.miss_latency_s / mlp)
        dram_s = max(bandwidth_s, latency_s)
        llc_bw = (cpu.llc.bandwidth_bytes_per_s
                  * max(cores_used / cpu.cores, 1.0 / 16.0))
        llc_s = prof.beyond_l2 / llc_bw
        mem_s = max(dram_s, llc_s)

        iso_s = (max(prof.compute_s, mem_s)
                 + p.overlap_slack * min(prof.compute_s, mem_s))

        # --- contention scaling -------------------------------------------
        reuse_fraction = max(0.0, (prof.beyond_l2 - prof.compulsory)
                             / prof.beyond_l2)
        vuln_cache = min(1.0, prof.hot_bytes / self._cache_vuln_ref)
        mem_fraction = mem_s / (mem_s + prof.compute_s)
        defense = self._bw_defense_max * math.sqrt(cores_used / cpu.cores)
        slowdown = 1.0 + interference * (
            self._cache_sensitivity * vuln_cache * reuse_fraction
            + self._bw_sensitivity * mem_fraction * (1.0 - defense))
        total_s = iso_s * slowdown

        # --- counter-visible traffic -----------------------------------------
        # Contention converts LLC-served re-reads into DRAM misses.
        spilled = (interference * vuln_cache
                   * (prof.beyond_l2 - prof.compulsory))
        dram_bytes = prof.compulsory + spilled

        result = CostBreakdown(
            total_s=total_s,
            compute_s=prof.compute_s,
            mem_s=mem_s,
            cores_used=cores_used,
            dram_bytes=dram_bytes,
            llc_bytes=prof.beyond_l2,
            flops=layer.flops,
            slowdown=slowdown,
        )
        self._memo[key] = result
        return result

    def latency(self, layer: LayerSpec, schedule: Schedule, cores: int,
                interference: float = 0.0) -> float:
        """Seconds for one layer execution (convenience wrapper)."""
        return self.execution(layer, schedule, cores, interference).total_s

    def spawn_overhead(self, cores: int) -> float:
        """Cost of entering a parallel region with ``cores`` pool threads.

        Charged once per scheduling unit.  Worker threads are pooled, so
        this is a wake-and-park handoff, much cheaper than creating
        threads.  The accelerator pays a stream-dispatch cost instead:
        pushing work onto a stream is pricier than waking a pooled
        thread, but grows slower with the grant width.
        """
        if self._accel:
            return self.device.stream_launch_s + 1.0e-6 * max(0, cores)
        return 15e-6 + 1.2e-6 * max(0, cores)

    def expand_overhead(self, extra_cores: int) -> float:
        """Cost of growing a running region by ``extra_cores`` threads.

        This is the paper's scheduling-conflict overhead (Sec. 3.2,
        Fig. 5b: mean ~220 us per conflicted layer): the work must be
        re-partitioned and fresh threads spawned mid-kernel.
        """
        return self.cpu.thread_spawn_s * max(0, extra_cores)

    # ------------------------------------------------------------------
    # derived planning helpers
    # ------------------------------------------------------------------

    def required_cores(self, layer: LayerSpec, schedule: Schedule,
                       budget_s: float,
                       interference: float = 0.0) -> int | None:
        """Minimal cores meeting a latency budget, or ``None`` if impossible.

        Latency over cores is U-shaped (scaling gains vs synchronisation
        tax), so a geometric grid is probed first and the earliest
        feasible grid point refined backwards linearly.
        """
        if budget_s <= 0:
            return None
        grid = _core_grid(self.cpu.cores)
        previous = 1
        for cores in grid:
            if self.latency(layer, schedule, cores,
                            interference) <= budget_s:
                for candidate in range(previous, cores):
                    if self.latency(layer, schedule, candidate,
                                    interference) <= budget_s:
                        return candidate
                return cores
            previous = cores
        return None

    def llc_occupancy(self, layer: LayerSpec, schedule: Schedule,
                      cores: int) -> float:
        """Bytes of shared LLC the execution keeps live."""
        schedule = schedule.clipped_to(layer.gemm)
        prof = self._profile(layer, schedule, cores)
        return min(prof.hot_bytes, self.cpu.llc.capacity_bytes / 2.0)

    def bandwidth_demand(self, layer: LayerSpec, schedule: Schedule,
                         cores: int) -> float:
        """Isolated DRAM bytes/second demand of the execution."""
        exe = self.execution(layer, schedule, cores, interference=0.0)
        return exe.dram_bytes / exe.total_s

    def pressure_contribution(self, layer: LayerSpec, schedule: Schedule,
                              cores: int) -> float:
        """This execution's contribution to system interference pressure.

        Weighted occupancy of the two contended resources the paper
        identifies (LLC capacity and memory bandwidth), in [0, 1].
        """
        p = self.params
        llc_frac = (self.llc_occupancy(layer, schedule, cores)
                    / self.cpu.llc.capacity_bytes)
        bw_frac = (self.bandwidth_demand(layer, schedule, cores)
                   / self.cpu.dram.bandwidth_bytes_per_s)
        raw = (p.pressure_llc_weight * llc_frac
               + p.pressure_bw_weight * min(1.0, bw_frac))
        return min(1.0, raw)
