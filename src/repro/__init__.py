"""repro — a full reproduction of VELTAIR (ASPLOS 2022).

High-performance multi-tenant deep-learning serving on a many-core CPU
via adaptive compilation (single-pass multi-version, paper Alg. 1) and
adaptive scheduling (dynamic threshold layer blocks, Alg. 2/3), rebuilt
on an analytic platform simulator.  See DESIGN.md for the system map and
EXPERIMENTS.md for the figure-by-figure reproduction record.
"""

__version__ = "1.0.0"

from repro.hardware.platform import THREADRIPPER_3990X
from repro.compiler.costmodel import CostModel
from repro.compiler.library import ModelCompiler
from repro.models.registry import get_entry, get_model, model_names
from repro.serving.server import POLICIES, ServingStack

__all__ = [
    "THREADRIPPER_3990X", "CostModel", "ModelCompiler",
    "get_entry", "get_model", "model_names",
    "POLICIES", "ServingStack", "__version__",
]
