"""Compiled-artifact store CLI: warm, inspect, and prune the store.

Usage::

    python -m repro.compile warm                 # compile the zoo into the store
    python -m repro.compile warm --models mobilenet_v2,googlenet --trials 96
    python -m repro.compile list                 # store contents summary
    python -m repro.compile gc                   # drop corrupt/stale entries
    python -m repro.compile gc --all             # clear the store
    python -m repro.compile path                 # resolved store directory

The store directory comes from ``--store`` or the
``REPRO_ARTIFACT_STORE`` environment variable (default
``.repro-artifacts``).  Warming is exactly the compile a
:class:`~repro.serving.server.ServingStack` would do — same knobs, same
keys — so a subsequent stack construction with matching knobs hits the
store for every layer.  Cached artifacts are bit-identical to fresh
compiles; the store only ever changes wall-clock.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.compiler.artifacts import STORE_ENV, ArtifactStore

#: Fallback store directory when neither --store nor the env var names one.
DEFAULT_STORE_DIR = ".repro-artifacts"


def _resolve_path(argument: str | None) -> str:
    if argument:
        return argument
    env = os.environ.get(STORE_ENV, "").strip()
    return env or DEFAULT_STORE_DIR


def _cmd_warm(args: argparse.Namespace) -> int:
    from repro.models.registry import model_names
    from repro.serving.server import ServingStack

    store = ArtifactStore(_resolve_path(getattr(args, "store", None)))
    models = ([part.strip() for part in args.models.split(",")
               if part.strip()] if args.models else model_names())
    stack = ServingStack(models=models, trials=args.trials,
                         seed=args.seed, use_proxy=False,
                         artifact_store=store,
                         compile_workers=args.workers)
    start = time.perf_counter()
    stack.ensure_compiled()
    wall = time.perf_counter() - start
    stats = stack.compiler.stats
    print(f"warmed {store.path} in {wall:.2f}s "
          f"({args.workers} worker(s), trials={args.trials}, "
          f"seed={args.seed})")
    print(f"  models:          {', '.join(models)}")
    print(f"  layers seen:     {stats.layers_total}")
    print(f"  unique layers:   {stack.compiler.unique_layers}")
    print(f"  store hits:      {stats.store_hits}")
    print(f"  fresh compiles:  {stats.compiled_fresh}")
    print(f"  dedup savings:   {stats.memo_hits} layer(s) shared "
          "in-process")
    print(f"  store entries:   {len(store.entries())}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    store = ArtifactStore(_resolve_path(getattr(args, "store", None)))
    rows = store.entries()
    if not rows:
        print(f"store {store.path}: empty")
        return 0
    valid = [row for row in rows if row.get("valid")]
    invalid = len(rows) - len(valid)
    total_bytes = sum(row["bytes"] for row in rows)
    contexts = sorted({row.get("context") for row in valid
                       if row.get("context")})
    print(f"store {store.path}: {len(rows)} entr(ies), "
          f"{total_bytes / 1024:.1f} KiB, {invalid} invalid, "
          f"{len(contexts)} compiler context(s)")
    if args.verbose:
        for row in sorted(rows, key=lambda r: r["file"]):
            mark = "ok " if row.get("valid") else "BAD"
            budget = row.get("qos_budget_s")
            budget_ms = (f"{budget * 1e3:8.3f}ms"
                         if isinstance(budget, (int, float)) else
                         f"{'?':>10s}")
            print(f"  {mark} {row['file']:30s} {row['bytes']:7d}B "
                  f"{row.get('versions', '?'):>2} version(s) "
                  f"{budget_ms} {row.get('signature', '')}")
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    store = ArtifactStore(_resolve_path(getattr(args, "store", None)))
    deleted = store.gc(drop_all=args.all)
    kept = len(store.entries())
    what = "all entries" if args.all else "invalid entries"
    print(f"gc ({what}) on {store.path}: deleted {len(deleted)}, "
          f"kept {kept}")
    for name in deleted:
        print(f"  - {name}")
    return 0


def _cmd_path(args: argparse.Namespace) -> int:
    print(_resolve_path(getattr(args, "store", None)))
    return 0


def main(argv: list[str] | None = None) -> int:
    # --store is accepted both before and after the subcommand (the
    # subparsers inherit it via ``parents``); the subcommand position
    # wins when both are given.  SUPPRESS keeps the subparser's default
    # from clobbering a value parsed at the top level.
    shared = argparse.ArgumentParser(add_help=False)
    shared.add_argument("--store", default=argparse.SUPPRESS,
                        help="store directory (default: "
                             f"${STORE_ENV} or {DEFAULT_STORE_DIR})")
    parser = argparse.ArgumentParser(
        prog="python -m repro.compile",
        description=__doc__.splitlines()[0], parents=[shared])
    commands = parser.add_subparsers(dest="command", required=True)

    warm = commands.add_parser(
        "warm", help="compile models into the store", parents=[shared])
    warm.add_argument("--models", default=None,
                      help="comma-separated model names (default: the "
                           "whole zoo)")
    warm.add_argument("--trials", type=int, default=256,
                      help="auto-scheduler trial budget per layer "
                           "(default: 256, the ServingStack default)")
    warm.add_argument("--seed", type=int, default=None,
                      help="compile seed (default: the library default)")
    warm.add_argument("--workers", type=int,
                      default=int(os.environ.get("REPRO_COMPILE_WORKERS",
                                                 "1")),
                      help="fork-pool width for layer compilation")
    warm.set_defaults(func=_cmd_warm)

    listing = commands.add_parser(
        "list", help="summarise store contents", parents=[shared])
    listing.add_argument("--verbose", "-v", action="store_true",
                         help="one line per entry")
    listing.set_defaults(func=_cmd_list)

    gc = commands.add_parser(
        "gc", help="delete corrupt or schema-stale entries",
        parents=[shared])
    gc.add_argument("--all", action="store_true",
                    help="delete every entry (clear the store)")
    gc.set_defaults(func=_cmd_gc)

    path = commands.add_parser(
        "path", help="print the resolved store directory",
        parents=[shared])
    path.set_defaults(func=_cmd_path)

    args = parser.parse_args(argv)
    if args.command == "warm" and args.seed is None:
        from repro.config import DEFAULT_SEED
        args.seed = DEFAULT_SEED
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
