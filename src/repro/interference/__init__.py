"""Interference substrate: system pressure model and the counter proxy."""

from repro.interference.model import InterferenceState, RunningTask
from repro.interference.proxy import (
    LinearInterferenceProxy,
    PcaReport,
    ProxySample,
    collect_samples,
    fit_proxy,
    pca_analysis,
    proxy_accuracy,
)

__all__ = [
    "InterferenceState", "RunningTask",
    "LinearInterferenceProxy", "PcaReport", "ProxySample",
    "collect_samples", "fit_proxy", "pca_analysis", "proxy_accuracy",
]
