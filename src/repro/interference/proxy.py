"""The performance-counter interference proxy (paper Sec. 4.3, Fig. 11).

Two artifacts are reproduced here:

* a **PCA analysis** over counter windows collected from randomized
  co-location scenarios, showing L3-related counters dominate the
  variance (paper Fig. 11a);
* a **linear proxy** that predicts the interference pressure level from
  the L3 miss rate and L3 access counters alone (paper Fig. 11b), fitted
  by least squares on the same scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import make_rng
from repro.hardware.counters import COUNTER_NAMES, counters_from_execution
from repro.compiler.costmodel import CostModel
from repro.compiler.library import CompiledModel


@dataclass(frozen=True)
class ProxySample:
    """One training/validation row: counters + the true pressure level."""

    counters: tuple[float, ...]
    measured_interference: float
    measured_slowdown: float


def collect_samples(cost_model: CostModel,
                    compiled_models: list[CompiledModel],
                    scenarios: int = 300,
                    seed: int | None = None) -> list[ProxySample]:
    """Generate counter windows from randomized co-location scenarios.

    Each scenario draws a random layer, code version, core grant and
    co-runner pressure, executes it under the cost model, and records the
    synthesized counters together with the pressure and the resulting
    slowdown vs isolation — the quantity the paper's proxy predicts.
    """
    rng = make_rng(seed)
    cpu = cost_model.cpu
    all_layers = []
    for model in compiled_models:
        all_layers.extend(model.layers)
    if not all_layers:
        raise ValueError("need at least one compiled model")

    samples = []
    for _ in range(scenarios):
        entry = all_layers[int(rng.integers(0, len(all_layers)))]
        version = entry.versions[int(rng.integers(0, len(entry.versions)))]
        cores = int(rng.integers(4, cpu.cores // 2 + 1))
        pressure = float(rng.uniform(0.0, 1.0))
        execution = cost_model.execution(entry.layer, version, cores,
                                         pressure)
        isolated = cost_model.execution(entry.layer, version, cores, 0.0)
        counters = counters_from_execution(execution, cpu.frequency_hz)
        samples.append(ProxySample(
            counters=tuple(counters.as_vector()),
            measured_interference=pressure,
            measured_slowdown=execution.total_s / isolated.total_s,
        ))
    return samples


def collect_aggregate_samples(cost_model: CostModel,
                              compiled_models: list[CompiledModel],
                              scenarios: int = 300,
                              max_corunners: int = 6,
                              seed: int | None = None) -> list[ProxySample]:
    """System-level counter windows from randomized co-location sets.

    This is the training distribution of the *runtime* proxy: the monitor
    samples chip-wide L3 counters (summed over co-runners) and must
    recover the total pressure a newly scheduled block would face.
    """
    rng = make_rng(seed)
    cpu = cost_model.cpu
    all_layers = []
    for model in compiled_models:
        all_layers.extend(model.layers)
    if not all_layers:
        raise ValueError("need at least one compiled model")

    samples = []
    for _ in range(scenarios):
        group = int(rng.integers(1, max_corunners + 1))
        picks = []
        for _ in range(group):
            entry = all_layers[int(rng.integers(0, len(all_layers)))]
            version = entry.versions[int(rng.integers(0,
                                                      len(entry.versions)))]
            cores = int(rng.integers(4, max(5, cpu.cores // group + 1)))
            picks.append((entry.layer, version, cores))
        contributions = [
            cost_model.pressure_contribution(layer, version, cores)
            for layer, version, cores in picks]
        total_pressure = min(1.0, sum(contributions))

        misses = 0.0
        accesses = 0.0
        slowdowns = []
        for index, (layer, version, cores) in enumerate(picks):
            felt = min(1.0, total_pressure - contributions[index])
            execution = cost_model.execution(layer, version, cores, felt)
            misses += execution.dram_line_misses / execution.total_s
            accesses += execution.llc_line_accesses / execution.total_s
            slowdowns.append(execution.slowdown)
        miss_rate = misses / accesses if accesses > 0 else 0.0
        samples.append(ProxySample(
            counters=(miss_rate, accesses, 0.0, 0.0, 0.0, 0.0),
            measured_interference=total_pressure,
            measured_slowdown=float(np.mean(slowdowns)),
        ))
    return samples


@dataclass(frozen=True)
class PcaReport:
    """Principal component analysis over normalized counter windows."""

    names: tuple[str, ...]
    explained_ratio: tuple[float, ...]
    #: Per-counter share of the first principal component (|loading|).
    dominant_loadings: dict[str, float]

    def dominant_counters(self, threshold: float = 0.01) -> list[str]:
        """Counters whose first-PC loading share exceeds ``threshold``."""
        return [name for name, share in self.dominant_loadings.items()
                if share > threshold]


def pca_analysis(samples: list[ProxySample]) -> PcaReport:
    """PCA over counters, weighted by correlation with the slowdown.

    Raw counters have incomparable units; as in the paper's methodology,
    each counter is standardised and scaled by its absolute correlation
    with the measured slowdown, so the variance decomposition reflects
    interference-relevant signal rather than unit choices.
    """
    if len(samples) < 3:
        raise ValueError("need at least 3 samples for PCA")
    matrix = np.array([s.counters for s in samples], dtype=float)
    target = np.array([s.measured_slowdown for s in samples])
    std = matrix.std(axis=0)
    std[std == 0] = 1.0
    normalized = (matrix - matrix.mean(axis=0)) / std
    correlations = np.array([
        abs(np.corrcoef(normalized[:, i], target)[0, 1])
        if normalized[:, i].std() > 0 else 0.0
        for i in range(normalized.shape[1])])
    correlations = np.nan_to_num(correlations)
    weighted = normalized * correlations

    _, singular, vt = np.linalg.svd(weighted, full_matrices=False)
    variance = singular ** 2
    explained = variance / variance.sum()
    first_pc = np.abs(vt[0])
    loading_share = first_pc / first_pc.sum()
    return PcaReport(
        names=COUNTER_NAMES,
        explained_ratio=tuple(float(x) for x in explained),
        dominant_loadings={name: float(share) for name, share
                           in zip(COUNTER_NAMES, loading_share)},
    )


@dataclass(frozen=True)
class LinearInterferenceProxy:
    """``pressure ~= w_miss * miss_rate + w_acc * accesses + bias``.

    The paper keeps only the two L3 counters after PCA; so does this
    proxy.  Access rates are normalised by ``access_scale`` (a fitted
    constant) to keep the weights O(1).
    """

    w_miss_rate: float
    w_accesses: float
    bias: float
    access_scale: float

    def predict(self, l3_miss_rate: float,
                l3_accesses_per_s: float) -> float:
        raw = (self.w_miss_rate * l3_miss_rate
               + self.w_accesses * (l3_accesses_per_s / self.access_scale)
               + self.bias)
        return min(1.0, max(0.0, raw))

    def predict_sample(self, sample: ProxySample) -> float:
        return self.predict(sample.counters[0], sample.counters[1])


def estimate_system_pressure(engine, proxy: LinearInterferenceProxy | None
                             ) -> float:
    """The runtime's interference estimate for one node/engine.

    With a fitted proxy the estimate comes from the engine's chip-wide
    L3 counters — what a monitoring agent would export, and the only
    signal real hardware offers.  Without one, the simulator's planning
    pressure (which already applies the soon-to-finish filter) acts as
    an oracle.  This is the single estimation contract shared by the
    adaptive schedulers and the cluster's ``pressure_aware`` router;
    callers that key caches on the estimate quantize it themselves
    (``engine.quantize_pressure``).
    """
    if proxy is not None:
        miss_rate, accesses = engine.system_counters()
        if accesses <= 0.0:
            return 0.0  # idle machine: nothing to interfere with
        return proxy.predict(miss_rate, accesses)
    return engine.pressure(planning=True)


def fit_proxy(samples: list[ProxySample]) -> LinearInterferenceProxy:
    """Least-squares fit of the two-counter linear proxy."""
    if len(samples) < 4:
        raise ValueError("need at least 4 samples to fit the proxy")
    accesses = np.array([s.counters[1] for s in samples])
    scale = float(accesses.mean()) or 1.0
    design = np.column_stack([
        [s.counters[0] for s in samples],
        accesses / scale,
        np.ones(len(samples)),
    ])
    target = np.array([s.measured_interference for s in samples])
    coeffs, *_ = np.linalg.lstsq(design, target, rcond=None)
    return LinearInterferenceProxy(
        w_miss_rate=float(coeffs[0]),
        w_accesses=float(coeffs[1]),
        bias=float(coeffs[2]),
        access_scale=scale,
    )


def proxy_accuracy(proxy: LinearInterferenceProxy,
                   samples: list[ProxySample]) -> dict[str, float]:
    """Mean absolute error and R^2 of the proxy on a sample set."""
    predicted = np.array([proxy.predict_sample(s) for s in samples])
    actual = np.array([s.measured_interference for s in samples])
    residual = actual - predicted
    total = actual - actual.mean()
    ss_res = float((residual ** 2).sum())
    ss_tot = float((total ** 2).sum()) or 1.0
    return {
        "mae": float(np.abs(residual).mean()),
        "r2": 1.0 - ss_res / ss_tot,
    }
