"""System interference pressure from a co-location set.

The paper defines the interference pressure level as the average slowdown
experienced by layers running on the system (Sec. 4.3).  Mechanically,
pressure here is the capped sum of each co-runner's occupancy of the two
contended resources (LLC capacity and DRAM bandwidth); the pressure a task
*experiences* excludes its own contribution — a task does not interfere
with itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RunningTask:
    """The interference-relevant footprint of one running execution."""

    task_id: int
    pressure: float  # contribution in [0, 1] (CostModel.pressure_contribution)
    #: Remaining-latency fraction; tasks about to finish can be discounted
    #: by the scheduler's soon-to-finish filter (paper Sec. 4.3).
    remaining_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.pressure <= 1.0:
            raise ValueError(f"pressure must be in [0, 1]: {self.pressure}")
        if not 0.0 <= self.remaining_fraction <= 1.0:
            raise ValueError("remaining_fraction must be in [0, 1]")


@dataclass
class InterferenceState:
    """Tracks co-runner pressure for the simulator and the scheduler."""

    #: Tasks whose remaining latency fraction is below this are ignored
    #: when *planning* (they will be gone before the next block matters).
    soon_to_finish_threshold: float = 0.10
    _tasks: dict[int, RunningTask] = field(default_factory=dict)

    def add(self, task: RunningTask) -> None:
        self._tasks[task.task_id] = task

    def remove(self, task_id: int) -> None:
        self._tasks.pop(task_id, None)

    def update_remaining(self, task_id: int, remaining: float) -> None:
        task = self._tasks.get(task_id)
        if task is not None:
            self._tasks[task_id] = RunningTask(
                task_id=task.task_id, pressure=task.pressure,
                remaining_fraction=min(1.0, max(0.0, remaining)))

    def __len__(self) -> int:
        return len(self._tasks)

    def pressure_for(self, task_id: int | None = None,
                     planning: bool = False) -> float:
        """System pressure experienced by ``task_id`` (or by a newcomer).

        Parameters
        ----------
        task_id:
            Excluded from the sum; ``None`` means "a task about to start".
        planning:
            When true, apply the paper's soon-to-finish filter: ongoing
            blocks within the remaining-latency threshold are ignored
            because they will not pressure the *next* block.
        """
        total = 0.0
        for task in self._tasks.values():
            if task.task_id == task_id:
                continue
            if planning and (task.remaining_fraction
                             < self.soon_to_finish_threshold):
                continue
            total += task.pressure
        return min(1.0, total)

    def total_pressure(self) -> float:
        """Aggregate pressure including every running task."""
        return min(1.0, sum(t.pressure for t in self._tasks.values()))
