"""Engine of the repro invariant checker.

The checker is a zero-dependency ``ast``-based static-analysis pass
with repo-specific rules: every invariant the reproduction's figures
rest on — crc32-stable artifact keys, observational telemetry, seeded
RNG flow, deterministic iteration, a frozen artifact-key schema — is
machine-checked here the way the perf ratchet machine-checks speed.

This module holds the machinery shared by every rule:

* :class:`Finding` — one violation, sortable and JSON-serialisable.
* :class:`SourceModule` — a parsed file (source, AST, parent links,
  import-alias resolution) handed to each rule exactly once.
* :class:`Rule` — the base class; per-file rules implement
  ``check_module``, repo-level rules implement ``check_tree``.
* Inline suppressions — ``# repro: ignore[rule] -- reason`` on the
  flagged line (or alone on the line above) silences one rule there.
  The reason is mandatory: a suppression without one is itself a
  finding, and suppressions that no longer silence anything are
  reported so they cannot rot in place.
* :func:`run_checks` — walk, parse, dispatch, suppress, sort.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from fnmatch import fnmatch
from pathlib import Path

from repro.checks.config import CheckConfig

#: Engine-level pseudo-rules (not registered, never scoped).
PARSE_RULE = "parse-error"
SUPPRESSION_RULE = "malformed-suppression"
UNUSED_SUPPRESSION_RULE = "unused-suppression"

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore\[(?P<rules>[^\]]*)\]"
    r"(?:\s*--\s*(?P<reason>\S.*))?")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  #: repo-root-relative posix path
    line: int
    col: int
    rule: str
    message: str

    def to_json(self) -> dict:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}

    def text(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule}: {self.message}")

    def github(self) -> str:
        """A GitHub Actions ``::error`` workflow annotation."""
        message = self.message.replace("%", "%25").replace("\n", "%0A")
        return (f"::error file={self.path},line={self.line},"
                f"col={self.col},title=repro.checks[{self.rule}]"
                f"::{message}")


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: ignore[...]`` comment."""

    line: int
    rules: tuple[str, ...]
    reason: str | None
    #: True when the line holds nothing but the suppression comment,
    #: in which case it silences findings on the *next* line.
    standalone: bool


class SourceModule:
    """One parsed file plus the derived lookups every rule needs."""

    def __init__(self, path: Path, rel: str, source: str) -> None:
        self.path = path
        self.rel = rel
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source)
        #: child AST node -> parent AST node.
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self.imports = _import_map(self.tree)

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(path=self.rel, line=node.lineno,
                       col=node.col_offset + 1, rule=rule, message=message)

    def dotted(self, node: ast.AST) -> str | None:
        """Resolve ``Name``/``Attribute`` chains to a qualified name.

        Import aliases are substituted at the root — ``np.random.seed``
        resolves to ``numpy.random.seed`` under ``import numpy as np``;
        ``pc()`` resolves to ``time.perf_counter`` under
        ``from time import perf_counter as pc``.  Returns ``None`` for
        anything that is not a plain dotted chain (calls, subscripts).
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def imported_root(self, node: ast.AST) -> bool:
        """True when a call chain's root name is an import binding.

        Keeps a local variable that merely shares a module's name (a
        value stored as ``time`` or ``random``) from tripping rules
        that match qualified names.
        """
        while isinstance(node, ast.Attribute):
            node = node.value
        return isinstance(node, ast.Name) and node.id in self.imports

    def is_builtin(self, name: str) -> bool:
        """True when ``name`` still refers to the builtin in this file.

        A module that imports, defines, or assigns the name has shadowed
        the builtin; rules banning e.g. ``hash()`` must not fire there.
        """
        if name in self.imports:
            return False
        for node in ast.walk(self.tree):
            if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef))
                    and node.name == name):
                return False
            if isinstance(node, ast.Name) and node.id == name and \
                    isinstance(node.ctx, ast.Store):
                return False
        return True


def _import_map(tree: ast.AST) -> dict[str, str]:
    """Local binding name -> qualified module/object it refers to."""
    names: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    names[alias.asname] = alias.name
                else:
                    # ``import a.b`` binds ``a`` (to package ``a``).
                    top = alias.name.split(".")[0]
                    names[top] = top
        elif isinstance(node, ast.ImportFrom) and node.module and \
                not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                names[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
    return names


class Rule:
    """Base class for checker rules.

    Per-file rules override :meth:`check_module`; repo-level rules
    (the frozen-key-schema diff) override :meth:`check_tree`.
    """

    name: str = ""
    description: str = ""

    def check_module(self, module: SourceModule,
                     config: CheckConfig) -> list[Finding]:
        return []

    def check_tree(self, root: Path,
                   config: CheckConfig) -> list[Finding]:
        return []


# ---------------------------------------------------------------------------
# Suppressions


def _comment_tokens(source: str) -> list[tuple[int, str, bool]]:
    """(line, comment text, alone-on-line) for every real comment.

    Tokenizing (rather than regex over raw lines) keeps docstrings and
    string literals that merely *mention* the suppression syntax —
    such as this package's own documentation — from parsing as
    suppressions.
    """
    import io
    import tokenize
    comments = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                alone = token.line.strip().startswith("#")
                comments.append((token.start[0], token.string, alone))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # unparseable files are reported via PARSE_RULE already
    return comments


def parse_suppressions(source: str) -> tuple[list[Suppression],
                                             list[tuple[int, str]]]:
    """All suppressions in a file, plus (line, message) malformations."""
    found: list[Suppression] = []
    malformed: list[tuple[int, str]] = []
    for lineno, comment, alone in _comment_tokens(source):
        match = _SUPPRESS_RE.search(comment)
        if match is None:
            if "repro: ignore" in comment:
                malformed.append(
                    (lineno, "unparseable suppression; write "
                     "'# repro: ignore[rule] -- reason'"))
            continue
        rules = tuple(part.strip() for part in
                      match.group("rules").split(",") if part.strip())
        reason = match.group("reason")
        if not rules:
            malformed.append(
                (lineno, "suppression names no rule; write "
                 "'# repro: ignore[rule] -- reason'"))
            continue
        if reason is None:
            malformed.append(
                (lineno, "suppression is missing its reason; write "
                 f"'# repro: ignore[{','.join(rules)}] -- reason'"))
            continue
        found.append(Suppression(line=lineno, rules=rules,
                                 reason=reason, standalone=alone))
    return found, malformed


def apply_suppressions(rel: str, source: str,
                       findings: list[Finding],
                       report_unused: bool = True) -> list[Finding]:
    """Drop suppressed findings; report malformed/unused suppressions."""
    suppressions, malformed = parse_suppressions(source)
    by_line: dict[tuple[int, str], Suppression] = {}
    for sup in suppressions:
        target = sup.line + 1 if sup.standalone else sup.line
        for rule in sup.rules:
            by_line[(target, rule)] = sup
    used: set[tuple[int, tuple[str, ...]]] = set()
    kept = []
    for finding in findings:
        sup = by_line.get((finding.line, finding.rule))
        if sup is None:
            kept.append(finding)
        else:
            used.add((sup.line, sup.rules))
    for lineno, message in malformed:
        kept.append(Finding(path=rel, line=lineno, col=1,
                            rule=SUPPRESSION_RULE, message=message))
    if report_unused:
        for sup in suppressions:
            if (sup.line, sup.rules) not in used:
                kept.append(Finding(
                    path=rel, line=sup.line, col=1,
                    rule=UNUSED_SUPPRESSION_RULE,
                    message=f"suppression for "
                            f"[{','.join(sup.rules)}] matches no "
                            f"finding; delete it"))
    return kept


# ---------------------------------------------------------------------------
# Walking and dispatch


def _matches(rel: str, patterns: tuple[str, ...]) -> bool:
    return any(pat == "**" or fnmatch(rel, pat) for pat in patterns)


def iter_python_files(root: Path, config: CheckConfig,
                      paths: list[str] | None = None) -> list[tuple[Path,
                                                                    str]]:
    """(absolute path, root-relative posix path) pairs, sorted."""
    candidates: list[Path] = []
    if paths:
        for entry in paths:
            path = Path(entry)
            if not path.is_absolute():
                path = root / path
            if path.is_dir():
                candidates.extend(path.rglob("*.py"))
            else:
                candidates.append(path)
    else:
        for sub in config.roots:
            base = root / sub
            if base.is_dir():
                candidates.extend(base.rglob("*.py"))
    pairs = []
    for path in candidates:
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        if _matches(rel, config.exclude):
            continue
        pairs.append((path, rel))
    return sorted(set(pairs), key=lambda pair: pair[1])


def run_checks(root: str | Path, config: CheckConfig | None = None,
               rules: "list[Rule] | None" = None,
               paths: list[str] | None = None) -> list[Finding]:
    """Run every (selected) rule over the tree; return sorted findings.

    ``paths`` restricts the per-file walk (repo-level rules still see
    the whole tree).  Unused-suppression reporting is disabled when a
    rule subset is selected — a suppression for an unselected rule is
    not unused, merely unchecked this run.
    """
    from repro.checks import all_rules
    root = Path(root)
    if config is None:
        config = CheckConfig()
    active = list(rules) if rules is not None else list(all_rules())
    full_rule_set = rules is None
    findings: list[Finding] = []
    for path, rel in iter_python_files(root, config, paths):
        try:
            source = path.read_text()
        except OSError as exc:
            findings.append(Finding(path=rel, line=1, col=1,
                                    rule=PARSE_RULE,
                                    message=f"unreadable: {exc}"))
            continue
        try:
            module = SourceModule(path, rel, source)
        except SyntaxError as exc:
            findings.append(Finding(path=rel, line=exc.lineno or 1,
                                    col=(exc.offset or 0) + 1,
                                    rule=PARSE_RULE,
                                    message=f"syntax error: {exc.msg}"))
            continue
        module_findings: list[Finding] = []
        for rule in active:
            scope = config.scope(rule.name)
            if not _matches(rel, scope.include):
                continue
            if _matches(rel, scope.exclude):
                continue
            module_findings.extend(rule.check_module(module, config))
        findings.extend(apply_suppressions(
            rel, module.source, module_findings,
            report_unused=full_rule_set))
    for rule in active:
        findings.extend(rule.check_tree(root, config))
    return sorted(findings)
