"""no-wallclock: real-time clock reads are banned in simulation code.

Every figure is a function of *simulated* time; a wall-clock read in
library code either leaks nondeterminism into results or silently
couples a simulation to host speed.  The paths that measure wall clock
on purpose (the bench harness, the compile CLI, the fork pool) are
whitelisted in :mod:`repro.checks.config`, not here.
"""

from __future__ import annotations

import ast

from repro.checks.config import CheckConfig
from repro.checks.core import Finding, Rule, SourceModule

#: Qualified callables that read the host's clock.
BANNED_CLOCKS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.thread_time", "time.thread_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


class WallclockRule(Rule):
    name = "no-wallclock"
    description = ("real-time clock reads (time.time/perf_counter/"
                   "datetime.now/...) banned outside whitelisted "
                   "timing paths; simulated time is the only clock "
                   "results may depend on")

    def check_module(self, module: SourceModule,
                     config: CheckConfig) -> list[Finding]:
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.dotted(node.func)
            if dotted in BANNED_CLOCKS and module.imported_root(node.func):
                findings.append(module.finding(
                    self.name, node,
                    f"wall-clock read '{dotted}()' in simulation "
                    f"code; derive times from simulated clocks (or "
                    f"whitelist this path in repro.checks.config if "
                    f"it genuinely measures wall time)"))
        return findings
