"""Repo policy for the invariant checker: scopes and whitelists.

Every rule applies everywhere by default; the exceptions live here, in
one reviewable place, with the reason for each.  Tests construct their
own :class:`CheckConfig` pointing at fixture trees, so none of these
defaults is load-bearing for the engine itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RuleScope:
    """fnmatch include/exclude patterns over root-relative paths."""

    include: tuple[str, ...] = ("**",)
    exclude: tuple[str, ...] = ()


#: Per-rule path policy.  Paths are repo-root-relative posix strings.
DEFAULT_SCOPES: dict[str, RuleScope] = {
    # Wall-clock reads are banned in simulation code: simulated time is
    # the only clock results may depend on.  The whitelisted paths
    # *measure* wall clock on purpose — the bench harness times suites
    # (repro.bench), the compile CLI reports warm-up time
    # (repro.compile), the worker pool guards fork timeouts
    # (repro.parallel), and benchmarks/ is the timing harness itself.
    "no-wallclock": RuleScope(exclude=(
        "src/repro/bench/*",
        "src/repro/compile.py",
        "src/repro/parallel.py",
        "benchmarks/*",
    )),
    # Telemetry must stay observational in the serving path; the
    # telemetry package is the tracer's own implementation, and tests
    # and benchmarks legitimately read tracer state to assert on it
    # (PR 7's bit-identity ratchet is exactly such a read).
    "tracer-observational": RuleScope(
        include=("src/*",),
        exclude=("src/repro/telemetry/*",)),
    # Iteration order only affects figures in result-affecting library
    # code; tests and benchmarks iterate for assertions and printing.
    "deterministic-iteration": RuleScope(include=("src/*",)),
}


@dataclass(frozen=True)
class CheckConfig:
    """What the checker walks and how rules are scoped."""

    #: Directories walked (root-relative) when no paths are given.
    roots: tuple[str, ...] = ("src", "benchmarks", "tests")
    #: Globally excluded paths.  The checker's test fixtures are
    #: deliberate rule violations; walking them would be circular.
    exclude: tuple[str, ...] = ("tests/checks_fixtures/*",)
    #: Per-rule scope overrides; rules not named run everywhere.
    scopes: dict[str, RuleScope] = field(
        default_factory=lambda: dict(DEFAULT_SCOPES))
    #: The committed frozen-key-schema snapshot (root-relative).
    snapshot_path: str = "src/repro/checks/schema_snapshot.json"
    #: Source files the frozen-key-schema rule reads (root-relative):
    #: dataclass name -> file declaring it.
    schema_classes: dict[str, str] = field(default_factory=lambda: {
        "CpuSpec": "src/repro/hardware/platform.py",
        "AcceleratorSpec": "src/repro/hardware/platform.py",
        "CostModelParams": "src/repro/compiler/costmodel.py",
    })
    #: File declaring ``ARTIFACT_SCHEMA`` and ``compiler_context``.
    artifacts_path: str = "src/repro/compiler/artifacts.py"

    def scope(self, rule_name: str) -> RuleScope:
        return self.scopes.get(rule_name, RuleScope())
