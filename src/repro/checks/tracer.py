"""tracer-observational: telemetry must never steer the simulation.

PR 7's ratchet proves engine and cluster reports are bit-identical
with tracing on and off; this rule makes the property structural
rather than empirical.  Two checks:

* **Guarded emission** — every ``tracer.<method>(...)`` call site (and
  every call to a ``_trace*`` helper) must be guarded by a truthiness
  or ``is not None`` check of the tracer, so the tracing-off path
  never even evaluates the telemetry arguments.  Guards recognised:
  an enclosing ``if``/ternary whose test mentions the tracer, an
  ``and`` chain whose earlier operand mentions it, and the
  early-return form (``if tracer is None: return`` guards the rest of
  the block).  The bodies of ``_trace*``-named helpers are trusted —
  they exist to keep emission out of the hot path — and in exchange
  *calls* to them require the same guard.
* **No state reads** — non-telemetry code must not read tracer
  attributes (``tracer.records`` etc.) into control flow; the only
  permitted uses of a tracer value are truthiness tests, method
  calls under guard, and passing it along (``tracer=``/``bind``).
"""

from __future__ import annotations

import ast

from repro.checks.config import CheckConfig
from repro.checks.core import Finding, Rule, SourceModule

#: Local names treated as tracer values when they stand alone.
TRACER_NAMES = frozenset({"tracer", "_tracer"})

#: Helper-function name prefix trusted to emit telemetry unguarded.
HELPER_PREFIX = "_trace"


def _is_tracer_expr(node: ast.AST) -> bool:
    """``tracer`` / ``self.tracer`` / ``engine.tracer`` and friends."""
    if isinstance(node, ast.Name):
        return node.id in TRACER_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in TRACER_NAMES
    return False


def _mentions_tracer(node: ast.AST) -> bool:
    return any(_is_tracer_expr(sub) for sub in ast.walk(node))


def _is_none_check(test: ast.AST) -> bool:
    """``<tracer> is None`` or ``not <tracer>`` (the early-out form)."""
    if (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and _is_tracer_expr(test.left)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None):
        return True
    return (isinstance(test, ast.UnaryOp)
            and isinstance(test.op, ast.Not)
            and _is_tracer_expr(test.operand))


def _terminates(body: list[ast.stmt]) -> bool:
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break))


class TracerRule(Rule):
    name = "tracer-observational"
    description = ("every tracer call site must be guarded by a "
                   "tracer truthiness check, and non-telemetry code "
                   "must not read tracer state into control flow")

    def check_module(self, module: SourceModule,
                     config: CheckConfig) -> list[Finding]:
        findings: list[Finding] = []
        self._visit_body(module, list(ast.iter_child_nodes(module.tree)),
                         guarded=False, findings=findings)
        return findings

    # -- traversal -----------------------------------------------------------

    def _visit_body(self, module: SourceModule, body: list[ast.AST],
                    guarded: bool, findings: list[Finding]) -> None:
        """Visit a statement sequence, tracking the guard context."""
        for stmt in body:
            self._visit(module, stmt, guarded, findings)
            # ``if tracer is None: return`` guards everything after it.
            if (isinstance(stmt, ast.If) and _is_none_check(stmt.test)
                    and _terminates(stmt.body) and not stmt.orelse):
                guarded = True

    def _visit(self, module: SourceModule, node: ast.AST,
               guarded: bool, findings: list[Finding]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner = guarded or node.name.startswith(HELPER_PREFIX)
            self._visit_body(module, node.body, inner, findings)
            return
        if isinstance(node, ast.ClassDef):
            self._visit_body(module, node.body, guarded, findings)
            return
        if isinstance(node, ast.If):
            body_guard = guarded or _mentions_tracer(node.test)
            self._visit(module, node.test, guarded, findings)
            self._visit_body(module, node.body, body_guard, findings)
            self._visit_body(module, node.orelse, guarded, findings)
            return
        if isinstance(node, ast.IfExp):
            self._visit(module, node.test, guarded, findings)
            body_guard = guarded or _mentions_tracer(node.test)
            self._visit(module, node.body, body_guard, findings)
            self._visit(module, node.orelse, guarded, findings)
            return
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.And):
            seen_guard = guarded
            for value in node.values:
                self._visit(module, value, seen_guard, findings)
                seen_guard = seen_guard or _mentions_tracer(value)
            return
        if isinstance(node, ast.Call):
            self._check_call(module, node, guarded, findings)
            for child in list(node.args) + [kw.value for kw in
                                            node.keywords]:
                self._visit(module, child, guarded, findings)
            # Descend into the callee only past the tracer method hop,
            # so the call's own attribute access is not double-flagged.
            func = node.func
            if isinstance(func, ast.Attribute):
                self._visit(module, func.value, guarded, findings)
            elif not isinstance(func, ast.Name):
                self._visit(module, func, guarded, findings)
            return
        if isinstance(node, ast.Attribute):
            # Reading an attribute *of* a tracer outside a call is
            # tracer state flowing into simulation logic.
            if _is_tracer_expr(node.value):
                findings.append(module.finding(
                    self.name, node,
                    f"tracer state read ('.{node.attr}') in "
                    f"non-telemetry code; telemetry must be "
                    f"observational — compute this from simulation "
                    f"state instead"))
            self._visit(module, node.value, guarded, findings)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(module, child, guarded, findings)

    def _check_call(self, module: SourceModule, node: ast.Call,
                    guarded: bool, findings: list[Finding]) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        is_tracer_call = _is_tracer_expr(func.value)
        is_helper_call = func.attr.startswith(HELPER_PREFIX)
        if (is_tracer_call or is_helper_call) and not guarded:
            what = (f"tracer call '.{func.attr}(...)'" if is_tracer_call
                    else f"telemetry helper call '{func.attr}(...)'")
            findings.append(module.finding(
                self.name, node,
                f"unguarded {what}; wrap in 'if <tracer> is not "
                f"None:' so the tracing-off path never evaluates "
                f"telemetry arguments"))
