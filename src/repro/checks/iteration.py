"""deterministic-iteration: no order-sensitive walks of unordered data.

Set iteration order depends on PYTHONHASHSEED for str keys, and
``os.listdir``/``glob`` order depends on the filesystem; iterating
either in result-affecting code makes figures differ across machines
even when every computed value is identical.  The rule flags syntactic
producers of unordered sequences — set displays/comprehensions,
``set()``/``frozenset()`` calls (including set-algebra expressions
over them), ``os.listdir``/``os.scandir``/``glob.*`` and
``Path.glob``-style method calls — consumed in iteration order:
``for`` targets, comprehension sources, ``list``/``tuple``/
``enumerate``/``iter`` arguments, star-unpacking, ``str.join``.
Consumption that is order-insensitive (``sorted``, ``len``, ``min``/
``max``/``sum``/``any``/``all``, membership tests, re-wrapping into a
set) is fine — ``sorted(...)`` is the canonical fix.
"""

from __future__ import annotations

import ast

from repro.checks.config import CheckConfig
from repro.checks.core import Finding, Rule, SourceModule

#: Qualified functions returning filesystem-ordered listings.
FS_PRODUCERS = frozenset({
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
})

#: Method names (on any object) returning filesystem-ordered listings.
FS_METHODS = frozenset({"glob", "rglob", "iterdir"})

#: Order-insensitive consumers: wrapping the producer in any of these
#: discharges the finding.
SAFE_CONSUMERS = frozenset({
    "sorted", "len", "min", "max", "sum", "any", "all", "bool",
    "set", "frozenset",
})

#: Order-sensitive consumers that materialise iteration order.
ORDERED_CONSUMERS = frozenset({"list", "tuple", "enumerate", "iter"})

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)


class IterationRule(Rule):
    name = "deterministic-iteration"
    description = ("iterating sets, os.listdir or glob results in "
                   "result-affecting code is order-nondeterministic; "
                   "wrap in sorted() or dedupe with dict.fromkeys")

    def check_module(self, module: SourceModule,
                     config: CheckConfig) -> list[Finding]:
        findings = []
        flagged: set[tuple[int, int]] = set()
        for node in ast.walk(module.tree):
            kind = self._producer_kind(module, node)
            if kind is None:
                continue
            outer, consumer = self._consumption(module, node)
            if consumer is None:
                continue
            # ``set(a) - set(b)`` holds two producers; one finding.
            position = (outer.lineno, outer.col_offset)
            if position in flagged:
                continue
            flagged.add(position)
            findings.append(module.finding(
                self.name, node,
                f"iteration over {kind} ({consumer}) has "
                f"nondeterministic order; wrap in sorted(...) "
                f"(or dict.fromkeys(...) for stable dedup)"))
        return findings

    # -- producers -----------------------------------------------------------

    def _producer_kind(self, module: SourceModule,
                       node: ast.AST) -> str | None:
        """What unordered sequence ``node`` evaluates to, if any."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set"
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name):
                name = node.func.id
                if name in ("set", "frozenset") and \
                        module.is_builtin(name):
                    return f"a {name}()"
            dotted = module.dotted(node.func)
            if dotted in FS_PRODUCERS and module.imported_root(node.func):
                return f"'{dotted}()' (filesystem order)"
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in FS_METHODS):
                return f"'.{node.func.attr}()' (filesystem order)"
        return None

    # -- consumers -----------------------------------------------------------

    def _consumption(self, module: SourceModule, node: ast.AST,
                     ) -> tuple[ast.AST, str | None]:
        """Climb set-algebra parents; describe the eventual consumer.

        Returns the outermost set-valued expression (for dedup) and a
        consumer description — ``None`` when consumption is
        order-insensitive or untracked.
        """
        expr = node
        parent = module.parents.get(expr)
        # ``set(a) - set(b)`` is still a set; classify the whole BinOp.
        while (isinstance(parent, ast.BinOp)
               and isinstance(parent.op, _SET_OPS)):
            expr = parent
            parent = module.parents.get(expr)
        if parent is None:
            return expr, None
        if isinstance(parent, ast.Call) and expr in parent.args:
            func = parent.func
            if isinstance(func, ast.Name):
                if func.id in SAFE_CONSUMERS:
                    return expr, None
                if func.id in ORDERED_CONSUMERS:
                    return expr, f"materialised by {func.id}(...)"
            if isinstance(func, ast.Attribute) and func.attr == "join":
                return expr, "joined into a string"
            return expr, None  # unknown callee: not provably ordered
        if isinstance(parent, ast.For) and parent.iter is expr:
            return expr, "for-loop source"
        if isinstance(parent, ast.comprehension) and parent.iter is expr:
            return expr, "comprehension source"
        if isinstance(parent, ast.Starred):
            return expr, "star-unpacked"
        return expr, None
