"""repro.checks — AST-based invariant linter for this reproduction.

Machine-checks the conventions every figure rests on, the way the
perf ratchet machine-checks speed:

* ``no-wallclock`` — simulated time is the only clock results read.
* ``no-salted-hash`` — key/digest/ordering material is crc32, never
  the PYTHONHASHSEED-salted builtin ``hash()`` (or ``id()``).
* ``seeded-rng-only`` — randomness flows through explicit seeded
  Generators (``repro.config.make_rng``), never hidden global state.
* ``tracer-observational`` — telemetry is guarded at every call site
  and never feeds back into simulation control flow.
* ``deterministic-iteration`` — no order-sensitive walks of sets or
  filesystem listings in result-affecting code.
* ``frozen-key-schema`` — the artifact-key field schemas are diffed
  against a committed snapshot; drift requires an ARTIFACT_SCHEMA
  bump.

Run ``python -m repro.checks`` from the repo root; suppress a finding
inline with ``# repro: ignore[rule] -- reason``.  Zero dependencies:
stdlib ``ast`` only.
"""

from __future__ import annotations

from repro.checks.config import CheckConfig, RuleScope
from repro.checks.core import (Finding, Rule, SourceModule,
                               iter_python_files, run_checks)
from repro.checks.hashing import HashRule
from repro.checks.iteration import IterationRule
from repro.checks.rng import RngRule
from repro.checks.schema import SchemaRule, update_snapshot
from repro.checks.tracer import TracerRule
from repro.checks.wallclock import WallclockRule

__all__ = [
    "CheckConfig", "RuleScope", "Finding", "Rule", "SourceModule",
    "run_checks", "iter_python_files", "all_rules", "rule_by_name",
    "update_snapshot",
    "WallclockRule", "HashRule", "RngRule", "TracerRule",
    "IterationRule", "SchemaRule",
]


def all_rules() -> tuple[Rule, ...]:
    """One fresh instance of every registered rule, stable order."""
    return (WallclockRule(), HashRule(), RngRule(), TracerRule(),
            IterationRule(), SchemaRule())


def rule_by_name(name: str) -> Rule:
    for rule in all_rules():
        if rule.name == name:
            return rule
    known = ", ".join(rule.name for rule in all_rules())
    raise KeyError(f"unknown rule '{name}' (known: {known})")
