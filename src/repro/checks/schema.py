"""frozen-key-schema: the artifact-key field schemas must not drift.

The compiled-artifact store is addressed by ``compiler_context``:
``dataclasses.asdict`` of the device spec and cost-model params plus
the compiler knob list.  Adding, renaming, reordering or re-defaulting
a field of :class:`CpuSpec`, :class:`AcceleratorSpec` or
:class:`CostModelParams` — or changing the knob keys — changes every
key, silently invalidating every warm store in CI caches and on
developer machines, and (worse) can *collide* with old entries if
``ARTIFACT_SCHEMA`` is not bumped alongside.

This rule extracts the current schema from the source AST (no import
of the checked code) and diffs it against the committed snapshot
``schema_snapshot.json``.  Any drift fails with the bump procedure:

1. bump ``ARTIFACT_SCHEMA`` in ``src/repro/compiler/artifacts.py``,
2. regenerate the snapshot: ``python -m repro.checks
   --update-schema``, and
3. commit both together (plus refreshed benchmark baselines if the
   change moves figures).

``--update-schema`` refuses to rewrite the snapshot while
``ARTIFACT_SCHEMA`` is unchanged, so step 1 cannot be skipped.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

from repro.checks.config import CheckConfig
from repro.checks.core import Finding, Rule

#: Version of the snapshot file format itself.
SNAPSHOT_SCHEMA = "repro.checks.keyschema/1"


# ---------------------------------------------------------------------------
# AST extraction (source-level: the checked code is never imported)


def dataclass_fields(tree: ast.AST, class_name: str) -> list[dict] | None:
    """Ordered ``{name, annotation, default}`` rows of one dataclass.

    Only annotated assignments count — that is exactly the dataclass
    field rule, so plain class attributes like ``kind = "cpu"`` stay
    out of the schema just as they stay out of ``asdict``.
    """
    for node in ast.walk(tree):
        if not (isinstance(node, ast.ClassDef)
                and node.name == class_name):
            continue
        fields = []
        for stmt in node.body:
            if not (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)):
                continue
            fields.append({
                "name": stmt.target.id,
                "annotation": ast.unparse(stmt.annotation),
                "default": (ast.unparse(stmt.value)
                            if stmt.value is not None else None),
            })
        return fields
    return None


def module_constant(tree: ast.AST, name: str) -> str | None:
    """The string value of a module-level ``NAME = "literal"``."""
    for node in tree.body if isinstance(tree, ast.Module) else []:
        if (isinstance(node, ast.Assign)
                and any(isinstance(t, ast.Name) and t.id == name
                        for t in node.targets)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)):
            return node.value.value
    return None


def context_keys(tree: ast.AST) -> list[str] | None:
    """Key strings ``compiler_context`` can emit, in source order.

    Collects constant keys of dict literals assigned inside the
    function plus ``context["..."] = ...`` subscript stores, so the
    conditionally added ``device_kind`` key is part of the schema.
    """
    for node in ast.walk(tree):
        if not (isinstance(node, ast.FunctionDef)
                and node.name == "compiler_context"):
            continue
        keys: list[str] = []
        for sub in ast.walk(node):
            if isinstance(sub, ast.Dict):
                for key in sub.keys:
                    if isinstance(key, ast.Constant) and \
                            isinstance(key.value, str):
                        keys.append(key.value)
            elif (isinstance(sub, ast.Subscript)
                    and isinstance(sub.ctx, ast.Store)
                    and isinstance(sub.slice, ast.Constant)
                    and isinstance(sub.slice.value, str)):
                keys.append(sub.slice.value)
        return keys
    return None


def _class_line(tree: ast.AST, class_name: str) -> int:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return node.lineno
    return 1


def current_schema(root: Path, config: CheckConfig) -> tuple[dict,
                                                             list[Finding]]:
    """Extract the live key schema from the configured source files."""
    problems: list[Finding] = []
    trees: dict[str, ast.AST] = {}

    def tree_for(rel: str) -> ast.AST | None:
        if rel not in trees:
            path = root / rel
            try:
                trees[rel] = ast.parse(path.read_text())
            except (OSError, SyntaxError) as exc:
                problems.append(Finding(
                    path=rel, line=1, col=1, rule=SchemaRule.name,
                    message=f"cannot read schema source: {exc}"))
                trees[rel] = None
        return trees[rel]

    classes: dict[str, list[dict]] = {}
    for class_name in sorted(config.schema_classes):
        rel = config.schema_classes[class_name]
        tree = tree_for(rel)
        if tree is None:
            continue
        fields = dataclass_fields(tree, class_name)
        if fields is None:
            problems.append(Finding(
                path=rel, line=1, col=1, rule=SchemaRule.name,
                message=f"dataclass '{class_name}' not found; if it "
                        f"moved, update repro.checks.config and "
                        f"regenerate the snapshot"))
            continue
        classes[class_name] = fields

    schema: dict = {"schema": SNAPSHOT_SCHEMA, "classes": classes}
    tree = tree_for(config.artifacts_path)
    if tree is not None:
        artifact_schema = module_constant(tree, "ARTIFACT_SCHEMA")
        keys = context_keys(tree)
        if artifact_schema is None or keys is None:
            problems.append(Finding(
                path=config.artifacts_path, line=1, col=1,
                rule=SchemaRule.name,
                message="ARTIFACT_SCHEMA constant or compiler_context "
                        "function not found; update "
                        "repro.checks.config"))
        else:
            schema["artifact_schema"] = artifact_schema
            schema["compiler_context"] = keys
    return schema, problems


# ---------------------------------------------------------------------------
# The rule


class SchemaRule(Rule):
    name = "frozen-key-schema"
    description = ("CpuSpec/AcceleratorSpec/CostModelParams fields "
                   "and compiler_context keys are artifact-key "
                   "material; drift against schema_snapshot.json "
                   "fails until ARTIFACT_SCHEMA is bumped and the "
                   "snapshot regenerated")

    _PROCEDURE = ("bump ARTIFACT_SCHEMA in {artifacts}, then "
                  "regenerate the snapshot with "
                  "'python -m repro.checks --update-schema' and "
                  "commit both together")

    def check_tree(self, root: Path,
                   config: CheckConfig) -> list[Finding]:
        current, findings = self.findings_with_schema(root, config)
        return findings

    def findings_with_schema(self, root: Path, config: CheckConfig,
                             ) -> tuple[dict, list[Finding]]:
        current, findings = current_schema(root, config)
        snapshot_rel = config.snapshot_path
        snapshot_file = root / snapshot_rel
        try:
            snapshot = json.loads(snapshot_file.read_text())
        except FileNotFoundError:
            findings.append(Finding(
                path=snapshot_rel, line=1, col=1, rule=self.name,
                message="schema snapshot missing; generate it with "
                        "'python -m repro.checks --update-schema'"))
            return current, findings
        except (OSError, ValueError) as exc:
            findings.append(Finding(
                path=snapshot_rel, line=1, col=1, rule=self.name,
                message=f"schema snapshot unreadable ({exc}); "
                        f"regenerate with --update-schema"))
            return current, findings
        if snapshot.get("schema") != SNAPSHOT_SCHEMA:
            findings.append(Finding(
                path=snapshot_rel, line=1, col=1, rule=self.name,
                message=f"snapshot format "
                        f"'{snapshot.get('schema')}' != expected "
                        f"'{SNAPSHOT_SCHEMA}'; regenerate with "
                        f"--update-schema"))
            return current, findings

        procedure = self._PROCEDURE.format(
            artifacts=config.artifacts_path)
        for class_name in sorted(set(current.get("classes", {}))
                                 | set(snapshot.get("classes", {}))):
            live = current.get("classes", {}).get(class_name)
            frozen = snapshot.get("classes", {}).get(class_name)
            if live == frozen:
                continue
            rel = config.schema_classes.get(class_name, snapshot_rel)
            tree = None
            try:
                tree = ast.parse((root / rel).read_text())
            except (OSError, SyntaxError):
                pass
            line = _class_line(tree, class_name) if tree else 1
            findings.append(Finding(
                path=rel, line=line, col=1, rule=self.name,
                message=f"'{class_name}' field schema drifted from "
                        f"the committed snapshot "
                        f"({self._diff(frozen, live)}); these fields "
                        f"are artifact-key material — {procedure}"))
        if current.get("compiler_context") != \
                snapshot.get("compiler_context"):
            findings.append(Finding(
                path=config.artifacts_path, line=1, col=1,
                rule=self.name,
                message=f"compiler_context key list drifted from the "
                        f"snapshot ({self._diff_keys(snapshot, current)}"
                        f"); {procedure}"))
        if current.get("artifact_schema") != \
                snapshot.get("artifact_schema"):
            findings.append(Finding(
                path=config.artifacts_path, line=1, col=1,
                rule=self.name,
                message=f"ARTIFACT_SCHEMA is "
                        f"'{current.get('artifact_schema')}' but the "
                        f"snapshot records "
                        f"'{snapshot.get('artifact_schema')}'; "
                        f"regenerate the snapshot with "
                        f"--update-schema"))
        return current, findings

    @staticmethod
    def _diff(frozen: list[dict] | None,
              live: list[dict] | None) -> str:
        if frozen is None:
            return "class is new to the snapshot"
        if live is None:
            return "class removed from source"
        frozen_names = [f["name"] for f in frozen]
        live_names = [f["name"] for f in live]
        added = [n for n in live_names if n not in frozen_names]
        removed = [n for n in frozen_names if n not in live_names]
        parts = []
        if added:
            parts.append(f"added: {', '.join(added)}")
        if removed:
            parts.append(f"removed: {', '.join(removed)}")
        if not parts:
            if frozen_names != live_names:
                parts.append("fields reordered")
            else:
                parts.append("annotation or default changed")
        return "; ".join(parts)

    @staticmethod
    def _diff_keys(snapshot: dict, current: dict) -> str:
        frozen = snapshot.get("compiler_context") or []
        live = current.get("compiler_context") or []
        added = [k for k in live if k not in frozen]
        removed = [k for k in frozen if k not in live]
        parts = []
        if added:
            parts.append(f"added: {', '.join(added)}")
        if removed:
            parts.append(f"removed: {', '.join(removed)}")
        return "; ".join(parts) or "keys reordered"


def update_snapshot(root: Path, config: CheckConfig) -> tuple[bool, str]:
    """Rewrite the snapshot from current sources; (ok, message).

    Refuses when the key material changed but ``ARTIFACT_SCHEMA`` did
    not: a snapshot refresh must always ride on a schema bump, or warm
    stores would keep serving entries keyed by the old field set.
    """
    current, problems = current_schema(root, config)
    if problems:
        return False, "; ".join(f.message for f in problems)
    snapshot_file = root / config.snapshot_path
    try:
        snapshot = json.loads(snapshot_file.read_text())
    except (OSError, ValueError):
        snapshot = None
    if snapshot is not None:
        material_changed = (
            snapshot.get("classes") != current.get("classes")
            or snapshot.get("compiler_context")
            != current.get("compiler_context"))
        schema_bumped = (snapshot.get("artifact_schema")
                         != current.get("artifact_schema"))
        if material_changed and not schema_bumped:
            return False, (
                "key material changed but ARTIFACT_SCHEMA is still "
                f"'{current.get('artifact_schema')}'; bump it in "
                f"{config.artifacts_path} first, then re-run "
                "--update-schema")
        if not material_changed and not schema_bumped:
            return True, "snapshot already up to date"
    snapshot_file.write_text(
        json.dumps(current, indent=2, sort_keys=True) + "\n")
    return True, f"snapshot written: {config.snapshot_path}"
