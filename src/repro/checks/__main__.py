"""CLI for the invariant checker: ``python -m repro.checks``.

Exit codes: 0 clean, 1 findings, 2 usage or internal error — the same
contract as the bench ratchet, so CI wiring is one line.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.checks import (CheckConfig, all_rules, rule_by_name,
                          run_checks, update_snapshot)


def _find_root(start: Path) -> Path:
    """Nearest ancestor holding the repo's src/repro tree."""
    for candidate in [start, *start.parents]:
        if (candidate / "src" / "repro").is_dir():
            return candidate
    return start


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.checks",
        description="AST-based invariant linter for this repo "
                    "(determinism, tracer purity, frozen key "
                    "schemas).")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to check "
                             "(default: src/ benchmarks/ tests/)")
    parser.add_argument("--list", action="store_true",
                        help="list rules and exit")
    parser.add_argument("--rule", action="append", default=None,
                        metavar="NAME",
                        help="run only this rule (repeatable)")
    parser.add_argument("--json", action="store_true",
                        help="shorthand for --format json")
    parser.add_argument("--format", default="text",
                        choices=("text", "github", "json"),
                        help="finding output format (github emits "
                             "::error workflow annotations)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: auto-detected)")
    parser.add_argument("--update-schema", action="store_true",
                        help="regenerate the frozen-key-schema "
                             "snapshot (requires an ARTIFACT_SCHEMA "
                             "bump when key material changed)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    root = (Path(args.root) if args.root
            else _find_root(Path.cwd()))
    config = CheckConfig()

    if args.list:
        for rule in all_rules():
            print(f"{rule.name}: {rule.description}")
        return 0

    if args.update_schema:
        ok, message = update_snapshot(root, config)
        print(message)
        return 0 if ok else 2

    rules = None
    if args.rule:
        try:
            rules = [rule_by_name(name) for name in args.rule]
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2

    findings = run_checks(root, config=config, rules=rules,
                          paths=args.paths or None)
    fmt = "json" if args.json else args.format
    if fmt == "json":
        print(json.dumps([f.to_json() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.github() if fmt == "github"
                  else finding.text())
        if findings:
            print(f"{len(findings)} finding(s). Suppress inline with "
                  f"'# repro: ignore[rule] -- reason' or fix the "
                  f"source.", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
