"""no-salted-hash: builtin ``hash()``/``id()`` are banned.

``hash()`` of str/bytes/tuple values is salted by PYTHONHASHSEED, and
``id()`` is an address — both differ across processes.  Anything built
from them (artifact keys, search seeds, orderings) silently stops
being reproducible; PR 1 fixed exactly this bug in the layer-search
seeding.  Key and digest material must chain ``zlib.crc32`` (see
``repro.compiler.artifacts._digest``).
"""

from __future__ import annotations

import ast

from repro.checks.config import CheckConfig
from repro.checks.core import Finding, Rule, SourceModule

_REMEDY = {
    "hash": ("builtin hash() is PYTHONHASHSEED-salted for str/bytes/"
             "tuple: keys, digests, seeds and orderings built from it "
             "differ across processes; chain zlib.crc32 instead"),
    "id": ("id() is a memory address and differs across runs; key on "
           "stable identity (names, indices, crc32 digests) instead"),
}


class HashRule(Rule):
    name = "no-salted-hash"
    description = ("builtin hash()/id() banned — both are process-"
                   "dependent; key/digest/ordering material must use "
                   "zlib.crc32 or stable identifiers")

    def check_module(self, module: SourceModule,
                     config: CheckConfig) -> list[Finding]:
        findings = []
        shadowed = {name: not module.is_builtin(name)
                    for name in _REMEDY}
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)):
                continue
            name = node.func.id
            if name in _REMEDY and not shadowed[name]:
                findings.append(module.finding(
                    self.name, node, _REMEDY[name]))
        return findings
