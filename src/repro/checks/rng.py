"""seeded-rng-only: global-state RNG calls are banned.

Every stochastic component draws from an explicit, seeded
``np.random.Generator`` obtained via ``repro.config.make_rng`` /
``spawn_rng`` (or passed in as a parameter).  The stdlib ``random``
module and the legacy ``np.random.*`` module-level functions share
hidden global state: one stray draw reorders every subsequent draw in
the process and breaks bit-reproducibility fleet-wide.
"""

from __future__ import annotations

import ast

from repro.checks.config import CheckConfig
from repro.checks.core import Finding, Rule, SourceModule

#: ``numpy.random`` attributes that do *not* touch global state —
#: constructors for explicit generators and seed plumbing.
NUMPY_ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

#: stdlib ``random`` attributes that are explicit-instance
#: constructors rather than global-state draws.  ``SystemRandom`` is
#: deliberately not here: OS entropy is unseedable by construction.
STDLIB_ALLOWED = frozenset({"Random"})


class RngRule(Rule):
    name = "seeded-rng-only"
    description = ("module-level random.*/np.random.* global-state "
                   "calls banned; draw from explicit Generators via "
                   "repro.config.make_rng/spawn_rng")

    def check_module(self, module: SourceModule,
                     config: CheckConfig) -> list[Finding]:
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.dotted(node.func)
            if dotted is None or not module.imported_root(node.func):
                continue
            if dotted.startswith("random."):
                attr = dotted.split(".", 1)[1]
                if attr not in STDLIB_ALLOWED:
                    findings.append(module.finding(
                        self.name, node,
                        f"'{dotted}()' draws from the stdlib's hidden "
                        f"global RNG state; use an explicit seeded "
                        f"generator from repro.config.make_rng"))
            elif dotted.startswith("numpy.random."):
                attr = dotted.split(".")[-1]
                if attr not in NUMPY_ALLOWED:
                    findings.append(module.finding(
                        self.name, node,
                        f"'{dotted}()' uses numpy's legacy global RNG "
                        f"state; use repro.config.make_rng / "
                        f"spawn_rng and pass the Generator explicitly"))
        return findings
