"""Global configuration and deterministic seeding helpers.

Every stochastic component in the library (auto-scheduler sampling, Poisson
query arrivals, proxy-training scenario generation) accepts an explicit seed
and obtains its generator from :func:`make_rng`, so whole experiments are
bit-reproducible.
"""

from __future__ import annotations

import numpy as np

#: Default seed used across the library when the caller does not supply one.
DEFAULT_SEED = 20220117  # the paper's arXiv upload date

#: Single-precision element size in bytes; all paper workloads are FP32.
FP32_BYTES = 4

#: Cache line size in bytes, used when converting traffic to counter events.
CACHE_LINE_BYTES = 64


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a NumPy random generator seeded deterministically.

    Parameters
    ----------
    seed:
        Explicit seed.  ``None`` selects :data:`DEFAULT_SEED` (rather than
        entropy from the OS) so that "unseeded" runs are still reproducible.
    """
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator) -> np.random.Generator:
    """Derive an independent child generator from an existing one."""
    return np.random.default_rng(rng.integers(0, 2**63 - 1))
