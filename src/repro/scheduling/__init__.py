"""Scheduling policies: baselines, granularity studies, and VELTAIR."""

from repro.scheduling.base import (
    BlockPlan,
    ModelProfile,
    SpatialScheduler,
    block_required_cores,
    build_profile,
)
from repro.scheduling.dynamic_block import (
    DynamicBlockScheduler,
    ProportionalThresholdPolicy,
)
from repro.scheduling.fcfs_model import ModelWiseFcfs
from repro.scheduling.fixed_block import FixedBlockScheduler
from repro.scheduling.gacer import GacerScheduler
from repro.scheduling.layerwise import (
    AdaptiveCompilationOnly,
    LayerWiseScheduler,
)
from repro.scheduling.prema import PremaScheduler
from repro.scheduling.veltair import VeltairScheduler

__all__ = [
    "BlockPlan", "ModelProfile", "SpatialScheduler",
    "block_required_cores", "build_profile",
    "DynamicBlockScheduler", "ProportionalThresholdPolicy",
    "ModelWiseFcfs", "FixedBlockScheduler", "GacerScheduler",
    "AdaptiveCompilationOnly", "LayerWiseScheduler",
    "PremaScheduler", "VeltairScheduler",
]
