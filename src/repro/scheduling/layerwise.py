"""Layer-wise spatial scheduling — the Planaria-style baseline (Sec. 3.2).

Every layer is allocated its minimal core requirement individually.  When
the request exceeds the free cores, the layer starts on whatever is
available and *grows* once cores free up (the paper's conflict-recovery
technique); each growth pays a thread-spawn overhead, which is exactly
the per-layer conflict cost the paper measures at ~220 us mean (Fig. 5b).

This is also the granularity substrate of VELTAIR-AC: adaptive
compilation without adaptive scheduling (:class:`AdaptiveCompilationOnly`)
selects interference-matched versions but still schedules layer by layer.
"""

from __future__ import annotations

from repro.interference.proxy import estimate_system_pressure
from repro.runtime.engine import Engine
from repro.runtime.pricing import PricingCache
from repro.runtime.tasks import Query
from repro.scheduling.base import BlockPlan, ModelProfile, SpatialScheduler
from repro.scheduling.dynamic_block import DEFAULT_PLAN_CACHE_ENTRIES


class LayerWiseScheduler(SpatialScheduler):
    """One layer per scheduling unit, static (isolation-best) versions."""

    allow_grow = True

    def plan(self, engine: Engine, query: Query) -> BlockPlan | None:
        available = engine.allocator.available
        if available <= 0:
            return None
        profile = self.profile_for(query)
        index = query.next_layer
        desired = profile.layer_required_cores[index]
        return BlockPlan(
            stop_layer=index + 1,
            desired_cores=desired,
            take_cores=min(desired, available),
            versions=(profile.static_versions[index],),
        )


class AdaptiveCompilationOnly(LayerWiseScheduler):
    """VELTAIR-AC: adaptive version selection at layer granularity.

    Versions are matched to the current planning pressure, but without
    layer blocks the tolerant (high-parallelism) versions inflate core
    demand and conflicts — the interaction paper Sec. 5.2 calls out.
    """

    admit_full_grant_only = True

    def __init__(self, cost_model, profiles, proxy=None,
                 plan_cache_entries: int = DEFAULT_PLAN_CACHE_ENTRIES,
                 ) -> None:
        super().__init__(cost_model, profiles)
        self.proxy = proxy
        # Bounded like every planning memo (see DynamicBlockScheduler):
        # the keyspace grows with the stream, the cache must not.
        self._required_cache = PricingCache(
            max_entries=plan_cache_entries)

    def interference_estimate(self, engine: Engine) -> float:
        return estimate_system_pressure(engine, self.proxy)

    def plan(self, engine: Engine, query: Query) -> BlockPlan | None:
        available = engine.allocator.available
        if available <= 0:
            return None
        profile = self.profile_for(query)
        index = query.next_layer
        # Quantize with the engine's pricing quantum (not a hard-coded
        # rounding): finer keys than pricing resolves only fragment the
        # version/core-requirement caches.
        pressure = engine.quantize_pressure(
            self.interference_estimate(engine))
        entry = query.model.layers[index]
        version = entry.version_for(pressure)
        desired = self._required_cores(profile, index, version, pressure)
        return BlockPlan(
            stop_layer=index + 1,
            desired_cores=desired,
            take_cores=min(desired, available),
            versions=(version,),
        )

    def _required_cores(self, profile: ModelProfile, index: int, version,
                        pressure: float) -> int:
        layer = profile.compiled.graph.layers[index]
        key = (layer.signature, version, profile.layer_budgets_s[index],
               pressure)
        cached = self._required_cache.get(key)
        if cached is None:
            launch = self.cost_model.launch_s
            budget = max(profile.layer_budgets_s[index] - launch, 1e-7)
            cached = self.cost_model.required_cores(layer, version, budget,
                                                    pressure)
            if cached is None:
                cached = self.cost_model.cpu.cores
            self._required_cache.put(key, cached)
        return cached
