"""GACER-style granularity-aware concurrency regulation (baseline).

GACER (see PAPERS.md) regulates multi-tenant throughput with two coupled
knobs instead of per-layer core auctions: a *concurrency cap* — how many
queries may hold execution resources at once — and a *block granularity*
that coarsens as concurrency drops (few co-runners → long uninterrupted
blocks amortise launch overhead; many co-runners → finer blocks keep the
allocation fluid).  The cap is tuned online by a low-frequency
hill-climbing controller on observed completion throughput: keep moving
the cap in the direction that improved throughput over the last
measurement window, reverse when it regressed.

The policy is deliberately simpler than VELTAIR's Alg. 2/3 — no
interference proxy, no per-block version re-selection — which is exactly
what makes it a useful A/B baseline: it isolates how much of the win
comes from concurrency regulation alone.  It also ports to any
:class:`~repro.hardware.platform.DeviceSpec` unchanged, since it reasons
in fractions of the device's parallel width.
"""

from __future__ import annotations

from repro.runtime.engine import Engine
from repro.runtime.pricing import PricingCache
from repro.runtime.tasks import Query
from repro.scheduling.base import (
    BlockPlan,
    SpatialScheduler,
    block_required_cores,
)
from repro.scheduling.dynamic_block import DEFAULT_PLAN_CACHE_ENTRIES


class GacerScheduler(SpatialScheduler):
    """Concurrency-regulated blocks with throughput hill-climbing."""

    allow_grow = False

    def __init__(self, cost_model, profiles,
                 min_concurrency: int = 1,
                 max_concurrency: int | None = None,
                 window: int = 16,
                 coarse_block: int = 12,
                 budget_headroom: float = 0.8,
                 plan_cache_entries: int | None = None) -> None:
        super().__init__(cost_model, profiles)
        width = cost_model.cpu.cores
        if max_concurrency is None:
            # Enough co-runners to cover the machine without shredding
            # grants below useful widths (≥ 8 units each).
            max_concurrency = max(2, min(8, width // 8))
        if min_concurrency < 1 or max_concurrency < min_concurrency:
            raise ValueError("need 1 <= min_concurrency <= max_concurrency")
        if window < 1:
            raise ValueError("window must be >= 1 completions")
        if not 0.0 < budget_headroom <= 1.0:
            raise ValueError("budget_headroom must be in (0, 1]")
        self.min_concurrency = min_concurrency
        self.max_concurrency = max_concurrency
        self.window = window
        self.coarse_block = coarse_block
        self.budget_headroom = budget_headroom
        self.concurrency = min(max(2, min_concurrency), max_concurrency)
        self._direction = 1
        self._last_completed = 0
        self._last_mark_s = 0.0
        self._last_rate: float | None = None
        self._required_cache = PricingCache(
            max_entries=(plan_cache_entries if plan_cache_entries
                         is not None else DEFAULT_PLAN_CACHE_ENTRIES))

    @property
    def block_layers(self) -> int:
        """Granularity coupled to concurrency: fewer co-runners, coarser."""
        return max(1, self.coarse_block // self.concurrency)

    # -- the regulator -------------------------------------------------------

    def _regulate(self, engine: Engine) -> None:
        done = len(engine.completed)
        if done - self._last_completed < self.window:
            return
        elapsed = engine.now - self._last_mark_s
        if elapsed <= 0.0:
            return
        rate = (done - self._last_completed) / elapsed
        if self._last_rate is not None and rate < self._last_rate:
            self._direction = -self._direction
        self._last_rate = rate
        self._last_completed = done
        self._last_mark_s = engine.now
        self.concurrency = min(self.max_concurrency,
                               max(self.min_concurrency,
                                   self.concurrency + self._direction))
        if engine.tracer is not None:
            engine.tracer.event(
                "gacer.cap", engine.now, cat="scheduler",
                args={"concurrency": self.concurrency,
                      "direction": self._direction,
                      "throughput_qps": rate})

    # -- planning ------------------------------------------------------------

    def plan(self, engine: Engine, query: Query) -> BlockPlan | None:
        available = engine.allocator.available
        if available <= 0:
            return None
        self._regulate(engine)
        active = {block.query.query_id for block in engine.running.values()}
        if len(active) >= self.concurrency and query.query_id not in active:
            return None  # cap reached; wait for a slot
        profile = self.profile_for(query)
        start = query.next_layer
        stop = min(start + self.block_layers, len(query.model.layers))
        versions = profile.static_versions[start:stop]

        # An even share of the machine per admitted co-runner; the
        # budget headroom keeps the grant slightly ahead of the deadline
        # so regulation, not per-layer auctions, absorbs jitter.
        cap = max(1, self.cost_model.cpu.cores // self.concurrency)
        key = (query.model.name, start, stop, self.concurrency)
        if query.batch > 1:
            key = key + (query.batch,)
        desired = self._required_cache.get(key)
        if desired is None:
            budget = (sum(profile.layer_budgets_s[start:stop])
                      * self.budget_headroom)
            desired = block_required_cores(
                self.cost_model, query, start, stop, versions, budget,
                cap=cap)
            self._required_cache.put(key, desired)
        return BlockPlan(
            stop_layer=stop,
            desired_cores=desired,
            take_cores=min(desired, available),
            versions=versions,
        )
