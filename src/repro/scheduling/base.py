"""Scheduler foundations: offline model profiles and the dispatch driver.

Every policy consumes a :class:`ModelProfile` — the offline-profiled facts
the paper's schedulers rely on: per-layer latency budgets, per-layer
minimal core requirements (under the static code version), and the
model-granularity average core count ``Avg_C`` used by Alg. 2/3.

:class:`SpatialScheduler` implements the shared dispatch mechanics (FCFS
over continuing-then-new queries, conflict accounting, grow-on-free); the
concrete policies only decide the next block boundary, its core demand,
and the code versions — which is exactly the design split of paper Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


from repro.compiler.costmodel import CostModel
from repro.compiler.library import CompiledModel
from repro.compiler.schedule import Schedule
from repro.models.layers import batched
from repro.runtime.engine import Engine
from repro.runtime.tasks import Query, block_duration


@dataclass(frozen=True)
class ModelProfile:
    """Offline profile of one compiled model (static-version view)."""

    compiled: CompiledModel
    static_versions: tuple[Schedule, ...]
    layer_budgets_s: tuple[float, ...]
    #: Minimal cores for each layer to meet its budget, in isolation.
    layer_required_cores: tuple[int, ...]
    #: Budget-weighted average of the per-layer requirements (``Avg_C``).
    avg_cores: int
    #: Cores for the whole model to meet QoS as one unit (model-wise FCFS).
    model_cores: int
    #: Uncontended end-to-end service time at the provisioned per-layer
    #: core grants — the per-device cost prior the affinity router seeds
    #: its placement estimates with before observations arrive.
    isolated_service_s: float = 0.0


def build_profile(cost_model: CostModel,
                  compiled: CompiledModel) -> ModelProfile:
    """Profile a compiled model for scheduling (paper Sec. 4.2 inputs)."""
    versions = tuple(entry.static_version() for entry in compiled.layers)
    budgets = tuple(entry.qos_budget_s for entry in compiled.layers)
    launch = cost_model.launch_s
    required = []
    durations = []
    for layer, version, budget in zip(compiled.graph.layers, versions,
                                      budgets):
        # Provision slightly below the budget: running every layer exactly
        # at its budget edge leaves no room for queueing or interference
        # jitter, which no deployed allocator would do.
        cores = cost_model.required_cores(layer, version,
                                          max(budget * 0.85 - launch, 1e-7))
        if cores is None:
            cores = cost_model.cpu.cores
        required.append(cores)
        durations.append(cost_model.latency(layer, version, cores, 0.0)
                         + launch)

    # Time-weighted: the average height of the layer-wise allocation curve
    # (the red area of paper Fig. 4b), i.e. the minimum sustained core
    # demand of one in-flight query.
    total_time = sum(durations)
    weighted = sum(c * t for c, t in zip(required, durations))
    avg_cores = max(1, round(weighted / total_time))

    model_cores = _model_required_cores(cost_model, compiled, versions)
    return ModelProfile(
        compiled=compiled,
        static_versions=versions,
        layer_budgets_s=budgets,
        layer_required_cores=tuple(required),
        avg_cores=avg_cores,
        model_cores=model_cores,
        isolated_service_s=total_time,
    )


def _model_required_cores(cost_model: CostModel, compiled: CompiledModel,
                          versions: tuple[Schedule, ...],
                          batch: int = 1) -> int:
    """Minimal fixed core count for the whole model to meet its QoS."""
    launch = cost_model.launch_s
    # Align with the layer-budget margin; a batch-B unit owns B queries'
    # worth of the deadline (see batch_profile).
    target = compiled.qos_s * 0.85 * batch
    layers = [batched(layer, batch) for layer in compiled.graph.layers]

    def model_latency(cores: int) -> float:
        total = cost_model.spawn_overhead(cores)
        for layer, version in zip(layers, versions):
            total += cost_model.latency(layer, version, cores, 0.0) + launch
        return total

    cores = 1
    while cores < cost_model.cpu.cores and model_latency(cores) > target:
        cores *= 2
    cores = min(cores, cost_model.cpu.cores)
    lower = max(1, cores // 2)
    for candidate in range(lower, cores + 1):
        if model_latency(candidate) <= target:
            return candidate
    return cores


def batch_profile(cost_model: CostModel, profile: ModelProfile,
                  batch: int) -> ModelProfile:
    """Re-profile a model for fused batch-``batch`` execution.

    A batch-B block carries B queries' service demand per layer, so its
    planning budgets scale ``x B``: the planner targets the same
    *per-query* throughput as B sequential unit blocks and grants a
    similar (narrow, core-efficient) width — the batch's amortisation
    (shared weight traffic, one spawn/launch stream instead of B) then
    yields strictly cheaper core-seconds per query.  Without the budget
    scaling a batch block would inherit single-query layer deadlines,
    be forced to the machine-wide sync-tax regime, and *lose* capacity.
    The flip side is honest too: a fused batch's end-to-end latency
    approaches B unit services, so batching only satisfies QoS targets
    slack enough to absorb it — exactly the throughput-for-latency
    trade :class:`repro.runtime.engine.BatchPolicy` opts into.
    Static versions and the compiled model are unchanged.
    """
    if batch <= 1:
        return profile
    compiled = profile.compiled
    versions = profile.static_versions
    launch = cost_model.launch_s
    budgets = tuple(b * batch for b in profile.layer_budgets_s)
    required = []
    durations = []
    for layer, version, budget in zip(compiled.graph.layers, versions,
                                      budgets):
        fat = batched(layer, batch)
        cores = cost_model.required_cores(fat, version,
                                          max(budget * 0.85 - launch, 1e-7))
        if cores is None:
            cores = cost_model.cpu.cores
        required.append(cores)
        durations.append(cost_model.latency(fat, version, cores, 0.0)
                         + launch)
    total_time = sum(durations)
    weighted = sum(c * t for c, t in zip(required, durations))
    return replace(
        profile,
        layer_budgets_s=budgets,
        layer_required_cores=tuple(required),
        avg_cores=max(1, round(weighted / total_time)),
        model_cores=_model_required_cores(cost_model, compiled, versions,
                                          batch=batch),
        isolated_service_s=total_time,
    )


@dataclass(frozen=True)
class BlockPlan:
    """A policy's decision for one dispatch."""

    stop_layer: int
    desired_cores: int
    take_cores: int
    versions: tuple[Schedule, ...]


class SpatialScheduler:
    """Shared dispatch driver for spatial-multitasking policies.

    Subclasses implement :meth:`plan` — given a query and the engine
    state, return a :class:`BlockPlan` or ``None`` to keep the query
    queued.  The driver serves continuing queries before new arrivals
    (a worker finishes its model before taking new work) and FCFS within
    each queue, and optionally grows conflicted running blocks when cores
    free up (the paper's conflict-recovery technique).
    """

    #: Policies that start under-allocated and grow later set this.
    allow_grow = False
    #: Admission control: a query's *first* block waits for its full grant
    #: instead of starting under-allocated (continuation blocks always
    #: proceed — stalling mid-model wastes the work already done).
    admit_full_grant_only = False
    #: A continuation block starts under-allocated only when it gets at
    #: least this fraction of its demand (0 = always start on whatever is
    #: free).  Single-layer units must keep crawling-and-growing — that is
    #: the paper's measured conflict behaviour — so the default is off.
    min_start_fraction = 0.0
    #: Conflicted blocks grow in chunks of at least this many cores (or
    #: the full deficit) — growing one core at a time re-prices the whole
    #: machine for no benefit.
    min_grow_cores = 2

    def __init__(self, cost_model: CostModel,
                 profiles: dict[str, ModelProfile]) -> None:
        self.cost_model = cost_model
        self.profiles = profiles
        #: Batch-scaled profile variants, built on first use per
        #: (model, batch) — fused batches are few and their sizes
        #: bounded by ``BatchPolicy.max_batch``, so this stays tiny.
        self._batch_profiles: dict[tuple[str, int], ModelProfile] = {}
        #: Repricing rounds that actually changed a block's rate, as
        #: reported by :meth:`on_pressure_change`.
        self.pressure_changes = 0

    # -- policy hooks --------------------------------------------------------

    def plan(self, engine: Engine, query: Query) -> BlockPlan | None:
        raise NotImplementedError

    def on_pressure_change(self, engine: Engine) -> None:
        """Engine notification: a repricing round changed ≥ 1 block.

        Called after the engine's incremental repricing pass whenever at
        least one running block's quantized pressure moved.  Subclasses
        that derive planning state from the pressure field override this
        to invalidate those caches; the base implementation only counts
        rounds (a cheap co-location-churn diagnostic).
        """
        self.pressure_changes += 1

    def profile_for(self, query: Query) -> ModelProfile:
        try:
            profile = self.profiles[query.model.name]
        except KeyError:
            raise KeyError(f"no profile for model {query.model.name!r};"
                           " build_profile() it first") from None
        if query.batch <= 1:
            return profile
        key = (query.model.name, query.batch)
        scaled = self._batch_profiles.get(key)
        if scaled is None:
            scaled = batch_profile(self.cost_model, profile, query.batch)
            self._batch_profiles[key] = scaled
        return scaled

    # -- driver ---------------------------------------------------------------

    def schedule(self, engine: Engine) -> None:
        if self.allow_grow:
            self._grow_conflicted(engine)
        for queue in (engine.ready, engine.waiting):
            is_new_arrivals = queue is engine.waiting
            while queue:
                if engine.allocator.available <= 0:
                    return
                plan = self.plan(engine, queue[0])
                if plan is None or plan.take_cores <= 0:
                    break  # FCFS head-of-line wait
                if (is_new_arrivals and self.admit_full_grant_only
                        and plan.take_cores < plan.desired_cores):
                    break  # admission control: wait for the full grant
                if (not is_new_arrivals
                        and plan.take_cores < plan.desired_cores
                        * self.min_start_fraction):
                    break  # too few cores to be worth starting on
                query = queue.popleft()
                if engine.tracer is not None:
                    self._trace_dispatch(engine, query, plan)
                engine.start_block(query, plan.stop_layer, plan.take_cores,
                                   plan.versions,
                                   desired_cores=plan.desired_cores)

    def _trace_dispatch(self, engine: Engine, query: Query,
                        plan: BlockPlan) -> None:
        """Record one dispatch decision (tracing enabled only).

        Captures the plan (block boundary, demand vs grant, the picked
        version's parallelism knob) and the pressure the policy planned
        against — via ``planning_pressure`` when the policy maintains
        one (a cached, side-effect-free read), else the engine's
        planning-mode pressure.
        """
        pressure_fn = getattr(self, "planning_pressure", None)
        pressure = (pressure_fn(engine) if pressure_fn is not None
                    else engine.pressure(planning=True))
        args = {"stop_layer": plan.stop_layer,
                "desired": plan.desired_cores,
                "granted": plan.take_cores,
                "pressure": pressure,
                "parallelism": (plan.versions[0].parallelism
                                if plan.versions else 0)}
        if query.batch > 1:
            # Fused batch dispatch: size marks the block stream as
            # carrying several member queries (args stay unchanged for
            # plain queries, keeping pre-batching traces byte-stable).
            args["batch"] = query.batch
        engine.tracer.event(
            "dispatch", engine.now, cat="scheduler", qid=query.query_id,
            args=args)

    def _grow_conflicted(self, engine: Engine) -> None:
        """Hand freed cores to under-allocated blocks, oldest first."""
        blocks = sorted((b for b in engine.running.values()
                         if b.cores < b.desired_cores),
                        key=lambda b: b.started_s)
        for block in blocks:
            free = engine.allocator.available
            if free <= 0:
                return
            deficit = block.desired_cores - block.cores
            extra = min(deficit, free)
            if extra < min(self.min_grow_cores, deficit):
                continue
            engine.grow_block(block.task_id, extra)


def block_required_cores(cost_model: CostModel, query: Query, start: int,
                         stop: int, versions: tuple[Schedule, ...],
                         budget_s: float, interference: float = 0.0,
                         cap: int | None = None) -> int:
    """Minimal cores so the block finishes within ``budget_s``.

    Mirrors :meth:`CostModel.required_cores` at block granularity (spawn
    and launch overheads included).  When the budget is infeasible the
    cap (or machine size) is returned — the scheduler then runs the block
    as fast as the cap allows.
    """
    limit = cap if cap is not None else cost_model.cpu.cores
    limit = max(1, min(limit, cost_model.cpu.cores))

    def duration(cores: int) -> float:
        return block_duration(cost_model, query, start, stop, versions,
                              cores, interference)

    # Latency over cores is U-shaped (sync tax), so probe a geometric
    # grid and refine the first feasible point backwards.
    grid = [c for c in (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48)
            if c < limit] + [limit]
    previous = 1
    for cores in grid:
        if duration(cores) <= budget_s:
            for candidate in range(previous, cores):
                if duration(candidate) <= budget_s:
                    return candidate
            return cores
        previous = cores
    # Infeasible under the cap: run at the latency-minimising grid point.
    return min(grid, key=duration)
