"""Static layer-block scheduling — Block(6) / Block(11) of paper Fig. 3.

Consecutive layers are grouped into fixed-size blocks; each block gets
the minimal core grant meeting the sum of its layers' budgets.  Blocks
smooth the core-demand spikes of layer-wise scheduling, but a *fixed*
size can't fit every model/load combination — the motivation for the
dynamic blocks of :mod:`repro.scheduling.dynamic_block`.
"""

from __future__ import annotations

from repro.runtime.engine import Engine
from repro.runtime.pricing import PricingCache
from repro.runtime.tasks import Query
from repro.scheduling.base import (
    BlockPlan,
    SpatialScheduler,
    block_required_cores,
)
from repro.scheduling.dynamic_block import DEFAULT_PLAN_CACHE_ENTRIES


class FixedBlockScheduler(SpatialScheduler):
    """Blocks of ``block_size`` consecutive layers, static versions."""

    allow_grow = True
    admit_full_grant_only = True

    def __init__(self, cost_model, profiles, block_size: int,
                 plan_cache_entries: int | None = None) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        super().__init__(cost_model, profiles)
        self.block_size = block_size
        # Keyed on (model, start, stop) only — pressure-free static
        # planning — so the keyspace is small; bounded anyway for the
        # same reason as every planning memo (see dynamic_block).
        self._required_cache = PricingCache(
            max_entries=(plan_cache_entries if plan_cache_entries
                         is not None else DEFAULT_PLAN_CACHE_ENTRIES))

    def plan(self, engine: Engine, query: Query) -> BlockPlan | None:
        available = engine.allocator.available
        if available <= 0:
            return None
        profile = self.profile_for(query)
        start = query.next_layer
        stop = min(start + self.block_size, len(query.model.layers))
        versions = profile.static_versions[start:stop]

        key = (query.model.name, start, stop)
        if query.batch > 1:
            key = key + (query.batch,)
        desired = self._required_cache.get(key)
        if desired is None:
            budget = sum(profile.layer_budgets_s[start:stop])
            desired = block_required_cores(
                self.cost_model, query, start, stop, versions, budget)
            self._required_cache.put(key, desired)
        return BlockPlan(
            stop_layer=stop,
            desired_cores=desired,
            take_cores=min(desired, available),
            versions=versions,
        )
