"""The full VELTAIR runtime scheduler — paper Alg. 3.

Dynamic layer blocks (Alg. 2, inherited) combined with adaptive code
version selection: at every dispatch the scheduler estimates the system
interference pressure — through the linear performance-counter proxy of
Sec. 4.3, or directly from the simulator state in oracle mode — ignores
soon-to-finish blocks, picks each layer's version for that pressure
level, and sizes the block's core grant with the interference-adjusted
requirements.
"""

from __future__ import annotations

from repro.interference.proxy import (
    LinearInterferenceProxy,
    estimate_system_pressure,
)
from repro.runtime.engine import Engine
from repro.runtime.pricing import PricingCache
from repro.runtime.tasks import Query
from repro.scheduling.base import ModelProfile
from repro.scheduling.dynamic_block import (
    DEFAULT_PLAN_CACHE_ENTRIES,
    DynamicBlockScheduler,
    ProportionalThresholdPolicy,
)


class VeltairScheduler(DynamicBlockScheduler):
    """Adaptive scheduling + adaptive compilation (VELTAIR-FULL)."""

    def __init__(self, cost_model, profiles,
                 proxy: LinearInterferenceProxy | None = None,
                 threshold_policy: ProportionalThresholdPolicy | None = None,
                 plan_cache_entries: int = DEFAULT_PLAN_CACHE_ENTRIES,
                 ) -> None:
        super().__init__(cost_model, profiles,
                         threshold_policy=threshold_policy,
                         plan_cache_entries=plan_cache_entries)
        self.proxy = proxy
        # Size-bounded like the engine's PricingCache: long serve loops
        # and cluster sweeps hit this with every (signature, version,
        # budget, pressure) combination the stream produces, and an
        # unbounded dict grows without limit.  Eviction only costs a
        # deterministic recompute, so results are unchanged.
        self._required_cache = PricingCache(
            max_entries=plan_cache_entries)

    def planning_pressure(self, engine: Engine) -> float:
        """Current interference estimate, quantised for cache reuse.

        With a proxy the estimate comes from the monitored L3 counters;
        without one the simulator's planning pressure (which already
        applies the soon-to-finish filter) acts as an oracle.  The
        estimate is snapped to the engine's pricing quantum — pricing
        cannot distinguish finer levels, so a finer planning key would
        only fragment the version/core-requirement caches.
        """
        estimate = estimate_system_pressure(engine, self.proxy)
        return engine.quantize_pressure(estimate)

    def version_for(self, query: Query, index: int, pressure: float):
        return query.model.layers[index].version_for(pressure)

    def required_cores_for(self, profile: ModelProfile, index: int,
                           version, pressure: float) -> int:
        layer = profile.compiled.graph.layers[index]
        key = (layer.signature, version,
               profile.layer_budgets_s[index], pressure)
        cached = self._required_cache.get(key)
        if cached is None:
            launch = self.cost_model.launch_s
            budget = max(profile.layer_budgets_s[index] - launch, 1e-7)
            cached = self.cost_model.required_cores(layer, version, budget,
                                                    pressure)
            if cached is None:
                cached = self.cost_model.cpu.cores
            self._required_cache.put(key, cached)
        return cached
