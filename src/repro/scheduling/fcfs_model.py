"""Model-wise FCFS scheduling — the coarse-grained baseline (Sec. 3.2).

The whole model is one scheduling unit with a fixed core grant sized
offline to meet QoS in isolation.  Queries are served strictly in arrival
order; when the grant does not fit, the head query (and everyone behind
it) waits.  Smooth resource usage and near-zero conflicts, but the fixed
grant wastes cores on the many layers that need far fewer — which is why
its QoS satisfaction collapses first as load rises (paper Fig. 3a).
"""

from __future__ import annotations

from repro.runtime.engine import Engine
from repro.runtime.tasks import Query
from repro.scheduling.base import BlockPlan, SpatialScheduler


class ModelWiseFcfs(SpatialScheduler):
    """First-come-first-serve with the entire model as the unit."""

    allow_grow = False

    def plan(self, engine: Engine, query: Query) -> BlockPlan | None:
        profile = self.profile_for(query)
        need = profile.model_cores
        if engine.allocator.available < need:
            return None  # head-of-line wait; not a scheduling conflict
        return BlockPlan(
            stop_layer=len(query.model.layers),
            desired_cores=need,
            take_cores=need,
            versions=profile.static_versions,
        )
