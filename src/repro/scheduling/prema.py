"""PREMA-style temporal multitasking baseline (Choi & Rhu, HPCA 2020).

PREMA time-multiplexes the whole accelerator between models with
token-based preemptive priority: waiting tasks accumulate tokens in
proportion to their priority (tighter QoS = higher priority), and the
task with the most tokens runs next for one preemption quantum.  Ported
to the CPU as in the paper's evaluation: one task owns all cores at a
time, preemption happens at layer boundaries.

Temporal multiplexing leaves the machine under-utilised whenever the
running model cannot scale to every core — the reason the paper finds it
generally inferior to spatial sharing (Fig. 12).
"""

from __future__ import annotations

from repro.compiler.costmodel import CostModel
from repro.models.layers import batched
from repro.runtime.engine import Engine
from repro.runtime.tasks import Query
from repro.scheduling.base import ModelProfile


class PremaScheduler:
    """Token-based temporal multitasking, one query at a time."""

    def __init__(self, cost_model: CostModel,
                 profiles: dict[str, ModelProfile],
                 quantum_s: float = 2e-3) -> None:
        if quantum_s <= 0:
            raise ValueError("quantum_s must be positive")
        self.cost_model = cost_model
        self.profiles = profiles
        self.quantum_s = quantum_s

    def _token_score(self, engine: Engine, query: Query) -> float:
        """PREMA token: priority x waiting time (+ progress tiebreak).

        Priority is the inverse QoS target, so latency-critical light
        models preempt heavy ones — PREMA's starvation-avoidance design.
        """
        priority = 1.0 / query.qos_s
        waiting = max(0.0, engine.now - query.arrival_s)
        started_bonus = 0.5 if query.next_layer > 0 else 0.0
        return priority * (waiting + 1e-6) + started_bonus

    def _chunk_stop(self, query: Query, cores: int) -> int:
        """Run layers until the quantum is filled (preemption boundary)."""
        profile = self.profiles[query.model.name]
        elapsed = 0.0
        stop = query.next_layer
        layers = query.model.graph.layers
        while stop < len(layers) and elapsed < self.quantum_s:
            layer = batched(layers[stop], query.batch)
            version = profile.static_versions[stop]
            elapsed += self.cost_model.latency(layer, version, cores, 0.0)
            stop += 1
        return max(stop, query.next_layer + 1)

    def schedule(self, engine: Engine) -> None:
        if engine.running:
            return  # temporal: the machine belongs to one task
        candidates = list(engine.ready) + list(engine.waiting)
        if not candidates:
            return
        chosen = max(candidates,
                     key=lambda q: self._token_score(engine, q))
        if chosen in engine.ready:
            engine.ready.remove(chosen)
        else:
            engine.waiting.remove(chosen)
        cores = engine.allocator.available
        stop = self._chunk_stop(chosen, cores)
        profile = self.profiles[chosen.model.name]
        versions = profile.static_versions[chosen.next_layer:stop]
        engine.start_block(chosen, stop, cores, versions)
