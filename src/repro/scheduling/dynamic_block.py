"""Dynamic threshold-based layer-block formation — paper Alg. 2 + Sec. 4.3.

Blocks are cut at *conflict-prone* layers: a layer whose core requirement
exceeds ``Avg_C + thres`` starts a new block, and every block's grant is
capped at that bound — the block absorbs the spike by giving its other
layers more cores and letting the block meet the summed budget (paper
Fig. 10a).

The threshold is recomputed at every dispatch from the live system state
(paper Sec. 4.3): the cores left idle after granting every active model
its average requirement are distributed to models proportionally to their
average demand.  Low load => large threshold => big grants and maximal
resource-usage efficiency; high load => small threshold => demand is
flattened toward the average and conflicts stay rare.

This scheduler with static versions is the VELTAIR-AS configuration.
"""

from __future__ import annotations

from repro.runtime.engine import Engine
from repro.runtime.pricing import PricingCache
from repro.runtime.tasks import Query
from repro.scheduling.base import (
    BlockPlan,
    ModelProfile,
    SpatialScheduler,
    block_required_cores,
)

#: Default bound for the planning memos (block requirements, per-layer
#: required cores).  Shared by every scheduler that keys plans on
#: (signature, version, budget, pressure) tuples, and plumbed through
#: :class:`~repro.serving.server.ServingStack` as ``plan_cache_entries``
#: so one knob bounds the whole stack's schedulers.  Keyspace size only
#: affects recompute frequency, never results (entries are
#: deterministic functions of their keys).
DEFAULT_PLAN_CACHE_ENTRIES = 1 << 16


class ProportionalThresholdPolicy:
    """Paper Sec. 4.3: distribute idle cores proportionally to ``Avg_C``.

    The threshold only depends on the set of co-located queries and the
    candidate's model, so results are memoised per engine co-location
    epoch: within one epoch every same-model candidate reuses the value,
    and any start/grow/finish bumps the epoch and drops the memo.
    """

    def __init__(self) -> None:
        self._memo_epoch = -1
        self._memo: dict[str, int] = {}

    def threshold_for(self, scheduler: "DynamicBlockScheduler",
                      engine: Engine, query: Query) -> int:
        epoch = engine.colocation_epoch
        if epoch != self._memo_epoch:
            self._memo_epoch = epoch
            self._memo.clear()
        memo_key = (query.model.name if query.batch <= 1
                    else (query.model.name, query.batch))
        cached = self._memo.get(memo_key)
        if cached is not None:
            return cached
        value = self._compute(scheduler, engine, query)
        self._memo[memo_key] = value
        return value

    def _compute(self, scheduler: "DynamicBlockScheduler",
                 engine: Engine, query: Query) -> int:
        profile = scheduler.profile_for(query)
        active_queries = {block.query.query_id: block.query
                          for block in engine.running.values()}
        active_queries[query.query_id] = query
        averages = [scheduler.profile_for(q).avg_cores
                    for q in active_queries.values()]
        total_average = sum(averages)
        idle = scheduler.cost_model.cpu.cores - total_average
        if idle <= 0:
            return 0
        return int(idle * profile.avg_cores / total_average)


class DynamicBlockScheduler(SpatialScheduler):
    """Adaptive layer blocks with static (isolation-best) code versions."""

    allow_grow = True
    admit_full_grant_only = True

    def __init__(self, cost_model, profiles,
                 threshold_policy: ProportionalThresholdPolicy | None = None,
                 budget_headroom: float = 0.8,
                 plan_cache_entries: int = DEFAULT_PLAN_CACHE_ENTRIES,
                 ) -> None:
        super().__init__(cost_model, profiles)
        self.threshold_policy = (threshold_policy
                                 or ProportionalThresholdPolicy())
        # Blocks target finishing *ahead* of their summed budget so that
        # interference jitter and queueing do not push queries over QoS;
        # the Avg_C + thres cap still bounds how many cores that may cost
        # (Alg. 2's "no more than Avg_C + thres").
        if not 0.0 < budget_headroom <= 1.0:
            raise ValueError("budget_headroom must be in (0, 1]")
        self.budget_headroom = budget_headroom
        self._block_req_cache = PricingCache(
            max_entries=plan_cache_entries)

    # -- version/requirement hooks (overridden by the full scheduler) -----

    def planning_pressure(self, engine: Engine) -> float:
        """Static configuration ignores interference when planning."""
        return 0.0

    def version_for(self, query: Query, index: int, pressure: float):
        return self.profile_for(query).static_versions[index]

    def required_cores_for(self, profile: ModelProfile, index: int,
                           version, pressure: float) -> int:
        return profile.layer_required_cores[index]

    # -- Alg. 2 ----------------------------------------------------------------

    def find_first_pivot(self, engine: Engine, query: Query, cap: int,
                         pressure: float) -> int:
        """First layer after the block start whose demand exceeds the cap.

        Returns the pivot index (the beginning of the *next* block), or
        the model length when no later layer is conflict-prone.
        """
        profile = self.profile_for(query)
        start = query.next_layer
        # "Much higher than the averaged value" (paper Sec. 4.2): only
        # layers clearly above the cap split a block; borderline layers
        # are absorbed by the block's shared budget.
        cutoff = cap * 1.25
        for index in range(start + 1, len(query.model.layers)):
            version = self.version_for(query, index, pressure)
            if self.required_cores_for(profile, index, version,
                                       pressure) >= cutoff:
                return index
        return len(query.model.layers)

    def plan(self, engine: Engine, query: Query) -> BlockPlan | None:
        available = engine.allocator.available
        if available <= 0:
            return None
        profile = self.profile_for(query)
        pressure = self.planning_pressure(engine)
        threshold = self.threshold_policy.threshold_for(self, engine, query)
        cap = min(self.cost_model.cpu.cores,
                  max(1, profile.avg_cores + threshold))

        start = query.next_layer
        stop = self.find_first_pivot(engine, query, cap, pressure)
        versions = tuple(self.version_for(query, i, pressure)
                         for i in range(start, stop))
        budget = (sum(profile.layer_budgets_s[start:stop])
                  * self.budget_headroom)
        key = (query.model.name, start, stop, versions, cap, pressure)
        if query.batch > 1:
            # Fused batches price against batch-folded layers; a longer
            # tuple cannot collide with any unit-batch key.
            key = key + (query.batch,)
        desired = self._block_req_cache.get(key)
        if desired is None:
            desired = block_required_cores(
                self.cost_model, query, start, stop, versions, budget,
                interference=pressure, cap=cap)
            self._block_req_cache.put(key, desired)
        return BlockPlan(
            stop_layer=stop,
            desired_cores=desired,
            take_cores=min(desired, available),
            versions=versions,
        )
