"""The structured event bus: typed span/counter/event records, zero deps.

One :class:`Tracer` collects every record a run emits — engine block
spans, per-query lifecycle spans, scheduler decisions, router choices,
admission verdicts, autoscale signals — into a single in-memory stream
that serialises to JSONL (schema :data:`TRACE_SCHEMA`).  The stream is
*observational only*: instrumented components never read it back, so a
traced run is bit-identical to an untraced one (the telemetry-overhead
benchmark gates exactly this).

The default everywhere is **no tracer** (``None``): every emission site
in the hot path is guarded by a single ``if tracer is not None`` check,
so the disabled cost is one attribute test per event — the overhead
benchmark ratchets it to ≤2% of the 600 QPS mixed run.

Record model
------------

Every record is a :class:`TraceRecord` with a ``kind``:

``span``
    A closed interval ``[ts, ts + dur]``.  Categories in use:
    ``query`` (arrival → completion, one per query, linked by ``qid``),
    ``phase`` (the ``queue`` wait: arrival → first block start), and
    ``block`` (one engine block execution; ``args`` carries cores,
    layer range, version levels, conflict flag, and the isolated
    duration ``iso_s`` so interference stall is recoverable per block).
    Request-model serves add ``batch`` (one fused batch, arrival of the
    first member → completion, ``args`` lists member qids), ``pipeline``
    (a chain's arrival → last-stage completion, ``qid`` = pipeline id,
    shared with every stage query span), and ``session`` (a closed-loop
    tenant's first issue → last outcome, with issue/outcome counts).
``event``
    An instant: ``arrival``, ``dispatch`` (scheduler decision, with
    planning pressure; fused batches add their ``batch`` size),
    ``conflict``, ``grow``, ``gacer.cap``,
    ``route`` (+ per-node scores), ``admission.shed`` /
    ``admission.defer``, ``scale.provision/join/drain/retire``,
    ``batch.close`` (a batch group fusing), and ``pipeline.failed``
    (a shed stage killing its chain).
``counter``
    A named value set sampled at ``ts``: ``engine`` (pressure, running,
    queued after each repricing round) and ``fleet.signals`` (the
    autoscale controller's per-tick :class:`FleetSignals` — see
    :data:`FLEET_SIGNAL_FIELDS` for the schema mapping that makes a
    recorded trace double as an offline training set for learned
    routers).

``node`` scopes a record to one fleet member (``""`` for single-node
runs); ``qid`` links all records of one query's lifecycle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

#: Bump on any incompatible change to the JSONL record layout.
TRACE_SCHEMA = "repro.telemetry.trace/1"

#: Record kinds.
SPAN = "span"
EVENT = "event"
COUNTER = "counter"

#: Mapping from :class:`repro.cluster.autoscale.FleetSignals` fields to
#: the value keys of the per-tick ``fleet.signals`` counter records —
#: the feature schema an offline learned-router/admission trainer reads
#: straight out of a recorded trace (one sample per control tick,
#: decisions recoverable from the interleaved ``scale.*`` events).
FLEET_SIGNAL_FIELDS = ("pressure", "backlog_per_core", "violation_rate",
                       "live", "warming")


@dataclass
class TraceRecord:
    """One telemetry record (see the module docstring for the kinds)."""

    kind: str
    name: str
    ts: float
    dur: float = 0.0
    cat: str = ""
    node: str = ""
    qid: int | None = None
    args: dict = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.ts + self.dur

    def to_payload(self) -> dict:
        payload = {"kind": self.kind, "name": self.name, "ts": self.ts}
        if self.kind == SPAN:
            payload["dur"] = self.dur
        if self.cat:
            payload["cat"] = self.cat
        if self.node:
            payload["node"] = self.node
        if self.qid is not None:
            payload["qid"] = self.qid
        if self.args:
            payload["args"] = self.args
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "TraceRecord":
        kind = payload.get("kind")
        if kind not in (SPAN, EVENT, COUNTER):
            raise ValueError(f"bad trace record kind {kind!r}")
        return cls(
            kind=kind, name=payload["name"], ts=float(payload["ts"]),
            dur=float(payload.get("dur", 0.0)),
            cat=payload.get("cat", ""), node=payload.get("node", ""),
            qid=payload.get("qid"), args=dict(payload.get("args", {})))


class Tracer:
    """Collects :class:`TraceRecord` streams for one run.

    Components receive either a ``Tracer`` or a node-scoped view from
    :meth:`bind` — both expose the same ``span``/``event``/``counter``
    emission API, so instrumentation code never cares which it holds.
    """

    def __init__(self, run_id: str = "", meta: dict | None = None) -> None:
        self.run_id = run_id
        self.meta = dict(meta) if meta else {}
        self.records: list[TraceRecord] = []

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        # A sink is truthy by existence, not by fill level: without
        # this, ``__len__`` would make an empty tracer falsy and
        # ``tracer if tracer else None`` would silently drop it.
        return True

    def bind(self, node: str) -> "NodeTracer":
        """A view that stamps ``node`` on every record it emits."""
        return NodeTracer(self, node)

    # -- emission ------------------------------------------------------------

    def span(self, name: str, ts: float, dur: float, cat: str = "",
             node: str = "", qid: int | None = None,
             args: dict | None = None) -> None:
        self.records.append(TraceRecord(
            kind=SPAN, name=name, ts=ts, dur=dur, cat=cat, node=node,
            qid=qid, args=args if args is not None else {}))

    def event(self, name: str, ts: float, cat: str = "", node: str = "",
              qid: int | None = None, args: dict | None = None) -> None:
        self.records.append(TraceRecord(
            kind=EVENT, name=name, ts=ts, cat=cat, node=node, qid=qid,
            args=args if args is not None else {}))

    def counter(self, name: str, ts: float, values: dict,
                node: str = "") -> None:
        self.records.append(TraceRecord(
            kind=COUNTER, name=name, ts=ts, node=node, args=dict(values)))

    # -- freezing ------------------------------------------------------------

    def trace(self) -> "Trace":
        """Freeze the collected records into an analysable trace."""
        return Trace(run_id=self.run_id, meta=dict(self.meta),
                     records=list(self.records))

    def save(self, path: str | Path) -> Path:
        return self.trace().save(path)


class NodeTracer:
    """A node-scoped emission view over a shared :class:`Tracer`.

    Engine and scheduler instrumentation holds one of these per fleet
    member, so block spans and decision events land in the shared
    stream already stamped with the node's name.
    """

    __slots__ = ("tracer", "node")

    def __init__(self, tracer: Tracer, node: str) -> None:
        self.tracer = tracer
        self.node = node

    def bind(self, node: str) -> "NodeTracer":
        return NodeTracer(self.tracer, node)

    def span(self, name: str, ts: float, dur: float, cat: str = "",
             node: str = "", qid: int | None = None,
             args: dict | None = None) -> None:
        self.tracer.span(name, ts, dur, cat=cat, node=node or self.node,
                         qid=qid, args=args)

    def event(self, name: str, ts: float, cat: str = "", node: str = "",
              qid: int | None = None, args: dict | None = None) -> None:
        self.tracer.event(name, ts, cat=cat, node=node or self.node,
                          qid=qid, args=args)

    def counter(self, name: str, ts: float, values: dict,
                node: str = "") -> None:
        self.tracer.counter(name, ts, values, node=node or self.node)


@dataclass
class Trace:
    """A loaded (or frozen) record stream, ready for analysis/export."""

    run_id: str = ""
    meta: dict = field(default_factory=dict)
    records: list[TraceRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # -- selection helpers ---------------------------------------------------

    def spans(self, cat: str | None = None) -> list[TraceRecord]:
        return [r for r in self.records if r.kind == SPAN
                and (cat is None or r.cat == cat)]

    def events(self, name: str | None = None) -> list[TraceRecord]:
        return [r for r in self.records if r.kind == EVENT
                and (name is None or r.name == name)]

    def counters(self, name: str | None = None) -> list[TraceRecord]:
        return [r for r in self.records if r.kind == COUNTER
                and (name is None or r.name == name)]

    @property
    def nodes(self) -> list[str]:
        """Distinct node labels, in first-appearance (emission) order."""
        seen: dict[str, None] = {}
        for record in self.records:
            if record.node not in seen:
                seen[record.node] = None
        return list(seen)

    @property
    def span_s(self) -> float:
        """Wall span covered by the records (earliest ts to latest end)."""
        if not self.records:
            return 0.0
        start = min(record.ts for record in self.records)
        end = max(record.end for record in self.records)
        return max(0.0, end - start)

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Write the JSONL file: one header line, one record per line.

        Floats serialise via ``repr`` (the :mod:`json` default), which
        round-trips ``float`` exactly — a reloaded trace reproduces
        span durations bit for bit, which is what lets the summarize
        CLI reproduce ``ServingReport.average_latency_s`` exactly.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            header = {"schema": TRACE_SCHEMA, "run_id": self.run_id,
                      "meta": self.meta, "records": len(self.records)}
            handle.write(json.dumps(header) + "\n")
            for record in self.records:
                handle.write(json.dumps(record.to_payload()) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        path = Path(path)
        with path.open() as handle:
            header_line = handle.readline()
            if not header_line.strip():
                raise ValueError(f"{path}: empty trace file")
            header = json.loads(header_line)
            if header.get("schema") != TRACE_SCHEMA:
                raise ValueError(
                    f"{path}: schema {header.get('schema')!r}, expected "
                    f"{TRACE_SCHEMA!r}")
            records = [TraceRecord.from_payload(json.loads(line))
                       for line in handle if line.strip()]
        declared = header.get("records")
        if declared is not None and declared != len(records):
            raise ValueError(
                f"{path}: header declares {declared} records, found "
                f"{len(records)} (truncated file?)")
        return cls(run_id=header.get("run_id", ""),
                   meta=dict(header.get("meta", {})), records=records)
