"""Trace CLI: ``python -m repro.telemetry <command> <trace.jsonl> ...``.

Commands:

``summarize``
    Per-phase latency breakdown (queue / execute / inter-block /
    interference-stall) plus headline metrics, overall and per
    model/node.  ``average_latency_s`` is printed via ``repr`` and
    reproduces the traced run's ``ServingReport.average_latency_s``
    exactly (single-node traces) — the trace is self-sufficient.
``export``
    ``--format=chrome`` (default) writes trace-event JSON loadable in
    Perfetto / ``chrome://tracing``; ``--format=prom`` writes a
    Prometheus-style text snapshot.
``diff``
    Side-by-side metric/phase comparison of two traces.
``validate``
    Span-nesting well-formedness + Chrome-export schema check; exits
    non-zero on errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.telemetry.analysis import (diff_summaries, render_summary,
                                      summarize_trace, validate_trace)
from repro.telemetry.export import (prometheus_text, save_chrome,
                                    to_chrome, validate_chrome)
from repro.telemetry.tracer import Trace


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Inspect, export, and diff recorded serving traces.")
    commands = parser.add_subparsers(dest="command", required=True)

    summarize = commands.add_parser(
        "summarize", help="per-phase latency breakdown of one trace")
    summarize.add_argument("trace", type=Path)

    export = commands.add_parser(
        "export", help="convert a trace for external viewers")
    export.add_argument("trace", type=Path)
    export.add_argument("--format", choices=("chrome", "prom"),
                        default="chrome")
    export.add_argument("--out", type=Path, default=None,
                        help="output path (default: alongside the trace)")

    diff = commands.add_parser(
        "diff", help="compare the summaries of two traces")
    diff.add_argument("trace_a", type=Path)
    diff.add_argument("trace_b", type=Path)

    validate = commands.add_parser(
        "validate", help="check span nesting and Chrome-export schema")
    validate.add_argument("trace", type=Path)
    return parser


def main(argv: list[str] | None = None) -> int:
    options = _build_parser().parse_args(argv)

    if options.command == "summarize":
        print(render_summary(summarize_trace(Trace.load(options.trace))))
        return 0

    if options.command == "export":
        trace = Trace.load(options.trace)
        if options.format == "chrome":
            out = options.out or options.trace.with_suffix(".chrome.json")
            save_chrome(trace, out)
        else:
            out = options.out or options.trace.with_suffix(".prom")
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(prometheus_text(trace))
        print(out)
        return 0

    if options.command == "diff":
        summary_a = summarize_trace(Trace.load(options.trace_a))
        summary_b = summarize_trace(Trace.load(options.trace_b))
        print(diff_summaries(summary_a, summary_b,
                             label_a=options.trace_a.stem,
                             label_b=options.trace_b.stem))
        return 0

    trace = Trace.load(options.trace)
    errors = validate_trace(trace)
    errors.extend(validate_chrome(to_chrome(trace)))
    if errors:
        for error in errors:
            print(f"error: {error}", file=sys.stderr)
        print(f"{len(errors)} error(s)", file=sys.stderr)
        return 1
    print(f"ok: {len(trace)} records, {len(trace.nodes)} node(s), "
          f"span {trace.span_s:.3f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
