"""Fleet-wide telemetry: structured event bus, exporters, trace CLI.

Entry points:

- pass ``tracer=Tracer()`` to :meth:`ServingStack.run`/``report`` or
  :meth:`Cluster.serve` to record a run (default ``None`` = off, free);
- ``tracer.save(path)`` writes the JSONL trace
  (schema ``repro.telemetry.trace/1``);
- ``python -m repro.telemetry summarize|export|diff|validate`` works on
  saved traces;
- :func:`tracer_from_env` honours ``REPRO_TRACE_DIR`` so examples and
  CI smoke runs can opt in without code changes.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.telemetry.analysis import (PhaseBreakdown, TraceSummary,
                                      diff_summaries, render_summary,
                                      summarize_trace, validate_trace)
from repro.telemetry.export import (prometheus_text, save_chrome,
                                    to_chrome, validate_chrome)
from repro.telemetry.tracer import (COUNTER, EVENT, FLEET_SIGNAL_FIELDS,
                                    SPAN, TRACE_SCHEMA, NodeTracer, Trace,
                                    TraceRecord, Tracer)

#: Environment variable examples/CI use to opt into tracing.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"


def tracer_from_env(run_id: str = "run",
                    meta: dict | None = None) -> Tracer | None:
    """A :class:`Tracer` when :data:`TRACE_DIR_ENV` is set, else None.

    Callers that get a tracer should :func:`save_env_trace` it when the
    run finishes; the trace lands in ``$REPRO_TRACE_DIR/<run_id>.jsonl``.
    """
    if not os.environ.get(TRACE_DIR_ENV):
        return None
    return Tracer(run_id=run_id, meta=meta)


def save_env_trace(tracer: Tracer | None) -> Path | None:
    """Persist an env-opted tracer (no-op when tracing is off)."""
    directory = os.environ.get(TRACE_DIR_ENV)
    if tracer is None or not directory:
        return None
    return tracer.save(Path(directory) / f"{tracer.run_id or 'run'}.jsonl")


__all__ = [
    "COUNTER", "EVENT", "FLEET_SIGNAL_FIELDS", "SPAN", "TRACE_DIR_ENV",
    "TRACE_SCHEMA", "NodeTracer", "PhaseBreakdown", "Trace",
    "TraceRecord", "TraceSummary", "Tracer", "diff_summaries",
    "prometheus_text", "render_summary", "save_chrome", "save_env_trace",
    "summarize_trace", "to_chrome", "tracer_from_env", "validate_chrome",
    "validate_trace",
]
