"""Trace analysis: per-phase latency breakdown, validation, diffing.

A trace is *self-sufficient*: everything the summary reports is derived
from the recorded spans alone, never from simulator state.  For a traced
single-node run the summary's ``average_latency_s`` (and the percentile
metrics) reproduce the run's
:class:`~repro.serving.metrics.ServingReport` exactly — query spans
store ``finished_s - arrival_s`` as their duration, JSONL round-trips
floats bit for bit, and the mean is taken over the same values in the
same (completion) order — which the telemetry-overhead benchmark gates.

The per-phase breakdown splits each completed query's latency into:

``queue``
    arrival to first block start (admission deferrals included — the
    clock starts at the original arrival);
``execute``
    time inside block executions (the sum of the query's block spans);
``inter_block``
    the remainder: time between blocks, queued mid-model behind the
    scheduler (head-of-line waits, concurrency caps, core droughts);
``stall``
    the interference tax *inside* ``execute``: each block's actual
    duration minus its isolated (zero-pressure) duration — the part of
    execution the co-runners caused.  ``stall`` overlaps ``execute``;
    it is not a fourth additive phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.telemetry.tracer import Trace, TraceRecord

#: Block spans must sit inside their query span up to float noise.
_NEST_EPS = 1e-9


@dataclass
class PhaseBreakdown:
    """Mean seconds per lifecycle phase over one group of queries."""

    queries: int = 0
    satisfied: int = 0
    latency_s: float = 0.0
    queue_s: float = 0.0
    execute_s: float = 0.0
    inter_block_s: float = 0.0
    stall_s: float = 0.0

    @property
    def satisfaction_rate(self) -> float:
        return self.satisfied / self.queries if self.queries else 0.0


@dataclass
class TraceSummary:
    """The summarize verdict: headline metrics + per-phase breakdowns."""

    completed: int
    satisfied: int
    satisfaction_rate: float
    average_latency_s: float
    p99_latency_s: float
    overall: PhaseBreakdown
    by_model: dict[str, PhaseBreakdown] = field(default_factory=dict)
    by_node: dict[str, PhaseBreakdown] = field(default_factory=dict)
    blocks: int = 0
    conflicts: int = 0
    grows: int = 0
    dispatches: int = 0
    routes: int = 0
    sheds: int = 0
    deferrals: int = 0
    scaling_events: int = 0
    span_s: float = 0.0


def _query_groups(trace: Trace) -> tuple[list[TraceRecord],
                                         dict[int, list[TraceRecord]],
                                         dict[int, TraceRecord]]:
    """(query spans in record order, blocks by qid, queue span by qid)."""
    queries: list[TraceRecord] = []
    blocks: dict[int, list[TraceRecord]] = {}
    queues: dict[int, TraceRecord] = {}
    for record in trace.records:
        if record.kind != "span":
            continue
        if record.cat == "query":
            queries.append(record)
        elif record.cat == "block" and record.qid is not None:
            blocks.setdefault(record.qid, []).append(record)
        elif record.cat == "phase" and record.qid is not None:
            queues[record.qid] = record
    return queries, blocks, queues


def _accumulate(breakdown: PhaseBreakdown, latency: float, queue: float,
                execute: float, stall: float, satisfied: bool) -> None:
    breakdown.queries += 1
    breakdown.satisfied += int(satisfied)
    breakdown.latency_s += latency
    breakdown.queue_s += queue
    breakdown.execute_s += execute
    breakdown.inter_block_s += max(0.0, latency - queue - execute)
    breakdown.stall_s += stall


def _finalise(breakdown: PhaseBreakdown) -> None:
    if breakdown.queries:
        count = breakdown.queries
        breakdown.latency_s /= count
        breakdown.queue_s /= count
        breakdown.execute_s /= count
        breakdown.inter_block_s /= count
        breakdown.stall_s /= count


def summarize_trace(trace: Trace) -> TraceSummary:
    """Fold a trace into headline metrics and per-phase breakdowns."""
    queries, blocks, queues = _query_groups(trace)

    overall = PhaseBreakdown()
    by_model: dict[str, PhaseBreakdown] = {}
    by_node: dict[str, PhaseBreakdown] = {}
    latencies: list[float] = []
    for span in queries:
        latency = span.dur
        latencies.append(latency)
        queue_span = queues.get(span.qid)
        queue = queue_span.dur if queue_span is not None else 0.0
        own_blocks = blocks.get(span.qid, ())
        execute = sum(b.dur for b in own_blocks)
        stall = sum(max(0.0, b.dur - b.args["iso_s"]) for b in own_blocks
                    if "iso_s" in b.args)
        satisfied = bool(span.args.get("satisfied", False))
        _accumulate(overall, latency, queue, execute, stall, satisfied)
        _accumulate(by_model.setdefault(span.name, PhaseBreakdown()),
                    latency, queue, execute, stall, satisfied)
        _accumulate(by_node.setdefault(span.node, PhaseBreakdown()),
                    latency, queue, execute, stall, satisfied)
    for breakdown in (overall, *by_model.values(), *by_node.values()):
        _finalise(breakdown)

    if latencies:
        # Same reduction ServingReport.summarize applies to the same
        # values in the same completion order — exact, not approximate.
        array = np.array(latencies)
        average = float(array.mean())
        p99 = float(np.percentile(array, 99))
    else:
        average = float("inf")
        p99 = float("inf")

    events = {"conflict": 0, "grow": 0, "dispatch": 0, "route": 0,
              "admission.shed": 0, "admission.defer": 0}
    scaling = 0
    for record in trace.records:
        if record.kind != "event":
            continue
        if record.name in events:
            events[record.name] += 1
        elif record.name.startswith("scale."):
            scaling += 1

    return TraceSummary(
        completed=overall.queries,
        satisfied=overall.satisfied,
        satisfaction_rate=overall.satisfaction_rate,
        average_latency_s=average,
        p99_latency_s=p99,
        overall=overall,
        by_model=by_model,
        by_node=by_node,
        blocks=sum(len(b) for b in blocks.values()),
        conflicts=events["conflict"],
        grows=events["grow"],
        dispatches=events["dispatch"],
        routes=events["route"],
        sheds=events["admission.shed"],
        deferrals=events["admission.defer"],
        scaling_events=scaling,
        span_s=trace.span_s,
    )


def validate_trace(trace: Trace) -> list[str]:
    """Structural well-formedness errors (empty list = well-formed).

    Checks the span-nesting contract the engine instrumentation
    guarantees: exactly one query span per completed qid, no orphan
    block spans, every block span inside its query span's interval on
    the same node, and the queue phase anchored at the query's arrival.
    """
    errors: list[str] = []
    queries, blocks, queues = _query_groups(trace)

    by_qid: dict[int, TraceRecord] = {}
    for span in queries:
        if span.qid is None:
            errors.append(f"query span {span.name!r} at t={span.ts} has "
                          "no qid")
            continue
        if span.qid in by_qid:
            errors.append(f"duplicate query span for qid {span.qid}")
        by_qid[span.qid] = span

    for qid, own_blocks in blocks.items():
        query = by_qid.get(qid)
        if query is None:
            errors.append(f"{len(own_blocks)} orphan block span(s) for "
                          f"qid {qid} (no query span)")
            continue
        for block in own_blocks:
            if block.node != query.node:
                errors.append(f"qid {qid}: block on node {block.node!r} "
                              f"but query on {query.node!r}")
            if (block.ts < query.ts - _NEST_EPS
                    or block.end > query.end + _NEST_EPS):
                errors.append(
                    f"qid {qid}: block [{block.ts}, {block.end}] outside "
                    f"query span [{query.ts}, {query.end}]")

    for qid, query in by_qid.items():
        own_blocks = blocks.get(qid)
        if not own_blocks:
            errors.append(f"qid {qid}: query span with no block spans")
            continue
        first_start = min(b.ts for b in own_blocks)
        last_end = max(b.end for b in own_blocks)
        if abs(last_end - query.end) > _NEST_EPS:
            errors.append(f"qid {qid}: query span ends at {query.end} "
                          f"but last block ends at {last_end}")
        queue_span = queues.get(qid)
        if queue_span is not None:
            if abs(queue_span.ts - query.ts) > _NEST_EPS:
                errors.append(f"qid {qid}: queue phase starts at "
                              f"{queue_span.ts}, arrival is {query.ts}")
            if queue_span.end > first_start + _NEST_EPS:
                errors.append(f"qid {qid}: queue phase ends at "
                              f"{queue_span.end} after first block start "
                              f"{first_start}")
    return errors


# ---------------------------------------------------------------------------
# rendering / diffing


def _fmt_phase(label: str, b: PhaseBreakdown) -> str:
    return (f"{label:24s} {b.queries:6d} {b.satisfaction_rate:6.1%} "
            f"{b.latency_s * 1e3:8.3f} {b.queue_s * 1e3:8.3f} "
            f"{b.execute_s * 1e3:8.3f} {b.inter_block_s * 1e3:8.3f} "
            f"{b.stall_s * 1e3:8.3f}")


_PHASE_HEADER = (f"{'group':24s} {'count':>6s} {'sat':>6s} "
                 f"{'lat ms':>8s} {'queue':>8s} {'exec':>8s} "
                 f"{'inter':>8s} {'stall':>8s}")


def render_summary(summary: TraceSummary) -> str:
    """The human-readable summarize output (mean ms per phase)."""
    lines = [
        f"completed={summary.completed} satisfied={summary.satisfied} "
        f"({summary.satisfaction_rate:.2%})",
        f"average_latency_s={summary.average_latency_s!r} "
        f"p99_latency_s={summary.p99_latency_s!r}",
        f"blocks={summary.blocks} conflicts={summary.conflicts} "
        f"grows={summary.grows} dispatches={summary.dispatches}",
        f"routes={summary.routes} shed={summary.sheds} "
        f"deferred={summary.deferrals} "
        f"scaling_events={summary.scaling_events} "
        f"span={summary.span_s:.3f}s",
        "",
        _PHASE_HEADER,
        "-" * len(_PHASE_HEADER),
        _fmt_phase("overall", summary.overall),
    ]
    for model in sorted(summary.by_model):
        lines.append(_fmt_phase(f"model:{model}", summary.by_model[model]))
    for node in sorted(summary.by_node):
        label = node if node else "(single-node)"
        lines.append(_fmt_phase(f"node:{label}", summary.by_node[node]))
    return "\n".join(lines)


def diff_summaries(a: TraceSummary, b: TraceSummary,
                   label_a: str = "a", label_b: str = "b") -> str:
    """Side-by-side phase/metric comparison of two trace summaries."""
    rows: list[tuple[str, float, float]] = [
        ("completed", a.completed, b.completed),
        ("satisfaction_rate", a.satisfaction_rate, b.satisfaction_rate),
        ("average_latency_s", a.average_latency_s, b.average_latency_s),
        ("p99_latency_s", a.p99_latency_s, b.p99_latency_s),
        ("queue_s", a.overall.queue_s, b.overall.queue_s),
        ("execute_s", a.overall.execute_s, b.overall.execute_s),
        ("inter_block_s", a.overall.inter_block_s,
         b.overall.inter_block_s),
        ("stall_s", a.overall.stall_s, b.overall.stall_s),
        ("blocks", a.blocks, b.blocks),
        ("conflicts", a.conflicts, b.conflicts),
        ("sheds", a.sheds, b.sheds),
    ]
    header = (f"{'metric':20s} {label_a[:14]:>14s} {label_b[:14]:>14s} "
              f"{'delta':>12s} {'ratio':>8s}")
    lines = [header, "-" * len(header)]
    for name, va, vb in rows:
        delta = vb - va
        ratio = (vb / va) if va not in (0, 0.0) else float("inf")
        lines.append(f"{name:20s} {va:14.6g} {vb:14.6g} {delta:+12.6g} "
                     f"{ratio:8.3f}")
    return "\n".join(lines)
