"""Exporters: Chrome trace-event JSON (Perfetto) and Prometheus text.

Chrome export maps the trace onto the trace-event format that Perfetto
and ``chrome://tracing`` load directly:

- one *process* per node (``pid`` = node index, named via ``M``
  metadata events), so a fleet trace shows one track group per node;
- block spans become complete (``"X"``) events laid out over *lanes*
  (``tid``): a greedy interval-graph colouring assigns each block the
  lowest lane that is free at its start, so concurrent blocks on a node
  stack instead of overlap — the lanes approximate core occupancy;
- query lifecycle spans become async (``"b"``/``"e"``) events keyed by
  ``qid`` so Perfetto draws arrival → completion arcs above the lanes,
  with the queue phase nested inside;
- instant events (dispatch/conflict/route/admission/scale.*) become
  ``"i"`` instants and counters become ``"C"`` counter tracks.

Timestamps convert from simulated seconds to microseconds (the
trace-event unit).  :func:`validate_chrome` checks the structural rules
the format demands, which the round-trip tests assert.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry.tracer import COUNTER, EVENT, SPAN, Trace, TraceRecord

_US = 1e6

#: tid reserved for the async query-lifecycle track and instant events.
_EVENT_LANE = 0

_PHASES = frozenset({"X", "b", "e", "i", "C", "M"})


def _assign_lanes(blocks: list[TraceRecord]) -> dict[int, int]:
    """Greedy lane per block index: lowest lane free at the block's ts."""
    lanes: dict[int, int] = {}
    busy_until: list[float] = []  # lane -> end of the block occupying it
    order = sorted(range(len(blocks)), key=lambda i: (blocks[i].ts,
                                                      blocks[i].end))
    for index in order:
        block = blocks[index]
        for lane, free_at in enumerate(busy_until):
            if free_at <= block.ts + 1e-12:
                busy_until[lane] = block.end
                lanes[index] = lane
                break
        else:
            busy_until.append(block.end)
            lanes[index] = len(busy_until) - 1
    return lanes


def to_chrome(trace: Trace) -> dict:
    """Render a trace as a Chrome trace-event JSON object."""
    pids = {node: pid for pid, node in enumerate(trace.nodes)}
    events: list[dict] = []
    for node, pid in pids.items():
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": 0, "ts": 0,
                       "args": {"name": node or "node"}})
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": _EVENT_LANE, "ts": 0,
                       "args": {"name": "events"}})

    # Lane layout is per node: collect block spans, then colour.
    blocks_by_node: dict[str, list[TraceRecord]] = {}
    for record in trace.records:
        if record.kind == SPAN and record.cat == "block":
            blocks_by_node.setdefault(record.node, []).append(record)

    named_lanes: set[tuple[int, int]] = set()
    for node, blocks in blocks_by_node.items():
        pid = pids[node]
        lanes = _assign_lanes(blocks)
        for index, block in enumerate(blocks):
            tid = _EVENT_LANE + 1 + lanes[index]
            if (pid, tid) not in named_lanes:
                named_lanes.add((pid, tid))
                events.append({"ph": "M", "name": "thread_name",
                               "pid": pid, "tid": tid, "ts": 0,
                               "args": {"name": f"lane {lanes[index]}"}})
            entry = {"ph": "X", "name": block.name, "cat": "block",
                     "pid": pid, "tid": tid, "ts": block.ts * _US,
                     "dur": block.dur * _US, "args": dict(block.args)}
            if block.qid is not None:
                entry["args"]["qid"] = block.qid
            events.append(entry)

    for record in trace.records:
        pid = pids[record.node]
        if record.kind == SPAN and record.cat in ("query", "phase"):
            if record.qid is None:
                continue
            base = {"cat": "query", "id": record.qid, "pid": pid,
                    "tid": _EVENT_LANE}
            name = (record.name if record.cat == "query"
                    else f"{record.name} (queue)")
            events.append({"ph": "b", "name": name,
                           "ts": record.ts * _US, **base})
            events.append({"ph": "e", "name": name,
                           "ts": record.end * _US, **base})
        elif record.kind == EVENT:
            entry = {"ph": "i", "name": record.name,
                     "cat": record.cat or "event", "pid": pid,
                     "tid": _EVENT_LANE, "ts": record.ts * _US,
                     "s": "p", "args": dict(record.args)}
            if record.qid is not None:
                entry["args"]["qid"] = record.qid
            events.append(entry)
        elif record.kind == COUNTER:
            numeric = {key: value for key, value in record.args.items()
                       if isinstance(value, (int, float))
                       and not isinstance(value, bool)}
            if numeric:
                events.append({"ph": "C", "name": record.name, "pid": pid,
                               "tid": _EVENT_LANE, "ts": record.ts * _US,
                               "args": numeric})

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": "repro.telemetry.chrome/1",
                      "run_id": trace.run_id, **trace.meta},
    }


def validate_chrome(payload: dict) -> list[str]:
    """Structural trace-event format errors (empty list = loadable)."""
    errors: list[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["payload has no traceEvents list"]
    open_async: dict[tuple, int] = {}
    for index, entry in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(entry, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = entry.get("ph")
        if phase not in _PHASES:
            errors.append(f"{where}: unknown ph {phase!r}")
            continue
        if not isinstance(entry.get("name"), str) or not entry["name"]:
            errors.append(f"{where}: missing name")
        if not isinstance(entry.get("ts"), (int, float)):
            errors.append(f"{where}: missing numeric ts")
        for key in ("pid", "tid"):
            if not isinstance(entry.get(key), int):
                errors.append(f"{where}: missing integer {key}")
        if phase == "X":
            duration = entry.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                errors.append(f"{where}: X event needs dur >= 0")
        elif phase in ("b", "e"):
            if "id" not in entry:
                errors.append(f"{where}: async event needs id")
            else:
                key = (entry.get("cat"), entry["id"], entry.get("name"))
                if phase == "b":
                    open_async[key] = open_async.get(key, 0) + 1
                else:
                    if open_async.get(key, 0) <= 0:
                        errors.append(f"{where}: async end without begin")
                    else:
                        open_async[key] -= 1
        elif phase == "M":
            args = entry.get("args")
            if not isinstance(args, dict) or "name" not in args:
                errors.append(f"{where}: metadata needs args.name")
        elif phase == "C":
            args = entry.get("args")
            if not isinstance(args, dict) or not args or any(
                    not isinstance(value, (int, float))
                    for value in args.values()):
                errors.append(f"{where}: counter needs numeric args")
    for key, count in open_async.items():
        if count:
            errors.append(f"async begin without end: {key!r} x{count}")
    return errors


def save_chrome(trace: Trace, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome(trace)))
    return path


# ---------------------------------------------------------------------------
# Prometheus-style text snapshot


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def prometheus_text(trace: Trace) -> str:
    """A Prometheus exposition-format snapshot of the trace's totals.

    Gauges take the *last* recorded counter sample per (name, node);
    totals count records.  This is a snapshot of a finished run, not a
    live scrape endpoint — it exists so fleet dashboards and ad-hoc
    ``promtool``-style diffing get the same numbers the trace holds.
    """
    lines: list[str] = []

    def emit(metric: str, help_text: str, kind: str,
             samples: list[tuple[dict, float]]) -> None:
        if not samples:
            return
        lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} {kind}")
        for labels, value in samples:
            if labels:
                inner = ",".join(f'{key}="{_escape(str(val))}"'
                                 for key, val in sorted(labels.items()))
                lines.append(f"{metric}{{{inner}}} {value!r}")
            else:
                lines.append(f"{metric} {value!r}")

    per_node_latency: dict[str, list[float]] = {}
    span_counts: dict[tuple[str, str], int] = {}
    event_counts: dict[tuple[str, str], int] = {}
    gauges: dict[tuple[str, str, str], float] = {}
    for record in trace.records:
        if record.kind == SPAN:
            span_counts[(record.cat, record.node)] = span_counts.get(
                (record.cat, record.node), 0) + 1
            if record.cat == "query":
                per_node_latency.setdefault(record.node, []).append(
                    record.dur)
        elif record.kind == EVENT:
            event_counts[(record.name, record.node)] = event_counts.get(
                (record.name, record.node), 0) + 1
        elif record.kind == COUNTER:
            for key, value in record.args.items():
                if isinstance(value, (int, float)) and not isinstance(
                        value, bool):
                    gauges[(record.name, key, record.node)] = float(value)

    emit("repro_query_latency_seconds_sum",
         "Sum of completed query latencies.", "counter",
         [({"node": node} if node else {}, sum(vals))
          for node, vals in sorted(per_node_latency.items())])
    emit("repro_query_latency_seconds_count",
         "Number of completed queries.", "counter",
         [({"node": node} if node else {}, float(len(vals)))
          for node, vals in sorted(per_node_latency.items())])
    emit("repro_spans_total", "Recorded spans by category.", "counter",
         [({"cat": cat, **({"node": node} if node else {})}, float(count))
          for (cat, node), count in sorted(span_counts.items())])
    emit("repro_events_total", "Recorded instant events by name.",
         "counter",
         [({"event": name, **({"node": node} if node else {})},
           float(count))
          for (name, node), count in sorted(event_counts.items())])
    emit("repro_gauge_last", "Last sampled value per counter series.",
         "gauge",
         [({"series": series, "field": key,
            **({"node": node} if node else {})}, value)
          for (series, key, node), value in sorted(gauges.items())])
    return "\n".join(lines) + "\n" if lines else ""
