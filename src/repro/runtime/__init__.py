"""Runtime substrate: core allocation, task records, and the DES engine."""

from repro.runtime.allocator import AllocationError, CoreAllocator
from repro.runtime.engine import Engine, SimulationMetrics
from repro.runtime.pricing import PricingCache
from repro.runtime.tasks import Query, RunningBlock, block_duration

__all__ = [
    "AllocationError", "CoreAllocator",
    "Engine", "SimulationMetrics",
    "PricingCache",
    "Query", "RunningBlock", "block_duration",
]
