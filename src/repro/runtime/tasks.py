"""Query and block-execution records for the serving simulator."""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.costmodel import CostModel
from repro.compiler.library import CompiledModel
from repro.compiler.schedule import Schedule
from repro.models.layers import batched


@dataclass
class Query:
    """One inference request moving through the system.

    Beyond the open-loop basics, a query may carry request-model
    context: ``session`` ties it to a closed-loop tenant
    (:class:`repro.workloads.ClosedLoopTenant`), ``stage`` marks its
    position in a pipeline chain
    (:class:`repro.workloads.PipelineQuery`), and ``batch`` > 1 means
    the engine fused several same-model queries into one block stream
    (see :class:`BatchQuery`).  All three default to the plain
    single-request lifecycle, which keeps every pre-existing
    construction site and result unchanged.
    """

    query_id: int
    model: CompiledModel
    arrival_s: float
    qos_s: float
    #: Index of the first layer not yet executed.
    next_layer: int = 0
    started_s: float | None = None
    finished_s: float | None = None
    conflicts: int = 0
    grows: int = 0
    blocks: int = 0
    core_seconds: float = 0.0
    #: Closed-loop session (tenant) id, or None for open-loop queries.
    session: int | None = None
    #: Stage index within a pipeline chain, or None for plain queries.
    stage: int | None = None
    #: Dynamic batch size this query represents (1 = a single request).
    batch: int = 1

    @property
    def deadline_s(self) -> float:
        return self.arrival_s + self.qos_s

    @property
    def done(self) -> bool:
        return self.next_layer >= len(self.model.layers)

    @property
    def remaining_layers(self) -> int:
        return len(self.model.layers) - self.next_layer

    @property
    def latency_s(self) -> float:
        if self.finished_s is None:
            raise ValueError(f"query {self.query_id} not finished")
        return self.finished_s - self.arrival_s

    @property
    def satisfied(self) -> bool:
        return self.finished_s is not None and self.latency_s <= self.qos_s


def block_duration(cost_model: CostModel, query: Query, start: int,
                   stop: int, versions: tuple[Schedule, ...], cores: int,
                   interference: float) -> float:
    """Execution time of layers ``[start, stop)`` as one scheduling unit.

    One parallel-region spawn for the block, then each layer's kernel with
    its selected version, plus the fixed per-kernel launch cost.

    A fused batch (``query.batch`` > 1) prices each layer at its
    batch-folded GEMM shape (:func:`repro.models.layers.batched`) while
    paying the spawn and per-kernel launch overheads *once* for the
    whole batch — the amortisation that makes dynamic batching pay.
    """
    if not 0 <= start < stop <= len(query.model.layers):
        raise ValueError(f"bad block range [{start}, {stop})")
    if len(versions) != stop - start:
        raise ValueError("one version per layer required")
    launch = cost_model.launch_s
    total = cost_model.spawn_overhead(cores)
    graph_layers = query.model.graph.layers
    batch = query.batch
    for offset, layer_index in enumerate(range(start, stop)):
        layer = batched(graph_layers[layer_index], batch)
        total += cost_model.latency(layer, versions[offset], cores,
                                    interference) + launch
    return total


@dataclass
class BatchQuery(Query):
    """Several same-model queries fused into one block stream.

    Built by the engine's dynamic batcher (:class:`BatchPolicy` on
    :class:`~repro.runtime.engine.Engine`): the fused query executes the
    model once at ``batch`` = ``len(members)`` — batch-folded layer
    shapes, shared weights, one spawn/launch per kernel — and at
    completion the engine attributes the outcome back to every member
    (per-member ``finished_s``/``latency_s``, an equal share of the
    fused ``core_seconds``), so ``ServingReport``/QoS accounting stays
    exact over the *members*, never over the wrapper.  The wrapper's
    deadline is the earliest member deadline, keeping urgency-driven
    policies conservative.
    """

    members: tuple[Query, ...] = ()


def fuse_batch(members: list[Query]) -> BatchQuery:
    """Fuse queued same-model queries into one :class:`BatchQuery`."""
    if len(members) < 2:
        raise ValueError("a batch needs at least 2 members")
    first = members[0]
    names = {member.model.name for member in members}
    if len(names) != 1:
        raise ValueError(f"cannot fuse mixed models: {sorted(names)}")
    deadline = min(member.deadline_s for member in members)
    return BatchQuery(
        query_id=first.query_id, model=first.model,
        arrival_s=first.arrival_s, qos_s=deadline - first.arrival_s,
        batch=len(members), members=tuple(members))


@dataclass
class RunningBlock:
    """A block currently executing on the machine."""

    task_id: int
    query: Query
    start_layer: int
    stop_layer: int
    versions: tuple[Schedule, ...]
    cores: int
    #: Cores the scheduler actually wanted (conflict bookkeeping).
    desired_cores: int
    started_s: float
    #: Fraction of the block's work completed.
    progress: float = 0.0
    #: Work fraction per second under the current co-location set.
    rate: float = 0.0
    last_update_s: float = 0.0
    #: Stale-event guard: FINISH events carry the generation they priced.
    generation: int = 0
    #: Pressure this block exerts on co-runners.
    pressure: float = 0.0
    #: Quantized excluded pressure at the last pricing; the engine skips
    #: re-pricing while this is unchanged.  -1.0 means never priced.
    priced_quantum: float = -1.0
    #: Pending extra spawn cost (seconds) from a grow, charged as work.
    pending_overhead_s: float = 0.0
    #: Counter rates cached at the last re-pricing (proxy inputs).
    miss_lines_per_s: float = 0.0
    access_lines_per_s: float = 0.0

    @property
    def layer_count(self) -> int:
        return self.stop_layer - self.start_layer

    @property
    def had_conflict(self) -> bool:
        return self.cores < self.desired_cores
