"""Rate-based discrete-event simulation of the multi-tenant CPU.

Execution model: each running layer block advances through its work at a
*rate* (work fraction per second) priced by the cost model under the
current co-location pressure.  Whenever the co-location set changes
(block start, finish, or grow), affected blocks bank their progress and
re-price — so a block that started on a quiet machine slows down
mid-flight when noisy neighbours arrive, exactly the dynamic the paper's
adaptive scheduler reacts to.

The hot path is built for high offered QPS (the regime the paper's
QPS-with-95%-QoS evaluation lives in):

* **Incremental repricing** — pressure is quantized before pricing, and
  each block remembers the quantum it was last priced under
  (:attr:`RunningBlock.priced_quantum`).  A co-location change only
  re-prices blocks whose quantum actually moved; everyone else keeps
  their rate and their scheduled finish event.
* **Heap hygiene** — finish events are lazily deleted: a stale event
  (superseded generation) is dropped at pop time without advancing the
  clock, a per-engine stale counter triggers heap compaction when stale
  entries dominate, and arrivals are staged into the heap one at a time,
  so the heap stays O(running blocks) rather than O(pushed events).
* **Shared pricing cache** — pricing goes through a
  :class:`~repro.runtime.pricing.PricingCache` that the serving stack
  persists across runs and policies, so identical blocks recurring in a
  QPS sweep skip the cost model entirely.

The engine owns mechanics only (clock, events, core accounting, pressure
bookkeeping); *policies* live in :mod:`repro.scheduling` and are invoked
through a single callback, :meth:`Scheduler.schedule`.  A policy may
additionally implement ``on_pressure_change(engine)``, which the engine
calls after any repricing round that changed at least one block — the
hook for invalidating pressure-derived planning caches.

Telemetry: pass ``tracer=`` (a :class:`repro.telemetry.Tracer` or a
node-scoped view) to record block spans, per-query lifecycle spans, and
conflict/grow/arrival events.  The tracer is observational only — with
the default ``tracer=None`` every emission site is one ``is not None``
test and simulation results are bit-identical either way (the
telemetry-overhead benchmark gates both properties).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Protocol

from repro.compiler.costmodel import CostModel
from repro.compiler.schedule import Schedule
from repro.models.layers import batched
from repro.runtime.allocator import CoreAllocator
from repro.runtime.pricing import PricingCache
from repro.runtime.tasks import (
    BatchQuery,
    Query,
    RunningBlock,
    block_duration,
    fuse_batch,
)

#: Default pressure quantisation step.  Pricing happens at quantized
#: pressure levels, so the step trades fidelity (worst-case pricing is a
#: half-step of pressure stale, a few percent of latency under the
#: linear contention model) against repricing churn (a finer step makes
#: every co-location change flip more blocks' quanta).  The interference
#: proxy itself only resolves 0.01 and the cost model memoises at 1e-4,
#: so 0.05 keeps the engine well inside the model's own noise floor.
_PRESSURE_QUANTUM = 0.05

#: Compaction trigger: rebuild the heap once this many stale finish
#: events have accumulated *and* they outnumber the live entries.
_COMPACT_MIN_STALE = 64


class Scheduler(Protocol):
    """Policy interface: examine the engine, start/grow blocks, return."""

    def schedule(self, engine: "Engine") -> None:  # pragma: no cover
        ...


@dataclass(frozen=True)
class BatchPolicy:
    """Engine-side dynamic batching of same-model queued queries.

    A fresh arrival opens (or joins) a per-model batch group instead of
    entering the scheduler's queue directly.  The group closes — fusing
    its members into one :class:`~repro.runtime.tasks.BatchQuery` —
    when it reaches ``max_batch`` members, or ``max_wait_s`` after its
    first member arrived, whichever comes first.  A group that closes
    with a single member releases the original query unwrapped, so
    sparse traffic pays only the wait, never batched pricing.

    The default everywhere is **no batching** (``batching=None`` on
    :class:`Engine`), under which the arrival path is byte-for-byte the
    pre-batching one.
    """

    max_batch: int = 4
    max_wait_s: float = 0.002

    def __post_init__(self) -> None:
        if self.max_batch < 2:
            raise ValueError("max_batch must be >= 2")
        if self.max_wait_s < 0.0:
            raise ValueError("max_wait_s must be >= 0")


@dataclass
class SimulationMetrics:
    """System-wide accounting over one simulation run."""

    conflicts: int = 0
    grows: int = 0
    blocks_started: int = 0
    #: Integral of allocated cores over time (core-seconds).
    usage_core_seconds: float = 0.0
    #: Integral bounds for utilisation reporting.
    first_event_s: float | None = None
    last_event_s: float = 0.0
    max_cores_used: int = 0
    #: Hot-path accounting (the scale benchmark reads these).
    finish_events_pushed: int = 0
    repricings: int = 0
    prices_computed: int = 0
    stale_events_dropped: int = 0
    heap_peak: int = 0
    heap_compactions: int = 0

    @property
    def span_s(self) -> float:
        if self.first_event_s is None:
            return 0.0
        return max(0.0, self.last_event_s - self.first_event_s)

    @property
    def average_cores_used(self) -> float:
        span = self.span_s
        return self.usage_core_seconds / span if span > 0 else 0.0


class Engine:
    """The simulator core: event loop + running-block bookkeeping."""

    def __init__(self, cost_model: CostModel,
                 soon_to_finish_threshold: float = 0.10,
                 price_cache: PricingCache | None = None,
                 incremental: bool = True,
                 pressure_quantum: float = _PRESSURE_QUANTUM,
                 tracer=None,
                 batching: BatchPolicy | None = None,
                 on_complete=None) -> None:
        if not 0.0 < pressure_quantum <= 1.0:
            raise ValueError("pressure_quantum must be in (0, 1]")
        self.pressure_quantum = pressure_quantum
        self.cost_model = cost_model
        self.cpu = cost_model.cpu
        self.allocator = CoreAllocator(self.cpu.cores)
        self.soon_to_finish_threshold = soon_to_finish_threshold
        self.now = 0.0
        self.metrics = SimulationMetrics()
        #: Queries that arrived and have not started their first block.
        self.waiting: deque[Query] = deque()
        #: Queries between blocks, ready for their next block.
        self.ready: deque[Query] = deque()
        self.running: dict[int, RunningBlock] = {}
        self.completed: list[Query] = []
        self._events: list[tuple[float, int, str, object]] = []
        self._seq = itertools.count()
        self._task_ids = itertools.count(1)
        self._dirty = False
        #: Re-price every block each round when False (the legacy mode,
        #: kept for A/B verification and the scale benchmark).
        self.incremental = incremental
        #: Shared (or private) block pricing memo, bound to this cost
        #: model: cache keys do not embed the model, so sharing one
        #: cache across cost models would cross-serve stale prices.
        self.price_cache = (price_cache if price_cache is not None
                            else PricingCache())
        if self.price_cache.owner_token is None:
            self.price_cache.owner_token = cost_model
        elif self.price_cache.owner_token is not cost_model:
            raise ValueError(
                "price_cache is bound to a different cost model; "
                "pricing results are not portable across cost models")
        #: Blocks that must be re-priced regardless of pressure quantum
        #: (just started, or grown and owing spawn overhead).
        self._needs_pricing: set[int] = set()
        #: Running sums maintained incrementally so that pressure and
        #: counter aggregation are O(1) instead of O(running blocks).
        self._pressure_sum = 0.0
        self._miss_sum = 0.0
        self._access_sum = 0.0
        #: Stale finish events currently sitting in the heap.
        self._stale_finish = 0
        #: Bumped on every running-set/core-grant mutation; schedulers
        #: key co-location-dependent memos (e.g. thresholds) on this.
        self.colocation_epoch = 0
        #: Bumped after each repricing round that changed any block.
        self.pressure_epoch = 0
        #: Arrival staging: sorted (time, seq, "arrival", query) records
        #: fed into the heap one at a time.
        self._arrivals: list[tuple[float, int, str, object]] = []
        self._arrival_cursor = 0
        #: Scheduler bound by :meth:`begin` (or :meth:`run`); the drive
        #: loop dispatches through it after every event.
        self._scheduler: Scheduler | None = None
        #: Telemetry sink (``repro.telemetry`` Tracer/NodeTracer) or
        #: None.  Never read by the simulation — observational only.
        self.tracer = tracer
        #: Dynamic batching policy, or None (the default) for the
        #: legacy one-query-per-block-stream arrival path.
        self.batching = batching
        #: Completion-hook seam: ``on_complete(engine, query)`` fires
        #: once per completed query, immediately after the query is
        #: appended to :attr:`completed` (batch members individually).
        #: The hook may :meth:`submit` follow-up work — the seam that
        #: powers closed-loop tenants and pipeline stage hand-off.
        #: ``None`` (the default) keeps the completion path untouched.
        self.on_complete = on_complete
        #: Open batch groups by model name, plus a per-model token that
        #: invalidates the pending max-wait flush event once a group
        #: closes early (lazy deletion, same idiom as finish events).
        self._batch_pending: dict[str, list[Query]] = {}
        self._batch_token: dict[str, int] = {}
        self._batch_queued = 0

    # ------------------------------------------------------------------
    # pressure / introspection for schedulers
    # ------------------------------------------------------------------

    def pressure(self, exclude_task: int | None = None,
                 planning: bool = False) -> float:
        """System pressure, optionally excluding one task.

        With ``planning=True``, blocks whose remaining work fraction is
        at or below the soon-to-finish threshold are ignored (paper
        Sec. 4.3) — they will vacate before a newly planned block feels
        them.
        """
        total = 0.0
        for block in self.running.values():
            if block.task_id == exclude_task:
                continue
            if planning and (1.0 - block.progress
                             <= self.soon_to_finish_threshold):
                continue
            total += block.pressure
        return min(1.0, total)

    @property
    def queued(self) -> int:
        """Queries queued but not executing.

        Waiting + ready, plus queries parked in open batch groups (a
        batched arrival is queued work even before its group closes).
        """
        return len(self.waiting) + len(self.ready) + self._batch_queued

    @property
    def outstanding(self) -> int:
        """Queries admitted but not finished (queued + running blocks).

        A query occupies exactly one of ``waiting``/``ready``/``running``
        at any instant, so this is the node's in-flight query count — the
        signal queue-depth cluster routers balance on.
        """
        return self.queued + len(self.running)

    def quantize_pressure(self, pressure: float) -> float:
        """Snap a pressure estimate to this engine's pricing quantum.

        Pricing (and therefore every pressure-keyed planning cache worth
        having) only resolves ``pressure_quantum`` steps; planners should
        quantize their estimates with this so their cache keys are never
        finer than what pricing can distinguish.
        """
        steps = round(pressure / self.pressure_quantum)
        return min(1.0, steps * self.pressure_quantum)

    def system_counters(self) -> tuple[float, float]:
        """Aggregate (L3 miss rate, L3 accesses/s) across running blocks.

        This is what the runtime monitor samples for the interference
        proxy; rates were cached at the last re-pricing and aggregated
        incrementally, so the read is O(1).
        """
        misses = max(0.0, self._miss_sum)
        accesses = max(0.0, self._access_sum)
        if accesses <= 0.0:
            return 0.0, 0.0
        return misses / accesses, accesses

    # ------------------------------------------------------------------
    # scheduler-facing actions
    # ------------------------------------------------------------------

    def start_block(self, query: Query, stop_layer: int, cores: int,
                    versions: tuple[Schedule, ...],
                    desired_cores: int | None = None) -> int:
        """Begin executing layers ``[query.next_layer, stop_layer)``.

        ``desired_cores`` marks a scheduling conflict: the policy wanted
        more than it could get and intends to grow later.
        """
        start_layer = query.next_layer
        if not start_layer < stop_layer <= len(query.model.layers):
            raise ValueError(
                f"bad block range [{start_layer}, {stop_layer}) for "
                f"{query.model.name}")
        desired = desired_cores if desired_cores is not None else cores
        task_id = next(self._task_ids)
        self.allocator.allocate(task_id, cores)

        block = RunningBlock(
            task_id=task_id, query=query, start_layer=start_layer,
            stop_layer=stop_layer, versions=versions, cores=cores,
            desired_cores=desired, started_s=self.now,
            last_update_s=self.now,
        )
        block.pressure = self._block_pressure(block)
        self._pressure_sum += block.pressure
        self.running[task_id] = block
        if query.started_s is None:
            query.started_s = self.now
        query.blocks += 1
        self.metrics.blocks_started += 1
        if desired > cores:
            query.conflicts += 1
            self.metrics.conflicts += 1
            if self.tracer is not None:
                self.tracer.event(
                    "conflict", self.now, cat="engine",
                    qid=query.query_id,
                    args={"desired": desired, "granted": cores})
        self._needs_pricing.add(task_id)
        self.colocation_epoch += 1
        self._dirty = True
        return task_id

    def grow_block(self, task_id: int, extra_cores: int) -> None:
        """Give a conflicted block more cores (paper's recovery technique).

        The added threads cost one spawn, charged against the block's
        remaining work at the next re-pricing.
        """
        block = self.running[task_id]
        self.allocator.grow(task_id, extra_cores)
        block.cores += extra_cores
        block.pending_overhead_s += self.cost_model.expand_overhead(
            extra_cores)
        block.query.grows += 1
        self._pressure_sum -= block.pressure
        block.pressure = self._block_pressure(block)
        self._pressure_sum += block.pressure
        self.metrics.grows += 1
        if self.tracer is not None:
            self.tracer.event(
                "grow", self.now, cat="engine",
                qid=block.query.query_id,
                args={"extra": extra_cores, "cores": block.cores})
        self._needs_pricing.add(task_id)
        self.colocation_epoch += 1
        self._dirty = True

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _block_pressure(self, block: RunningBlock) -> float:
        """Duration-weighted pressure contribution of a block's layers."""
        batch = block.query.batch
        key = ("pressure", block.query.model.name, block.start_layer,
               block.stop_layer, block.versions, block.cores)
        if batch > 1:
            # Appended only for fused batches so unbatched cache keys
            # stay byte-identical to the pre-batching ones.
            key = key + (batch,)
        cached = self.price_cache.get(key)
        if cached is not None:
            return cached
        layers = block.query.model.graph.layers
        total_time = 0.0
        weighted = 0.0
        for offset, index in enumerate(range(block.start_layer,
                                             block.stop_layer)):
            layer = batched(layers[index], batch)
            version = block.versions[offset]
            iso = self.cost_model.latency(layer, version, block.cores, 0.0)
            contribution = self.cost_model.pressure_contribution(
                layer, version, block.cores)
            total_time += iso
            weighted += iso * contribution
        value = weighted / total_time if total_time > 0 else 0.0
        self.price_cache.put(key, value)
        return value

    def _advance(self, to_time: float) -> None:
        """Bank progress for all running blocks up to ``to_time``."""
        if self.metrics.first_event_s is None:
            self.metrics.first_event_s = to_time
        used = self.allocator.used
        dt_total = to_time - self.metrics.last_event_s
        if dt_total > 0:
            self.metrics.usage_core_seconds += used * dt_total
        self.metrics.last_event_s = to_time
        self.metrics.max_cores_used = max(self.metrics.max_cores_used, used)
        for block in self.running.values():
            dt = to_time - block.last_update_s
            if dt > 0:
                block.progress = min(1.0, block.progress + dt * block.rate)
                block.query.core_seconds += block.cores * dt
                block.last_update_s = to_time
        self.now = to_time

    def _price_block(self, block: RunningBlock,
                     pressure: float) -> tuple[float, float, float]:
        """(duration, miss lines/s, access lines/s) for a block execution."""
        batch = block.query.batch
        key = (block.query.model.name, block.start_layer, block.stop_layer,
               block.versions, block.cores, pressure)
        if batch > 1:
            key = key + (batch,)
        cached = self.price_cache.get(key)
        if cached is not None:
            return cached
        self.metrics.prices_computed += 1
        duration = block_duration(
            self.cost_model, block.query, block.start_layer,
            block.stop_layer, block.versions, block.cores, pressure)
        layers = block.query.model.graph.layers
        misses = 0.0
        accesses = 0.0
        for offset, index in enumerate(range(block.start_layer,
                                             block.stop_layer)):
            execution = self.cost_model.execution(
                batched(layers[index], batch), block.versions[offset],
                block.cores, pressure)
            misses += execution.dram_line_misses
            accesses += execution.llc_line_accesses
        priced = (duration, misses / duration, accesses / duration)
        self.price_cache.put(key, priced)
        return priced

    def _push_event(self, time: float, kind: str, payload: object) -> None:
        heapq.heappush(self._events, (time, next(self._seq), kind, payload))
        if len(self._events) > self.metrics.heap_peak:
            self.metrics.heap_peak = len(self._events)

    def _reprice_block(self, block: RunningBlock, quantum: float) -> None:
        """Re-price one block at ``quantum`` and schedule its finish."""
        duration, miss_rate, access_rate = self._price_block(block, quantum)
        if block.pending_overhead_s > 0.0:
            # Clamp at zero: a grow right after a block starts can owe
            # more spawn overhead than the block has banked progress,
            # and negative progress would overstate the remaining work.
            block.progress = max(
                0.0, block.progress - block.pending_overhead_s / duration)
            block.pending_overhead_s = 0.0
        self._miss_sum += miss_rate - block.miss_lines_per_s
        self._access_sum += access_rate - block.access_lines_per_s
        block.rate = 1.0 / duration
        block.miss_lines_per_s = miss_rate
        block.access_lines_per_s = access_rate
        if block.generation > 0:
            self._stale_finish += 1  # the previous finish event went stale
        block.generation += 1
        block.priced_quantum = quantum
        remaining = max(0.0, 1.0 - block.progress) * duration
        self._push_event(self.now + remaining, "finish",
                         (block.task_id, block.generation))
        self.metrics.repricings += 1
        self.metrics.finish_events_pushed += 1

    def _reprice_dirty(self, scheduler: Scheduler | None = None) -> None:
        """Re-price blocks whose quantized excluded pressure changed.

        In incremental mode a block keeps its rate and its scheduled
        finish event while its quantum holds still; only new, grown, or
        quantum-shifted blocks pay for pricing and a heap push.  With
        ``incremental=False`` every running block is re-priced every
        round (the pre-overhaul behaviour, kept for A/B checks).
        """
        total = self._pressure_sum
        needs = self._needs_pricing
        changed = False
        for block in self.running.values():
            excluded = total - block.pressure
            if excluded < 0.0:
                excluded = 0.0
            elif excluded > 1.0:
                excluded = 1.0
            quantum = self.quantize_pressure(excluded)
            if (self.incremental and block.task_id not in needs
                    and quantum == block.priced_quantum):
                continue
            self._reprice_block(block, quantum)
            changed = True
        needs.clear()
        self._dirty = False
        if changed:
            self.pressure_epoch += 1
            if self.tracer is not None:
                self.tracer.counter(
                    "engine", self.now,
                    {"pressure": min(1.0, max(0.0, self._pressure_sum)),
                     "running": len(self.running),
                     "queued": self.queued})
            hook = getattr(scheduler, "on_pressure_change", None)
            if hook is not None:
                hook(self)
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Rebuild the heap once stale finish events dominate it."""
        if self._stale_finish <= _COMPACT_MIN_STALE:
            return
        if self._stale_finish * 2 <= len(self._events):
            return
        live = []
        for event in self._events:
            if event[2] == "finish":
                task_id, generation = event[3]
                block = self.running.get(task_id)
                if block is None or block.generation != generation:
                    continue
            live.append(event)
        self.metrics.stale_events_dropped += len(self._events) - len(live)
        self._events = live
        heapq.heapify(self._events)
        self._stale_finish = 0
        self.metrics.heap_compactions += 1

    def _finish_block(self, block: RunningBlock) -> None:
        self.allocator.release(block.task_id)
        del self.running[block.task_id]
        self._pressure_sum -= block.pressure
        self._miss_sum -= block.miss_lines_per_s
        self._access_sum -= block.access_lines_per_s
        query = block.query
        query.next_layer = block.stop_layer
        if self.tracer is not None:
            self._trace_block(block)
        if query.done:
            if isinstance(query, BatchQuery):
                self._complete_batch(query)
            else:
                query.finished_s = self.now
                self.completed.append(query)
                if self.tracer is not None:
                    self._trace_completion(query)
                if self.on_complete is not None:
                    self.on_complete(self, query)
        else:
            self.ready.append(query)
        self.colocation_epoch += 1
        self._dirty = True

    def _complete_batch(self, batch: BatchQuery) -> None:
        """Attribute a fused batch's outcome back to every member.

        Members land in :attr:`completed` individually (the wrapper
        never does) with their own arrival/QoS intact, the shared
        start/finish instants, and an equal share of the fused
        ``core_seconds`` — so ServingReport/QoS accounting stays exact
        over real requests.
        """
        batch.finished_s = self.now
        share = batch.core_seconds / batch.batch
        for member in batch.members:
            member.started_s = batch.started_s
            member.next_layer = len(member.model.layers)
            member.finished_s = self.now
            member.blocks = batch.blocks
            member.conflicts = batch.conflicts
            member.grows = batch.grows
            member.core_seconds = share
            self.completed.append(member)
            if self.tracer is not None:
                self._trace_completion(member)
        if self.tracer is not None:
            self.tracer.span(
                f"batch:{batch.model.name}", batch.arrival_s,
                self.now - batch.arrival_s, cat="batch",
                qid=batch.query_id,
                args={"size": batch.batch,
                      "members": [m.query_id for m in batch.members]})
        if self.on_complete is not None:
            for member in batch.members:
                self.on_complete(self, member)

    def _batch_offer(self, query: Query) -> None:
        """Park a fresh arrival in its model's open batch group.

        The first member opens the group and arms a ``max_wait_s``
        flush timer; reaching ``max_batch`` closes the group early (the
        timer goes stale via the per-model token and is dropped lazily,
        like superseded finish events).
        """
        name = query.model.name
        group = self._batch_pending.get(name)
        if group is None:
            group = self._batch_pending[name] = []
            token = self._batch_token.get(name, 0) + 1
            self._batch_token[name] = token
            self._push_event(self.now + self.batching.max_wait_s,
                             "batch", (name, token))
        group.append(query)
        self._batch_queued += 1
        if len(group) >= self.batching.max_batch:
            self._batch_flush(name)

    def _batch_flush(self, name: str) -> None:
        """Close a batch group and hand its payload to the scheduler."""
        group = self._batch_pending.pop(name)
        self._batch_token[name] += 1  # invalidate any pending timer
        self._batch_queued -= len(group)
        if len(group) == 1:
            # Sparse traffic: release the original query unwrapped, so
            # it pays only the wait, never batched pricing.
            self.waiting.append(group[0])
            return
        fused = fuse_batch(group)
        self.waiting.append(fused)
        if self.tracer is not None:
            self.tracer.event(
                "batch.close", self.now, cat="batch", qid=fused.query_id,
                args={"model": name, "size": fused.batch})

    def _trace_block(self, block: RunningBlock) -> None:
        """Emit the closed block span (tracing enabled only).

        ``iso_s`` is the block's isolated (zero-pressure) duration — it
        goes through the shared price cache, so the lookup is a pure
        function of the block key and never perturbs the simulation —
        letting summarize recover the interference stall per block as
        ``dur - iso_s``.
        """
        query = block.query
        args = {
            "layers": [block.start_layer, block.stop_layer],
            "cores": block.cores,
            "iso_s": self._price_block(block, 0.0)[0],
        }
        if block.had_conflict:
            args["conflict"] = True
        self.tracer.span(
            f"{query.model.name}[{block.start_layer}:{block.stop_layer})",
            block.started_s, self.now - block.started_s, cat="block",
            qid=query.query_id, args=args)

    def _trace_completion(self, query: Query) -> None:
        """Emit the queue phase + lifecycle span at query completion.

        The query span's duration is stored as the exact float
        ``finished_s - arrival_s`` — the same value
        ``ServingReport.summarize`` averages — so a saved trace
        reproduces the report's mean latency bit for bit.
        """
        started = (query.started_s if query.started_s is not None
                   else query.arrival_s)
        self.tracer.span("queue", query.arrival_s,
                         started - query.arrival_s, cat="phase",
                         qid=query.query_id)
        self.tracer.span(
            query.model.name, query.arrival_s,
            query.finished_s - query.arrival_s, cat="query",
            qid=query.query_id,
            args={"satisfied": query.satisfied, "qos_s": query.qos_s,
                  "blocks": query.blocks, "conflicts": query.conflicts,
                  "grows": query.grows})

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def _stage_arrivals(self, queries: list[Query]) -> None:
        """Sort arrivals and seed the heap with the earliest one.

        Sequence numbers are assigned in input order *before* any finish
        event exists, so equal-time ties resolve exactly as if every
        arrival had been pushed up front — but the heap only ever holds
        one pending arrival instead of the whole stream.
        """
        self._arrivals = sorted(
            ((query.arrival_s, next(self._seq), "arrival", query)
             for query in queries),
            key=lambda event: (event[0], event[1]))
        self._arrival_cursor = 0
        self._feed_arrival()

    def _feed_arrival(self) -> None:
        if self._arrival_cursor < len(self._arrivals):
            heapq.heappush(self._events,
                           self._arrivals[self._arrival_cursor])
            self._arrival_cursor += 1
            if len(self._events) > self.metrics.heap_peak:
                self.metrics.heap_peak = len(self._events)

    @property
    def _arrivals_pending(self) -> bool:
        return self._arrival_cursor < len(self._arrivals)

    def run(self, queries: list[Query], scheduler: Scheduler,
            horizon_s: float | None = None) -> list[Query]:
        """Simulate until all queries complete (or the horizon passes).

        Returns completed queries in completion order.
        """
        self.begin(queries, scheduler)
        self._drive(horizon_s=horizon_s, resumable=False)
        return self.completed

    # ------------------------------------------------------------------
    # incremental driving (cluster co-simulation)
    # ------------------------------------------------------------------

    def begin(self, queries: list[Query], scheduler: Scheduler) -> None:
        """Stage a stream and bind a scheduler without running the loop.

        The cluster driver feeds each node engine incrementally: it
        ``begin``-s with an empty stream, then alternates
        :meth:`run_until` (advance to the next global arrival) and
        :meth:`submit` (inject the query the router assigned here), and
        finally :meth:`drain`-s the tail.  :meth:`run` is exactly
        ``begin`` + drive-to-completion.
        """
        self._scheduler = scheduler
        self._stage_arrivals(queries)

    def submit(self, query: Query, at: float | None = None) -> None:
        """Inject one arrival event, by default at ``query.arrival_s``.

        ``at`` sets the event time instead (an admission controller
        re-offering a deferred query) — the query's own ``arrival_s``
        is untouched, so its latency still counts the deferral.  Event
        times never go backwards: anything earlier than ``now`` fires
        immediately.
        """
        time = query.arrival_s if at is None else at
        self._push_event(max(time, self.now), "arrival", query)

    def run_until(self, until_s: float) -> None:
        """Process every event at ``time <= until_s``; resumable.

        Leaves the first out-of-window event in the heap and advances
        the clock (banking progress and core-usage accounting) to
        ``until_s`` so routers observe fresh block progress.
        """
        self._drive(horizon_s=until_s, resumable=True)

    def drain(self) -> list[Query]:
        """Run the loop to completion; returns the completed queries.

        Completion ordering contract (pinned by test, relied on by
        ``on_complete`` consumers): :attr:`completed` is append-only in
        simulation-time order — a query is appended at its finish
        instant, with equal-time ties resolved in event order — and
        ``on_complete`` fires immediately after each append, with
        ``engine.now`` equal to that query's ``finished_s``.  Batch
        members are appended (and hooked) individually, in member
        order, at the fused block's finish.  The hook may
        :meth:`submit` follow-up work; such arrivals are clamped to no
        earlier than the completion instant, and the drain keeps
        running until hook-generated work is exhausted too.
        """
        self._drive(horizon_s=None, resumable=False)
        return self.completed

    def next_event_s(self) -> float | None:
        """Earliest live event time in this engine, or None when idle.

        Pops stale finish events (and stale batch-flush timers) off the
        heap top exactly as the drive loop would, so the answer is the
        time :meth:`run_until` would next act at.  The cluster's
        interactive tail drain uses this to advance all nodes in global
        time order, keeping completion-hook hand-offs causally ordered
        across nodes.
        """
        while self._events:
            time, _, kind, payload = self._events[0]
            if kind == "finish":
                task_id, generation = payload
                block = self.running.get(task_id)
                if block is None or block.generation != generation:
                    heapq.heappop(self._events)
                    self._stale_finish -= 1
                    self.metrics.stale_events_dropped += 1
                    continue
            elif kind == "batch":
                name, token = payload
                if self._batch_token.get(name) != token:
                    heapq.heappop(self._events)
                    continue
            return time
        if self._arrivals_pending:
            return self._arrivals[self._arrival_cursor][0]
        return None

    def _drive(self, horizon_s: float | None, resumable: bool) -> None:
        scheduler = self._scheduler
        if scheduler is None:
            raise RuntimeError("no scheduler bound; call begin()/run()")
        while self._events:
            event = heapq.heappop(self._events)
            time, _, kind, payload = event
            if kind == "finish":
                task_id, generation = payload
                block = self.running.get(task_id)
                if block is None or block.generation != generation:
                    # Lazy deletion: drop the stale event without even
                    # advancing the clock (progress banking is linear,
                    # so skipping the no-op advance changes nothing).
                    self._stale_finish -= 1
                    self.metrics.stale_events_dropped += 1
                    continue
            elif kind == "batch":
                name, token = payload
                if self._batch_token.get(name) != token:
                    continue  # group already closed early at max_batch
            if horizon_s is not None and time > horizon_s:
                # Account the tail of the simulated window: without this
                # advance, usage/last_event under-count everything after
                # the final in-horizon event and inflate average cores.
                # A resumable drive keeps the event for the next call; a
                # terminal horizon discards it with the rest of the run.
                if resumable:
                    heapq.heappush(self._events, event)
                if (self.metrics.first_event_s is not None
                        and horizon_s > self.now):
                    self._advance(horizon_s)
                return
            self._advance(time)
            if kind == "arrival":
                if self.batching is not None and payload.next_layer == 0:
                    self._batch_offer(payload)
                else:
                    self.waiting.append(payload)
                if self.tracer is not None:
                    self.tracer.event("arrival", time, cat="engine",
                                      qid=payload.query_id)
                self._feed_arrival()
            elif kind == "batch":
                self._batch_flush(payload[0])
            else:
                self._finish_block(block)
            scheduler.schedule(self)
            # A heap holding only stale finish events has no future in
            # it — count live entries, or the drain loop would slide
            # past this guard and silently drop the pending queries.
            live_events = len(self._events) - self._stale_finish
            if (not self.running and (self.waiting or self.ready)
                    and live_events <= 0 and not self._arrivals_pending):
                raise RuntimeError(
                    "scheduler deadlock: pending queries with an idle "
                    "machine and no future events")
            if self._dirty:
                self._reprice_dirty(scheduler)
        if (resumable and self.metrics.first_event_s is not None
                and horizon_s is not None and horizon_s > self.now):
            self._advance(horizon_s)
