"""Rate-based discrete-event simulation of the multi-tenant CPU.

Execution model: each running layer block advances through its work at a
*rate* (work fraction per second) priced by the cost model under the
current co-location pressure.  Whenever the co-location set changes
(block start, finish, or grow), every running block's progress is banked
and its rate re-priced — so a block that started on a quiet machine slows
down mid-flight when noisy neighbours arrive, exactly the dynamic the
paper's adaptive scheduler reacts to.

The engine owns mechanics only (clock, events, core accounting, pressure
bookkeeping); *policies* live in :mod:`repro.scheduling` and are invoked
through a single callback, :meth:`Scheduler.schedule`.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Protocol

from repro.compiler.costmodel import CostModel
from repro.compiler.schedule import Schedule
from repro.runtime.allocator import CoreAllocator
from repro.runtime.tasks import Query, RunningBlock, block_duration

#: Pressure quantisation step for cost-model memo hits.
_PRESSURE_QUANTUM = 0.02


class Scheduler(Protocol):
    """Policy interface: examine the engine, start/grow blocks, return."""

    def schedule(self, engine: "Engine") -> None:  # pragma: no cover
        ...


@dataclass
class SimulationMetrics:
    """System-wide accounting over one simulation run."""

    conflicts: int = 0
    grows: int = 0
    blocks_started: int = 0
    #: Integral of allocated cores over time (core-seconds).
    usage_core_seconds: float = 0.0
    #: Integral bounds for utilisation reporting.
    first_event_s: float | None = None
    last_event_s: float = 0.0
    max_cores_used: int = 0

    @property
    def span_s(self) -> float:
        if self.first_event_s is None:
            return 0.0
        return max(0.0, self.last_event_s - self.first_event_s)

    @property
    def average_cores_used(self) -> float:
        span = self.span_s
        return self.usage_core_seconds / span if span > 0 else 0.0


class Engine:
    """The simulator core: event loop + running-block bookkeeping."""

    def __init__(self, cost_model: CostModel,
                 soon_to_finish_threshold: float = 0.10) -> None:
        self.cost_model = cost_model
        self.cpu = cost_model.cpu
        self.allocator = CoreAllocator(self.cpu.cores)
        self.soon_to_finish_threshold = soon_to_finish_threshold
        self.now = 0.0
        self.metrics = SimulationMetrics()
        #: Queries that arrived and have not started their first block.
        self.waiting: deque[Query] = deque()
        #: Queries between blocks, ready for their next block.
        self.ready: deque[Query] = deque()
        self.running: dict[int, RunningBlock] = {}
        self.completed: list[Query] = []
        self._events: list[tuple[float, int, str, object]] = []
        self._seq = itertools.count()
        self._task_ids = itertools.count(1)
        self._dirty = False
        #: Block pricing memo: identical blocks recur across queries, so
        #: (model, range, versions, cores, pressure) -> (duration, rates).
        self._price_memo: dict[tuple, tuple[float, float, float]] = {}

    # ------------------------------------------------------------------
    # pressure / introspection for schedulers
    # ------------------------------------------------------------------

    def pressure(self, exclude_task: int | None = None,
                 planning: bool = False) -> float:
        """System pressure, optionally excluding one task.

        With ``planning=True``, blocks whose remaining work fraction is
        below the soon-to-finish threshold are ignored (paper Sec. 4.3).
        """
        total = 0.0
        for block in self.running.values():
            if block.task_id == exclude_task:
                continue
            if planning and (1.0 - block.progress
                             < self.soon_to_finish_threshold):
                continue
            total += block.pressure
        return min(1.0, total)

    def system_counters(self) -> tuple[float, float]:
        """Aggregate (L3 miss rate, L3 accesses/s) across running blocks.

        This is what the runtime monitor samples for the interference
        proxy; rates were cached at the last re-pricing.
        """
        misses = sum(b.miss_lines_per_s for b in self.running.values())
        accesses = sum(b.access_lines_per_s for b in self.running.values())
        if accesses <= 0.0:
            return 0.0, 0.0
        return misses / accesses, accesses

    # ------------------------------------------------------------------
    # scheduler-facing actions
    # ------------------------------------------------------------------

    def start_block(self, query: Query, stop_layer: int, cores: int,
                    versions: tuple[Schedule, ...],
                    desired_cores: int | None = None) -> int:
        """Begin executing layers ``[query.next_layer, stop_layer)``.

        ``desired_cores`` marks a scheduling conflict: the policy wanted
        more than it could get and intends to grow later.
        """
        start_layer = query.next_layer
        if not start_layer < stop_layer <= len(query.model.layers):
            raise ValueError(
                f"bad block range [{start_layer}, {stop_layer}) for "
                f"{query.model.name}")
        desired = desired_cores if desired_cores is not None else cores
        task_id = next(self._task_ids)
        self.allocator.allocate(task_id, cores)

        block = RunningBlock(
            task_id=task_id, query=query, start_layer=start_layer,
            stop_layer=stop_layer, versions=versions, cores=cores,
            desired_cores=desired, started_s=self.now,
            last_update_s=self.now,
        )
        block.pressure = self._block_pressure(block)
        self.running[task_id] = block
        if query.started_s is None:
            query.started_s = self.now
        query.blocks += 1
        self.metrics.blocks_started += 1
        if desired > cores:
            query.conflicts += 1
            self.metrics.conflicts += 1
        self._dirty = True
        return task_id

    def grow_block(self, task_id: int, extra_cores: int) -> None:
        """Give a conflicted block more cores (paper's recovery technique).

        The added threads cost one spawn, charged against the block's
        remaining work at the next re-pricing.
        """
        block = self.running[task_id]
        self.allocator.grow(task_id, extra_cores)
        block.cores += extra_cores
        block.pending_overhead_s += self.cost_model.expand_overhead(
            extra_cores)
        block.query.grows += 1
        block.pressure = self._block_pressure(block)
        self.metrics.grows += 1
        self._dirty = True

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _block_pressure(self, block: RunningBlock) -> float:
        """Duration-weighted pressure contribution of a block's layers."""
        key = ("pressure", block.query.model.name, block.start_layer,
               block.stop_layer, block.versions, block.cores)
        cached = self._price_memo.get(key)
        if cached is not None:
            return cached[0]
        layers = block.query.model.graph.layers
        total_time = 0.0
        weighted = 0.0
        for offset, index in enumerate(range(block.start_layer,
                                             block.stop_layer)):
            layer = layers[index]
            version = block.versions[offset]
            iso = self.cost_model.latency(layer, version, block.cores, 0.0)
            contribution = self.cost_model.pressure_contribution(
                layer, version, block.cores)
            total_time += iso
            weighted += iso * contribution
        value = weighted / total_time if total_time > 0 else 0.0
        self._price_memo[key] = (value, 0.0, 0.0)
        return value

    def _quantize(self, pressure: float) -> float:
        steps = round(pressure / _PRESSURE_QUANTUM)
        return min(1.0, steps * _PRESSURE_QUANTUM)

    def _advance(self, to_time: float) -> None:
        """Bank progress for all running blocks up to ``to_time``."""
        if self.metrics.first_event_s is None:
            self.metrics.first_event_s = to_time
        used = self.allocator.used
        dt_total = to_time - self.metrics.last_event_s
        if dt_total > 0:
            self.metrics.usage_core_seconds += used * dt_total
        self.metrics.last_event_s = to_time
        self.metrics.max_cores_used = max(self.metrics.max_cores_used, used)
        for block in self.running.values():
            dt = to_time - block.last_update_s
            if dt > 0:
                block.progress = min(1.0, block.progress + dt * block.rate)
                block.query.core_seconds += block.cores * dt
                block.last_update_s = to_time
        self.now = to_time

    def _price_block(self, block: RunningBlock,
                     pressure: float) -> tuple[float, float, float]:
        """(duration, miss lines/s, access lines/s) for a block execution."""
        key = (block.query.model.name, block.start_layer, block.stop_layer,
               block.versions, block.cores, pressure)
        cached = self._price_memo.get(key)
        if cached is not None:
            return cached
        duration = block_duration(
            self.cost_model, block.query, block.start_layer,
            block.stop_layer, block.versions, block.cores, pressure)
        layers = block.query.model.graph.layers
        misses = 0.0
        accesses = 0.0
        for offset, index in enumerate(range(block.start_layer,
                                             block.stop_layer)):
            execution = self.cost_model.execution(
                layers[index], block.versions[offset], block.cores,
                pressure)
            misses += execution.dram_line_misses
            accesses += execution.llc_line_accesses
        priced = (duration, misses / duration, accesses / duration)
        self._price_memo[key] = priced
        return priced

    def _reprice_all(self) -> None:
        """Re-price every running block under the current pressure."""
        for block in self.running.values():
            pressure = self._quantize(self.pressure(
                exclude_task=block.task_id))
            duration, miss_rate, access_rate = self._price_block(block,
                                                                 pressure)
            if block.pending_overhead_s > 0.0:
                block.progress -= block.pending_overhead_s / duration
                block.pending_overhead_s = 0.0
            block.rate = 1.0 / duration
            block.miss_lines_per_s = miss_rate
            block.access_lines_per_s = access_rate
            block.generation += 1
            remaining = max(0.0, 1.0 - block.progress) * duration
            heapq.heappush(self._events, (
                self.now + remaining, next(self._seq), "finish",
                (block.task_id, block.generation)))
        self._dirty = False

    def _finish_block(self, block: RunningBlock) -> None:
        self.allocator.release(block.task_id)
        del self.running[block.task_id]
        query = block.query
        query.next_layer = block.stop_layer
        if query.done:
            query.finished_s = self.now
            self.completed.append(query)
        else:
            self.ready.append(query)
        self._dirty = True

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self, queries: list[Query], scheduler: Scheduler,
            horizon_s: float | None = None) -> list[Query]:
        """Simulate until all queries complete (or the horizon passes).

        Returns completed queries in completion order.
        """
        for query in queries:
            heapq.heappush(self._events, (
                query.arrival_s, next(self._seq), "arrival", query))

        while self._events:
            time, _, kind, payload = heapq.heappop(self._events)
            if horizon_s is not None and time > horizon_s:
                break
            self._advance(time)
            if kind == "arrival":
                self.waiting.append(payload)
            elif kind == "finish":
                task_id, generation = payload
                block = self.running.get(task_id)
                if block is None or block.generation != generation:
                    continue  # stale pricing
                self._finish_block(block)
            scheduler.schedule(self)
            if (not self.running and (self.waiting or self.ready)
                    and not self._events):
                raise RuntimeError(
                    "scheduler deadlock: pending queries with an idle "
                    "machine and no future events")
            if self._dirty:
                self._reprice_all()
        return self.completed
