"""Physical core allocation with grow-on-free support.

The allocator is deliberately dumb — policies live in the schedulers.  It
enforces one invariant: granted cores never exceed the machine.  Grants
are tracked per holder so a holder can grow (the paper's conflict-recovery
technique, Sec. 3.2) and must release exactly what it holds.
"""

from __future__ import annotations


class AllocationError(RuntimeError):
    """Raised on double-allocation, over-release, or unknown holders."""


class CoreAllocator:
    """Tracks which scheduling unit holds how many cores."""

    def __init__(self, total_cores: int) -> None:
        if total_cores <= 0:
            raise ValueError("total_cores must be positive")
        self.total_cores = total_cores
        self._held: dict[int, int] = {}

    @property
    def used(self) -> int:
        return sum(self._held.values())

    @property
    def available(self) -> int:
        return self.total_cores - self.used

    def holders(self) -> dict[int, int]:
        """Snapshot of holder -> core count."""
        return dict(self._held)

    def held_by(self, holder: int) -> int:
        return self._held.get(holder, 0)

    def allocate(self, holder: int, cores: int) -> None:
        """Grant ``cores`` to a new holder."""
        if cores <= 0:
            raise AllocationError(f"allocation must be positive, got {cores}")
        if holder in self._held:
            raise AllocationError(f"holder {holder} already holds cores")
        if cores > self.available:
            raise AllocationError(
                f"requested {cores} cores, only {self.available} available")
        self._held[holder] = cores

    def grow(self, holder: int, extra: int) -> None:
        """Add cores to an existing holder (conflict recovery)."""
        if extra <= 0:
            raise AllocationError(f"growth must be positive, got {extra}")
        if holder not in self._held:
            raise AllocationError(f"unknown holder {holder}")
        if extra > self.available:
            raise AllocationError(
                f"requested {extra} extra cores, only {self.available} free")
        self._held[holder] += extra

    def release(self, holder: int) -> int:
        """Release a holder's full grant; returns the freed core count."""
        if holder not in self._held:
            raise AllocationError(f"unknown holder {holder}")
        return self._held.pop(holder)
