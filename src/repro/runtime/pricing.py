"""Shared, size-bounded memo for block pricing results.

Identical blocks recur constantly in a serving simulation: the same
model prefix, compiled versions, core grant, and quantized pressure show
up across queries, across runs, and across policies — the QPS-with-95%-QoS
bisection alone re-simulates the same stream a dozen times.  The engine
therefore prices through a :class:`PricingCache` that the
:class:`~repro.serving.server.ServingStack` owns and shares across every
engine it builds, so a warm sweep eliminates most
:func:`~repro.runtime.tasks.block_duration` calls entirely.

The cache is content-addressed — keys embed the model name, layer range,
version tuple, core count, and pressure quantum — so sharing it across
runs and policies cannot change any result; a hit returns exactly what a
recomputation would.  Keys do *not* embed the cost model or CPU spec,
so a cache must never be shared across different cost models: the
engine binds each cache to the first cost model that prices through it
(:attr:`owner_token`) and rejects any other.  Eviction is batched FIFO:
when full, the oldest eighth of the entries is dropped in one pass,
keeping the steady-state cost of :meth:`put` at O(1) amortised without
per-access bookkeeping.
"""

from __future__ import annotations

import itertools
from typing import Hashable


class PricingCache:
    """Bounded key/value memo with hit-rate accounting.

    Values must not be ``None`` (a ``None`` return from :meth:`get`
    signals a miss).  The engine stores pricing tuples and pressure
    contributions; anything hashable works as a key.
    """

    __slots__ = ("max_entries", "hits", "misses", "evictions",
                 "owner_token", "_data")

    def __init__(self, max_entries: int = 1 << 18) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: The cost model whose prices this cache holds; set by the
        #: first engine that uses the cache, checked by every later one
        #: (keys do not embed the cost model, so cross-model sharing
        #: would silently return another machine's prices).
        self.owner_token: object | None = None
        self._data: dict[Hashable, object] = {}

    def get(self, key: Hashable):
        """Cached value for ``key``, or ``None`` on a miss."""
        value = self._data.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, key: Hashable, value) -> None:
        if value is None:
            raise ValueError("PricingCache values must not be None")
        data = self._data
        if len(data) >= self.max_entries and key not in data:
            drop = max(1, self.max_entries // 8)
            for stale in list(itertools.islice(iter(data), drop)):
                del data[stale]
            self.evictions += drop
        data[key] = value

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        """Snapshot for benchmarks and reports."""
        return {
            "entries": len(self._data),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }
