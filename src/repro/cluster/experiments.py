"""Fleet-level experiment drivers: load sweeps and capacity searches.

The cluster analogues of :mod:`repro.serving.experiments`, riding on the
same worker-pool layer: every offered-load point is an independent fleet
simulation, so a sweep fans points out over ``fork``-ed workers (the
compiled stack travels by copy-on-write, never pickled) and falls back
to the serial in-process path on platforms without ``fork``.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

from repro.cluster.admission import AdmissionPolicy
from repro.cluster.fleet import Cluster
from repro.cluster.metrics import ClusterReport
from repro.cluster.spec import ClusterSpec
from repro.serving.experiments import fork_worker_pool
from repro.serving.metrics import max_qps_at_satisfaction
from repro.serving.server import ServingStack
from repro.workloads.scenario import resolve_scenario
from repro.serving.workload import WorkloadSpec

#: Sweep description inherited by fork()-ed workers, exactly like
#: ``repro.serving.experiments._SWEEP_STATE``.
_CLUSTER_STATE: tuple | None = None


def _run_cluster_point(stack: ServingStack, cluster_spec: ClusterSpec,
                       router: str, admission: AdmissionPolicy | None,
                       spec: WorkloadSpec, qps: float, count: int,
                       seed: int | None, scenario=None) -> ClusterReport:
    """Simulate one fleet offered-load point and roll it up."""
    cluster = Cluster(stack, cluster_spec, router=router,
                      admission=admission)
    return cluster.report(spec, qps, count, seed=seed, scenario=scenario)


def _cluster_worker(qps: float) -> ClusterReport:
    (stack, cluster_spec, router, admission, spec, count, seed,
     scenario) = _CLUSTER_STATE
    return _run_cluster_point(stack, cluster_spec, router, admission,
                              spec, qps, count, seed, scenario)


@contextlib.contextmanager
def cluster_sweep_pool(stack: ServingStack, cluster_spec: ClusterSpec,
                       spec: WorkloadSpec, count: int,
                       router: str = "pressure_aware",
                       admission: AdmissionPolicy | None = None,
                       seed: int | None = None, workers: int = 2,
                       scenario=None):
    """A persistent fork pool for *repeated* sweeps of one fleet scenario.

    The cluster twin of :func:`repro.serving.experiments.sweep_pool`,
    with the same rationale: workers survive across
    :func:`sweep_cluster_qps` calls so their copy-on-write pricing
    caches stay warm from one capacity-search round to the next.  Pool
    lifecycle and the fail-soft contract (``None`` on platforms without
    ``fork``, which the sweep treats as the serial path) are shared
    with the serving layer via :func:`fork_worker_pool`.
    """
    global _CLUSTER_STATE
    scenario = resolve_scenario(scenario)
    # Warm the lazily built artifacts and per-CPU runtimes before
    # forking so children inherit the compiled models, scheduling
    # profiles, cost models, and proxies by copy-on-write instead of
    # each rebuilding them privately.
    stack.ensure_compiled()
    for name in stack.model_names:
        stack.profiles[name]
    for cpu in cluster_spec.cpu_specs:
        stack.runtime_for(cpu)
    _CLUSTER_STATE = (stack, cluster_spec, router, admission, spec,
                      count, seed, scenario)
    try:
        with fork_worker_pool(workers) as pool:
            if pool is not None:
                pool._repro_cluster_state = _CLUSTER_STATE
            yield pool
    finally:
        _CLUSTER_STATE = None


def sweep_cluster_qps(stack: ServingStack, cluster_spec: ClusterSpec,
                      spec: WorkloadSpec, qps_values: list[float],
                      count: int, router: str = "pressure_aware",
                      admission: AdmissionPolicy | None = None,
                      seed: int | None = None,
                      workers: int | None = None,
                      pool=None, scenario=None) -> list[ClusterReport]:
    """One :class:`ClusterReport` per offered load, optionally parallel.

    Same contract as :func:`repro.serving.experiments.sweep_qps`: every
    point is deterministic per (seed, qps), workers > 1 forks a pool,
    platforms without ``fork`` fail soft to the serial path, and a
    :func:`cluster_sweep_pool` passed as ``pool`` reuses warm workers
    across calls (its baked-in scenario must match these arguments).
    """
    qps_list = [float(qps) for qps in qps_values]
    if not qps_list:
        return []
    scenario = resolve_scenario(scenario)
    if pool is not None:
        baked = getattr(pool, "_repro_cluster_state", None)
        if baked != (stack, cluster_spec, router, admission, spec, count,
                     seed, scenario):
            raise ValueError(
                "pool was created for a different fleet scenario; build "
                "it with cluster_sweep_pool(...) using these same "
                "arguments")
        try:
            return pool.map(_cluster_worker, qps_list)
        except OSError:
            # Worker/pipe died mid-run: recompute this batch serially
            # rather than aborting the capacity search.
            return [_run_cluster_point(stack, cluster_spec, router,
                                       admission, spec, qps, count, seed,
                                       scenario)
                    for qps in qps_list]
    requested = 1 if workers is None else max(1, int(workers))
    requested = min(requested, len(qps_list))
    if requested > 1:
        with cluster_sweep_pool(stack, cluster_spec, spec, count,
                                router=router, admission=admission,
                                seed=seed, workers=requested,
                                scenario=scenario) as ephemeral:
            if ephemeral is not None:
                try:
                    return ephemeral.map(_cluster_worker, qps_list)
                except OSError:
                    pass  # worker/pipe died mid-run: recompute serially
    return [_run_cluster_point(stack, cluster_spec, router, admission,
                               spec, qps, count, seed, scenario)
            for qps in qps_list]


@dataclass(frozen=True)
class ClusterCapacityResult:
    """Fleet QPS@target for one (router, fleet, workload) cell."""

    router: str
    cluster: str
    workload: str
    qps: float
    report: ClusterReport


def cluster_capacity(stack: ServingStack, cluster_spec: ClusterSpec,
                     spec: WorkloadSpec, count: int,
                     router: str = "pressure_aware",
                     admission: AdmissionPolicy | None = None,
                     target: float = 0.95,
                     low_qps: float = 10.0, high_qps: float = 1600.0,
                     tolerance_qps: float = 25.0,
                     seed: int | None = None,
                     workers: int | None = None,
                     scenario=None) -> ClusterCapacityResult:
    """Max offered QPS with ``target`` fleet QoS satisfaction.

    The fleet version of the paper's Fig. 12 metric: shed queries count
    as QoS violations, so admission control cannot buy capacity by
    rejecting its way to a clean satisfaction rate.  ``workers > 1``
    batches each bisection round's probes across one persistent
    :func:`cluster_sweep_pool`, so worker pricing caches stay warm
    across rounds.
    """
    batch = 1 if workers is None else max(1, int(workers))
    scenario = resolve_scenario(scenario)

    def search(pool) -> tuple[float, ClusterReport]:
        def run_batch(qps_values: list[float]) -> list[ClusterReport]:
            return sweep_cluster_qps(stack, cluster_spec, spec,
                                     qps_values, count, router=router,
                                     admission=admission, seed=seed,
                                     pool=pool, scenario=scenario)

        return max_qps_at_satisfaction(
            run_batch=run_batch, batch=batch, target=target,
            low_qps=low_qps, high_qps=high_qps,
            tolerance_qps=tolerance_qps)

    if batch > 1:
        with cluster_sweep_pool(stack, cluster_spec, spec, count,
                                router=router, admission=admission,
                                seed=seed, workers=batch,
                                scenario=scenario) as pool:
            qps, report = search(pool)
    else:
        qps, report = search(None)
    return ClusterCapacityResult(router=router, cluster=cluster_spec.name,
                                 workload=spec.name, qps=qps,
                                 report=report)
