"""Fleet-level experiment drivers: load sweeps and capacity searches.

The cluster analogues of :mod:`repro.serving.experiments`, riding on the
same worker-pool layer: every offered-load point is an independent fleet
simulation, so a sweep fans points out over ``fork``-ed workers (the
compiled stack travels by copy-on-write, never pickled) and falls back
to the serial in-process path on platforms without ``fork``.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

from repro.cluster.admission import AdmissionPolicy
from repro.cluster.autoscale import AutoscalePolicy
from repro.cluster.fleet import Cluster
from repro.cluster.metrics import ClusterReport
from repro.cluster.spec import ClusterSpec
from repro.serving.experiments import fork_worker_pool
from repro.serving.metrics import max_qps_at_satisfaction
from repro.serving.server import ServingStack
from repro.workloads.scenario import resolve_scenario
from repro.serving.workload import (
    WorkloadSpec,
    poisson_queries,
    scenario_queries,
)

#: Sweep description inherited by fork()-ed workers, exactly like
#: ``repro.serving.experiments._SWEEP_STATE``.
_CLUSTER_STATE: tuple | None = None


def _run_cluster_point(stack: ServingStack, cluster_spec: ClusterSpec,
                       router: str, admission: AdmissionPolicy | None,
                       spec: WorkloadSpec, qps: float, count: int,
                       seed: int | None, scenario=None) -> ClusterReport:
    """Simulate one fleet offered-load point and roll it up."""
    cluster = Cluster(stack, cluster_spec, router=router,
                      admission=admission)
    return cluster.report(spec, qps, count, seed=seed, scenario=scenario)


def _cluster_worker(qps: float) -> ClusterReport:
    (stack, cluster_spec, router, admission, spec, count, seed,
     scenario) = _CLUSTER_STATE
    return _run_cluster_point(stack, cluster_spec, router, admission,
                              spec, qps, count, seed, scenario)


@contextlib.contextmanager
def cluster_sweep_pool(stack: ServingStack, cluster_spec: ClusterSpec,
                       spec: WorkloadSpec, count: int,
                       router: str = "pressure_aware",
                       admission: AdmissionPolicy | None = None,
                       seed: int | None = None, workers: int = 2,
                       scenario=None):
    """A persistent fork pool for *repeated* sweeps of one fleet scenario.

    The cluster twin of :func:`repro.serving.experiments.sweep_pool`,
    with the same rationale: workers survive across
    :func:`sweep_cluster_qps` calls so their copy-on-write pricing
    caches stay warm from one capacity-search round to the next.  Pool
    lifecycle and the fail-soft contract (``None`` on platforms without
    ``fork``, which the sweep treats as the serial path) are shared
    with the serving layer via :func:`fork_worker_pool`.
    """
    global _CLUSTER_STATE
    scenario = resolve_scenario(scenario)
    # Warm the lazily built artifacts and per-device runtimes before
    # forking so children inherit the compiled models, scheduling
    # profiles, cost models, and proxies by copy-on-write instead of
    # each rebuilding them privately.
    stack.ensure_compiled()
    for name in stack.model_names:
        _ = stack.profiles[name]
    for device in cluster_spec.device_specs:
        stack.runtime_for(device)
    _CLUSTER_STATE = (stack, cluster_spec, router, admission, spec,
                      count, seed, scenario)
    try:
        with fork_worker_pool(workers) as pool:
            if pool is not None:
                pool._repro_cluster_state = _CLUSTER_STATE
            yield pool
    finally:
        _CLUSTER_STATE = None


def sweep_cluster_qps(stack: ServingStack, cluster_spec: ClusterSpec,
                      spec: WorkloadSpec, qps_values: list[float],
                      count: int, router: str = "pressure_aware",
                      admission: AdmissionPolicy | None = None,
                      seed: int | None = None,
                      workers: int | None = None,
                      pool=None, scenario=None) -> list[ClusterReport]:
    """One :class:`ClusterReport` per offered load, optionally parallel.

    Same contract as :func:`repro.serving.experiments.sweep_qps`: every
    point is deterministic per (seed, qps), workers > 1 forks a pool,
    platforms without ``fork`` fail soft to the serial path, and a
    :func:`cluster_sweep_pool` passed as ``pool`` reuses warm workers
    across calls (its baked-in scenario must match these arguments).
    """
    qps_list = [float(qps) for qps in qps_values]
    if not qps_list:
        return []
    scenario = resolve_scenario(scenario)
    if pool is not None:
        baked = getattr(pool, "_repro_cluster_state", None)
        if baked != (stack, cluster_spec, router, admission, spec, count,
                     seed, scenario):
            raise ValueError(
                "pool was created for a different fleet scenario; build "
                "it with cluster_sweep_pool(...) using these same "
                "arguments")
        try:
            return pool.map(_cluster_worker, qps_list)
        except OSError:
            # Worker/pipe died mid-run: recompute this batch serially
            # rather than aborting the capacity search.
            return [_run_cluster_point(stack, cluster_spec, router,
                                       admission, spec, qps, count, seed,
                                       scenario)
                    for qps in qps_list]
    requested = 1 if workers is None else max(1, int(workers))
    requested = min(requested, len(qps_list))
    if requested > 1:
        with cluster_sweep_pool(stack, cluster_spec, spec, count,
                                router=router, admission=admission,
                                seed=seed, workers=requested,
                                scenario=scenario) as ephemeral:
            if ephemeral is not None:
                try:
                    return ephemeral.map(_cluster_worker, qps_list)
                except OSError:
                    pass  # worker/pipe died mid-run: recompute serially
    return [_run_cluster_point(stack, cluster_spec, router, admission,
                               spec, qps, count, seed, scenario)
            for qps in qps_list]


@dataclass(frozen=True)
class AutoscalePoint:
    """Static-peak vs autoscaled fleet on one identical stream.

    The cost-vs-QoS frontier cell: the autoscaled fleet's QoS
    satisfaction relative to the static-peak fleet
    (:attr:`qos_ratio`, want >= ~0.95) against the node-seconds it
    actually paid for (:attr:`node_seconds_ratio`, want << 1).
    """

    scenario: str
    qps: float
    static: ClusterReport
    autoscaled: ClusterReport

    @property
    def qos_ratio(self) -> float:
        """Autoscaled / static-peak QoS satisfaction (1.0 = no loss)."""
        if self.static.satisfaction_rate <= 0.0:
            return 1.0 if self.autoscaled.satisfaction_rate <= 0.0 else float("inf")
        return (self.autoscaled.satisfaction_rate
                / self.static.satisfaction_rate)

    @property
    def node_seconds_ratio(self) -> float:
        """Autoscaled / static-peak node-seconds (the capacity saving)."""
        if self.static.node_seconds <= 0.0:
            return 1.0
        return self.autoscaled.node_seconds / self.static.node_seconds


#: Autoscale sweep description inherited by fork()-ed workers.
_AUTOSCALE_STATE: tuple | None = None


def _run_autoscale_point(stack: ServingStack, static_spec: ClusterSpec,
                         initial_spec: ClusterSpec,
                         policy: AutoscalePolicy, router: str,
                         admission: AdmissionPolicy | None,
                         spec: WorkloadSpec, scenario, qps: float,
                         count: int, seed: int | None) -> AutoscalePoint:
    """Serve one identical stream through both fleets, pair the reports.

    Engines mutate queries, so each fleet gets its own regeneration of
    the same seeded stream (bit-identical arrivals and model draws).
    """
    scenario = resolve_scenario(scenario)
    effective_seed = stack.seed if seed is None else seed
    scenario_name = scenario.name if scenario is not None else "poisson"

    def stream():
        if scenario is not None:
            return scenario_queries(stack.compiled, scenario, qps, count,
                                    seed=effective_seed, spec=spec)
        return poisson_queries(stack.compiled, spec, qps, count,
                               seed=effective_seed)

    static = Cluster(stack, static_spec, router=router,
                     admission=admission).serve(stream(), offered_qps=qps)
    autoscaled = Cluster(stack, initial_spec, router=router,
                         admission=admission,
                         autoscale=policy).serve(stream(),
                                                 offered_qps=qps)
    return AutoscalePoint(scenario=scenario_name, qps=qps, static=static,
                          autoscaled=autoscaled)


def _autoscale_worker(point: tuple) -> AutoscalePoint:
    (stack, static_spec, initial_spec, policy, router, admission,
     spec, count, seed) = _AUTOSCALE_STATE
    scenario, qps = point
    return _run_autoscale_point(stack, static_spec, initial_spec, policy,
                                router, admission, spec, scenario, qps,
                                count, seed)


def sweep_autoscale(stack: ServingStack, static_spec: ClusterSpec,
                    initial_spec: ClusterSpec, policy: AutoscalePolicy,
                    spec: WorkloadSpec,
                    points: list[tuple[object, float]], count: int,
                    router: str = "pressure_aware",
                    admission: AdmissionPolicy | None = None,
                    seed: int | None = None,
                    workers: int | None = None) -> list[AutoscalePoint]:
    """One :class:`AutoscalePoint` per ``(scenario, qps)`` cell.

    ``static_spec`` is the peak-sized fixed fleet, ``initial_spec`` the
    autoscaled fleet's starting membership (typically ``min_nodes``
    small nodes), and each point serves the *same* seeded stream
    through both.  ``workers > 1`` fans cells over the fork pool
    exactly like :func:`sweep_cluster_qps`; platforms without ``fork``
    fail soft to the serial path.
    """
    cells = [(resolve_scenario(scenario), float(qps))
             for scenario, qps in points]
    if not cells:
        return []
    requested = 1 if workers is None else max(1, int(workers))
    requested = min(requested, len(cells))
    if requested > 1:
        global _AUTOSCALE_STATE
        stack.ensure_compiled()
        for name in stack.model_names:
            _ = stack.profiles[name]
        # dict.fromkeys, not set(): stable first-seen dedup order, so
        # runtimes warm (and the stack's runtime map fills) in the same
        # order every run regardless of PYTHONHASHSEED.
        for device in dict.fromkeys(initial_spec.device_specs
                                    + static_spec.device_specs
                                    + (policy.template.device,)):
            stack.runtime_for(device)
        _AUTOSCALE_STATE = (stack, static_spec, initial_spec, policy,
                            router, admission, spec, count, seed)
        try:
            with fork_worker_pool(requested) as pool:
                if pool is not None:
                    try:
                        return pool.map(_autoscale_worker, cells)
                    except OSError:
                        pass  # worker/pipe died: recompute serially
        finally:
            _AUTOSCALE_STATE = None
    return [_run_autoscale_point(stack, static_spec, initial_spec, policy,
                                 router, admission, spec, scenario, qps,
                                 count, seed)
            for scenario, qps in cells]


@dataclass(frozen=True)
class ClusterCapacityResult:
    """Fleet QPS@target for one (router, fleet, workload) cell."""

    router: str
    cluster: str
    workload: str
    qps: float
    report: ClusterReport


def cluster_capacity(stack: ServingStack, cluster_spec: ClusterSpec,
                     spec: WorkloadSpec, count: int,
                     router: str = "pressure_aware",
                     admission: AdmissionPolicy | None = None,
                     target: float = 0.95,
                     low_qps: float = 10.0, high_qps: float = 1600.0,
                     tolerance_qps: float = 25.0,
                     seed: int | None = None,
                     workers: int | None = None,
                     scenario=None) -> ClusterCapacityResult:
    """Max offered QPS with ``target`` fleet QoS satisfaction.

    The fleet version of the paper's Fig. 12 metric: shed queries count
    as QoS violations, so admission control cannot buy capacity by
    rejecting its way to a clean satisfaction rate.  ``workers > 1``
    batches each bisection round's probes across one persistent
    :func:`cluster_sweep_pool`, so worker pricing caches stay warm
    across rounds.
    """
    batch = 1 if workers is None else max(1, int(workers))
    scenario = resolve_scenario(scenario)

    def search(pool) -> tuple[float, ClusterReport]:
        def run_batch(qps_values: list[float]) -> list[ClusterReport]:
            return sweep_cluster_qps(stack, cluster_spec, spec,
                                     qps_values, count, router=router,
                                     admission=admission, seed=seed,
                                     pool=pool, scenario=scenario)

        return max_qps_at_satisfaction(
            run_batch=run_batch, batch=batch, target=target,
            low_qps=low_qps, high_qps=high_qps,
            tolerance_qps=tolerance_qps)

    if batch > 1:
        with cluster_sweep_pool(stack, cluster_spec, spec, count,
                                router=router, admission=admission,
                                seed=seed, workers=batch,
                                scenario=scenario) as pool:
            qps, report = search(pool)
    else:
        qps, report = search(None)
    return ClusterCapacityResult(router=router, cluster=cluster_spec.name,
                                 workload=spec.name, qps=qps,
                                 report=report)
