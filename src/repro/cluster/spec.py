"""Fleet topology: which nodes exist, their CPUs, and their policies.

A :class:`ClusterSpec` is pure description — no engines, no state — so
it is cheap to build, hashable, and safe to share across processes.
Nodes may be heterogeneous (mixed :class:`CpuSpec` widths) and may run
different scheduling policies; the serving artifacts behind them are
always the *one* compile pass owned by the :class:`ServingStack`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.platform import (
    EDGE_NODE_32,
    PRODUCTION_SERVER_256,
    THREADRIPPER_3990X,
    CpuSpec,
)

#: Default per-node scheduling policy.
DEFAULT_NODE_POLICY = "veltair_full"


@dataclass(frozen=True)
class NodeSpec:
    """One serving node: a CPU plus the local scheduling policy."""

    name: str
    cpu: CpuSpec
    policy: str = DEFAULT_NODE_POLICY

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node name must be non-empty")

    @property
    def cores(self) -> int:
        return self.cpu.cores


@dataclass(frozen=True)
class ClusterSpec:
    """A named, ordered fleet of nodes."""

    name: str
    nodes: tuple[NodeSpec, ...]

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError(f"cluster {self.name!r} has no nodes")
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError(f"cluster {self.name!r} has duplicate node "
                             f"names: {names}")

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def total_cores(self) -> int:
        return sum(node.cores for node in self.nodes)

    @property
    def cpu_specs(self) -> tuple[CpuSpec, ...]:
        """Distinct CPU specs in fleet order (runtime-sharing groups)."""
        distinct: list[CpuSpec] = []
        for node in self.nodes:
            if node.cpu not in distinct:
                distinct.append(node.cpu)
        return tuple(distinct)


def homogeneous(count: int, cpu: CpuSpec | None = None,
                policy: str = DEFAULT_NODE_POLICY,
                name: str | None = None) -> ClusterSpec:
    """``count`` identical nodes (default: the paper's 64-core testbed)."""
    if count <= 0:
        raise ValueError("node count must be positive")
    cpu = cpu if cpu is not None else THREADRIPPER_3990X
    label = name or f"{count}x{cpu.cores}c"
    return ClusterSpec(
        name=label,
        nodes=tuple(NodeSpec(name=f"node{i}", cpu=cpu, policy=policy)
                    for i in range(count)))


def mixed_fleet(policy: str = DEFAULT_NODE_POLICY) -> ClusterSpec:
    """The 4-node heterogeneous reference fleet of the cluster benchmark.

    Two testbed-width nodes, one production 256-core box, and one
    32-core edge node: 416 cores total, with a 8x spread between the
    narrowest and widest member.  Width-blind routers hand the edge
    node a full quarter of the traffic and pin the fleet's capacity to
    it; width- and pressure-aware routing is what unlocks the rest.
    """
    return ClusterSpec(
        name="mixed-4",
        nodes=(
            NodeSpec(name="worker0", cpu=THREADRIPPER_3990X, policy=policy),
            NodeSpec(name="worker1", cpu=THREADRIPPER_3990X, policy=policy),
            NodeSpec(name="big0", cpu=PRODUCTION_SERVER_256, policy=policy),
            NodeSpec(name="edge0", cpu=EDGE_NODE_32, policy=policy),
        ))
