"""Fleet topology: which nodes exist, their devices, and their policies.

A :class:`ClusterSpec` is pure description — no engines, no state — so
it is cheap to build, hashable, and safe to share across processes.
Nodes may be heterogeneous (mixed :class:`CpuSpec` widths, or CPUs next
to :class:`AcceleratorSpec` members) and may run different scheduling
policies; the serving artifacts behind them are always the *one* compile
pass owned by the :class:`ServingStack`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.hardware.platform import (
    DATACENTER_ACCEL_80,
    EDGE_NODE_32,
    PRODUCTION_SERVER_256,
    THREADRIPPER_3990X,
    CpuSpec,
    DeviceSpec,
)

#: Default per-node scheduling policy.
DEFAULT_NODE_POLICY = "veltair_full"


@dataclass(frozen=True, init=False)
class NodeSpec:
    """One serving node: a device plus the local scheduling policy.

    ``device`` is the canonical field; the ``cpu=`` keyword and ``cpu``
    property remain as compatibility aliases from the CPU-only era
    (every pre-DeviceSpec call site keeps working unchanged).
    """

    name: str
    device: DeviceSpec
    policy: str = DEFAULT_NODE_POLICY

    def __init__(self, name: str = "", device: DeviceSpec | None = None,
                 policy: str = DEFAULT_NODE_POLICY, *,
                 cpu: CpuSpec | None = None) -> None:
        if device is None:
            device = cpu
        elif cpu is not None and cpu != device:
            raise ValueError(f"node {name!r} got conflicting device= "
                             "and cpu= specs")
        if device is None:
            raise ValueError(f"node {name!r} needs a device (device= or "
                             "the legacy cpu= alias)")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "device", device)
        object.__setattr__(self, "policy", policy)
        self.__post_init__()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node name must be non-empty")

    @property
    def cpu(self) -> DeviceSpec:
        """Legacy alias for :attr:`device`."""
        return self.device

    @property
    def cores(self) -> int:
        return self.device.cores

    @property
    def device_kind(self) -> str:
        return getattr(self.device, "kind", "cpu")


@dataclass(frozen=True)
class ClusterSpec:
    """A named, ordered fleet of nodes."""

    name: str
    nodes: tuple[NodeSpec, ...]

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError(f"cluster {self.name!r} has no nodes")
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError(f"cluster {self.name!r} has duplicate node "
                             f"names: {names}")

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def total_cores(self) -> int:
        return sum(node.cores for node in self.nodes)

    @property
    def device_specs(self) -> tuple[DeviceSpec, ...]:
        """Distinct device specs in fleet order (runtime-sharing groups).

        One membership probe per node against a seen-set — O(nodes) —
        where the old list scan went quadratic on large autoscaled
        fleets.
        """
        distinct: list[DeviceSpec] = []
        seen: set[DeviceSpec] = set()
        for node in self.nodes:
            if node.device not in seen:
                seen.add(node.device)
                distinct.append(node.device)
        return tuple(distinct)

    @property
    def cpu_specs(self) -> tuple[DeviceSpec, ...]:
        """Deprecated alias for :attr:`device_specs`."""
        warnings.warn(
            "ClusterSpec.cpu_specs is deprecated; use device_specs",
            DeprecationWarning, stacklevel=2)
        return self.device_specs


def homogeneous(count: int, cpu: CpuSpec | None = None,
                policy: str = DEFAULT_NODE_POLICY,
                name: str | None = None,
                device: DeviceSpec | None = None) -> ClusterSpec:
    """``count`` identical nodes (default: the paper's 64-core testbed)."""
    if count <= 0:
        raise ValueError("node count must be positive")
    if device is not None and cpu is not None and cpu != device:
        raise ValueError("pass either device= or the legacy cpu= alias")
    device = device if device is not None else cpu
    device = device if device is not None else THREADRIPPER_3990X
    label = name or f"{count}x{device.cores}c"
    return ClusterSpec(
        name=label,
        nodes=tuple(NodeSpec(name=f"node{i}", device=device, policy=policy)
                    for i in range(count)))


def mixed_fleet(policy: str = DEFAULT_NODE_POLICY) -> ClusterSpec:
    """The 4-node heterogeneous reference fleet of the cluster benchmark.

    Two testbed-width nodes, one production 256-core box, and one
    32-core edge node: 416 cores total, with a 8x spread between the
    narrowest and widest member.  Width-blind routers hand the edge
    node a full quarter of the traffic and pin the fleet's capacity to
    it; width- and pressure-aware routing is what unlocks the rest.
    """
    return ClusterSpec(
        name="mixed-4",
        nodes=(
            NodeSpec(name="worker0", cpu=THREADRIPPER_3990X, policy=policy),
            NodeSpec(name="worker1", cpu=THREADRIPPER_3990X, policy=policy),
            NodeSpec(name="big0", cpu=PRODUCTION_SERVER_256, policy=policy),
            NodeSpec(name="edge0", cpu=EDGE_NODE_32, policy=policy),
        ))


def hetero_fleet(policy: str = DEFAULT_NODE_POLICY) -> ClusterSpec:
    """The mixed CPU+accelerator reference fleet.

    Two testbed CPUs, one 80-SM accelerator, and one 32-core edge node.
    The accelerator dominates raw throughput but pays warp-width and
    occupancy penalties on skinny latency-critical models — the cost
    asymmetry the ``device_affinity`` router learns to exploit.
    """
    return ClusterSpec(
        name="hetero-4",
        nodes=(
            NodeSpec(name="worker0", cpu=THREADRIPPER_3990X, policy=policy),
            NodeSpec(name="worker1", cpu=THREADRIPPER_3990X, policy=policy),
            NodeSpec(name="accel0", device=DATACENTER_ACCEL_80,
                     policy=policy),
            NodeSpec(name="edge0", cpu=EDGE_NODE_32, policy=policy),
        ))
