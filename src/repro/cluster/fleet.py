"""The fleet simulation driver: N node engines, one global arrival stream.

:class:`Cluster` is the multi-node analogue of
:meth:`ServingStack.run <repro.serving.server.ServingStack.run>`: it
builds one :class:`~repro.runtime.engine.Engine` + policy per node over
the stack's *shared* artifacts (one compile pass fleet-wide), then
co-simulates them against a single arrival stream.  At each global
arrival every node is advanced to the arrival instant
(:meth:`Engine.run_until`), the admission controller rules on the offer,
the router picks a node from live fleet state, and the query is injected
into that node's event loop (:meth:`Engine.submit`) — so routing
decisions see exactly the node states a real front-end would observe at
that moment, not a post-hoc assignment.
"""

from __future__ import annotations

import heapq
import itertools

from repro.cluster.admission import (
    ADMIT,
    DEFER,
    AdmissionController,
    AdmissionPolicy,
)
from repro.cluster.metrics import ClusterReport, rollup
from repro.cluster.router import Router, make_router
from repro.cluster.spec import ClusterSpec, NodeSpec
from repro.interference.proxy import estimate_system_pressure
from repro.runtime.engine import Engine
from repro.runtime.tasks import Query
from repro.serving.metrics import summarize
from repro.serving.server import ServingStack
from repro.serving.workload import (
    WorkloadSpec,
    poisson_queries,
    scenario_queries,
)


class ClusterNode:
    """One fleet member: an engine + local policy over shared artifacts."""

    def __init__(self, index: int, spec: NodeSpec, stack: ServingStack,
                 incremental: bool = True) -> None:
        self.index = index
        self.spec = spec
        self.runtime = stack.runtime_for(spec.cpu)
        self.engine = Engine(self.runtime.cost_model,
                             price_cache=self.runtime.price_cache,
                             incremental=incremental)
        self.scheduler = stack.make_scheduler(spec.policy,
                                              runtime=self.runtime)
        self.engine.begin([], self.scheduler)
        #: Queries the router assigned here.
        self.assigned = 0

    @property
    def cores(self) -> int:
        return self.spec.cpu.cores

    def pressure_estimate(self) -> float:
        """This node's interference estimate — the routing signal.

        The same estimation contract the node's own adaptive scheduler
        uses (:func:`estimate_system_pressure`), over the proxy fitted
        for *this node's* CPU spec by the stack's runtime factory.
        """
        return estimate_system_pressure(self.engine, self.runtime.proxy)


class Cluster:
    """A reusable fleet harness: spec + router + admission over one stack.

    Engines are per-``serve`` (fresh nodes each call, exactly like
    ``ServingStack.run`` builds fresh engines per run), so one
    ``Cluster`` can drive a whole QPS sweep.  Pass ``router`` as a
    registry name (a fresh router is built per serve) or as a
    :class:`Router` instance to keep custom routing state across calls.
    """

    def __init__(self, stack: ServingStack, spec: ClusterSpec,
                 router: str | Router = "pressure_aware",
                 admission: AdmissionPolicy | None = None,
                 incremental: bool = True) -> None:
        self.stack = stack
        self.spec = spec
        self.router = router
        self.admission = admission
        self.incremental = incremental
        #: Nodes of the most recent :meth:`serve` (debugging handle).
        self.last_nodes: list[ClusterNode] | None = None

    def _build_nodes(self) -> list[ClusterNode]:
        return [ClusterNode(index, node_spec, self.stack,
                            incremental=self.incremental)
                for index, node_spec in enumerate(self.spec.nodes)]

    def _build_router(self) -> Router:
        if isinstance(self.router, Router):
            return self.router
        return make_router(self.router)

    def serve(self, queries: list[Query],
              offered_qps: float | None = None) -> ClusterReport:
        """Route and co-simulate one query stream; returns the rollup."""
        if not queries:
            raise ValueError("cannot serve an empty stream")
        nodes = self._build_nodes()
        router = self._build_router()
        controller = (AdmissionController(self.admission)
                      if self.admission is not None else None)

        # Offer heap: (offer time, seq, prior deferrals, query).  Seeded
        # with every arrival; deferred queries are re-pushed at their
        # re-offer instant with the attempt count bumped.
        seq = itertools.count()
        offers = [(query.arrival_s, next(seq), 0, query)
                  for query in sorted(queries,
                                      key=lambda q: (q.arrival_s,
                                                     q.query_id))]
        heapq.heapify(offers)
        shed: list[Query] = []

        while offers:
            now, _, attempts, query = heapq.heappop(offers)
            for node in nodes:
                node.engine.run_until(now)
            if controller is not None:
                decision = controller.decide(nodes, query, attempts)
                if decision == DEFER:
                    heapq.heappush(
                        offers,
                        (now + controller.policy.defer_s, next(seq),
                         attempts + 1, query))
                    continue
                if decision != ADMIT:
                    shed.append(query)
                    continue
            node = router.choose(nodes, query, now)
            node.engine.submit(query, at=now)
            node.assigned += 1

        if offered_qps is None:
            # Rate estimate from the stream itself: N queries span N-1
            # inter-arrival gaps.  A single query (or simultaneous
            # arrivals) has no measurable rate; 0.0 marks "unknown".
            arrivals = [q.arrival_s for q in queries]
            span = max(arrivals) - min(arrivals)
            offered_qps = ((len(queries) - 1) / span if span > 0
                           else 0.0)

        node_results = []
        for node in nodes:
            completed = node.engine.drain()
            share = node.assigned / len(queries)
            report = summarize(completed, node.engine.metrics,
                               offered_qps * share)
            node_results.append((node, completed, report))

        self.last_nodes = nodes
        return rollup(
            offered=list(queries), node_results=node_results, shed=shed,
            deferrals=controller.deferrals if controller else 0,
            offered_qps=offered_qps, router=router.name)

    def report(self, spec: WorkloadSpec, qps: float, count: int,
               seed: int | None = None, scenario=None) -> ClusterReport:
        """Generate a stream, serve it fleet-wide, summarise.

        Default arrivals are the stationary Poisson stream; a
        ``scenario`` (:class:`repro.workloads.ScenarioSpec` or
        registered name) swaps in any trace-driven shape at mean rate
        ``qps`` — the fleet twin of ``ServingStack.report``.
        """
        effective_seed = self.stack.seed if seed is None else seed
        if scenario is not None:
            queries = scenario_queries(self.stack.compiled, scenario,
                                       qps, count, seed=effective_seed,
                                       spec=spec)
        else:
            queries = poisson_queries(self.stack.compiled, spec, qps,
                                      count, seed=effective_seed)
        return self.serve(queries, offered_qps=qps)
