"""The fleet simulation driver: N node engines, one global arrival stream.

:class:`Cluster` is the multi-node analogue of
:meth:`ServingStack.run <repro.serving.server.ServingStack.run>`: it
builds one :class:`~repro.runtime.engine.Engine` + policy per node over
the stack's *shared* artifacts (one compile pass fleet-wide), then
co-simulates them against a single arrival stream.  At each global
arrival every active node is advanced to the arrival instant
(:meth:`Engine.run_until`), the admission controller rules on the offer,
the router picks a node from live fleet state, and the query is injected
into that node's event loop (:meth:`Engine.submit`) — so routing
decisions see exactly the node states a real front-end would observe at
that moment, not a post-hoc assignment.

Fleet membership is dynamic: with an
:class:`~repro.cluster.autoscale.AutoscalePolicy` the serve loop
interleaves control ticks into the offer heap, provisions nodes from
the policy's template (with a warm-up delay before they join the
routing set), and drains nodes out (they leave the routing set, finish
their in-flight work, then retire and stop being driven).  Routers and
admission only ever see the *live* membership; the scaling timeline and
per-node lifecycle land in the :class:`~repro.cluster.metrics.ClusterReport`.
"""

from __future__ import annotations

import heapq
import itertools

from repro.cluster.admission import (
    ADMIT,
    DEFER,
    AdmissionController,
    AdmissionPolicy,
)
from repro.cluster.autoscale import (
    DRAIN,
    DRAINING,
    JOIN,
    LIVE,
    PROVISION,
    RETIRE,
    RETIRED,
    WARMING,
    AutoscaleController,
    AutoscalePolicy,
    ScalingEvent,
)
from repro.cluster.metrics import (
    ClusterReport,
    pipeline_rollup,
    rollup,
    session_reports,
)
from repro.cluster.router import Router, make_router
from repro.cluster.spec import ClusterSpec, NodeSpec
from repro.interference.proxy import estimate_system_pressure
from repro.runtime.engine import Engine
from repro.runtime.tasks import Query
from repro.telemetry.tracer import FLEET_SIGNAL_FIELDS
from repro.serving.metrics import summarize
from repro.serving.server import ServingStack
from repro.serving.workload import (
    WorkloadSpec,
    poisson_queries,
    scenario_queries,
)

#: Serve-loop event kinds (never compared: sequence numbers are unique).
_OFFER = "offer"
_TICK = "tick"
_JOIN = "join"


class ClusterNode:
    """One fleet member: an engine + local policy over shared artifacts.

    ``tracer`` (a :class:`repro.telemetry.Tracer`) is bound to the
    node's name, so this node's block/query spans and scheduler events
    land in the shared fleet stream already stamped with the node.
    """

    def __init__(self, index: int, spec: NodeSpec, stack: ServingStack,
                 incremental: bool = True, tracer=None) -> None:
        self.index = index
        self.spec = spec
        self.runtime = stack.runtime_for(spec.device)
        self.engine = Engine(self.runtime.cost_model,
                             price_cache=self.runtime.price_cache,
                             incremental=incremental,
                             tracer=(tracer.bind(spec.name)
                                     if tracer is not None else None))
        self.scheduler = stack.make_scheduler(spec.policy,
                                              runtime=self.runtime)
        self.engine.begin([], self.scheduler)
        #: Queries the router assigned here.
        self.assigned = 0
        #: Lifecycle (see :mod:`repro.cluster.autoscale`): static fleet
        #: members are live for the whole run; autoscaled nodes move
        #: warming -> live -> draining -> retired.
        self.state = LIVE
        self.provisioned_s = 0.0
        self.joined_s: float | None = None
        self.drain_started_s: float | None = None
        self.retired_s: float | None = None
        #: Completions already fed to the autoscale SLO window.
        self._slo_cursor = 0

    @property
    def cores(self) -> int:
        return self.spec.device.cores

    @property
    def width(self) -> int:
        """The node's parallel width (cores or SMs) — routing units."""
        return self.spec.device.parallel_width

    @property
    def device_kind(self) -> str:
        return self.spec.device_kind

    @property
    def node_seconds(self) -> float:
        """Provision-to-retire span — what this node's capacity cost.

        Warm-up counts (capacity is paid for from the moment it is
        requested); zero until the run's end-of-serve bookkeeping has
        stamped ``retired_s``.
        """
        if self.retired_s is None:
            return 0.0
        return max(0.0, self.retired_s - self.provisioned_s)

    def pressure_estimate(self) -> float:
        """This node's interference estimate — the routing signal.

        The same estimation contract the node's own adaptive scheduler
        uses (:func:`estimate_system_pressure`), over the proxy fitted
        for *this node's* CPU spec by the stack's runtime factory.
        """
        return estimate_system_pressure(self.engine, self.runtime.proxy)


class Cluster:
    """A reusable fleet harness: spec + router + admission over one stack.

    Engines are per-``serve`` (fresh nodes each call, exactly like
    ``ServingStack.run`` builds fresh engines per run), so one
    ``Cluster`` can drive a whole QPS sweep.  Pass ``router`` as a
    registry name (a fresh router is built per serve) or as a
    :class:`Router` instance to keep custom routing state across calls.
    An :class:`AutoscalePolicy` turns on the feedback control plane:
    ``spec`` then describes the *initial* fleet and membership follows
    load between the policy's ``min_nodes`` and ``max_nodes``.
    """

    def __init__(self, stack: ServingStack, spec: ClusterSpec,
                 router: str | Router = "pressure_aware",
                 admission: AdmissionPolicy | None = None,
                 autoscale: AutoscalePolicy | None = None,
                 incremental: bool = True) -> None:
        self.stack = stack
        self.spec = spec
        self.router = router
        self.admission = admission
        self.autoscale = autoscale
        self.incremental = incremental
        #: Every node of the most recent :meth:`serve`, in provision
        #: order, retired ones included (debugging handle).
        self.last_nodes: list[ClusterNode] | None = None
        #: The most recent serve's autoscale controller (tick signals).
        self.last_autoscale: AutoscaleController | None = None
        #: Every stage-level query the most recent serve offered, with
        #: realized arrival times — hand-offs and closed-loop follow-ups
        #: included.  ``record_trace(cluster.last_offered, ...)``
        #: captures a feedback-shaped stream for open-loop replay.
        self.last_offered: list[Query] | None = None
        #: Completion hook installed on node engines while a
        #: request-model serve is in flight (None otherwise); kept on
        #: the instance so autoscale-provisioned nodes get it too.
        self._stream_hook = None

    def _build_nodes(self, tracer=None) -> list[ClusterNode]:
        return [ClusterNode(index, node_spec, self.stack,
                            incremental=self.incremental, tracer=tracer)
                for index, node_spec in enumerate(self.spec.nodes)]

    def _build_router(self) -> Router:
        if isinstance(self.router, Router):
            return self.router
        return make_router(self.router)

    def _provision(self, all_nodes: list[ClusterNode], name: str,
                   now: float, tracer=None) -> ClusterNode:
        """A warming node from the autoscale template, joined later.

        Reuses ``stack.runtime_for`` + the artifact store contract:
        spin-up re-profiles for the template's device (memoised after
        the first node of a width) but never recompiles.
        """
        spec = NodeSpec(name=name, device=self.autoscale.template.device,
                        policy=self.autoscale.template.policy)
        node = ClusterNode(len(all_nodes), spec, self.stack,
                           incremental=self.incremental, tracer=tracer)
        node.engine.on_complete = self._stream_hook
        node.state = WARMING
        node.provisioned_s = now
        all_nodes.append(node)
        return node

    @staticmethod
    def _retire_time(node: ClusterNode) -> float:
        """When a drained node actually emptied: its last finish."""
        completed = node.engine.completed
        finish = completed[-1].finished_s if completed else None
        retired = node.drain_started_s
        if finish is not None and finish > retired:
            retired = finish
        return retired

    @classmethod
    def _retire(cls, node: ClusterNode, routable: list[ClusterNode],
                timeline: list[ScalingEvent]) -> None:
        """Mark a drained node retired at its actual last-finish time."""
        node.retired_s = cls._retire_time(node)
        node.state = RETIRED
        timeline.append(ScalingEvent(
            time_s=node.retired_s, action=RETIRE, node=node.spec.name,
            live_nodes=len(routable)))

    @classmethod
    def _retire_drained(cls, all_nodes: list[ClusterNode],
                        routable: list[ClusterNode],
                        timeline: list[ScalingEvent]) -> None:
        """Retire every emptied draining node, in retire-time order.

        Concurrently draining nodes empty at their own last-finish
        instants; retiring them in node-index order would stamp the
        timeline out of chronological order.
        """
        emptied = [node for node in all_nodes
                   if node.state == DRAINING
                   and node.engine.outstanding == 0]
        emptied.sort(key=lambda node: (cls._retire_time(node), node.index))
        for node in emptied:
            cls._retire(node, routable, timeline)

    def serve(self, queries: list[Query],
              offered_qps: float | None = None,
              tracer=None) -> ClusterReport:
        """Route and co-simulate one query stream; returns the rollup.

        ``tracer`` (a :class:`repro.telemetry.Tracer`) records the whole
        fleet into one stream: per-node engine spans, routing choices
        (with per-node scores for score-based routers), admission
        verdicts, the scaling timeline, and the autoscale controller's
        per-tick ``fleet.signals`` counters.  Observational only — the
        rollup is bit-identical with tracing on or off.
        """
        return self._serve(queries, offered_qps=offered_qps, tracer=tracer)

    def serve_stream(self, stream, offered_qps: float | None = None,
                     tracer=None) -> ClusterReport:
        """Serve a :class:`repro.workloads.RequestStream` fleet-wide.

        The request-model twin of :meth:`serve`: pipeline stage *k+1*
        is offered (through admission and routing, like any query) the
        instant stage *k* completes; closed-loop tenants issue their
        next request at each completion or shed.  A *deferred* pipeline
        stage re-offers as usual; a *shed* stage fails the whole
        pipeline's QoS and no later stage runs.  The returned report
        carries :attr:`ClusterReport.pipelines` /
        :attr:`ClusterReport.sessions` rollups.
        """
        initial: list[Query] = list(stream.queries)
        # Stage queries key by (pipeline id, stage index) — unique per
        # stage and stable across runs, unlike object identity.
        stage_owner: dict[tuple[int, int], object] = {}
        for pipeline in stream.pipelines:
            first = pipeline.stages[0]
            stage_owner[(first.query_id, first.stage)] = pipeline
            initial.append(first)
        for tenant in stream.tenants:
            initial.extend(tenant.initial_requests())
        return self._serve(initial, offered_qps=offered_qps, tracer=tracer,
                           stream=stream, stage_owner=stage_owner)

    def _serve(self, queries: list[Query],
               offered_qps: float | None = None,
               tracer=None, stream=None,
               stage_owner: dict[tuple[int, int], object] | None = None
               ) -> ClusterReport:
        if not queries:
            raise ValueError("cannot serve an empty stream")
        interactive = stream is not None and stream.interactive
        stage_owner = stage_owner if stage_owner is not None else {}
        tenants_by_session = (
            {tenant.session: tenant for tenant in stream.tenants}
            if stream is not None else {})
        nodes = self._build_nodes(tracer)
        router = self._build_router()
        #: Score-based routers publish per-node scores when this is set.
        router.tracer = tracer
        controller = (AdmissionController(self.admission)
                      if self.admission is not None else None)
        scaler = (AutoscaleController(self.autoscale)
                  if self.autoscale is not None else None)

        start_s = min(query.arrival_s for query in queries)
        for node in nodes:
            node.provisioned_s = start_s
            node.joined_s = start_s
        #: Every node ever provisioned, in provision order (ascending
        #: ``index``); membership state lives on the nodes.
        all_nodes = list(nodes)
        #: The routing set: live nodes, ascending index (provisioned
        #: nodes join strictly after every earlier join).
        routable = list(nodes)
        timeline: list[ScalingEvent] = []
        peak_live = len(routable)
        auto_names = itertools.count(1)

        # Event heap: offers seeded with every arrival (deferred queries
        # re-pushed at their re-offer instant with the attempt count
        # bumped), plus autoscale control ticks and node-join events.
        seq = itertools.count()
        events = [(query.arrival_s, next(seq), _OFFER, (0, query))
                  for query in sorted(queries,
                                      key=lambda q: (q.arrival_s,
                                                     q.query_id))]
        heapq.heapify(events)
        #: Offers not yet resolved; a one-slot holder so the completion
        #: hook below can add follow-up offers mid-flight.
        pending = [len(events)]
        #: Every stage-level query ever offered, in offer order.
        offered_log = list(queries)
        if scaler is not None:
            heapq.heappush(events, (start_s + self.autoscale.tick_s,
                                    next(seq), _TICK, None))
        shed: list[Query] = []
        last_advance = float("-inf")

        def offer(query: Query, at: float) -> None:
            """Push a hook-generated offer into the serve heap."""
            offered_log.append(query)
            heapq.heappush(events, (at, next(seq), _OFFER, (0, query)))
            pending[0] += 1

        def stream_hook(engine: Engine, query: Query) -> None:
            """Completion seam: pipeline hand-off + closed-loop issue.

            Fires inside a node engine's drive loop; ``engine.now`` is
            the completion instant.  New offers go through the *serve*
            heap — admission and routing see them like any arrival.
            """
            owner = stage_owner.pop((query.query_id, query.stage), None) \
                if query.stage is not None else None
            if owner is not None:
                owner.next_stage = query.stage + 1
                if owner.next_stage >= len(owner.stages):
                    owner.finished_s = engine.now
                else:
                    nxt = owner.stages[owner.next_stage]
                    nxt.arrival_s = engine.now
                    stage_owner[(nxt.query_id, nxt.stage)] = owner
                    offer(nxt, engine.now)
                return
            if query.session is not None:
                tenant = tenants_by_session.get(query.session)
                if tenant is not None:
                    tenant.observe(query)
                    follow = tenant.next_request(engine.now)
                    if follow is not None:
                        offer(follow, follow.arrival_s)

        self._stream_hook = stream_hook if interactive else None
        if interactive:
            for node in nodes:
                node.engine.on_complete = stream_hook

        while True:
            if not events:
                if not interactive:
                    break
                # Interactive tail: no offers in flight, but in-flight
                # work may still complete and (via the hook) generate
                # new ones.  Advance every live node to the earliest
                # engine event, in global time order, and loop — done
                # only when the fleet is truly idle.
                times = [t for t in (node.engine.next_event_s()
                                     for node in all_nodes
                                     if node.state != RETIRED)
                         if t is not None]
                if not times:
                    break
                target = min(times)
                for node in all_nodes:
                    if node.state != RETIRED:
                        node.engine.run_until(target)
                if target > last_advance:
                    last_advance = target
                self._retire_drained(all_nodes, routable, timeline)
                continue
            now, _, kind, payload = heapq.heappop(events)
            if now > last_advance:
                # Advance once per distinct event time (re-offers and
                # simultaneous arrivals share the advance), and only
                # drive nodes that still have or may get work.
                for node in all_nodes:
                    if node.state != RETIRED:
                        node.engine.run_until(now)
                last_advance = now
                self._retire_drained(all_nodes, routable, timeline)

            if kind == _TICK:
                if pending[0] > 0:
                    self._autoscale_tick(scaler, all_nodes, routable,
                                         timeline, events, seq,
                                         auto_names, now, tracer=tracer)
                    heapq.heappush(
                        events, (now + self.autoscale.tick_s, next(seq),
                                 _TICK, None))
                continue
            if kind == _JOIN:
                node = payload
                node.state = LIVE
                node.joined_s = now
                routable.append(node)
                peak_live = max(peak_live, len(routable))
                timeline.append(ScalingEvent(
                    time_s=now, action=JOIN, node=node.spec.name,
                    live_nodes=len(routable)))
                continue

            pending[0] -= 1
            attempts, query = payload
            if controller is not None:
                decision = controller.decide(routable, query, attempts)
                if decision == DEFER:
                    heapq.heappush(
                        events,
                        (now + controller.policy.defer_s, next(seq),
                         _OFFER, (attempts + 1, query)))
                    pending[0] += 1
                    if tracer is not None:
                        tracer.event("admission.defer", now, cat="cluster",
                                     qid=query.query_id,
                                     args={"attempts": attempts})
                    continue
                if decision != ADMIT:
                    shed.append(query)
                    if tracer is not None:
                        tracer.event("admission.shed", now, cat="cluster",
                                     qid=query.query_id,
                                     args={"attempts": attempts})
                    owner = (stage_owner.pop(
                        (query.query_id, query.stage), None)
                        if query.stage is not None else None)
                    if owner is not None:
                        # A shed stage fails the whole pipeline: no
                        # later stage runs, its QoS counts as missed.
                        owner.shed_stage = query.stage
                        if tracer is not None:
                            tracer.event(
                                "pipeline.failed", now, cat="pipeline",
                                qid=owner.pipeline_id,
                                args={"stage": query.stage})
                    elif query.session is not None:
                        tenant = tenants_by_session.get(query.session)
                        if tenant is not None:
                            # Shedding hands control back to the tenant
                            # too — its next request still issues, so a
                            # shedding fleet sees reduced load, not a
                            # frozen session.
                            tenant.observe(query, shed=True)
                            follow = tenant.next_request(now)
                            if follow is not None:
                                offer(follow, follow.arrival_s)
                    continue
            node = router.choose(routable, query, now)
            if tracer is not None:
                args = {"node": node.spec.name, "attempts": attempts}
                if router.last_scores is not None:
                    args["scores"] = router.last_scores
                    router.last_scores = None
                tracer.event("route", now, cat="cluster",
                             node=node.spec.name, qid=query.query_id,
                             args=args)
            node.engine.submit(query, at=now)
            node.assigned += 1
            # Process the arrival at its own instant so the next offer
            # at the same timestamp routes on fresh node state (the
            # per-offer full-fleet advance this replaces did exactly
            # this, O(nodes) times over).
            node.engine.run_until(now)

        # Tail: finish in-flight work everywhere, then stamp lifecycle.
        # An interactive serve already drained incrementally above (the
        # hook needed completions in global time order), so these
        # drains are no-ops there; the legacy per-node tail is kept
        # verbatim for open-loop serves — bit-identical results.
        for node in all_nodes:
            if node.state != RETIRED:
                node.engine.drain()
        self._retire_drained(all_nodes, routable, timeline)
        self._stream_hook = None
        window_end = max(
            [query.arrival_s for query in offered_log]
            + [node.engine.completed[-1].finished_s
               for node in all_nodes if node.engine.completed])
        for node in all_nodes:
            if node.retired_s is None:
                node.retired_s = window_end

        if offered_qps is None:
            # Rate estimate from the stream itself: N queries span N-1
            # inter-arrival gaps.  A single query (or simultaneous
            # arrivals) has no measurable rate; 0.0 marks "unknown".
            arrivals = [q.arrival_s for q in offered_log]
            span = max(arrivals) - min(arrivals)
            offered_qps = ((len(offered_log) - 1) / span if span > 0
                           else 0.0)

        # Per-node offered share of the fleet rate: a node's share is
        # of what was *admitted* — shed queries never reached any node,
        # so dividing by the full offered count would under-state every
        # node's load whenever the controller sheds (and the per-node
        # offered rates would no longer sum to the fleet rate).
        admitted_total = sum(node.assigned for node in all_nodes)
        node_results = []
        for node in all_nodes:
            completed = node.engine.completed
            share = (node.assigned / admitted_total if admitted_total
                     else 0.0)
            report = summarize(completed, node.engine.metrics,
                               offered_qps * share)
            node_results.append((node, completed, report))

        if tracer is not None:
            # The scaling timeline and the controller's per-tick signals
            # are appended once the serve loop has finished — identical
            # data to inline emission, and the controller itself stays
            # untouched by telemetry.  The fleet.signals counters follow
            # repro.telemetry.FLEET_SIGNAL_FIELDS, making a recorded
            # trace double as an offline training set for learned
            # routers (one sample per control tick, with the scale.*
            # decisions interleaved by timestamp).
            for event in timeline:
                args = {"live_nodes": event.live_nodes}
                if event.reason:
                    args["reason"] = event.reason
                tracer.event(f"scale.{event.action}", event.time_s,
                             cat="autoscale", node=event.node, args=args)
            if scaler is not None:
                for signal in scaler.signals:
                    tracer.counter(
                        "fleet.signals", signal.time_s,
                        {field: getattr(signal, field)
                         for field in FLEET_SIGNAL_FIELDS})

        if tracer is not None and stream is not None:
            # Request-level spans, linked to their stage-level query
            # spans by qid (stage queries carry the pipeline id; a
            # tenant's queries carry its session-strided ids).
            for pipeline in stream.pipelines:
                end = (pipeline.finished_s
                       if pipeline.finished_s is not None else window_end)
                tracer.span(
                    f"pipeline:{pipeline.spec.name}", pipeline.arrival_s,
                    end - pipeline.arrival_s, cat="pipeline",
                    qid=pipeline.pipeline_id,
                    args={"stages": len(pipeline.stages),
                          "satisfied": pipeline.satisfied,
                          "failed": pipeline.failed})
            for tenant in stream.tenants:
                if not tenant.issued:
                    continue
                first = min(q.arrival_s for q in tenant.issued)
                last = max((q.finished_s if q.finished_s is not None
                            else q.arrival_s) for q in tenant.issued)
                tracer.span(
                    f"session:{tenant.session}", first, last - first,
                    cat="session", qid=tenant.issued[0].query_id,
                    args={"issued": len(tenant.issued),
                          "completed": tenant.completed,
                          "satisfied": tenant.satisfied,
                          "shed": tenant.shed})

        self.last_nodes = all_nodes
        self.last_autoscale = scaler
        self.last_offered = offered_log
        return rollup(
            offered=offered_log, node_results=node_results, shed=shed,
            deferrals=controller.deferrals if controller else 0,
            offered_qps=offered_qps, router=router.name,
            timeline=tuple(timeline), peak_live_nodes=peak_live,
            window=(start_s, window_end),
            pipelines=(pipeline_rollup(stream.pipelines)
                       if stream is not None else None),
            sessions=(session_reports(stream.tenants)
                      if stream is not None else ()))

    def _autoscale_tick(self, scaler: AutoscaleController,
                        all_nodes: list[ClusterNode],
                        routable: list[ClusterNode],
                        timeline: list[ScalingEvent], events: list,
                        seq, auto_names, now: float,
                        tracer=None) -> None:
        """One control tick: feed the SLO window, maybe resize the fleet."""
        for node in all_nodes:
            completed = node.engine.completed
            if node._slo_cursor < len(completed):
                scaler.observe_completions(completed[node._slo_cursor:])
                node._slo_cursor = len(completed)
        warming = sum(1 for node in all_nodes if node.state == WARMING)
        delta = scaler.decide(now, routable, warming)
        if delta > 0:
            for _ in range(delta):
                name = f"{self.autoscale.template.name}-{next(auto_names)}"
                node = self._provision(all_nodes, name, now, tracer=tracer)
                timeline.append(ScalingEvent(
                    time_s=now, action=PROVISION, node=name,
                    live_nodes=len(routable), reason=scaler.reason()))
                heapq.heappush(
                    events, (now + self.autoscale.warmup_s, next(seq),
                             _JOIN, node))
        elif delta < 0:
            # Drain the emptiest live node; prefer the youngest on ties
            # (scale-in releases the most recently acquired capacity).
            victim = min(routable,
                         key=lambda n: (n.engine.outstanding, -n.index))
            routable.remove(victim)
            victim.state = DRAINING
            victim.drain_started_s = now
            timeline.append(ScalingEvent(
                time_s=now, action=DRAIN, node=victim.spec.name,
                live_nodes=len(routable), reason=scaler.reason()))
            if victim.engine.outstanding == 0:
                self._retire(victim, routable, timeline)

    def report(self, spec: WorkloadSpec, qps: float, count: int,
               seed: int | None = None, scenario=None,
               tracer=None) -> ClusterReport:
        """Generate a stream, serve it fleet-wide, summarise.

        Default arrivals are the stationary Poisson stream; a
        ``scenario`` (:class:`repro.workloads.ScenarioSpec` or
        registered name) swaps in any trace-driven shape at mean rate
        ``qps`` — the fleet twin of ``ServingStack.report``.
        ``tracer`` records the serve (see :meth:`serve`).
        """
        effective_seed = self.stack.seed if seed is None else seed
        if scenario is not None:
            queries = scenario_queries(self.stack.compiled, scenario,
                                       qps, count, seed=effective_seed,
                                       spec=spec)
        else:
            queries = poisson_queries(self.stack.compiled, spec, qps,
                                      count, seed=effective_seed)
        return self.serve(queries, offered_qps=qps, tracer=tracer)
