"""Fleet-level metrics: per-node reports rolled into one ClusterReport.

The rollup is pure arithmetic over per-node results — every fleet total
is the exact sum of its per-node constituents (the cluster benchmark
asserts this reconciliation), and the fleet-only metrics (goodput,
per-class tail latency, load imbalance, shed rate) are derived from the
same raw queries, never re-estimated.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.cluster.autoscale import ScalingEvent
from repro.models.registry import WORKLOAD_CLASSES, get_entry
from repro.runtime.tasks import Query
from repro.serving.metrics import ServingReport


@dataclass(frozen=True)
class NodeReport:
    """One node's share of a fleet run."""

    name: str
    #: The node's device (CPU or accelerator) spec name — hetero fleets
    #: report each member's actual hardware, not a CPU-alias view.
    device_name: str
    cores: int
    policy: str
    assigned: int
    completed: int
    satisfied: int
    report: ServingReport
    #: ``"cpu"`` / ``"accelerator"`` — the device family this node runs.
    device_kind: str = "cpu"
    #: Lifecycle (autoscaled fleets; static members span the whole run).
    provisioned_s: float = 0.0
    retired_s: float = 0.0
    node_seconds: float = 0.0
    final_state: str = "live"

    @property
    def cpu_name(self) -> str:
        """Deprecated alias for :attr:`device_name` (pre-hetero name)."""
        warnings.warn(
            "NodeReport.cpu_name is deprecated; use device_name",
            DeprecationWarning, stacklevel=2)
        return self.device_name

    @property
    def satisfaction_rate(self) -> float:
        return self.satisfied / self.completed if self.completed else 0.0


@dataclass(frozen=True)
class StageReport:
    """One pipeline stage's fleet-wide outcome (request-model serves)."""

    stage: int
    model: str
    completed: int
    shed: int
    average_latency_s: float
    p99_latency_s: float


@dataclass(frozen=True)
class PipelineRollup:
    """Fleet-wide pipeline accounting: chains, not stages.

    ``failed`` counts pipelines a shed stage killed — each is a whole
    QoS violation regardless of how its other stages fared.  Per-stage
    latencies in ``stages`` are measured from when the stage became
    runnable (hand-off instant), so they expose *where* a chain's
    budget goes.
    """

    offered: int
    completed: int
    satisfied: int
    failed: int
    p99_latency_s: float
    stages: tuple[StageReport, ...]

    @property
    def satisfaction_rate(self) -> float:
        return self.satisfied / self.offered if self.offered else 0.0


@dataclass(frozen=True)
class SessionReport:
    """One closed-loop tenant's outcome over a serve."""

    session: int
    issued: int
    completed: int
    satisfied: int
    shed: int
    average_latency_s: float

    @property
    def satisfaction_rate(self) -> float:
        return self.satisfied / self.issued if self.issued else 0.0


def pipeline_rollup(pipelines) -> PipelineRollup | None:
    """Fold :class:`~repro.workloads.PipelineQuery` outcomes fleet-wide."""
    if not pipelines:
        return None
    stage_count = max(len(pl.stages) for pl in pipelines)
    stage_reports = []
    for index in range(stage_count):
        latencies = []
        shed = 0
        model = ""
        for pl in pipelines:
            if index >= len(pl.stages):
                continue
            query = pl.stages[index]
            model = query.model.name
            if pl.shed_stage == index:
                shed += 1
            elif query.finished_s is not None:
                latencies.append(query.finished_s - query.arrival_s)
        stage_reports.append(StageReport(
            stage=index, model=model, completed=len(latencies), shed=shed,
            average_latency_s=(float(np.mean(latencies))
                               if latencies else 0.0),
            p99_latency_s=(float(np.percentile(latencies, 99))
                           if latencies else 0.0)))
    finished = [pl.latency_s for pl in pipelines if pl.finished_s is not None]
    return PipelineRollup(
        offered=len(pipelines),
        completed=len(finished),
        satisfied=sum(1 for pl in pipelines if pl.satisfied),
        failed=sum(1 for pl in pipelines if pl.failed),
        p99_latency_s=(float(np.percentile(finished, 99))
                       if finished else 0.0),
        stages=tuple(stage_reports))


def session_reports(tenants) -> tuple[SessionReport, ...]:
    """Per-tenant rollups from :class:`~repro.workloads.ClosedLoopTenant`."""
    reports = []
    for tenant in tenants:
        latencies = [query.latency_s for query in tenant.issued
                     if query.finished_s is not None]
        reports.append(SessionReport(
            session=tenant.session, issued=len(tenant.issued),
            completed=tenant.completed, satisfied=tenant.satisfied,
            shed=tenant.shed,
            average_latency_s=(float(np.mean(latencies))
                               if latencies else 0.0)))
    return tuple(reports)


@dataclass(frozen=True)
class ClusterReport:
    """Summary of one simulated fleet run."""

    offered_qps: float
    router: str
    #: Query accounting: ``offered == admitted + shed`` and
    #: ``admitted == sum(node.assigned)`` hold exactly.
    offered: int
    admitted: int
    completed: int
    satisfied: int
    shed: int
    deferrals: int
    #: Fleet QoS satisfaction; shed queries count as violations.
    satisfaction_rate: float
    qos_violation_rate: float
    #: Satisfied queries per second of fleet busy span.
    goodput_qps: float
    average_latency_s: float
    p99_latency_s: float
    #: P99 latency per workload class (light/medium/heavy), completed
    #: queries only; classes absent from the stream are omitted.  This
    #: is the aggregate view — to see *where* a class's tail comes from
    #: (queue vs execute vs interference stall), record the serve with
    #: a tracer and run ``python -m repro.telemetry summarize`` for the
    #: per-phase, per-model breakdown.
    class_p99_s: tuple[tuple[str, float], ...]
    #: max/mean of per-node (assigned / cores) — 1.0 is a perfectly
    #: width-proportional assignment.  Elastic fleets (non-empty
    #: scaling timeline) further normalise by each node's
    #: provisioned lifetime, i.e. assigned per core-second.
    load_imbalance: float
    shed_rate: float
    nodes: tuple[NodeReport, ...]
    #: Serve window (first arrival to last completion), seconds.
    span_s: float = 0.0
    #: Sum of per-node provision-to-retire spans — the fleet's capacity
    #: cost.  A static N-node fleet pays exactly ``N * span_s``; an
    #: autoscaled fleet pays for what it held.
    node_seconds: float = 0.0
    #: Core-second integrals: cores actually allocated to blocks vs
    #: cores provisioned (``cores * node_seconds`` summed per node).
    core_seconds_used: float = 0.0
    core_seconds_available: float = 0.0
    #: Most live (routable) nodes at any instant of the run.
    peak_live_nodes: int = 0
    #: Node lifecycle transitions, in order (empty for static fleets).
    scaling_timeline: tuple[ScalingEvent, ...] = ()
    #: Request-model rollups (``serve_stream`` only): pipeline chains
    #: and closed-loop sessions.  ``None``/empty for open-loop serves.
    pipelines: PipelineRollup | None = None
    sessions: tuple[SessionReport, ...] = ()

    @property
    def utilization(self) -> float:
        """Allocated core-seconds over provisioned core-seconds.

        A single end-of-run ratio: low utilization says cores sat idle
        but not *why* (admission gaps, drain tails, routing skew).  A
        traced serve answers that — the Chrome export's per-node lanes
        show the idle intervals directly, and ``summarize``'s
        inter-block phase shows scheduler-induced idleness per query.
        """
        if self.core_seconds_available <= 0.0:
            return 0.0
        return self.core_seconds_used / self.core_seconds_available

    @property
    def average_live_nodes(self) -> float:
        """Node-seconds spread over the serve window (mean fleet size)."""
        return self.node_seconds / self.span_s if self.span_s > 0 else 0.0

    def __str__(self) -> str:  # pragma: no cover - display helper
        scaled = (f" nodes(avg/peak)={self.average_live_nodes:.1f}"
                  f"/{self.peak_live_nodes}"
                  if self.scaling_timeline else "")
        return (f"qps={self.offered_qps:.0f} nodes={len(self.nodes)}"
                f" sat={self.satisfaction_rate:.1%}"
                f" goodput={self.goodput_qps:.0f}/s"
                f" p99={self.p99_latency_s * 1e3:.2f}ms"
                f" shed={self.shed_rate:.1%}"
                f" imbalance={self.load_imbalance:.2f}"
                f" node-s={self.node_seconds:.1f}{scaled}")


def rollup(offered: list[Query],
           node_results: list[tuple["object", list[Query], ServingReport]],
           shed: list[Query], deferrals: int, offered_qps: float,
           router: str,
           timeline: tuple[ScalingEvent, ...] = (),
           peak_live_nodes: int | None = None,
           window: tuple[float, float] | None = None,
           pipelines: PipelineRollup | None = None,
           sessions: tuple[SessionReport, ...] = ()) -> ClusterReport:
    """Fold per-node outcomes into one :class:`ClusterReport`.

    ``node_results`` is one ``(node, completed_queries, report)`` triple
    per fleet member, where ``node`` exposes ``spec``/``assigned`` (the
    fleet driver's :class:`~repro.cluster.fleet.ClusterNode`); lifecycle
    attributes (``provisioned_s``/``retired_s``/``state``) and engine
    core-usage integrals are read when present and default to a
    whole-window static member otherwise.  ``window`` is the serve span
    (first arrival to last completion); ``timeline`` the scaling events.
    """
    if window is None:
        start = min(q.arrival_s for q in offered) if offered else 0.0
        finishes = [q.finished_s for _, completed, _ in node_results
                    for q in completed]
        window = (start, max(finishes) if finishes else start)
    window_start, window_end = window

    node_reports = []
    all_completed: list[Query] = []
    core_seconds_used = 0.0
    for node, completed, report in node_results:
        satisfied = sum(1 for query in completed if query.satisfied)
        provisioned = getattr(node, "provisioned_s", None)
        if provisioned is None:
            provisioned = window_start
        retired = getattr(node, "retired_s", None)
        if retired is None:
            retired = window_end
        engine = getattr(node, "engine", None)
        if engine is not None:
            core_seconds_used += engine.metrics.usage_core_seconds
        node_reports.append(NodeReport(
            name=node.spec.name, device_name=node.spec.device.name,
            device_kind=getattr(node.spec, "device_kind", "cpu"),
            cores=node.cores, policy=node.spec.policy,
            assigned=node.assigned, completed=len(completed),
            satisfied=satisfied, report=report,
            provisioned_s=provisioned, retired_s=retired,
            node_seconds=max(0.0, retired - provisioned),
            final_state=getattr(node, "state", "live")))
        all_completed.extend(completed)

    offered_count = len(offered)
    admitted = sum(node.assigned for node in node_reports)
    completed_count = sum(node.completed for node in node_reports)
    satisfied_count = sum(node.satisfied for node in node_reports)
    satisfaction = satisfied_count / offered_count if offered_count else 0.0

    if all_completed:
        latencies = np.array([q.latency_s for q in all_completed])
        average_latency = float(latencies.mean())
        p99_latency = float(np.percentile(latencies, 99))
        start = min(q.arrival_s for q in offered)
        end = max(q.finished_s for q in all_completed)
        span = max(end - start, 0.0)
        goodput = satisfied_count / span if span > 0 else 0.0
    else:
        average_latency = float("inf")
        p99_latency = float("inf")
        goodput = 0.0

    by_class: dict[str, list[float]] = {}
    for query in all_completed:
        workload_class = get_entry(query.model.name).workload_class
        by_class.setdefault(workload_class, []).append(query.latency_s)
    class_p99 = tuple(
        (workload_class, float(np.percentile(by_class[workload_class], 99)))
        for workload_class in WORKLOAD_CLASSES if workload_class in by_class)

    if timeline:
        # Elastic fleet: normalise assignment by each node's provisioned
        # core-seconds, or a node that joined for the last tenth of the
        # run (or retired early) would read as wildly under/over-loaded
        # against whole-run members.  Static fleets keep the plain
        # per-core load (equal lifetimes would cancel out anyway).
        loads = [node.assigned / (node.cores * node.node_seconds)
                 for node in node_reports if node.node_seconds > 0]
    else:
        loads = [node.assigned / node.cores for node in node_reports]
    mean_load = (sum(loads) / len(loads)) if loads else 0.0
    imbalance = max(loads) / mean_load if mean_load > 0 else 1.0

    node_seconds = sum(node.node_seconds for node in node_reports)
    available = sum(node.cores * node.node_seconds
                    for node in node_reports)

    return ClusterReport(
        offered_qps=offered_qps,
        router=router,
        offered=offered_count,
        admitted=admitted,
        completed=completed_count,
        satisfied=satisfied_count,
        shed=len(shed),
        deferrals=deferrals,
        satisfaction_rate=satisfaction,
        qos_violation_rate=1.0 - satisfaction,
        goodput_qps=goodput,
        average_latency_s=average_latency,
        p99_latency_s=p99_latency,
        class_p99_s=class_p99,
        load_imbalance=imbalance,
        shed_rate=len(shed) / offered_count if offered_count else 0.0,
        nodes=tuple(node_reports),
        span_s=max(0.0, window_end - window_start),
        node_seconds=node_seconds,
        core_seconds_used=core_seconds_used,
        core_seconds_available=available,
        peak_live_nodes=(peak_live_nodes if peak_live_nodes is not None
                         else len(node_reports)),
        scaling_timeline=tuple(timeline),
        pipelines=pipelines,
        sessions=sessions,
    )
