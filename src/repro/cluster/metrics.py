"""Fleet-level metrics: per-node reports rolled into one ClusterReport.

The rollup is pure arithmetic over per-node results — every fleet total
is the exact sum of its per-node constituents (the cluster benchmark
asserts this reconciliation), and the fleet-only metrics (goodput,
per-class tail latency, load imbalance, shed rate) are derived from the
same raw queries, never re-estimated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.registry import WORKLOAD_CLASSES, get_entry
from repro.runtime.tasks import Query
from repro.serving.metrics import ServingReport


@dataclass(frozen=True)
class NodeReport:
    """One node's share of a fleet run."""

    name: str
    cpu_name: str
    cores: int
    policy: str
    assigned: int
    completed: int
    satisfied: int
    report: ServingReport

    @property
    def satisfaction_rate(self) -> float:
        return self.satisfied / self.completed if self.completed else 0.0


@dataclass(frozen=True)
class ClusterReport:
    """Summary of one simulated fleet run."""

    offered_qps: float
    router: str
    #: Query accounting: ``offered == admitted + shed`` and
    #: ``admitted == sum(node.assigned)`` hold exactly.
    offered: int
    admitted: int
    completed: int
    satisfied: int
    shed: int
    deferrals: int
    #: Fleet QoS satisfaction; shed queries count as violations.
    satisfaction_rate: float
    qos_violation_rate: float
    #: Satisfied queries per second of fleet busy span.
    goodput_qps: float
    average_latency_s: float
    p99_latency_s: float
    #: P99 latency per workload class (light/medium/heavy), completed
    #: queries only; classes absent from the stream are omitted.
    class_p99_s: tuple[tuple[str, float], ...]
    #: max/mean of per-node (assigned / cores) — 1.0 is a perfectly
    #: width-proportional assignment.
    load_imbalance: float
    shed_rate: float
    nodes: tuple[NodeReport, ...]

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (f"qps={self.offered_qps:.0f} nodes={len(self.nodes)}"
                f" sat={self.satisfaction_rate:.1%}"
                f" goodput={self.goodput_qps:.0f}/s"
                f" p99={self.p99_latency_s * 1e3:.2f}ms"
                f" shed={self.shed_rate:.1%}"
                f" imbalance={self.load_imbalance:.2f}")


def rollup(offered: list[Query],
           node_results: list[tuple["object", list[Query], ServingReport]],
           shed: list[Query], deferrals: int, offered_qps: float,
           router: str) -> ClusterReport:
    """Fold per-node outcomes into one :class:`ClusterReport`.

    ``node_results`` is one ``(node, completed_queries, report)`` triple
    per fleet member, where ``node`` exposes ``spec``/``assigned`` (the
    fleet driver's :class:`~repro.cluster.fleet.ClusterNode`).
    """
    node_reports = []
    all_completed: list[Query] = []
    for node, completed, report in node_results:
        satisfied = sum(1 for query in completed if query.satisfied)
        node_reports.append(NodeReport(
            name=node.spec.name, cpu_name=node.spec.cpu.name,
            cores=node.cores, policy=node.spec.policy,
            assigned=node.assigned, completed=len(completed),
            satisfied=satisfied, report=report))
        all_completed.extend(completed)

    offered_count = len(offered)
    admitted = sum(node.assigned for node in node_reports)
    completed_count = sum(node.completed for node in node_reports)
    satisfied_count = sum(node.satisfied for node in node_reports)
    satisfaction = satisfied_count / offered_count if offered_count else 0.0

    if all_completed:
        latencies = np.array([q.latency_s for q in all_completed])
        average_latency = float(latencies.mean())
        p99_latency = float(np.percentile(latencies, 99))
        start = min(q.arrival_s for q in offered)
        end = max(q.finished_s for q in all_completed)
        span = max(end - start, 0.0)
        goodput = satisfied_count / span if span > 0 else 0.0
    else:
        average_latency = float("inf")
        p99_latency = float("inf")
        goodput = 0.0

    by_class: dict[str, list[float]] = {}
    for query in all_completed:
        workload_class = get_entry(query.model.name).workload_class
        by_class.setdefault(workload_class, []).append(query.latency_s)
    class_p99 = tuple(
        (workload_class, float(np.percentile(by_class[workload_class], 99)))
        for workload_class in WORKLOAD_CLASSES if workload_class in by_class)

    loads = [node.assigned / node.cores for node in node_reports]
    mean_load = sum(loads) / len(loads)
    imbalance = max(loads) / mean_load if mean_load > 0 else 1.0

    return ClusterReport(
        offered_qps=offered_qps,
        router=router,
        offered=offered_count,
        admitted=admitted,
        completed=completed_count,
        satisfied=satisfied_count,
        shed=len(shed),
        deferrals=deferrals,
        satisfaction_rate=satisfaction,
        qos_violation_rate=1.0 - satisfaction,
        goodput_qps=goodput,
        average_latency_s=average_latency,
        p99_latency_s=p99_latency,
        class_p99_s=class_p99,
        load_imbalance=imbalance,
        shed_rate=len(shed) / offered_count if offered_count else 0.0,
        nodes=tuple(node_reports),
    )
