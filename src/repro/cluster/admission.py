"""Fleet admission control: shed or defer load past a pressure bound.

A single VELTAIR node degrades gracefully under overload — queries queue
and miss QoS.  A *fleet* can do better: when every node is saturated,
admitting more work only converts future capacity into guaranteed QoS
violations, so the front door either sheds the query (fail fast, let
the client retry elsewhere) or defers it briefly (ride out a burst).
The overload signal is the same interference estimate the
``pressure_aware`` router uses, aggregated core-weighted over the
fleet, plus a backlog bound in queries per core.

Under an autoscaled fleet the controller is always handed the *live*
(routable) membership only: warming nodes cannot absorb an admitted
query yet and draining nodes are leaving, so neither may count toward
the capacity the fleet claims at the front door.  (The autoscale
control loop reuses :func:`fleet_pressure` /
:func:`fleet_outstanding_per_core` over the same live set.)
"""

from __future__ import annotations

from dataclasses import dataclass

#: Admission decisions.
ADMIT = "admit"
DEFER = "defer"
SHED = "shed"


@dataclass(frozen=True)
class AdmissionPolicy:
    """Bounds past which the fleet stops accepting new work.

    ``max_fleet_pressure`` caps the core-weighted mean interference
    estimate; ``max_outstanding_per_core`` caps fleet backlog (in-flight
    queries per physical core).  Crossing *either* bound trips the
    controller.  ``mode`` picks the reaction: ``"shed"`` rejects
    immediately; ``"defer"`` re-offers the query ``defer_s`` later, up
    to ``max_defers`` times, then sheds.  Deferral never moves the
    query's QoS deadline — latency keeps counting from the original
    arrival, exactly as a client-visible queueing delay would.
    """

    max_fleet_pressure: float = 0.85
    max_outstanding_per_core: float = 0.25
    mode: str = SHED
    defer_s: float = 0.010
    max_defers: int = 3

    def __post_init__(self) -> None:
        if not 0.0 <= self.max_fleet_pressure <= 1.0:
            raise ValueError("max_fleet_pressure must be in [0, 1]")
        if self.max_outstanding_per_core < 0.0:
            raise ValueError("max_outstanding_per_core must be >= 0")
        if self.mode not in (SHED, DEFER):
            raise ValueError(f"mode must be {SHED!r} or {DEFER!r}")
        if self.defer_s <= 0.0:
            raise ValueError("defer_s must be positive")
        if self.max_defers < 0:
            raise ValueError("max_defers must be >= 0")


def fleet_pressure(nodes) -> float:
    """Core-weighted mean of the per-node interference estimates."""
    total_cores = sum(node.cores for node in nodes)
    if total_cores <= 0:
        return 0.0
    weighted = sum(node.pressure_estimate() * node.cores for node in nodes)
    return weighted / total_cores


def fleet_outstanding_per_core(nodes) -> float:
    """Fleet in-flight queries per physical core (backlog density)."""
    total_cores = sum(node.cores for node in nodes)
    if total_cores <= 0:
        return 0.0
    return sum(node.engine.outstanding for node in nodes) / total_cores


class AdmissionController:
    """Applies an :class:`AdmissionPolicy` at each query offer."""

    def __init__(self, policy: AdmissionPolicy) -> None:
        self.policy = policy
        self.admitted = 0
        self.deferrals = 0
        self.shed = 0

    def decide(self, nodes, query, attempts: int) -> str:
        """``admit``/``defer``/``shed`` for one offer of one query.

        ``attempts`` counts earlier deferrals of this query; the caller
        re-offers deferred queries ``policy.defer_s`` later.
        """
        policy = self.policy
        overloaded = (
            fleet_pressure(nodes) > policy.max_fleet_pressure
            or (fleet_outstanding_per_core(nodes)
                > policy.max_outstanding_per_core))
        if not overloaded:
            self.admitted += 1
            return ADMIT
        if policy.mode == DEFER and attempts < policy.max_defers:
            self.deferrals += 1
            return DEFER
        self.shed += 1
        return SHED
