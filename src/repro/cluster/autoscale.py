"""SLO-feedback autoscaling: resize the fleet while it serves.

A fixed VELTAIR fleet is sized for its peak; diurnal and flash-crowd
load shapes leave most of that capacity idle most of the time.  The
autoscale control plane closes the loop at the fleet level: an
:class:`AutoscalePolicy` is evaluated on *control ticks* interleaved
into :meth:`Cluster.serve <repro.cluster.fleet.Cluster.serve>`'s offer
heap, and the fleet grows or shrinks mid-run.

Signals (all observable by a production control plane):

* **fleet pressure** — the core-weighted mean interference estimate
  over *live* nodes (the same signal admission control bounds);
* **backlog per core** — in-flight queries per live physical core;
* **rolling QoS violations** — the fraction of completions inside the
  trailing ``slo_window_s`` that missed their deadline (the SLO
  feedback term).

Decisions use *hysteresis bands* (separate scale-up and scale-down
thresholds: up when any high band is breached, down only when every
signal sits below its low band) plus a *cool-down* between actions, so
one burst cannot make the controller thrash.

Node lifecycle: ``provision`` allocates a node from the policy's
:class:`~repro.cluster.spec.NodeSpec` template — the stack's
``runtime_for`` re-profiles for the template's CPU but never recompiles
(warm after the first node of a width) — and the node spends
``warmup_s`` warming before it *joins* the routing set.  Scale-down
*drains*: the node leaves the routing set immediately, finishes its
in-flight work, then *retires* and stops being driven.  Every
transition lands in the report's scaling timeline, and node-seconds
accounting (provision to retire, warm-up included: capacity is paid for
from the moment it is requested) prices the cost-vs-QoS frontier.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.cluster.admission import fleet_outstanding_per_core, fleet_pressure
from repro.cluster.spec import NodeSpec

#: Node lifecycle states.
WARMING = "warming"
LIVE = "live"
DRAINING = "draining"
RETIRED = "retired"

#: Scaling-timeline actions.
PROVISION = "provision"
JOIN = "join"
DRAIN = "drain"
RETIRE = "retire"


@dataclass(frozen=True)
class AutoscalePolicy:
    """Feedback bands and mechanics of one autoscaling control loop.

    ``template`` is the :class:`NodeSpec` new nodes are provisioned
    from (its ``name`` is used as a prefix; provisioned nodes are named
    ``<name>-1``, ``<name>-2``, ...).  ``min_nodes``/``max_nodes``
    bound the live-or-warming fleet size; the initial fleet may start
    below ``max_nodes`` and the controller fills the gap under load.

    The three ``up_*`` thresholds trip scale-up when *any* is exceeded;
    the matching ``down_*`` thresholds (each strictly below its ``up_*``
    twin — that gap is the hysteresis) permit scale-down only when
    *every* signal is under its low band and nothing is still warming.
    ``cooldown_s`` spaces consecutive scaling actions; ``warmup_s`` is
    the provision-to-join delay; ``slo_window_s`` is the trailing
    window the rolling QoS-violation rate is measured over.
    """

    template: NodeSpec
    min_nodes: int = 1
    max_nodes: int = 8
    tick_s: float = 0.25
    warmup_s: float = 0.50
    cooldown_s: float = 1.00
    up_pressure: float = 0.60
    down_pressure: float = 0.25
    up_backlog_per_core: float = 0.08
    down_backlog_per_core: float = 0.02
    up_violation_rate: float = 0.15
    down_violation_rate: float = 0.03
    slo_window_s: float = 2.0
    step: int = 1
    #: Breach severity (signal / up-band ratio) past which the
    #: controller skips the cool-down and incremental stepping and
    #: jumps straight to ``max_nodes`` — the flash-crowd reflex.  A
    #: diurnal ramp trips bands gently (severity ~1) and grows by
    #: ``step``; a spike blows through them and must not wait out
    #: ``cooldown_s`` one node at a time.
    panic_severity: float = 2.0
    #: Consecutive quiet ticks (every signal under its down band)
    #: required before a scale-down — one calm tick inside a burst
    #: lull must not release capacity the next burst needs.
    quiet_ticks: int = 3

    def __post_init__(self) -> None:
        if self.min_nodes < 1:
            raise ValueError("min_nodes must be at least 1")
        if self.max_nodes < self.min_nodes:
            raise ValueError("max_nodes must be >= min_nodes")
        if self.tick_s <= 0.0:
            raise ValueError("tick_s must be positive")
        if self.warmup_s < 0.0:
            raise ValueError("warmup_s must be >= 0")
        if self.cooldown_s < 0.0:
            raise ValueError("cooldown_s must be >= 0")
        if self.slo_window_s <= 0.0:
            raise ValueError("slo_window_s must be positive")
        if self.step < 1:
            raise ValueError("step must be at least 1")
        if self.panic_severity <= 1.0:
            raise ValueError("panic_severity must exceed 1")
        if self.quiet_ticks < 1:
            raise ValueError("quiet_ticks must be at least 1")
        for high, low, label in (
                (self.up_pressure, self.down_pressure, "pressure"),
                (self.up_backlog_per_core, self.down_backlog_per_core,
                 "backlog_per_core"),
                (self.up_violation_rate, self.down_violation_rate,
                 "violation_rate")):
            if low < 0.0 or high <= low:
                raise ValueError(
                    f"{label} bands need 0 <= down < up for hysteresis; "
                    f"got down={low}, up={high}")


@dataclass(frozen=True)
class ScalingEvent:
    """One scaling-timeline entry: a node lifecycle transition."""

    time_s: float
    action: str
    node: str
    #: Live (routable) node count *after* the transition.
    live_nodes: int
    reason: str = ""

    def __str__(self) -> str:  # pragma: no cover - display helper
        note = f"  ({self.reason})" if self.reason else ""
        return (f"t={self.time_s:8.3f}s {self.action:9s} {self.node:12s} "
                f"live={self.live_nodes}{note}")


@dataclass
class FleetSignals:
    """One control tick's observed inputs (kept for introspection)."""

    time_s: float
    pressure: float
    backlog_per_core: float
    violation_rate: float
    live: int
    warming: int


class AutoscaleController:
    """Evaluates an :class:`AutoscalePolicy` against live fleet state.

    The controller is pure feedback logic: the fleet driver owns node
    construction and lifecycle mutation, and asks :meth:`decide` on
    each control tick how many nodes to add (positive), drain
    (negative), or leave alone (zero).  :meth:`observe_completions`
    must be fed every node's newly completed queries so the rolling
    QoS-violation window stays current.
    """

    def __init__(self, policy: AutoscalePolicy) -> None:
        self.policy = policy
        #: (finished_s, satisfied) for completions in the SLO window.
        self._window: deque[tuple[float, bool]] = deque()
        self._last_action_s: float | None = None
        self._quiet_streak = 0
        #: Every tick's observed signals, in tick order.
        self.signals: list[FleetSignals] = []

    def observe_completions(self, completed) -> None:
        """Feed newly completed queries into the rolling SLO window."""
        for query in completed:
            self._window.append((query.finished_s, query.satisfied))

    def violation_rate(self, now: float) -> float:
        """QoS-miss fraction over the trailing ``slo_window_s``."""
        horizon = now - self.policy.slo_window_s
        window = self._window
        if window and min(entry[0] for entry in window) < horizon:
            # Full filter, not a head-trim: batches arrive per *node*,
            # so the deque interleaves out of finish-time order and an
            # expired entry can sit behind an in-window head.
            self._window = window = deque(
                entry for entry in window if entry[0] >= horizon)
        if not window:
            return 0.0
        misses = sum(1 for _, satisfied in window if not satisfied)
        return misses / len(window)

    def decide(self, now: float, live_nodes, warming: int) -> int:
        """Scale delta for this tick: +n provision, -n drain, 0 hold.

        Scale-up trips when *any* high band is breached; the breach
        severity (worst signal over its band) picks between a gentle
        ``step`` and, past ``panic_severity``, an immediate jump to
        ``max_nodes`` that also bypasses the cool-down.  Scale-down
        needs ``quiet_ticks`` consecutive all-clear ticks with nothing
        warming, releasing one node at a time.
        """
        policy = self.policy
        signals = FleetSignals(
            time_s=now,
            pressure=fleet_pressure(live_nodes),
            backlog_per_core=fleet_outstanding_per_core(live_nodes),
            violation_rate=self.violation_rate(now),
            live=len(live_nodes), warming=warming)
        self.signals.append(signals)

        severity = max(
            signals.pressure / policy.up_pressure,
            signals.backlog_per_core / policy.up_backlog_per_core,
            signals.violation_rate / policy.up_violation_rate)
        quiet = (
            signals.pressure < policy.down_pressure
            and signals.backlog_per_core < policy.down_backlog_per_core
            and signals.violation_rate < policy.down_violation_rate)
        self._quiet_streak = (self._quiet_streak + 1 if quiet else 0)

        population = len(live_nodes) + warming
        cooling = (self._last_action_s is not None
                   and now - self._last_action_s < policy.cooldown_s)
        if severity > 1.0 and population < policy.max_nodes:
            panic = severity >= policy.panic_severity
            if cooling and not panic:
                return 0
            headroom = policy.max_nodes - population
            self._last_action_s = now
            return headroom if panic else min(policy.step, headroom)
        if (quiet and warming == 0
                and self._quiet_streak >= policy.quiet_ticks
                and not cooling
                and len(live_nodes) > policy.min_nodes):
            self._last_action_s = now
            self._quiet_streak = 0
            return -1
        return 0

    def reason(self) -> str:
        """Human-readable trigger for the most recent decision."""
        if not self.signals:
            return ""
        s = self.signals[-1]
        return (f"pressure={s.pressure:.2f} backlog={s.backlog_per_core:.3f}"
                f" violations={s.violation_rate:.2f}")
