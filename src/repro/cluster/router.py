"""Pluggable query routers: which node gets the next arrival.

Routers see the fleet exactly as a production front-end would — queue
depths, core widths, and each node's *interference-proxy* pressure
estimate (the paper's Sec. 4.3 signal, here promoted from a per-node
scheduling input to a fleet-level routing input).  They never inspect
simulator internals beyond what a monitoring agent could export.

==================== =====================================================
``round_robin``      cyclic assignment, state- and width-blind
``least_outstanding`` fewest in-flight queries (queued + executing)
``join_shortest_queue`` fewest *queued* queries (executing ones ignored)
``pressure_aware``   lowest predicted interference pressure, with a
                     width-normalised queue term and QoS-class urgency
                     weighting (the headline router)
``device_affinity``  pressure_aware plus a learned per-(model, device
                     kind) cost term — batch-friendly models drift to
                     accelerators, latency-critical small models to CPUs
==================== =====================================================
"""

from __future__ import annotations


class Router:
    """Base router: pick a node for one query at its arrival instant."""

    #: Registry name; subclasses override.
    name = "base"
    #: Telemetry sink, set by :meth:`Cluster.serve` for traced serves.
    #: Score-based routers check it and publish their per-node scores
    #: through :attr:`last_scores`; the routing decision itself is
    #: identical with or without it.
    tracer = None
    #: Per-node scores of the most recent :meth:`choose`, published only
    #: when :attr:`tracer` is set (the fleet driver folds them into the
    #: ``route`` event and clears the attribute).
    last_scores: dict | None = None

    def choose(self, nodes, query, now: float):
        """Return the node (from ``nodes``) that should serve ``query``."""
        raise NotImplementedError


class RoundRobinRouter(Router):
    """Cyclic assignment — the width- and state-blind baseline.

    The cursor tracks the *identity* (``node.index``) of the last node
    served, not a position: a global counter modulo the current list
    length skips or double-serves nodes the moment membership changes
    (an autoscaled fleet joins and drains nodes mid-run).  Each pick is
    the first live node after the last-served id, wrapping — which on a
    static fleet reproduces the classic ``0, 1, ..., n-1, 0`` cycle
    byte for byte.
    """

    name = "round_robin"

    def __init__(self) -> None:
        #: ``node.index`` of the last node served; None before the
        #: first pick.  Live node lists are ascending by index.
        self._last_index: int | None = None

    def choose(self, nodes, query, now: float):
        if self._last_index is not None:
            for node in nodes:
                if node.index > self._last_index:
                    self._last_index = node.index
                    return node
        node = nodes[0]
        self._last_index = node.index
        return node


class LeastOutstandingRouter(Router):
    """Fewest in-flight queries (queued + executing); ties to the
    lowest-index node.  Load-aware but width-blind: a 256-core node and
    a 32-core node look identical at equal depth."""

    name = "least_outstanding"

    def choose(self, nodes, query, now: float):
        return min(nodes, key=lambda node: (node.engine.outstanding,
                                            node.index))


class JoinShortestQueueRouter(Router):
    """Fewest *queued* (not yet executing) queries.

    Distinct from ``least_outstanding``: queries already executing are
    invisible, so a node running many blocks with an empty queue looks
    idle — the classic JSQ blind spot under spatial multitasking.
    """

    name = "join_shortest_queue"

    def choose(self, nodes, query, now: float):
        return min(nodes, key=lambda node: (node.engine.queued, node.index))


class PressureAwareRouter(Router):
    """Route on interference pressure, width-normalised queue depth, and
    QoS-class urgency — the VELTAIR signal applied fleet-wide.

    Each node is scored as::

        score = (1 + urgency) * pressure + queue_weight * depth

    * ``pressure`` is the node's interference estimate in [0, 1]: the
      fitted linear proxy over the node's chip-wide L3 counters when the
      stack has one, else the simulator's planning pressure (oracle).
    * ``depth`` is the node's outstanding query count divided by its
      core width in reference-node units (``cores / reference_cores``),
      so a 256-core box absorbs 4x the backlog of a 64-core box before
      their scores meet — this is what a width-blind router misses.
    * ``urgency`` in [0, 1] grows as the query's QoS budget tightens
      (``reference_qos_s / qos_s``, clamped): latency-critical queries
      double-weight pressure and land on quiet nodes, while loose-QoS
      heavy queries mostly follow spare width and soak up the backlog —
      per-class isolation without any static partitioning.
    """

    name = "pressure_aware"

    def __init__(self, queue_weight: float = 0.5,
                 reference_cores: int = 64,
                 reference_qos_s: float = 0.015) -> None:
        if queue_weight < 0.0:
            raise ValueError("queue_weight must be non-negative")
        if reference_cores <= 0 or reference_qos_s <= 0:
            raise ValueError("reference scales must be positive")
        self.queue_weight = queue_weight
        self.reference_cores = reference_cores
        self.reference_qos_s = reference_qos_s

    def choose(self, nodes, query, now: float):
        urgency = min(1.0, self.reference_qos_s / query.qos_s)

        def score(node) -> tuple[float, int]:
            # Parallel width, not "cores": on an accelerator node the
            # allocation units are SMs, and normalising the backlog by
            # anything else mis-ranks it against CPU members.
            width = node.width / self.reference_cores
            depth = node.engine.outstanding / width
            value = ((1.0 + urgency) * node.pressure_estimate()
                     + self.queue_weight * depth)
            return (value, node.index)

        if self.tracer is None:
            return min(nodes, key=score)
        scored = [(score(node), node) for node in nodes]
        best = min(scored, key=lambda entry: entry[0])
        self.last_scores = {node.spec.name: value
                            for (value, _), node in scored}
        return best[1]


class DeviceAffinityRouter(PressureAwareRouter):
    """``pressure_aware`` plus a learned per-(model, device-kind) cost.

    Every completion the fleet produces is an observation of how well
    one model fits one device kind: its end-to-end latency divided by
    its QoS budget.  The router folds these into per-``(model, kind)``
    EWMAs and adds the estimate — urgency-weighted, like the pressure
    term — to the ``pressure_aware`` score::

        score = affinity_weight * (1 + urgency) * cost
                + pressure + queue_weight * depth

    Batch-friendly models (wide layers that fill warps and SMs) observe
    low normalised cost on accelerator nodes and drift there;
    latency-critical small models observe warp-width waste and
    occupancy stalls and drift back to CPUs — placement learned from
    fleet telemetry, no static model→device table anywhere.

    Until ``min_observations`` completions of a pair exist, the prior
    is the node runtime's *isolated* profiled service time over the
    query's budget — the offline per-device cost estimate — so cold
    starts already route with the right sign.  Observation ingestion is
    cursor-based over each node's completion log (a front-end tailing
    its metrics stream) and strictly arrival-order driven, so routing
    stays deterministic for a fixed stream.
    """

    name = "device_affinity"

    def __init__(self, queue_weight: float = 0.5,
                 reference_cores: int = 64,
                 reference_qos_s: float = 0.015,
                 affinity_weight: float = 1.0,
                 alpha: float = 0.2,
                 min_observations: int = 3) -> None:
        super().__init__(queue_weight=queue_weight,
                         reference_cores=reference_cores,
                         reference_qos_s=reference_qos_s)
        if affinity_weight < 0.0:
            raise ValueError("affinity_weight must be non-negative")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        self.affinity_weight = affinity_weight
        self.alpha = alpha
        self.min_observations = min_observations
        #: (model name, device kind) -> EWMA of latency / QoS budget.
        self._cost: dict[tuple[str, str], float] = {}
        self._counts: dict[tuple[str, str], int] = {}
        #: Completion-log read cursors, keyed by node identity.
        self._cursors: dict[tuple[int, str], int] = {}

    def _ingest(self, nodes) -> None:
        for node in nodes:
            completed = node.engine.completed
            cursor_key = (node.index, node.spec.name)
            cursor = self._cursors.get(cursor_key, 0)
            if cursor > len(completed):
                cursor = 0  # fresh engine behind a reused router
            kind = node.device_kind
            for query in completed[cursor:]:
                cost = (query.finished_s - query.arrival_s) / query.qos_s
                key = (query.model.name, kind)
                previous = self._cost.get(key)
                self._cost[key] = (cost if previous is None
                                   else previous
                                   + self.alpha * (cost - previous))
                self._counts[key] = self._counts.get(key, 0) + 1
            self._cursors[cursor_key] = len(completed)

    def _estimate(self, node, query) -> float:
        key = (query.model.name, node.device_kind)
        if self._counts.get(key, 0) >= self.min_observations:
            return self._cost[key]
        profile = node.runtime.profiles.get(query.model.name)
        if profile is None:
            return 1.0
        return profile.isolated_service_s / query.qos_s

    def choose(self, nodes, query, now: float):
        self._ingest(nodes)
        urgency = min(1.0, self.reference_qos_s / query.qos_s)

        def score(node) -> tuple[float, int]:
            width = node.width / self.reference_cores
            depth = node.engine.outstanding / width
            value = (self.affinity_weight * (1.0 + urgency)
                     * self._estimate(node, query)
                     + node.pressure_estimate()
                     + self.queue_weight * depth)
            return (value, node.index)

        if self.tracer is None:
            return min(nodes, key=score)
        scored = [(score(node), node) for node in nodes]
        best = min(scored, key=lambda entry: entry[0])
        self.last_scores = {node.spec.name: value
                            for (value, _), node in scored}
        return best[1]


#: Router registry, mirroring the policy table of ``ServingStack``.
ROUTERS = ("round_robin", "least_outstanding", "join_shortest_queue",
           "pressure_aware", "device_affinity")


def make_router(name: str, **kwargs) -> Router:
    """Instantiate a registered router by name (kwargs to constructor)."""
    if name == "round_robin":
        return RoundRobinRouter(**kwargs)
    if name == "least_outstanding":
        return LeastOutstandingRouter(**kwargs)
    if name == "join_shortest_queue":
        return JoinShortestQueueRouter(**kwargs)
    if name == "pressure_aware":
        return PressureAwareRouter(**kwargs)
    if name == "device_affinity":
        return DeviceAffinityRouter(**kwargs)
    raise ValueError(f"unknown router {name!r}; known: {ROUTERS}")
