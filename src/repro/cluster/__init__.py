"""Multi-node serving: fleet specs, routers, admission, and experiments.

One :class:`~repro.serving.server.ServingStack` compile pass feeds every
node of a (possibly heterogeneous) fleet; a pluggable router assigns
each arrival from live node state — including the interference-proxy
pressure estimate — and an admission controller sheds or defers load
past a fleet pressure bound.  See ``examples/cluster_serving.py`` for a
tour and ``benchmarks/bench_cluster_scale.py`` for the scale study.
"""

from repro.cluster.admission import (
    ADMIT,
    DEFER,
    SHED,
    AdmissionController,
    AdmissionPolicy,
    fleet_outstanding_per_core,
    fleet_pressure,
)
from repro.cluster.experiments import (
    ClusterCapacityResult,
    cluster_capacity,
    cluster_sweep_pool,
    sweep_cluster_qps,
)
from repro.cluster.fleet import Cluster, ClusterNode
from repro.cluster.metrics import ClusterReport, NodeReport, rollup
from repro.cluster.router import (
    ROUTERS,
    JoinShortestQueueRouter,
    LeastOutstandingRouter,
    PressureAwareRouter,
    RoundRobinRouter,
    Router,
    make_router,
)
from repro.cluster.spec import (
    DEFAULT_NODE_POLICY,
    ClusterSpec,
    NodeSpec,
    homogeneous,
    mixed_fleet,
)

__all__ = [
    "ADMIT", "DEFER", "SHED",
    "AdmissionController", "AdmissionPolicy",
    "fleet_outstanding_per_core", "fleet_pressure",
    "ClusterCapacityResult", "cluster_capacity", "cluster_sweep_pool",
    "sweep_cluster_qps",
    "Cluster", "ClusterNode",
    "ClusterReport", "NodeReport", "rollup",
    "ROUTERS", "Router", "make_router",
    "RoundRobinRouter", "LeastOutstandingRouter",
    "JoinShortestQueueRouter", "PressureAwareRouter",
    "DEFAULT_NODE_POLICY", "ClusterSpec", "NodeSpec",
    "homogeneous", "mixed_fleet",
]
