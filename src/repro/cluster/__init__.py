"""Multi-node serving: fleet specs, routers, admission, autoscaling.

One :class:`~repro.serving.server.ServingStack` compile pass feeds every
node of a (possibly heterogeneous) fleet; a pluggable router assigns
each arrival from live node state — including the interference-proxy
pressure estimate — and an admission controller sheds or defers load
past a fleet pressure bound.  An :class:`AutoscalePolicy` makes the
fleet *elastic*: membership follows SLO feedback between ``min_nodes``
and ``max_nodes``, with warm-up on the way in and draining on the way
out.  See ``examples/cluster_serving.py`` and
``examples/autoscale_serving.py`` for tours,
``benchmarks/bench_cluster_scale.py`` and
``benchmarks/bench_autoscale.py`` for the scale and frontier studies.
"""

from repro.cluster.admission import (
    ADMIT,
    DEFER,
    SHED,
    AdmissionController,
    AdmissionPolicy,
    fleet_outstanding_per_core,
    fleet_pressure,
)
from repro.cluster.autoscale import (
    DRAIN,
    DRAINING,
    JOIN,
    LIVE,
    PROVISION,
    RETIRE,
    RETIRED,
    WARMING,
    AutoscaleController,
    AutoscalePolicy,
    FleetSignals,
    ScalingEvent,
)
from repro.cluster.experiments import (
    AutoscalePoint,
    ClusterCapacityResult,
    cluster_capacity,
    cluster_sweep_pool,
    sweep_autoscale,
    sweep_cluster_qps,
)
from repro.cluster.fleet import Cluster, ClusterNode
from repro.cluster.metrics import (
    ClusterReport,
    NodeReport,
    PipelineRollup,
    SessionReport,
    StageReport,
    pipeline_rollup,
    rollup,
    session_reports,
)
from repro.cluster.router import (
    ROUTERS,
    DeviceAffinityRouter,
    JoinShortestQueueRouter,
    LeastOutstandingRouter,
    PressureAwareRouter,
    RoundRobinRouter,
    Router,
    make_router,
)
from repro.cluster.spec import (
    DEFAULT_NODE_POLICY,
    ClusterSpec,
    NodeSpec,
    hetero_fleet,
    homogeneous,
    mixed_fleet,
)

__all__ = [
    "ADMIT", "DEFER", "SHED",
    "AdmissionController", "AdmissionPolicy",
    "fleet_outstanding_per_core", "fleet_pressure",
    "DRAIN", "DRAINING", "JOIN", "LIVE", "PROVISION", "RETIRE",
    "RETIRED", "WARMING",
    "AutoscaleController", "AutoscalePolicy", "FleetSignals",
    "ScalingEvent",
    "AutoscalePoint", "ClusterCapacityResult", "cluster_capacity",
    "cluster_sweep_pool", "sweep_autoscale", "sweep_cluster_qps",
    "Cluster", "ClusterNode",
    "ClusterReport", "NodeReport", "rollup",
    "PipelineRollup", "SessionReport", "StageReport",
    "pipeline_rollup", "session_reports",
    "ROUTERS", "Router", "make_router",
    "RoundRobinRouter", "LeastOutstandingRouter",
    "JoinShortestQueueRouter", "PressureAwareRouter",
    "DeviceAffinityRouter",
    "DEFAULT_NODE_POLICY", "ClusterSpec", "NodeSpec",
    "homogeneous", "mixed_fleet", "hetero_fleet",
]
