"""Device platform descriptions used by the cost model and the simulator.

The :class:`DeviceSpec` family describes every hardware kind the stack
can serve on.  :class:`CpuSpec` is the paper's platform: an AMD Ryzen
Threadripper 3990X — 64 physical cores at 2.9 GHz with AVX2, 256 MB of
shared L3, and quad-channel DDR4-3200.  SMT and DVFS are disabled in the
paper, so the model assumes one thread per physical core and a fixed
clock.  :class:`AcceleratorSpec` is a GPU-like SM/streams device: many
narrow execution units scheduled at stream granularity, a device-wide
shared L2, and high-bandwidth device memory — batch-friendly throughput
that only materialises when a kernel brings enough parallel chunks to
occupy the SMs.

The CPU preset constants are calibrated so that the headline magnitudes
of the paper hold on the analytic model:

* a single vision model using all 64 cores reaches roughly 300 queries per
  second (paper Sec. 2.1),
* MLPerf vision models meet their QoS targets with a handful of cores
  (paper Fig. 1a),
* a high-locality schedule can degrade by multiples under heavy LLC
  contention (paper Fig. 6a reports up to ~7x).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheSpec:
    """Capacity/bandwidth description of one cache level."""

    capacity_bytes: int
    #: Aggregate bandwidth of the level in bytes/second.  For private caches
    #: this is per-core; for the shared LLC it is chip-wide.
    bandwidth_bytes_per_s: float
    shared: bool = False

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("cache capacity must be positive")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("cache bandwidth must be positive")


@dataclass(frozen=True)
class MemorySpec:
    """Main-memory description."""

    capacity_bytes: int
    bandwidth_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("memory capacity must be positive")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("memory bandwidth must be positive")


class DeviceSpec:
    """Common interface of every hardware kind the stack serves on.

    A device is a pool of identical parallel execution units (CPU cores
    or accelerator SMs/streams) over a cache/memory hierarchy.  The
    cost model, the engine's allocator, and the schedulers address any
    device through this surface:

    * ``kind`` — registry discriminator (``"cpu"``/``"accelerator"``);
      part of the compiled-artifact content hash for non-CPU kinds.
    * ``parallel_width`` — number of allocatable execution units.  For
      historical reasons the unit count is also exposed as ``cores``
      (the name the whole allocation stack grew up with); the two are
      always equal.
    * clock and per-unit flops (``frequency_hz``, ``flops_per_cycle``,
      ``sustained_fraction`` and the derived ``*_flops*`` properties).
    * hierarchy: a per-unit private cache ``l2``, a shared ``llc``
      (the contended capacity resource), and ``dram``.
    * interference surface: ``llc_share`` (capacity a grant can defend)
      plus, per concrete kind, the contention sensitivities the cost
      model reads.

    Subclasses are frozen dataclasses; the base class carries no fields
    so ``dataclasses.asdict`` payloads — and therefore artifact-store
    keys — are exactly the concrete kind's own fields.
    """

    kind = "device"

    @property
    def parallel_width(self) -> int:
        """Number of allocatable execution units (cores or SMs)."""
        return self.cores


@dataclass(frozen=True)
class CpuSpec(DeviceSpec):
    """A many-core CPU as seen by the cost model.

    Attributes
    ----------
    cores:
        Number of physical cores available for scheduling.
    frequency_hz:
        Fixed core clock (DVFS disabled, as in the paper).
    flops_per_cycle:
        Peak FP32 flops per cycle per core (SIMD width x FMA issue x 2).
    sustained_fraction:
        Fraction of peak a well-tuned kernel sustains; folds in front-end
        and port-pressure losses the analytic model does not itemise.
    l2:
        Private per-core cache (the innermost reuse level we model).
    llc:
        Shared last-level cache; the contended resource in the paper.
    dram:
        Main memory.
    thread_spawn_s:
        Cost of spawning/parking one worker thread.  This prices both the
        initial parallel-region entry and the paper's conflict-expansion
        overhead (Sec. 3.2, Fig. 5b: mean ~220 us per conflicted layer).
    """

    #: NOTE: the field set is part of the artifact-store key schema
    #: (``compiler_context`` serialises ``dataclasses.asdict`` of the
    #: device); adding or renaming a field invalidates every cached CPU
    #: artifact.  New knobs belong on new device kinds.
    name: str
    cores: int
    frequency_hz: float
    flops_per_cycle: float
    sustained_fraction: float
    l2: CacheSpec
    llc: CacheSpec
    dram: MemorySpec
    thread_spawn_s: float = 12e-6

    kind = "cpu"

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("core count must be positive")
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if self.flops_per_cycle <= 0:
            raise ValueError("flops_per_cycle must be positive")
        if not 0.0 < self.sustained_fraction <= 1.0:
            raise ValueError("sustained_fraction must be in (0, 1]")
        if self.thread_spawn_s < 0:
            raise ValueError("thread_spawn_s must be non-negative")

    @property
    def peak_flops_per_core(self) -> float:
        """Theoretical peak FP32 flops/second of one core."""
        return self.frequency_hz * self.flops_per_cycle

    @property
    def sustained_flops_per_core(self) -> float:
        """Achievable flops/second of one core for tuned dense kernels."""
        return self.peak_flops_per_core * self.sustained_fraction

    @property
    def peak_flops(self) -> float:
        """Chip-wide theoretical peak flops/second."""
        return self.peak_flops_per_core * self.cores

    def llc_share(self, cores: int) -> float:
        """LLC capacity a task holding ``cores`` cores can expect to keep.

        The 3990X LLC is physically banked per CCX; a task's effective share
        scales with the share of cores it occupies, floored at one CCX-worth
        so tiny tasks still see a useful slice.
        """
        if cores <= 0:
            return 0.0
        fraction = min(1.0, cores / self.cores)
        one_bank = self.llc.capacity_bytes / max(1, self.cores // 4)
        return max(one_bank, fraction * self.llc.capacity_bytes)


@dataclass(frozen=True)
class AcceleratorSpec(DeviceSpec):
    """A GPU-like SM/streams device as seen by the cost model.

    The allocation unit is one SM (stream processor): the engine's
    allocator hands out SMs exactly as it hands out CPU cores, so
    stream-level spatial multitasking rides on the existing machinery.
    What differs is the execution economics, captured here:

    * **Wide SIMT units** — ``simt_lanes`` lanes execute in lockstep;
      kernels whose innermost extent cannot fill a warp waste lanes, so
      small/skinny layers sustain a much lower fraction of peak than
      they do on an 8-lane AVX2 core (the latency-critical-small-model
      penalty).
    * **Batch-friendly throughput curve** — an SM needs several resident
      blocks to hide latency; ``occupancy_ramp`` is the parallel chunks
      per granted SM at which throughput saturates, and
      ``min_occupancy_rate`` the floor a one-chunk-per-SM launch
      sustains.  Layers with abundant parallelism (large convs) reach
      peak; shallow ones do not.
    * **Stream-level costs** — ``kernel_launch_s`` prices each kernel
      launch (replacing the CPU's ``layer_launch_s``) and
      ``stream_launch_s`` prices stream set-up/re-partition (the
      analogue of thread spawn; exposed as ``thread_spawn_s`` so
      conflict-expansion accounting works unchanged).
    * **Interference surface** — contention constants the cost model
      reads for this kind (the CPU reads its equivalents from
      ``CostModelParams``, whose field set is frozen into the artifact
      key schema): device-L2 reuse is less load-bearing than CPU LLC
      reuse (``cache_sensitivity``) but the shared HBM is contended by
      every resident stream (``bw_sensitivity``), and a kernel holding
      more SMs keeps more requests in flight (``bw_defense_max``).

    Attributes mirror :class:`CpuSpec` where the semantics coincide:
    ``l2`` is the per-SM local store (smem + L1), ``llc`` the
    device-wide shared L2, ``dram`` the HBM stack.
    """

    name: str
    sms: int
    frequency_hz: float
    flops_per_cycle: float
    sustained_fraction: float
    l2: CacheSpec
    llc: CacheSpec
    dram: MemorySpec
    simt_lanes: int = 32
    kernel_launch_s: float = 8e-6
    stream_launch_s: float = 30e-6
    occupancy_ramp: float = 4.0
    min_occupancy_rate: float = 0.25
    #: Contention sensitivities (the accelerator's interference surface).
    cache_sensitivity: float = 2.0
    bw_sensitivity: float = 2.2
    cache_vuln_ref_bytes: float = 6 * 1024 * 1024
    bw_defense_max: float = 0.6
    dram_saturation_units: int = 24
    mlp_per_unit: float = 64.0
    max_mlp: float = 2048.0
    sync_tax_per_unit: float = 0.0008

    kind = "accelerator"

    def __post_init__(self) -> None:
        if self.sms <= 0:
            raise ValueError("SM count must be positive")
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if self.flops_per_cycle <= 0:
            raise ValueError("flops_per_cycle must be positive")
        if not 0.0 < self.sustained_fraction <= 1.0:
            raise ValueError("sustained_fraction must be in (0, 1]")
        if self.simt_lanes <= 0:
            raise ValueError("simt_lanes must be positive")
        if self.kernel_launch_s < 0 or self.stream_launch_s < 0:
            raise ValueError("launch costs must be non-negative")
        if self.occupancy_ramp < 1.0:
            raise ValueError("occupancy_ramp must be >= 1")
        if not 0.0 < self.min_occupancy_rate <= 1.0:
            raise ValueError("min_occupancy_rate must be in (0, 1]")

    # -- CpuSpec-compatible surface (what the stack reads) -----------------

    @property
    def cores(self) -> int:
        """Allocation units — SMs; named for the allocator's vocabulary."""
        return self.sms

    @property
    def thread_spawn_s(self) -> float:
        """Stream set-up cost, priced where CPUs price thread spawn."""
        return self.stream_launch_s

    @property
    def peak_flops_per_core(self) -> float:
        """Theoretical peak FP32 flops/second of one SM."""
        return self.frequency_hz * self.flops_per_cycle

    @property
    def sustained_flops_per_core(self) -> float:
        """Achievable flops/second of one fully occupied SM."""
        return self.peak_flops_per_core * self.sustained_fraction

    @property
    def peak_flops(self) -> float:
        """Device-wide theoretical peak flops/second."""
        return self.peak_flops_per_core * self.sms

    def llc_share(self, cores: int) -> float:
        """Device-L2 capacity a kernel holding ``cores`` SMs can keep.

        The shared L2 is not partitioned; a kernel's effective share
        scales with its SM footprint, floored at 1/16th of the device
        so small kernels still see a useful slice.
        """
        if cores <= 0:
            return 0.0
        fraction = min(1.0, cores / self.sms)
        floor = self.llc.capacity_bytes / 16.0
        return max(floor, fraction * self.llc.capacity_bytes)


def threadripper_3990x() -> CpuSpec:
    """The paper's evaluation platform (Sec. 5.1), as model constants.

    64 Zen-2 cores at 2.9 GHz; AVX2 gives 8 FP32 lanes x 2 FMA pipes x
    2 flops = 32 flops/cycle peak.  256 MB L3 across 16 CCXs, 512 KB
    private L2 per core, and ~95 GB/s of quad-channel DDR4-3200.
    """
    return CpuSpec(
        name="AMD Ryzen Threadripper 3990X",
        cores=64,
        frequency_hz=2.9e9,
        flops_per_cycle=32.0,
        sustained_fraction=0.75,
        l2=CacheSpec(capacity_bytes=512 * 1024,
                     bandwidth_bytes_per_s=64e9),
        llc=CacheSpec(capacity_bytes=256 * 1024 * 1024,
                      bandwidth_bytes_per_s=1.6e12,
                      shared=True),
        dram=MemorySpec(capacity_bytes=256 * 1024**3,
                        bandwidth_bytes_per_s=95e9),
        thread_spawn_s=8e-6,
    )


def edge_node_32() -> CpuSpec:
    """A small serving node: half a 3990X, the low end of a mixed fleet.

    Cluster experiments route over heterogeneous fleets; this is the
    node a naive round-robin router overloads first.  Modeled as half
    the paper's testbed — 32 cores, half the LLC/DRAM bandwidth.
    """
    return CpuSpec(
        name="edge node (32 cores)",
        cores=32,
        frequency_hz=2.9e9,
        flops_per_cycle=32.0,
        sustained_fraction=0.75,
        l2=CacheSpec(capacity_bytes=512 * 1024,
                     bandwidth_bytes_per_s=64e9),
        llc=CacheSpec(capacity_bytes=128 * 1024 * 1024,
                      bandwidth_bytes_per_s=0.8e12,
                      shared=True),
        dram=MemorySpec(capacity_bytes=128 * 1024**3,
                        bandwidth_bytes_per_s=48e9),
        thread_spawn_s=8e-6,
    )


def production_server_256() -> CpuSpec:
    """A production-scale serving node: dual-socket, 256 cores.

    The paper evaluates on one 64-core desktop part; datacenter serving
    racks deploy on far wider boxes, and the co-location dynamics the
    scheduler must handle (dozens of concurrent tenants) only appear at
    that width.  Modeled as four 3990X-worth of cores with LLC capacity
    and DRAM channels scaled accordingly — the regime the engine-scale
    benchmark exercises.
    """
    return CpuSpec(
        name="production server (256 cores)",
        cores=256,
        frequency_hz=2.9e9,
        flops_per_cycle=32.0,
        sustained_fraction=0.75,
        l2=CacheSpec(capacity_bytes=512 * 1024,
                     bandwidth_bytes_per_s=64e9),
        llc=CacheSpec(capacity_bytes=1024 * 1024 * 1024,
                      bandwidth_bytes_per_s=6.4e12,
                      shared=True),
        dram=MemorySpec(capacity_bytes=1024**4,
                        bandwidth_bytes_per_s=380e9),
        thread_spawn_s=8e-6,
    )


def datacenter_accelerator_80() -> AcceleratorSpec:
    """A datacenter inference accelerator: 80 SMs over 40 MB L2 + HBM.

    Modeled on an Ampere-class FP32 part: 80 SMs at 1.41 GHz with 128
    FMA lanes each (256 flops/cycle/SM, ~29 TF peak — about 5x the
    3990X chip), 192 KB of local store per SM, a 40 MB device-wide L2,
    and a 1.5 TB/s HBM stack (~16x the CPU's DDR4).  Warp width 32, so
    skinny kernels waste 4x the lanes they waste on AVX2; kernel
    launches cost ~8 us against the CPU's 2 us.  The throughput curve
    saturates at ~4 resident chunks per SM — the batch-friendly regime
    heavy vision models reach and 10 ms-QoS small models often do not.
    """
    return AcceleratorSpec(
        name="datacenter accelerator (80 SMs)",
        sms=80,
        frequency_hz=1.41e9,
        flops_per_cycle=256.0,
        sustained_fraction=0.60,
        l2=CacheSpec(capacity_bytes=192 * 1024,
                     bandwidth_bytes_per_s=200e9),
        llc=CacheSpec(capacity_bytes=40 * 1024 * 1024,
                      bandwidth_bytes_per_s=4.0e12,
                      shared=True),
        dram=MemorySpec(capacity_bytes=40 * 1024**3,
                        bandwidth_bytes_per_s=1.5e12),
    )


#: Module-level singleton presets; cheap to construct, convenient to share.
THREADRIPPER_3990X = threadripper_3990x()
EDGE_NODE_32 = edge_node_32()
PRODUCTION_SERVER_256 = production_server_256()
DATACENTER_ACCEL_80 = datacenter_accelerator_80()
