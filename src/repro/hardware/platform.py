"""CPU platform description used by the cost model and the simulator.

The paper's testbed is an AMD Ryzen Threadripper 3990X: 64 physical cores at
2.9 GHz with AVX2, 256 MB of shared L3, and quad-channel DDR4-3200.  SMT and
DVFS are disabled in the paper, so the model here assumes one thread per
physical core and a fixed clock.

The preset constants are calibrated so that the headline magnitudes of the
paper hold on the analytic model:

* a single vision model using all 64 cores reaches roughly 300 queries per
  second (paper Sec. 2.1),
* MLPerf vision models meet their QoS targets with a handful of cores
  (paper Fig. 1a),
* a high-locality schedule can degrade by multiples under heavy LLC
  contention (paper Fig. 6a reports up to ~7x).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheSpec:
    """Capacity/bandwidth description of one cache level."""

    capacity_bytes: int
    #: Aggregate bandwidth of the level in bytes/second.  For private caches
    #: this is per-core; for the shared LLC it is chip-wide.
    bandwidth_bytes_per_s: float
    shared: bool = False

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("cache capacity must be positive")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("cache bandwidth must be positive")


@dataclass(frozen=True)
class MemorySpec:
    """Main-memory description."""

    capacity_bytes: int
    bandwidth_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("memory capacity must be positive")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("memory bandwidth must be positive")


@dataclass(frozen=True)
class CpuSpec:
    """A many-core CPU as seen by the cost model.

    Attributes
    ----------
    cores:
        Number of physical cores available for scheduling.
    frequency_hz:
        Fixed core clock (DVFS disabled, as in the paper).
    flops_per_cycle:
        Peak FP32 flops per cycle per core (SIMD width x FMA issue x 2).
    sustained_fraction:
        Fraction of peak a well-tuned kernel sustains; folds in front-end
        and port-pressure losses the analytic model does not itemise.
    l2:
        Private per-core cache (the innermost reuse level we model).
    llc:
        Shared last-level cache; the contended resource in the paper.
    dram:
        Main memory.
    thread_spawn_s:
        Cost of spawning/parking one worker thread.  This prices both the
        initial parallel-region entry and the paper's conflict-expansion
        overhead (Sec. 3.2, Fig. 5b: mean ~220 us per conflicted layer).
    """

    name: str
    cores: int
    frequency_hz: float
    flops_per_cycle: float
    sustained_fraction: float
    l2: CacheSpec
    llc: CacheSpec
    dram: MemorySpec
    thread_spawn_s: float = 12e-6

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("core count must be positive")
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if self.flops_per_cycle <= 0:
            raise ValueError("flops_per_cycle must be positive")
        if not 0.0 < self.sustained_fraction <= 1.0:
            raise ValueError("sustained_fraction must be in (0, 1]")
        if self.thread_spawn_s < 0:
            raise ValueError("thread_spawn_s must be non-negative")

    @property
    def peak_flops_per_core(self) -> float:
        """Theoretical peak FP32 flops/second of one core."""
        return self.frequency_hz * self.flops_per_cycle

    @property
    def sustained_flops_per_core(self) -> float:
        """Achievable flops/second of one core for tuned dense kernels."""
        return self.peak_flops_per_core * self.sustained_fraction

    @property
    def peak_flops(self) -> float:
        """Chip-wide theoretical peak flops/second."""
        return self.peak_flops_per_core * self.cores

    def llc_share(self, cores: int) -> float:
        """LLC capacity a task holding ``cores`` cores can expect to keep.

        The 3990X LLC is physically banked per CCX; a task's effective share
        scales with the share of cores it occupies, floored at one CCX-worth
        so tiny tasks still see a useful slice.
        """
        if cores <= 0:
            return 0.0
        fraction = min(1.0, cores / self.cores)
        one_bank = self.llc.capacity_bytes / max(1, self.cores // 4)
        return max(one_bank, fraction * self.llc.capacity_bytes)


def threadripper_3990x() -> CpuSpec:
    """The paper's evaluation platform (Sec. 5.1), as model constants.

    64 Zen-2 cores at 2.9 GHz; AVX2 gives 8 FP32 lanes x 2 FMA pipes x
    2 flops = 32 flops/cycle peak.  256 MB L3 across 16 CCXs, 512 KB
    private L2 per core, and ~95 GB/s of quad-channel DDR4-3200.
    """
    return CpuSpec(
        name="AMD Ryzen Threadripper 3990X",
        cores=64,
        frequency_hz=2.9e9,
        flops_per_cycle=32.0,
        sustained_fraction=0.75,
        l2=CacheSpec(capacity_bytes=512 * 1024,
                     bandwidth_bytes_per_s=64e9),
        llc=CacheSpec(capacity_bytes=256 * 1024 * 1024,
                      bandwidth_bytes_per_s=1.6e12,
                      shared=True),
        dram=MemorySpec(capacity_bytes=256 * 1024**3,
                        bandwidth_bytes_per_s=95e9),
        thread_spawn_s=8e-6,
    )


def edge_node_32() -> CpuSpec:
    """A small serving node: half a 3990X, the low end of a mixed fleet.

    Cluster experiments route over heterogeneous fleets; this is the
    node a naive round-robin router overloads first.  Modeled as half
    the paper's testbed — 32 cores, half the LLC/DRAM bandwidth.
    """
    return CpuSpec(
        name="edge node (32 cores)",
        cores=32,
        frequency_hz=2.9e9,
        flops_per_cycle=32.0,
        sustained_fraction=0.75,
        l2=CacheSpec(capacity_bytes=512 * 1024,
                     bandwidth_bytes_per_s=64e9),
        llc=CacheSpec(capacity_bytes=128 * 1024 * 1024,
                      bandwidth_bytes_per_s=0.8e12,
                      shared=True),
        dram=MemorySpec(capacity_bytes=128 * 1024**3,
                        bandwidth_bytes_per_s=48e9),
        thread_spawn_s=8e-6,
    )


def production_server_256() -> CpuSpec:
    """A production-scale serving node: dual-socket, 256 cores.

    The paper evaluates on one 64-core desktop part; datacenter serving
    racks deploy on far wider boxes, and the co-location dynamics the
    scheduler must handle (dozens of concurrent tenants) only appear at
    that width.  Modeled as four 3990X-worth of cores with LLC capacity
    and DRAM channels scaled accordingly — the regime the engine-scale
    benchmark exercises.
    """
    return CpuSpec(
        name="production server (256 cores)",
        cores=256,
        frequency_hz=2.9e9,
        flops_per_cycle=32.0,
        sustained_fraction=0.75,
        l2=CacheSpec(capacity_bytes=512 * 1024,
                     bandwidth_bytes_per_s=64e9),
        llc=CacheSpec(capacity_bytes=1024 * 1024 * 1024,
                      bandwidth_bytes_per_s=6.4e12,
                      shared=True),
        dram=MemorySpec(capacity_bytes=1024**4,
                        bandwidth_bytes_per_s=380e9),
        thread_spawn_s=8e-6,
    )


#: Module-level singleton presets; cheap to construct, convenient to share.
THREADRIPPER_3990X = threadripper_3990x()
EDGE_NODE_32 = edge_node_32()
PRODUCTION_SERVER_256 = production_server_256()
