"""Synthetic hardware performance counters.

The runtime scheduler's interference proxy (paper Sec. 4.3) reads L3
counters; on this substrate the counters are synthesised from the same
traffic accounting that drives the latency model, so the statistical
relationships the paper exploits (L3 counters explaining slowdown) hold by
construction of the *mechanism*, not by wiring the proxy to the answer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.costmodel import CostBreakdown

#: Counter names, in the order :meth:`PerformanceCounters.as_vector` emits.
COUNTER_NAMES = (
    "l3_miss_rate",
    "l3_accesses_per_s",
    "ipc",
    "flops_per_s",
    "branch_miss_rate",
    "frontend_stall_rate",
)


@dataclass(frozen=True)
class PerformanceCounters:
    """One sampling window of per-task counters."""

    l3_miss_rate: float
    l3_accesses_per_s: float
    ipc: float
    flops_per_s: float
    branch_miss_rate: float
    frontend_stall_rate: float

    def as_vector(self) -> list[float]:
        return [self.l3_miss_rate, self.l3_accesses_per_s, self.ipc,
                self.flops_per_s, self.branch_miss_rate,
                self.frontend_stall_rate]


def counters_from_execution(execution: CostBreakdown,
                            frequency_hz: float) -> PerformanceCounters:
    """Derive a counter window from one execution's cost breakdown.

    Instruction count is approximated from vector flops (8-lane FMA = 16
    flops/instruction) plus a fixed bookkeeping overhead per vector op.
    Branch and front-end rates carry no interference signal (they depend
    only on code shape) — they exist so the PCA of paper Fig. 11a has
    non-L3 components to discount.
    """
    seconds = execution.total_s
    flops_per_s = execution.flops / seconds
    vector_ops = execution.flops / 16.0
    instructions = vector_ops * 1.35
    cycles = seconds * frequency_hz * max(1, execution.cores_used)
    ipc = instructions / max(cycles, 1.0)
    return PerformanceCounters(
        l3_miss_rate=execution.llc_miss_rate,
        l3_accesses_per_s=execution.llc_line_accesses / seconds,
        ipc=ipc,
        flops_per_s=flops_per_s,
        branch_miss_rate=0.01 + 0.002 * (execution.flops % 7) / 7.0,
        frontend_stall_rate=0.05 + 0.01 * (execution.flops % 11) / 11.0,
    )
