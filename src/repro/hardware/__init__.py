"""Hardware substrate: platform specs and synthetic performance counters."""

from repro.hardware.platform import (
    DATACENTER_ACCEL_80,
    EDGE_NODE_32,
    PRODUCTION_SERVER_256,
    THREADRIPPER_3990X,
    AcceleratorSpec,
    CacheSpec,
    CpuSpec,
    DeviceSpec,
    MemorySpec,
    datacenter_accelerator_80,
    edge_node_32,
    production_server_256,
    threadripper_3990x,
)

__all__ = [
    "CacheSpec", "CpuSpec", "MemorySpec",
    "DeviceSpec", "AcceleratorSpec",
    "THREADRIPPER_3990X", "threadripper_3990x",
    "EDGE_NODE_32", "edge_node_32",
    "PRODUCTION_SERVER_256", "production_server_256",
    "DATACENTER_ACCEL_80", "datacenter_accelerator_80",
]
