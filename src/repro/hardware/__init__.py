"""Hardware substrate: platform specs and synthetic performance counters."""

from repro.hardware.platform import (
    THREADRIPPER_3990X,
    CacheSpec,
    CpuSpec,
    MemorySpec,
    threadripper_3990x,
)

__all__ = [
    "CacheSpec", "CpuSpec", "MemorySpec",
    "THREADRIPPER_3990X", "threadripper_3990x",
]
