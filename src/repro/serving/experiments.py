"""Reusable experiment drivers behind the paper's figures.

Each function maps onto one evaluation protocol of Sec. 5; the benchmark
modules parameterise them per figure and print the paper-shaped series.

The load axis is the expensive one — every point of a QPS sweep is an
independent simulation — so :func:`sweep_qps` batches points and can
fan them out over ``fork``-ed worker processes.  The capacity search
(:func:`capacity`, the Fig. 12 protocol) and the latency curves
(:func:`reports_over_qps`, Fig. 13) both run through it; with
``workers=1`` every call reduces to the classic sequential protocol.

Every driver accepts a ``scenario`` (:class:`repro.workloads.ScenarioSpec`
or registered name): the arrival shape the sweep scales to each offered
load.  ``None`` keeps the legacy stationary-Poisson path, which the
``"poisson"`` scenario reproduces bit for bit.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

from repro.parallel import fork_worker_pool
from repro.serving.metrics import (
    ServingReport,
    max_qps_at_satisfaction,
    summarize,
)
from repro.serving.server import ServingStack
from repro.serving.workload import (
    WorkloadSpec,
    poisson_queries,
    scenario_queries,
    uniform_queries,
)

#: Sweep description inherited by fork()-ed workers: (stack, policy,
#: spec, count, seed, uniform, scenario).  Module-level so the child
#: processes see it through copy-on-write instead of pickling the
#: compiled stack.
_SWEEP_STATE: tuple | None = None


def _resolve_scenario(scenario):
    """Registered name -> spec (specs and ``None`` pass through).

    Thin lazy-import shim over
    :func:`repro.workloads.scenario.resolve_scenario` —
    ``repro.workloads`` sits above this module in the layering.

    Request-model scenarios (``closed_loop``/``pipeline``) are rejected
    up front: these open-loop sweep drivers pre-draw a fixed stream per
    QPS point, which a completion-driven scenario cannot express — run
    those through :meth:`ServingStack.run_stream
    <repro.serving.server.ServingStack.run_stream>` or
    :meth:`Cluster.serve_stream <repro.cluster.fleet.Cluster.serve_stream>`.
    """
    if scenario is None:
        return None
    from repro.workloads.scenario import resolve_scenario
    resolved = resolve_scenario(scenario)
    if resolved is not None and resolved.request_model:
        raise ValueError(
            f"scenario {resolved.name!r} uses the request model "
            "(closed-loop/pipeline); open-loop sweeps cannot drive it — "
            "use ServingStack.run_stream or Cluster.serve_stream")
    return resolved


def _run_point(stack: ServingStack, policy: str, spec: WorkloadSpec,
               qps: float, count: int, seed: int | None,
               uniform: bool, scenario=None) -> ServingReport:
    """Simulate one offered-load point and summarise it."""
    if scenario is not None:
        queries = scenario_queries(
            stack.compiled, scenario, qps, count,
            seed=stack.seed if seed is None else seed, spec=spec)
    elif uniform:
        queries = uniform_queries(stack.compiled, spec.models[0], qps,
                                  count)
    else:
        queries = poisson_queries(stack.compiled, spec, qps, count,
                                  seed=stack.seed if seed is None else seed)
    completed, engine = stack.run(policy, queries)
    return summarize(completed, engine.metrics, qps)


def _sweep_worker(qps: float) -> ServingReport:
    stack, policy, spec, count, seed, uniform, scenario = _SWEEP_STATE
    return _run_point(stack, policy, spec, qps, count, seed, uniform,
                      scenario)


@contextlib.contextmanager
def sweep_pool(stack: ServingStack, policy: str, spec: WorkloadSpec,
               count: int, seed: int | None = None,
               uniform: bool = False, workers: int = 2,
               scenario=None):
    """A persistent fork pool for *repeated* sweeps of one scenario.

    Workers survive across :func:`sweep_qps` calls, so their
    copy-on-write pricing caches stay warm from one capacity-search
    round to the next — with an ephemeral pool per call, every round
    would start cold and redo the block pricing the shared cache
    exists to eliminate.  The sweep scenario is baked in at fork time;
    only the offered loads may vary between calls.

    Pool lifecycle and the fail-soft contract (``None`` on platforms
    without ``fork``) live in :func:`fork_worker_pool`.
    """
    global _SWEEP_STATE
    scenario = _resolve_scenario(scenario)
    # Force the lazily built artifacts *before* forking: workers share
    # compiled models, scheduling profiles, and the fitted proxy by
    # copy-on-write only if they exist at fork time — otherwise every
    # worker would redo the whole compile pass (and proxy fit)
    # privately.  Only the proxy-driven policies pay the proxy fit.
    stack.ensure_compiled()
    for name in stack.model_names:
        _ = stack.profiles[name]
    if policy in ("veltair_ac", "veltair_full"):
        _ = stack.proxy
    _SWEEP_STATE = (stack, policy, spec, count, seed, uniform, scenario)
    try:
        with fork_worker_pool(workers) as pool:
            if pool is not None:
                # Remember the fork-time scenario so sweep_qps can
                # reject calls whose arguments disagree with what the
                # workers will simulate.
                pool._repro_sweep_state = _SWEEP_STATE
            yield pool
    finally:
        _SWEEP_STATE = None


def sweep_qps(stack: ServingStack, policy: str, spec: WorkloadSpec,
              qps_values: list[float], count: int,
              seed: int | None = None, workers: int | None = None,
              uniform: bool = False, pool=None,
              scenario=None) -> list[ServingReport]:
    """One report per offered load, optionally across worker processes.

    Every point is an independent simulation of ``count`` queries, so
    the sweep parallelises perfectly.  ``workers > 1`` forks a process
    pool (the compiled stack travels by copy-on-write, never pickled);
    ``workers`` of 1 or ``None``, or a platform without ``fork``, runs
    the points sequentially in-process — same results either way, the
    simulations are deterministic per (seed, qps).  Pass a
    :func:`sweep_pool` as ``pool`` to reuse warm workers across calls
    (the pool's baked-in scenario must match these arguments).

    With ``uniform=True`` the spec must be single-model and arrivals are
    the deterministic uniform stream of the granularity study (Fig. 3).
    A ``scenario`` (spec or registered name) replaces the arrival shape
    wholesale; it is mutually exclusive with ``uniform``.
    """
    qps_list = [float(qps) for qps in qps_values]
    if not qps_list:
        return []
    scenario = _resolve_scenario(scenario)
    if scenario is not None and uniform:
        raise ValueError("pass either scenario or uniform, not both")
    if uniform and len(spec.models) != 1:
        raise ValueError("uniform sweeps require a single-model spec")
    if pool is not None:
        # Workers simulate the scenario baked in at fork time — reject
        # a mismatched call instead of returning plausible wrong data.
        baked = getattr(pool, "_repro_sweep_state", None)
        if baked != (stack, policy, spec, count, seed, uniform, scenario):
            raise ValueError(
                "pool was created for a different sweep scenario; build "
                "it with sweep_pool(...) using these same arguments")
        try:
            return pool.map(_sweep_worker, qps_list)
        except OSError:
            # A worker/pipe died mid-run (e.g. OOM-killed): recompute
            # this batch serially rather than aborting a whole capacity
            # search; later rounds fall back the same way if the pool
            # stays broken.
            pass
        return [_run_point(stack, policy, spec, qps, count, seed,
                           uniform, scenario) for qps in qps_list]
    requested = 1 if workers is None else max(1, int(workers))
    requested = min(requested, len(qps_list))
    if requested > 1:
        with sweep_pool(stack, policy, spec, count, seed=seed,
                        uniform=uniform, workers=requested,
                        scenario=scenario) as ephemeral:
            if ephemeral is not None:
                try:
                    return ephemeral.map(_sweep_worker, qps_list)
                except OSError:
                    pass  # worker/pipe died mid-run: recompute serially
    return [_run_point(stack, policy, spec, qps, count, seed, uniform,
                       scenario)
            for qps in qps_list]


def reports_over_qps(stack: ServingStack, policy: str, model_name: str,
                     qps_values: list[float], count: int,
                     uniform: bool = True,
                     seed: int | None = None,
                     workers: int | None = None,
                     scenario=None) -> list[ServingReport]:
    """One report per offered load — the Fig. 3 / Fig. 5a protocol.

    The paper's granularity study streams a single model with identical
    uniform arrivals; ``uniform=False`` switches to Poisson arrivals,
    and a ``scenario`` swaps in any arrival shape (overriding
    ``uniform``).
    """
    spec = WorkloadSpec(name=model_name, entries=((model_name, 1.0),))
    return sweep_qps(stack, policy, spec, list(qps_values), count,
                     seed=seed, workers=workers,
                     uniform=uniform and scenario is None,
                     scenario=scenario)


@dataclass(frozen=True)
class CapacityResult:
    """QPS@95% for one (policy, workload) cell of Fig. 12."""

    policy: str
    workload: str
    qps: float
    report: ServingReport


def capacity(stack: ServingStack, policy: str, spec: WorkloadSpec,
             count: int, target: float = 0.95,
             low_qps: float = 10.0, high_qps: float = 800.0,
             tolerance_qps: float = 15.0,
             seed: int | None = None,
             workers: int | None = None,
             scenario=None) -> CapacityResult:
    """Max offered QPS with ``target`` QoS satisfaction (Fig. 12 metric).

    The bisection evaluates its probe loads through :func:`sweep_qps`;
    with ``workers > 1`` each search round batches ``workers`` loads
    across one persistent :func:`sweep_pool` (speculative multi-point
    bisection over warm workers), with the default it is the paper's
    sequential protocol, probe for probe.  A ``scenario`` makes this
    "capacity under that arrival shape": the bisection scales the
    scenario's mean rate instead of a stationary Poisson rate.
    """
    batch = 1 if workers is None else max(1, int(workers))
    scenario = _resolve_scenario(scenario)

    def search(pool) -> tuple[float, ServingReport]:
        def run_batch(qps_values: list[float]) -> list[ServingReport]:
            return sweep_qps(stack, policy, spec, qps_values, count,
                             seed=seed, pool=pool, scenario=scenario)

        return max_qps_at_satisfaction(
            run_batch=run_batch, batch=batch, target=target,
            low_qps=low_qps, high_qps=high_qps,
            tolerance_qps=tolerance_qps)

    if batch > 1:
        # sweep_pool fails soft to ``None`` (the serial path) on
        # spawn-only platforms, so no availability check is needed here.
        with sweep_pool(stack, policy, spec, count, seed=seed,
                        workers=batch, scenario=scenario) as pool:
            qps, report = search(pool)
    else:
        qps, report = search(None)
    return CapacityResult(policy=policy, workload=spec.name, qps=qps,
                          report=report)


def latency_at_capacity(stack: ServingStack, policy: str,
                        spec: WorkloadSpec, count: int,
                        **capacity_kwargs) -> tuple[float, float]:
    """(capacity QPS, average latency at that QPS) — Fig. 13 protocol."""
    result = capacity(stack, policy, spec, count, **capacity_kwargs)
    return result.qps, result.report.average_latency_s
