"""Reusable experiment drivers behind the paper's figures.

Each function maps onto one evaluation protocol of Sec. 5; the benchmark
modules parameterise them per figure and print the paper-shaped series.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serving.metrics import (
    ServingReport,
    max_qps_at_satisfaction,
    summarize,
)
from repro.serving.server import ServingStack
from repro.serving.workload import (
    WorkloadSpec,
    poisson_queries,
    uniform_queries,
)


def reports_over_qps(stack: ServingStack, policy: str, model_name: str,
                     qps_values: list[float], count: int,
                     uniform: bool = True,
                     seed: int | None = None) -> list[ServingReport]:
    """One report per offered load — the Fig. 3 / Fig. 5a protocol.

    The paper's granularity study streams a single model with identical
    uniform arrivals; ``uniform=False`` switches to Poisson arrivals.
    """
    reports = []
    for qps in qps_values:
        if uniform:
            queries = uniform_queries(stack.compiled, model_name, qps,
                                      count)
        else:
            spec = WorkloadSpec(name=model_name,
                                entries=((model_name, 1.0),))
            queries = poisson_queries(stack.compiled, spec, qps, count,
                                      seed=seed)
        completed, engine = stack.run(policy, queries)
        reports.append(summarize(completed, engine.metrics, qps))
    return reports


@dataclass(frozen=True)
class CapacityResult:
    """QPS@95% for one (policy, workload) cell of Fig. 12."""

    policy: str
    workload: str
    qps: float
    report: ServingReport


def capacity(stack: ServingStack, policy: str, spec: WorkloadSpec,
             count: int, target: float = 0.95,
             low_qps: float = 10.0, high_qps: float = 800.0,
             tolerance_qps: float = 15.0,
             seed: int | None = None) -> CapacityResult:
    """Max offered QPS with ``target`` QoS satisfaction (Fig. 12 metric)."""
    def run_at(qps: float) -> ServingReport:
        return stack.report(policy, spec, qps, count, seed=seed)

    qps, report = max_qps_at_satisfaction(
        run_at, target=target, low_qps=low_qps, high_qps=high_qps,
        tolerance_qps=tolerance_qps)
    return CapacityResult(policy=policy, workload=spec.name, qps=qps,
                          report=report)


def latency_at_capacity(stack: ServingStack, policy: str,
                        spec: WorkloadSpec, count: int,
                        **capacity_kwargs) -> tuple[float, float]:
    """(capacity QPS, average latency at that QPS) — Fig. 13 protocol."""
    result = capacity(stack, policy, spec, count, **capacity_kwargs)
    return result.qps, result.report.average_latency_s
