"""The serving facade: compile once, then simulate any policy/workload.

:class:`ServingStack` owns the expensive offline artifacts — the cost
model, the multi-version compiled libraries, the scheduling profiles and
the fitted interference proxy — and builds fresh engines per run so
simulations stay independent.  Policies are addressed by name:

========================  ====================================================
``model_fcfs``            whole-model FCFS (coarse baseline)
``layerwise``             Planaria-style spatial layer-wise baseline
``prema``                 PREMA-style temporal multitasking baseline
``block6`` / ``block11``  static layer blocks (granularity study)
``veltair_as``            adaptive scheduling only (dynamic blocks)
``veltair_ac``            adaptive compilation only (layer-wise units)
``veltair_full``          full VELTAIR (Alg. 3)
``gacer``                 GACER-style granularity-aware concurrency regulation
========================  ====================================================
"""

from __future__ import annotations

import os
from collections.abc import Mapping
from dataclasses import dataclass
from pathlib import Path

from repro.config import DEFAULT_SEED
from repro.hardware.platform import THREADRIPPER_3990X, CpuSpec, DeviceSpec
from repro.compiler.artifacts import ArtifactStore, resolve_store
from repro.compiler.costmodel import CostModel, CostModelParams
from repro.compiler.library import CompiledModel, ModelCompiler
from repro.compiler.multiversion import SinglePassCompiler
from repro.interference.proxy import (
    LinearInterferenceProxy,
    collect_aggregate_samples,
    fit_proxy,
)
from repro.models.registry import get_entry, get_model, model_names
from repro.runtime.engine import BatchPolicy, Engine
from repro.runtime.pricing import PricingCache
from repro.runtime.tasks import Query
from repro.scheduling.base import ModelProfile, build_profile
from repro.scheduling.dynamic_block import (
    DEFAULT_PLAN_CACHE_ENTRIES,
    DynamicBlockScheduler,
)
from repro.scheduling.fcfs_model import ModelWiseFcfs
from repro.scheduling.fixed_block import FixedBlockScheduler
from repro.scheduling.gacer import GacerScheduler
from repro.scheduling.layerwise import (
    AdaptiveCompilationOnly,
    LayerWiseScheduler,
)
from repro.scheduling.prema import PremaScheduler
from repro.scheduling.veltair import VeltairScheduler
from repro.serving.metrics import ServingReport, summarize
from repro.serving.workload import (
    WorkloadSpec,
    poisson_queries,
    scenario_queries,
)

POLICIES = ("model_fcfs", "layerwise", "prema", "block6", "block11",
            "veltair_as", "veltair_ac", "veltair_full", "gacer")


@dataclass(frozen=True)
class NodeRuntime:
    """Per-device serving artifacts derived from one shared compile pass.

    A cluster deploys the stack's compiled libraries on nodes of
    possibly different widths and kinds.  The compiled *schedules* are
    machine descriptions and port as-is; what must be rebuilt per device
    spec is everything calibrated against one machine — the cost model
    itself, the scheduling profiles (unit requirements change with
    machine width and device economics), the pricing cache (prices are
    bound to one cost model), and the interference proxy (counter
    magnitudes do not port across specs).  Nodes with the same
    :class:`DeviceSpec` share one runtime, so a homogeneous fleet shares
    a single warm pricing cache.  The field keeps its historical ``cpu``
    name; ``device`` is the kind-neutral alias.
    """

    cpu: CpuSpec | DeviceSpec
    cost_model: CostModel
    price_cache: PricingCache
    profiles: dict[str, ModelProfile]
    proxy: LinearInterferenceProxy | None

    @property
    def device(self) -> CpuSpec | DeviceSpec:
        return self.cpu

    @property
    def device_kind(self) -> str:
        return getattr(self.cpu, "kind", "cpu")


@dataclass
class StreamOutcome:
    """Result of :meth:`ServingStack.run_stream`.

    ``completed`` are the stage-level queries in completion order
    (exactly what :func:`repro.serving.metrics.summarize` consumes);
    ``issued`` is every stage-level query submitted over the run with
    its *realized* arrival time — pipeline hand-offs and closed-loop
    follow-ups included — so ``record_trace(outcome.issued, ...)``
    captures the feedback-shaped stream for open-loop replay.
    ``pipelines`` / ``tenants`` (``PipelineQuery`` /
    ``ClosedLoopTenant`` objects) carry the request-level outcomes.
    """

    completed: list[Query]
    engine: Engine
    issued: list[Query]
    pipelines: list
    tenants: list


class _LazyArtifacts(Mapping):
    """Name-keyed model artifacts, built on first access.

    Looks and iterates like the plain dict it replaced (model order
    preserved), but a lookup compiles/profiles only that model, so
    ``models=`` subsets and cluster fleets never pay for the whole zoo.
    ``values()``/``items()`` force the remaining models through one
    deduplicated batch compile instead of one pass per model.
    """

    def __init__(self, stack: "ServingStack", build) -> None:
        self._stack = stack
        self._build = build

    def __getitem__(self, name: str):
        if name not in self._stack._model_set:
            raise KeyError(name)
        return self._build(name)

    def __contains__(self, name) -> bool:
        # Mapping's default falls through to __getitem__, which would
        # compile a whole model as a side effect of a membership probe.
        return name in self._stack._model_set

    def __iter__(self):
        return iter(self._stack.model_names)

    def __len__(self) -> int:
        return len(self._stack.model_names)

    def values(self):
        self._stack.ensure_compiled()
        return [self._build(name) for name in self._stack.model_names]

    def items(self):
        self._stack.ensure_compiled()
        return [(name, self._build(name))
                for name in self._stack.model_names]


class ServingStack:
    """Offline artifacts + per-run engine construction."""

    def __init__(self, cpu: CpuSpec | None = None,
                 params: CostModelParams | None = None,
                 models: list[str] | None = None,
                 trials: int = 256,
                 use_proxy: bool = True,
                 proxy_scenarios: int = 240,
                 seed: int = DEFAULT_SEED,
                 price_cache_entries: int = 1 << 18,
                 plan_cache_entries: int = DEFAULT_PLAN_CACHE_ENTRIES,
                 artifact_store: ArtifactStore | str | Path | None = "auto",
                 compile_workers: int | None = None) -> None:
        self.cpu = cpu or THREADRIPPER_3990X
        self.cost_model = CostModel(self.cpu, params)
        #: Block pricing memo shared by every engine this stack builds:
        #: identical blocks recur across the runs of a QPS sweep, so the
        #: warm cache eliminates most cost-model pricing calls.  Size is
        #: bounded by ``price_cache_entries`` (batched FIFO eviction).
        self.price_cache = PricingCache(max_entries=price_cache_entries)
        #: Bound for the per-scheduler planning memos (required-core and
        #: block-requirement lookups); one knob for every scheduler
        #: this stack builds, so long serve loops and cluster sweeps
        #: hold their steady-state footprint.
        self.plan_cache_entries = plan_cache_entries
        if compile_workers is None:
            compile_workers = int(os.environ.get("REPRO_COMPILE_WORKERS",
                                                 "1"))
        #: ``artifact_store`` threads the persistent compiled-artifact
        #: store through: ``"auto"`` (default) consults the
        #: REPRO_ARTIFACT_STORE environment variable, ``None`` disables
        #: persistence, a path or :class:`ArtifactStore` uses it
        #: directly.  Cached artifacts are bit-identical to fresh
        #: compiles, so a warm store changes wall-clock only.
        self.compiler = ModelCompiler(
            self.cost_model,
            SinglePassCompiler(self.cost_model, trials=trials, seed=seed),
            store=resolve_store(artifact_store),
            workers=compile_workers)
        self.seed = seed

        names = list(models) if models is not None else model_names()
        for name in names:
            get_entry(name)  # unknown models must fail at construction
        #: Model order of the stack (iteration order of ``compiled``).
        self.model_names = names
        self._model_set = frozenset(names)
        self._compiled: dict[str, CompiledModel] = {}
        self._profiles: dict[str, ModelProfile] = {}
        #: Lazily compiled per-model artifacts: a lookup compiles just
        #: that model (deduplicated against everything compiled so
        #: far); iteration forces the full set in one batch.
        self.compiled = _LazyArtifacts(self, self._model)
        self.profiles = _LazyArtifacts(self, self._profile)
        #: Compile passes this stack has performed.  Stays at 1 for the
        #: stack's whole life: models compile lazily *within* the one
        #: pass, and per-node runtimes re-profile but never re-compile
        #: (the cluster benchmark asserts exactly this).
        self.artifact_builds = 1

        self._proxy: LinearInterferenceProxy | None = None
        self._proxy_ready = not use_proxy
        self._proxy_scenarios = proxy_scenarios
        self._use_proxy = use_proxy

        #: Per-DeviceSpec runtimes derived from the one compile pass above.
        self._runtimes: dict[CpuSpec | DeviceSpec, NodeRuntime] = {}

    # ------------------------------------------------------------------
    # lazy artifact construction

    def ensure_compiled(self, names: list[str] | None = None) -> None:
        """Force compilation of ``names`` (default: every model).

        One deduplicated batch through the compiler — with a warm
        artifact store nothing recompiles, with ``compile_workers > 1``
        missing layers fan out over the fork pool.  Idempotent.
        """
        pending = [name for name in (names if names is not None
                                     else self.model_names)
                   if name not in self._compiled]
        if not pending:
            return
        specs = [(get_model(name), get_entry(name).qos_s)
                 for name in pending]
        for name, compiled in zip(pending,
                                  self.compiler.compile_models(specs)):
            self._compiled[name] = compiled

    def _model(self, name: str) -> CompiledModel:
        if name not in self._compiled:
            self.ensure_compiled([name])
        return self._compiled[name]

    def _profile(self, name: str) -> ModelProfile:
        profile = self._profiles.get(name)
        if profile is None:
            profile = build_profile(self.cost_model, self._model(name))
            self._profiles[name] = profile
        return profile

    @property
    def artifact_store(self) -> ArtifactStore | None:
        """The persistent store the compiler reads/writes, if any."""
        return self.compiler.store

    @property
    def proxy(self) -> LinearInterferenceProxy | None:
        """The fitted interference proxy (fitted on first access)."""
        if not self._proxy_ready:
            self._proxy = self._fit_proxy(self.cost_model)
            self._proxy_ready = True
        return self._proxy

    def _fit_proxy(self, cost_model: CostModel) -> LinearInterferenceProxy:
        """Fit the counter proxy against one machine's cost model.

        Counter magnitudes (and therefore the fitted weights and access
        scale) depend on the CPU spec, so each distinct node width gets
        its own fit over the same compiled models.
        """
        samples = collect_aggregate_samples(
            cost_model, list(self.compiled.values()),
            scenarios=self._proxy_scenarios, seed=self.seed)
        return fit_proxy(samples)

    # ------------------------------------------------------------------

    def runtime_for(self,
                    cpu: CpuSpec | DeviceSpec | None = None) -> NodeRuntime:
        """Serving artifacts for one node device — compile once, re-profile.

        The stack's own device (or ``None``) returns a view over the
        stack's existing cost model, profiles, and shared pricing cache.
        A different :class:`DeviceSpec` — another CPU width or an
        accelerator — gets its own cost model, freshly built profiles,
        and a pricing cache of its own (prices do not port across
        machines) — but the *compiled* multi-version libraries are
        shared untouched, so a whole heterogeneous fleet rides on a
        single compile pass.  Runtimes are memoised per spec.
        """
        cpu = cpu if cpu is not None else self.cpu
        runtime = self._runtimes.get(cpu)
        if runtime is not None:
            return runtime
        if cpu == self.cpu:
            runtime = NodeRuntime(cpu=self.cpu, cost_model=self.cost_model,
                                  price_cache=self.price_cache,
                                  profiles=self.profiles, proxy=self.proxy)
        else:
            cost_model = CostModel(cpu, self.cost_model.params)
            profiles = {name: build_profile(cost_model, compiled)
                        for name, compiled in self.compiled.items()}
            runtime = NodeRuntime(
                cpu=cpu, cost_model=cost_model,
                price_cache=PricingCache(
                    max_entries=self.price_cache.max_entries),
                profiles=profiles,
                # Re-fit per width: the proxy reads chip-wide counter
                # magnitudes, which do not port across machine specs.
                proxy=(self._fit_proxy(cost_model)
                       if self._use_proxy else None))
        self._runtimes[cpu] = runtime
        return runtime

    def make_scheduler(self, policy: str, runtime: NodeRuntime | None = None):
        """Instantiate a named policy bound to this stack's artifacts.

        ``runtime`` binds the policy to a per-node runtime (from
        :meth:`runtime_for`) instead of the stack's own machine — how a
        cluster builds one scheduler per node over shared artifacts.
        """
        cost_model = runtime.cost_model if runtime else self.cost_model
        profiles = runtime.profiles if runtime else self.profiles
        if policy == "model_fcfs":
            return ModelWiseFcfs(cost_model, profiles)
        if policy == "layerwise":
            return LayerWiseScheduler(cost_model, profiles)
        if policy == "prema":
            return PremaScheduler(cost_model, profiles)
        if policy.startswith("block"):
            size = int(policy.removeprefix("block"))
            return FixedBlockScheduler(
                cost_model, profiles, block_size=size,
                plan_cache_entries=self.plan_cache_entries)
        if policy == "veltair_as":
            return DynamicBlockScheduler(
                cost_model, profiles,
                plan_cache_entries=self.plan_cache_entries)
        if policy == "gacer":
            return GacerScheduler(
                cost_model, profiles,
                plan_cache_entries=self.plan_cache_entries)
        # Only the proxy-driven policies read the proxy — referencing
        # ``self.proxy`` here would trigger the lazy fit for everyone.
        if policy == "veltair_ac":
            return AdaptiveCompilationOnly(
                cost_model, profiles,
                proxy=runtime.proxy if runtime else self.proxy,
                plan_cache_entries=self.plan_cache_entries)
        if policy == "veltair_full":
            return VeltairScheduler(
                cost_model, profiles,
                proxy=runtime.proxy if runtime else self.proxy,
                plan_cache_entries=self.plan_cache_entries)
        raise ValueError(f"unknown policy {policy!r}; known: {POLICIES}")

    def run(self, policy: str, queries: list[Query],
            incremental: bool = True,
            tracer=None, batching: BatchPolicy | None = None,
            on_complete=None) -> tuple[list[Query], Engine]:
        """Simulate one query stream; returns (completed, engine).

        ``incremental=False`` forces the engine's legacy
        reprice-everything mode — useful only for A/B-verifying that the
        incremental hot path leaves results unchanged.

        ``tracer`` (a :class:`repro.telemetry.Tracer`) records the run's
        block spans, query lifecycle spans, and scheduler decisions; the
        default ``None`` keeps telemetry off and free, and results are
        bit-identical either way.

        ``batching`` enables engine-side dynamic batching
        (:class:`repro.runtime.engine.BatchPolicy`); ``on_complete`` is
        the engine's completion-hook seam.  Both default off, keeping
        the legacy open-loop path untouched.
        """
        engine = Engine(self.cost_model, price_cache=self.price_cache,
                        incremental=incremental, tracer=tracer,
                        batching=batching, on_complete=on_complete)
        scheduler = self.make_scheduler(policy)
        completed = engine.run(queries, scheduler)
        return completed, engine

    def run_stream(self, policy: str, stream,
                   batching: BatchPolicy | None = None,
                   tracer=None) -> "StreamOutcome":
        """Drive a :class:`repro.workloads.RequestStream` to completion.

        The request-model counterpart of :meth:`run`: pipeline stages
        are handed off (stage *k+1* submitted the instant stage *k*
        completes) and closed-loop tenants issue their next request at
        each completion, all through the engine's ``on_complete`` seam.
        A stream holding only plain ``queries`` behaves exactly like
        :meth:`run` plus the optional ``batching``.
        """
        issued: list[Query] = []
        # Stage queries key by (pipeline id, stage index) — unique per
        # stage and stable across runs, unlike object identity.
        stage_owner: dict[tuple[int, int], "PipelineQuery"] = {}
        tenants_by_session = {t.session: t for t in stream.tenants}

        def hook(engine: Engine, query: Query) -> None:
            owner = stage_owner.pop((query.query_id, query.stage), None) \
                if query.stage is not None else None
            if owner is not None:
                owner.next_stage = query.stage + 1
                if owner.next_stage >= len(owner.stages):
                    owner.finished_s = engine.now
                else:
                    nxt = owner.stages[owner.next_stage]
                    nxt.arrival_s = engine.now
                    stage_owner[(nxt.query_id, nxt.stage)] = owner
                    issued.append(nxt)
                    engine.submit(nxt)
                return
            if query.session is not None:
                tenant = tenants_by_session.get(query.session)
                if tenant is not None:
                    tenant.observe(query)
                    follow = tenant.next_request(engine.now)
                    if follow is not None:
                        issued.append(follow)
                        engine.submit(follow)

        engine = Engine(self.cost_model, price_cache=self.price_cache,
                        tracer=tracer, batching=batching, on_complete=hook)
        scheduler = self.make_scheduler(policy)
        initial: list[Query] = list(stream.queries)
        issued.extend(stream.queries)
        for pipeline in stream.pipelines:
            first = pipeline.stages[0]
            stage_owner[(first.query_id, first.stage)] = pipeline
            initial.append(first)
            issued.append(first)
        for tenant in stream.tenants:
            for query in tenant.initial_requests():
                initial.append(query)
                issued.append(query)
        engine.begin(initial, scheduler)
        completed = engine.drain()
        return StreamOutcome(
            completed=completed, engine=engine, issued=issued,
            pipelines=list(stream.pipelines), tenants=list(stream.tenants))

    def report(self, policy: str, spec: WorkloadSpec, qps: float,
               count: int, seed: int | None = None,
               scenario=None, tracer=None) -> ServingReport:
        """Generate a stream, simulate it, and summarise.

        The default stream is the paper's stationary Poisson; a
        ``scenario`` (:class:`repro.workloads.ScenarioSpec` or
        registered name) swaps in any trace-driven arrival shape at
        mean rate ``qps``.  ``tracer`` records the run (see :meth:`run`);
        the saved trace's ``summarize`` reproduces this report's
        ``average_latency_s`` exactly.
        """
        effective_seed = self.seed if seed is None else seed
        if scenario is not None:
            queries = scenario_queries(self.compiled, scenario, qps,
                                       count, seed=effective_seed,
                                       spec=spec)
        else:
            queries = poisson_queries(self.compiled, spec, qps, count,
                                      seed=effective_seed)
        completed, engine = self.run(policy, queries, tracer=tracer)
        return summarize(completed, engine.metrics, qps)

    # ------------------------------------------------------------------

    def isolated_model_latency(self, name: str,
                               cores: int | None = None) -> float:
        """Solo-run latency: the model alone on the machine (Fig. 13 base)."""
        compiled = self.compiled[name]
        profile = self.profiles[name]
        cores = cores if cores is not None else self.cpu.cores
        launch = self.cost_model.launch_s
        total = self.cost_model.spawn_overhead(cores)
        for layer, version in zip(compiled.graph.layers,
                                  profile.static_versions):
            total += self.cost_model.latency(layer, version, cores,
                                             0.0) + launch
        return total
