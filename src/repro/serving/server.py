"""The serving facade: compile once, then simulate any policy/workload.

:class:`ServingStack` owns the expensive offline artifacts — the cost
model, the multi-version compiled libraries, the scheduling profiles and
the fitted interference proxy — and builds fresh engines per run so
simulations stay independent.  Policies are addressed by name:

========================  ====================================================
``model_fcfs``            whole-model FCFS (coarse baseline)
``layerwise``             Planaria-style spatial layer-wise baseline
``prema``                 PREMA-style temporal multitasking baseline
``block6`` / ``block11``  static layer blocks (granularity study)
``veltair_as``            adaptive scheduling only (dynamic blocks)
``veltair_ac``            adaptive compilation only (layer-wise units)
``veltair_full``          full VELTAIR (Alg. 3)
========================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DEFAULT_SEED
from repro.hardware.platform import THREADRIPPER_3990X, CpuSpec
from repro.compiler.costmodel import CostModel, CostModelParams
from repro.compiler.library import CompiledModel, ModelCompiler
from repro.compiler.multiversion import SinglePassCompiler
from repro.interference.proxy import (
    LinearInterferenceProxy,
    collect_aggregate_samples,
    fit_proxy,
)
from repro.models.registry import get_entry, get_model, model_names
from repro.runtime.engine import Engine
from repro.runtime.pricing import PricingCache
from repro.runtime.tasks import Query
from repro.scheduling.base import ModelProfile, build_profile
from repro.scheduling.dynamic_block import DynamicBlockScheduler
from repro.scheduling.fcfs_model import ModelWiseFcfs
from repro.scheduling.fixed_block import FixedBlockScheduler
from repro.scheduling.layerwise import (
    AdaptiveCompilationOnly,
    LayerWiseScheduler,
)
from repro.scheduling.prema import PremaScheduler
from repro.scheduling.veltair import VeltairScheduler
from repro.serving.metrics import ServingReport, summarize
from repro.serving.workload import (
    WorkloadSpec,
    poisson_queries,
    scenario_queries,
)

POLICIES = ("model_fcfs", "layerwise", "prema", "block6", "block11",
            "veltair_as", "veltair_ac", "veltair_full")


@dataclass(frozen=True)
class NodeRuntime:
    """Per-CPU serving artifacts derived from one shared compile pass.

    A cluster deploys the stack's compiled libraries on nodes of
    possibly different widths.  The compiled *schedules* are machine
    descriptions and port as-is; what must be rebuilt per CPU spec is
    everything calibrated against one machine — the cost model itself,
    the scheduling profiles (core requirements change with machine
    width), the pricing cache (prices are bound to one cost model), and
    the interference proxy (counter magnitudes do not port across
    specs).  Nodes with the same :class:`CpuSpec` share one runtime, so
    a homogeneous fleet shares a single warm pricing cache.
    """

    cpu: CpuSpec
    cost_model: CostModel
    price_cache: PricingCache
    profiles: dict[str, ModelProfile]
    proxy: LinearInterferenceProxy | None


class ServingStack:
    """Offline artifacts + per-run engine construction."""

    def __init__(self, cpu: CpuSpec | None = None,
                 params: CostModelParams | None = None,
                 models: list[str] | None = None,
                 trials: int = 256,
                 use_proxy: bool = True,
                 proxy_scenarios: int = 240,
                 seed: int = DEFAULT_SEED,
                 price_cache_entries: int = 1 << 18) -> None:
        self.cpu = cpu or THREADRIPPER_3990X
        self.cost_model = CostModel(self.cpu, params)
        #: Block pricing memo shared by every engine this stack builds:
        #: identical blocks recur across the runs of a QPS sweep, so the
        #: warm cache eliminates most cost-model pricing calls.  Size is
        #: bounded by ``price_cache_entries`` (batched FIFO eviction).
        self.price_cache = PricingCache(max_entries=price_cache_entries)
        self.compiler = ModelCompiler(
            self.cost_model,
            SinglePassCompiler(self.cost_model, trials=trials, seed=seed))
        self.seed = seed

        names = models if models is not None else model_names()
        self.compiled: dict[str, CompiledModel] = {}
        self.profiles: dict[str, ModelProfile] = {}
        for name in names:
            compiled = self.compiler.compile_model(get_model(name),
                                                   get_entry(name).qos_s)
            self.compiled[name] = compiled
            self.profiles[name] = build_profile(self.cost_model, compiled)
        #: Compile passes this stack has performed.  Stays at 1 for the
        #: stack's whole life: per-node runtimes re-profile but never
        #: re-compile (the cluster benchmark asserts exactly this).
        self.artifact_builds = 1

        self.proxy: LinearInterferenceProxy | None = None
        self._proxy_scenarios = proxy_scenarios
        self._use_proxy = use_proxy
        if use_proxy:
            self.proxy = self._fit_proxy(self.cost_model)

        #: Per-CpuSpec runtimes derived from the one compile pass above.
        self._runtimes: dict[CpuSpec, NodeRuntime] = {}

    def _fit_proxy(self, cost_model: CostModel) -> LinearInterferenceProxy:
        """Fit the counter proxy against one machine's cost model.

        Counter magnitudes (and therefore the fitted weights and access
        scale) depend on the CPU spec, so each distinct node width gets
        its own fit over the same compiled models.
        """
        samples = collect_aggregate_samples(
            cost_model, list(self.compiled.values()),
            scenarios=self._proxy_scenarios, seed=self.seed)
        return fit_proxy(samples)

    # ------------------------------------------------------------------

    def runtime_for(self, cpu: CpuSpec | None = None) -> NodeRuntime:
        """Serving artifacts for one node CPU — compile once, re-profile.

        The stack's own CPU (or ``None``) returns a view over the
        stack's existing cost model, profiles, and shared pricing cache.
        A different :class:`CpuSpec` gets its own cost model, freshly
        built profiles, and a pricing cache of its own (prices do not
        port across machines) — but the *compiled* multi-version
        libraries are shared untouched, so a whole heterogeneous fleet
        rides on a single compile pass.  Runtimes are memoised per spec.
        """
        cpu = cpu if cpu is not None else self.cpu
        runtime = self._runtimes.get(cpu)
        if runtime is not None:
            return runtime
        if cpu == self.cpu:
            runtime = NodeRuntime(cpu=self.cpu, cost_model=self.cost_model,
                                  price_cache=self.price_cache,
                                  profiles=self.profiles, proxy=self.proxy)
        else:
            cost_model = CostModel(cpu, self.cost_model.params)
            profiles = {name: build_profile(cost_model, compiled)
                        for name, compiled in self.compiled.items()}
            runtime = NodeRuntime(
                cpu=cpu, cost_model=cost_model,
                price_cache=PricingCache(
                    max_entries=self.price_cache.max_entries),
                profiles=profiles,
                # Re-fit per width: the proxy reads chip-wide counter
                # magnitudes, which do not port across machine specs.
                proxy=(self._fit_proxy(cost_model)
                       if self._use_proxy else None))
        self._runtimes[cpu] = runtime
        return runtime

    def make_scheduler(self, policy: str, runtime: NodeRuntime | None = None):
        """Instantiate a named policy bound to this stack's artifacts.

        ``runtime`` binds the policy to a per-node runtime (from
        :meth:`runtime_for`) instead of the stack's own machine — how a
        cluster builds one scheduler per node over shared artifacts.
        """
        cost_model = runtime.cost_model if runtime else self.cost_model
        profiles = runtime.profiles if runtime else self.profiles
        proxy = runtime.proxy if runtime else self.proxy
        if policy == "model_fcfs":
            return ModelWiseFcfs(cost_model, profiles)
        if policy == "layerwise":
            return LayerWiseScheduler(cost_model, profiles)
        if policy == "prema":
            return PremaScheduler(cost_model, profiles)
        if policy.startswith("block"):
            size = int(policy.removeprefix("block"))
            return FixedBlockScheduler(cost_model, profiles,
                                       block_size=size)
        if policy == "veltair_as":
            return DynamicBlockScheduler(cost_model, profiles)
        if policy == "veltair_ac":
            return AdaptiveCompilationOnly(cost_model, profiles,
                                           proxy=proxy)
        if policy == "veltair_full":
            return VeltairScheduler(cost_model, profiles,
                                    proxy=proxy)
        raise ValueError(f"unknown policy {policy!r}; known: {POLICIES}")

    def run(self, policy: str, queries: list[Query],
            incremental: bool = True) -> tuple[list[Query], Engine]:
        """Simulate one query stream; returns (completed, engine).

        ``incremental=False`` forces the engine's legacy
        reprice-everything mode — useful only for A/B-verifying that the
        incremental hot path leaves results unchanged.
        """
        engine = Engine(self.cost_model, price_cache=self.price_cache,
                        incremental=incremental)
        scheduler = self.make_scheduler(policy)
        completed = engine.run(queries, scheduler)
        return completed, engine

    def report(self, policy: str, spec: WorkloadSpec, qps: float,
               count: int, seed: int | None = None,
               scenario=None) -> ServingReport:
        """Generate a stream, simulate it, and summarise.

        The default stream is the paper's stationary Poisson; a
        ``scenario`` (:class:`repro.workloads.ScenarioSpec` or
        registered name) swaps in any trace-driven arrival shape at
        mean rate ``qps``.
        """
        effective_seed = self.seed if seed is None else seed
        if scenario is not None:
            queries = scenario_queries(self.compiled, scenario, qps,
                                       count, seed=effective_seed,
                                       spec=spec)
        else:
            queries = poisson_queries(self.compiled, spec, qps, count,
                                      seed=effective_seed)
        completed, engine = self.run(policy, queries)
        return summarize(completed, engine.metrics, qps)

    # ------------------------------------------------------------------

    def isolated_model_latency(self, name: str,
                               cores: int | None = None) -> float:
        """Solo-run latency: the model alone on the machine (Fig. 13 base)."""
        compiled = self.compiled[name]
        profile = self.profiles[name]
        cores = cores if cores is not None else self.cpu.cores
        launch = self.cost_model.params.layer_launch_s
        total = self.cost_model.spawn_overhead(cores)
        for layer, version in zip(compiled.graph.layers,
                                  profile.static_versions):
            total += self.cost_model.latency(layer, version, cores,
                                             0.0) + launch
        return total
