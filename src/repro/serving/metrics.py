"""Serving metrics: QoS satisfaction, latency, conflicts, CPU efficiency.

The paper's three evaluation metrics (Sec. 5.1) plus the conflict-rate
diagnostic of Fig. 5a:

* **QPS with 95% tasks QoS satisfied** — found by
  :func:`max_qps_at_satisfaction`, a bisection over offered load;
* **average latency** (Fig. 3b, Fig. 13);
* **CPU usage efficiency** (Fig. 10b, Fig. 14a) — average and maximum
  allocated cores over the busy span.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.runtime.engine import SimulationMetrics
from repro.runtime.tasks import Query


@dataclass(frozen=True)
class ServingReport:
    """Summary of one simulated serving run."""

    offered_qps: float
    completed: int
    satisfaction_rate: float
    average_latency_s: float
    p99_latency_s: float
    conflict_rate: float
    grows: int
    average_cores_used: float
    max_cores_used: int
    blocks_started: int

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (f"qps={self.offered_qps:.0f} sat={self.satisfaction_rate:.1%}"
                f" lat={self.average_latency_s * 1e3:.2f}ms"
                f" conflicts={self.conflict_rate:.1%}"
                f" cores(avg/max)={self.average_cores_used:.1f}"
                f"/{self.max_cores_used}")


def summarize(completed: list[Query], metrics: SimulationMetrics,
              offered_qps: float) -> ServingReport:
    """Aggregate a finished simulation into a report."""
    if not completed:
        # Blocks may well have started (and conflicted) even when no
        # query finished inside the horizon — exactly the saturated
        # loads a capacity bisection probes — so the conflict rate must
        # come from block accounting, not default to zero.
        blocks = max(1, metrics.blocks_started)
        return ServingReport(
            offered_qps=offered_qps, completed=0, satisfaction_rate=0.0,
            average_latency_s=float("inf"), p99_latency_s=float("inf"),
            conflict_rate=metrics.conflicts / blocks,
            grows=metrics.grows,
            average_cores_used=metrics.average_cores_used,
            max_cores_used=metrics.max_cores_used,
            blocks_started=metrics.blocks_started)
    latencies = np.array([q.latency_s for q in completed])
    satisfied = sum(1 for q in completed if q.satisfied)
    blocks = max(1, metrics.blocks_started)
    return ServingReport(
        offered_qps=offered_qps,
        completed=len(completed),
        satisfaction_rate=satisfied / len(completed),
        average_latency_s=float(latencies.mean()),
        p99_latency_s=float(np.percentile(latencies, 99)),
        conflict_rate=metrics.conflicts / blocks,
        grows=metrics.grows,
        average_cores_used=metrics.average_cores_used,
        max_cores_used=metrics.max_cores_used,
        blocks_started=metrics.blocks_started,
    )


def _passes(report: ServingReport, target: float) -> bool:
    """Whether one capacity probe counts as passing.

    Invariant: a report with ``completed == 0`` never passes, whatever
    the target.  An empty report already carries
    ``satisfaction_rate=0.0``, which any target in the validated
    ``(0, 1]`` range rejects — the explicit guard exists so a future
    ``target=0`` misuse (or a relaxed validation) can never read an
    idle horizon as serving capacity.
    """
    return report.completed > 0 and report.satisfaction_rate >= target


def max_qps_at_satisfaction(
        run_at_qps: Callable[[float], ServingReport] | None = None,
        target: float = 0.95,
        low_qps: float = 10.0,
        high_qps: float = 1200.0,
        tolerance_qps: float = 10.0,
        run_batch: Callable[[list[float]], list[ServingReport]] | None = None,
        batch: int = 1) -> tuple[float, ServingReport]:
    """Largest offered QPS whose satisfaction rate stays above ``target``.

    Bisection over offered load (the paper's QPS-with-95%-QoS metric).
    ``run_at_qps`` simulates one load level and returns its report.
    Returns the best passing load and its report; if even ``low_qps``
    fails, that failing report is returned with the load.

    The search can evaluate several loads per round: pass ``run_batch``
    (e.g. a :func:`repro.serving.experiments.sweep_qps` closure, which
    simulates a whole batch across worker processes) and ``batch > 1``
    to probe ``batch`` bracket doublings or interior points at once.
    With ``batch=1`` the probe sequence is exactly the classic
    bisection, whatever runner is used.
    """
    if not 0.0 < target <= 1.0:
        raise ValueError("target must be in (0, 1]")
    if run_at_qps is None and run_batch is None:
        raise ValueError("provide run_at_qps or run_batch")
    batch = max(1, int(batch))

    def evaluate(points: list[float]) -> list[ServingReport]:
        if run_batch is not None:
            reports = run_batch(list(points))
            if len(reports) != len(points):
                raise ValueError("run_batch returned a mismatched batch")
            return reports
        return [run_at_qps(point) for point in points]

    (low_report,) = evaluate([low_qps])
    if not _passes(low_report, target):
        return low_qps, low_report
    best_qps, best_report = low_qps, low_report

    # Expand the bracket (by probing batches of doublings) until a load
    # fails or the ceiling of 16x the initial bracket still passes.
    limit = 16 * high_qps
    high = high_qps
    first_fail: tuple[float, ServingReport] | None = None
    while first_fail is None:
        probes = []
        probe = high
        for _ in range(batch):
            probes.append(probe)
            if probe >= limit:
                break
            probe *= 2.0
        reports = evaluate(probes)
        for qps, report in zip(probes, reports):
            if _passes(report, target):
                best_qps, best_report = qps, report
            else:
                first_fail = (qps, report)
                break
        if first_fail is None:
            if probes[-1] >= limit:
                return best_qps, best_report
            high = probes[-1] * 2.0
    high = first_fail[0]

    # Refine: each round evaluates ``batch`` evenly spaced interior
    # points and keeps the passing/failing boundary (monotone-load
    # assumption; results beyond the first failure are ignored, exactly
    # as sequential bisection would never have probed them).
    low = best_qps
    while high - low > tolerance_qps:
        if batch == 1:
            points = [(low + high) / 2.0]
        else:
            step = (high - low) / (batch + 1)
            points = [low + step * index for index in range(1, batch + 1)]
        reports = evaluate(points)
        for qps, report in zip(points, reports):
            if _passes(report, target):
                if qps > low:
                    low, best_qps, best_report = qps, qps, report
            else:
                high = qps
                break
    return best_qps, best_report
