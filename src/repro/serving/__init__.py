"""Serving layer: workload generation, metrics, and the system facade."""

from repro.serving.experiments import (
    CapacityResult,
    capacity,
    latency_at_capacity,
    reports_over_qps,
    sweep_qps,
)
from repro.serving.metrics import (
    ServingReport,
    max_qps_at_satisfaction,
    summarize,
)
from repro.serving.server import POLICIES, ServingStack
from repro.serving.workload import (
    HEAVY_MIX,
    LIGHT_MIX,
    MEDIUM_MIX,
    WorkloadSpec,
    class_mix,
    full_mix,
    poisson_queries,
    single_model,
    uniform_queries,
)

__all__ = [
    "CapacityResult", "capacity", "latency_at_capacity", "reports_over_qps",
    "sweep_qps",
    "ServingReport", "max_qps_at_satisfaction", "summarize",
    "POLICIES", "ServingStack",
    "WorkloadSpec", "class_mix", "full_mix", "poisson_queries",
    "single_model", "uniform_queries",
    "LIGHT_MIX", "MEDIUM_MIX", "HEAVY_MIX",
]
