"""Query stream generation following the MLPerf server scenario.

Arrivals are Poisson with rate ``qps`` (paper Sec. 5.1); the mixed
workload draws each model with frequency inversely proportional to its
QoS target, as the paper does following datacenter trace analyses.

Beyond the stationary Poisson default, :mod:`repro.workloads` provides
trace-driven scenarios (bursty MMPP, diurnal ramps, flash crowds,
tenant churn, trace replay); :func:`scenario_queries` is the bridge —
the ``"poisson"`` scenario reproduces :func:`poisson_queries` bit for
bit, so scenario-threaded experiments subsume the legacy path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import make_rng
from repro.compiler.library import CompiledModel
from repro.models.registry import (
    HEAVY,
    LIGHT,
    MEDIUM,
    get_entry,
    model_names,
)
from repro.runtime.tasks import Query


@dataclass(frozen=True)
class WorkloadSpec:
    """A named mixture of models with sampling weights."""

    name: str
    entries: tuple[tuple[str, float], ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise ValueError(f"workload {self.name!r} is empty")
        if any(weight <= 0 for _, weight in self.entries):
            raise ValueError(f"workload {self.name!r} has non-positive "
                             "weights")

    @property
    def models(self) -> list[str]:
        return [name for name, _ in self.entries]

    def probabilities(self) -> np.ndarray:
        weights = np.array([w for _, w in self.entries], dtype=float)
        return weights / weights.sum()


def single_model(name: str) -> WorkloadSpec:
    """A stream of one model only (the per-model columns of Fig. 12)."""
    return WorkloadSpec(name=name, entries=((name, 1.0),))


def class_mix(workload_class: str) -> WorkloadSpec:
    """Equal mix of the Table 2 models in one class (light/medium/heavy)."""
    names = [n for n in model_names()
             if get_entry(n).workload_class == workload_class]
    return WorkloadSpec(name=workload_class,
                        entries=tuple((n, 1.0) for n in names))


def full_mix() -> WorkloadSpec:
    """All models, frequency inversely proportional to the QoS target."""
    return WorkloadSpec(
        name="mix",
        entries=tuple((n, 1.0 / get_entry(n).qos_ms)
                      for n in model_names()))


LIGHT_MIX = class_mix(LIGHT)
MEDIUM_MIX = class_mix(MEDIUM)
HEAVY_MIX = class_mix(HEAVY)


def poisson_queries(compiled: dict[str, CompiledModel], spec: WorkloadSpec,
                    qps: float, count: int,
                    seed: int | None = None) -> list[Query]:
    """``count`` queries with Poisson arrivals at rate ``qps``.

    Every model in ``spec`` must be present in ``compiled``.
    """
    if qps <= 0:
        raise ValueError("qps must be positive")
    if count <= 0:
        raise ValueError("count must be positive")
    missing = [n for n in spec.models if n not in compiled]
    if missing:
        raise KeyError(f"workload {spec.name!r} needs uncompiled models: "
                       f"{missing}")
    rng = make_rng(seed)
    gaps = rng.exponential(scale=1.0 / qps, size=count)
    arrivals = np.cumsum(gaps)
    choices = rng.choice(len(spec.models), size=count,
                         p=spec.probabilities())
    queries = []
    for index in range(count):
        name = spec.models[int(choices[index])]
        queries.append(Query(
            query_id=index,
            model=compiled[name],
            arrival_s=float(arrivals[index]),
            qos_s=get_entry(name).qos_s,
        ))
    return queries


def scenario_queries(compiled: dict[str, CompiledModel],
                     scenario, qps: float, count: int,
                     seed: int | None = None,
                     spec: WorkloadSpec | None = None) -> list[Query]:
    """``count`` queries of a :class:`~repro.workloads.ScenarioSpec`.

    ``scenario`` may be a spec or a registered scenario name; a
    mix-agnostic scenario draws its models from ``spec``.  Equivalent to
    ``scenario.queries(...)`` — provided here so the serving layer's
    stream generators live side by side.  (Import is lazy:
    ``repro.workloads`` sits above this module in the layering.)
    """
    from repro.workloads.scenario import resolve_scenario
    return resolve_scenario(scenario).queries(compiled, qps, count,
                                              seed=seed, spec=spec)


def uniform_queries(compiled: dict[str, CompiledModel], model_name: str,
                    qps: float, count: int) -> list[Query]:
    """Deterministic uniform arrivals of one model.

    The paper's granularity study (Fig. 3) uses identical uniform
    arrival times "to eliminate the instability caused by randomness".
    """
    if qps <= 0:
        raise ValueError("qps must be positive")
    if count <= 0:
        raise ValueError("count must be positive")
    entry = get_entry(model_name)
    period = 1.0 / qps
    return [Query(query_id=i, model=compiled[model_name],
                  arrival_s=(i + 1) * period, qos_s=entry.qos_s)
            for i in range(count)]
