"""The shared ``fork`` worker-pool primitive.

Both the QPS sweeps (:mod:`repro.serving.experiments`) and the parallel
layer compilation (:mod:`repro.compiler.artifacts`) fan work out over
``fork``-ed processes whose scenario travels by copy-on-write through
module globals — never pickled.  This module owns the pool lifecycle
and the fail-soft contract so the two layers (which must not import
each other) share one implementation.
"""

from __future__ import annotations

import contextlib
import multiprocessing


@contextlib.contextmanager
def fork_worker_pool(workers: int):
    """A ``fork``-pinned process pool, or ``None`` when unavailable.

    Workers inherit their scenario (compiled stacks, compiler state)
    through module globals by copy-on-write, which only the ``fork``
    start method provides — ``spawn``/``forkserver`` would have to
    pickle that state.  On platforms without ``fork`` (Windows; macOS
    configured spawn-only) — or when process creation itself fails —
    this yields ``None`` instead of raising, and every caller treats a
    ``None`` pool as the serial in-process path.  Results are identical
    either way; only wall-clock differs.  Callers must set their
    worker-state global *before* entering (fork captures it).
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        yield None  # spawn-only platform: documented serial fallback
        return
    if multiprocessing.current_process().daemon:
        # Pool workers are daemonic and may not have children of their
        # own (Pool() raises AssertionError, not OSError) — e.g. a
        # sweep worker lazily compiling with REPRO_COMPILE_WORKERS > 1.
        # Nested fan-out degrades to the serial path instead.
        yield None
        return
    context = multiprocessing.get_context("fork")
    try:
        pool = context.Pool(processes=max(1, int(workers)))
    except OSError:
        yield None  # fork/pipe failure: fail soft to the serial path
        return
    try:
        yield pool
    finally:
        pool.terminate()
        pool.join()
