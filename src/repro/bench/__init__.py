"""Unified benchmark harness with machine-readable results.

``python -m repro.bench`` runs a registered benchmark suite and writes
one schema-versioned ``BENCH_<name>.json`` per result (metrics, scale
knobs, seed, git SHA) alongside the human tables — the artifact the CI
perf ratchet diffs against the committed baselines in
``benchmarks/baselines/``.

Layers:

* :mod:`repro.bench.results` — the :class:`BenchResult` schema, the
  JSON/table writer, and manifest-based pruning of stale result files.
* :mod:`repro.bench.registry` — the benchmark registry: native
  callables, standalone scripts, and pytest figure modules all register
  under one namespace.
* :mod:`repro.bench.compare` — per-metric tolerance comparison against
  baselines (the ratchet) and baseline updating.
* :mod:`repro.bench.suites` — the built-in suite: scenario benchmarks,
  the capacity cross-check, the engine/cluster scale gauges, and every
  paper figure.
* :mod:`repro.bench.__main__` — the CLI
  (``--quick | --full``, ``--only``, ``--check``,
  ``--update-baselines``, ``--list``).
"""

from repro.bench.compare import (
    Regression,
    Tolerance,
    compare_result,
    write_baseline,
)
from repro.bench.registry import (
    Benchmark,
    get_benchmark,
    register_benchmark,
    registered_benchmarks,
    select_benchmarks,
)
from repro.bench.results import (
    RESULT_SCHEMA,
    BenchResult,
    load_result,
    slugify,
    validate_payload,
    write_result,
)

__all__ = [
    "BenchResult", "RESULT_SCHEMA", "write_result", "load_result",
    "validate_payload", "slugify",
    "Benchmark", "register_benchmark", "get_benchmark",
    "registered_benchmarks", "select_benchmarks",
    "Tolerance", "Regression", "compare_result", "write_baseline",
]
