"""The unified benchmark runner CLI.

Usage::

    python -m repro.bench --quick                 # the CI ratchet suite
    python -m repro.bench --full                  # + every paper figure
    python -m repro.bench --only fig12,cluster_scale
    python -m repro.bench --quick --check         # fail on regression
    python -m repro.bench --quick --update-baselines
    python -m repro.bench --list

Each run writes one schema-versioned ``BENCH_<name>.json`` per result
(plus the human tables) into ``benchmarks/results/``; ``--check``
compares them against the committed baselines in
``benchmarks/baselines/`` with per-metric tolerances and exits non-zero
on any regression.  Scale knobs come from the ``REPRO_BENCH_*``
environment variables the pytest benchmarks already honour.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

import repro
from repro.bench.compare import (
    baseline_path,
    compare_result,
    load_baseline,
    write_baseline,
)
from repro.bench.registry import (
    Benchmark,
    BenchContext,
    registered_benchmarks,
    select_benchmarks,
)
from repro.bench.results import (
    BenchResult,
    load_result,
    prune_orphans,
    result_path,
    validate_payload,
    write_result,
)


def _child_env() -> dict[str, str]:
    """Subprocess env that can ``import repro`` like we can."""
    env = dict(os.environ)
    pkg_root = str(Path(repro.__file__).resolve().parent.parent)
    parts = [pkg_root] + [p for p in
                          env.get("PYTHONPATH", "").split(os.pathsep) if p]
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
    return env


def _run_script(benchmark: Benchmark, ctx: BenchContext) -> bool:
    """Run a standalone gauge; its --json flag writes the result."""
    script = ctx.bench_dir / benchmark.path
    if not script.exists():
        print(f"  SKIP {benchmark.name}: {script} not found")
        return False
    command = [sys.executable, str(script), "--json", str(ctx.out_dir)]
    if ctx.quick:
        command.append("--quick")
    proc = subprocess.run(command, env=_child_env())
    return proc.returncode == 0


def _run_pytest(benchmark: Benchmark, ctx: BenchContext) -> bool:
    """Run a figure module; its record(...) calls write the results."""
    module = ctx.bench_dir / benchmark.path
    if not module.exists():
        print(f"  SKIP {benchmark.name}: {module} not found")
        return False
    command = [sys.executable, "-m", "pytest", str(module), "-q",
               "-p", "no:cacheprovider"]
    env = _child_env()
    # The figure conftest writes where this says; without it a custom
    # --out-dir would collect nothing.
    env["REPRO_BENCH_RESULTS_DIR"] = str(ctx.out_dir.resolve())
    proc = subprocess.run(command, env=env)
    return proc.returncode == 0


def _collect(benchmark: Benchmark,
             out_dir: Path) -> tuple[list[BenchResult], list[str]]:
    """Load the results a benchmark should have produced."""
    results, problems = [], []
    for name in benchmark.result_names:
        path = result_path(out_dir, name)
        if not path.exists():
            problems.append(f"{benchmark.name}: expected result "
                            f"{path.name} was not written")
            continue
        try:
            results.append(load_result(path))
        except ValueError as error:
            problems.append(f"{benchmark.name}: {path.name}: {error}")
    return results, problems


def _print_summary(rows: list[tuple[str, int, float, str]]) -> None:
    header = (f"{'benchmark':20s} {'results':>8s} {'wall':>8s} "
              f"{'status':>10s}")
    print("\n" + header)
    print("-" * len(header))
    for name, count, wall, status in rows:
        print(f"{name:20s} {count:8d} {wall:7.1f}s {status:>10s}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--quick", action="store_true",
                      help="the fast fixed-seed suite CI ratchets on "
                           "(default)")
    mode.add_argument("--full", action="store_true",
                      help="quick suite plus every paper figure")
    parser.add_argument("--only", default=None,
                        help="comma-separated benchmark names (see "
                             "--list); overrides --quick/--full "
                             "selection")
    parser.add_argument("--list", action="store_true",
                        help="list registered benchmarks and exit")
    parser.add_argument("--check", action="store_true",
                        help="compare results against committed "
                             "baselines; exit 1 on regression")
    parser.add_argument("--update-baselines", action="store_true",
                        help="bless this run's results as the new "
                             "baselines")
    parser.add_argument("--bench-dir", default="benchmarks",
                        help="directory holding bench_*.py and results/ "
                             "(default: ./benchmarks)")
    parser.add_argument("--out-dir", default=None,
                        help="where BENCH_*.json land (default: "
                             "<bench-dir>/results)")
    parser.add_argument("--baseline-dir", default=None,
                        help="committed baselines (default: "
                             "<bench-dir>/baselines)")
    parser.add_argument("--seed", type=int, default=17,
                        help="base seed for the native suite benchmarks "
                             "(each derives a fixed offset; baselines "
                             "are blessed at the default)")
    parser.add_argument("--prune", action="store_true",
                        help="after a full-suite run, delete result "
                             "files no registered benchmark owns")
    args = parser.parse_args(argv)

    if args.list:
        print(f"{'name':20s} {'kind':8s} {'quick':>5s}  description")
        for b in registered_benchmarks():
            print(f"{b.name:20s} {b.kind:8s} "
                  f"{'yes' if b.quick else 'no':>5s}  {b.description}")
        return 0

    bench_dir = Path(args.bench_dir)
    out_dir = Path(args.out_dir) if args.out_dir else bench_dir / "results"
    baseline_dir = (Path(args.baseline_dir) if args.baseline_dir
                    else bench_dir / "baselines")
    out_dir.mkdir(parents=True, exist_ok=True)

    only = ([part.strip() for part in args.only.split(",") if part.strip()]
            if args.only else None)
    try:
        selected = select_benchmarks(only, quick=not args.full)
    except KeyError as error:
        parser.error(str(error))
    if not selected:
        parser.error("no benchmarks selected")

    quick = not args.full
    ctx = BenchContext(
        quick=quick, seed=args.seed, out_dir=out_dir,
        bench_dir=bench_dir,
        queries=int(os.environ.get("REPRO_BENCH_QUERIES",
                                   "120" if quick else "300")),
        trials=int(os.environ.get("REPRO_BENCH_TRIALS",
                                  "64" if quick else "192")),
        tolerance_qps=float(os.environ.get("REPRO_BENCH_TOL",
                                           "40" if quick else "25")),
        workers=int(os.environ.get("REPRO_BENCH_WORKERS", "1")))

    print(f"repro.bench: {len(selected)} benchmark(s), "
          f"{'quick' if quick else 'full'} mode, results -> {out_dir}")

    from repro.bench.suites import run_native

    all_results: list[tuple[Benchmark, BenchResult]] = []
    failures: list[str] = []
    rows = []
    for benchmark in selected:
        print(f"\n=== {benchmark.name} ({benchmark.kind}): "
              f"{benchmark.description}")
        start = time.perf_counter()
        ok = True
        try:
            if benchmark.kind == "native":
                results, _ = run_native(benchmark, ctx)
                for result in results:
                    write_result(result, out_dir)
            else:
                runner = (_run_script if benchmark.kind == "script"
                          else _run_pytest)
                ok = runner(benchmark, ctx)
                results, problems = _collect(benchmark, out_dir)
                failures.extend(problems)
                ok = ok and not problems
        except Exception as error:  # a broken benchmark must not
            ok, results = False, []  # take down the whole suite run
            failures.append(f"{benchmark.name}: {error!r}")
        wall = time.perf_counter() - start
        if not ok:
            failures.append(f"{benchmark.name}: benchmark failed")
        for result in results:
            all_results.append((benchmark, result))
            shown = ", ".join(f"{k}={v:g}" for k, v in
                              sorted(result.metrics.items())[:4])
            more = max(0, len(result.metrics) - 4)
            print(f"  -> {result_path(out_dir, result.name).name}: "
                  f"{shown}{f' (+{more} more)' if more else ''}")
        rows.append((benchmark.name, len(results), wall,
                     "ok" if ok else "FAILED"))

    # Schema gate: every emitted result must validate.
    for benchmark, result in all_results:
        errors = validate_payload(
            json.loads(result_path(out_dir, result.name).read_text()))
        for error in errors:
            failures.append(f"{result.name}: schema: {error}")

    if args.prune and only is None and args.full:
        known = {name for b in registered_benchmarks()
                 for name in b.result_names}
        deleted = prune_orphans(out_dir, known)
        if deleted:
            print(f"\npruned orphaned result files: {', '.join(deleted)}")

    if args.update_baselines:
        for benchmark, result in all_results:
            path = write_baseline(result, baseline_dir,
                                  benchmark.tolerances,
                                  benchmark.default_tolerance)
            print(f"baseline updated: {path}")

    regressions = []
    missing_baselines = []
    if args.check:
        for benchmark, result in all_results:
            if not baseline_path(baseline_dir, result.name).exists():
                missing_baselines.append(result.name)
                continue
            baseline, tolerances = load_baseline(baseline_dir,
                                                 result.name)
            regressions.extend(
                compare_result(result, baseline, tolerances,
                               benchmark.default_tolerance))

    _print_summary(rows)
    if missing_baselines:
        print(f"\nno baseline yet (run --update-baselines): "
              f"{', '.join(missing_baselines)}")
    if regressions:
        print("\nPERF RATCHET FAILURES:")
        for regression in regressions:
            print(f"  - {regression}")
    if failures:
        print("\nFAILURES:")
        for failure in failures:
            print(f"  - {failure}")
    if failures or regressions:
        return 1
    print("\nOK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
