"""The built-in benchmark suite.

Quick suite (what CI ratchets on, ``--quick``):

* ``scenario_capacity`` — capacity under every arrival shape, plus the
  legacy-vs-scenario Poisson cross-check (must agree to 1e-9).
* ``scenario_service``  — QoS satisfaction / latency per scenario at a
  fixed mean load.
* ``trace_roundtrip``   — record -> save -> load -> replay equality,
  single-node and fleet.
* ``engine_scale`` / ``cluster_scale`` — the standalone scale gauges.
* ``hetero_fleet``      — mixed CPU+accelerator fleet: capacity vs
  CPU-only, device-affinity routing, accelerator scheduler A/B.
* ``telemetry_overhead`` — null-tracer overhead bound, tracing on/off
  report bit-identity, summarize-reproduces-report exactness.
* ``closed_loop``       — request model: closed-loop feedback under
  shedding, accelerator dynamic batching >=1.3x goodput at
  equal-or-better p99.

Full suite adds every paper figure (``benchmarks/bench_fig*.py``, run
through pytest; their ``record(...)`` calls write the JSON results).
"""

from __future__ import annotations

import dataclasses
import time

from repro.bench.compare import Tolerance
from repro.bench.registry import (
    Benchmark,
    BenchContext,
    register_benchmark,
)
from repro.bench.results import BenchResult

#: The two-model stack every native quick benchmark shares.
_QUICK_MODELS = ("mobilenet_v2", "googlenet")
#: Scenario shapes the suite exercises (mix-agnostic ones).
_SHAPES = ("poisson", "bursty", "diurnal", "flash_crowd", "tenant_churn")

#: Exact-equality tolerance: the metric is a delta that must be ~0.
_EXACT = Tolerance(rel=0.0, abs=1e-9)
#: Capacity numbers: bisection-quantised, allow modest drift.
_CAPACITY = Tolerance(rel=0.15, abs=5.0)
#: Rates/latencies: deterministic, but leave room for env drift.
_RATE = Tolerance(rel=0.10, abs=0.02)


def _quick_spec():
    from repro.serving.workload import WorkloadSpec
    return WorkloadSpec(name="quick-mix",
                        entries=(("mobilenet_v2", 2.0),
                                 ("googlenet", 1.0)))


def _report_fields(report, prefix: str) -> dict[str, float]:
    return {
        f"{prefix}_sat": report.satisfaction_rate,
        f"{prefix}_avg_ms": report.average_latency_s * 1e3,
        f"{prefix}_p99_ms": report.p99_latency_s * 1e3,
    }


# ---------------------------------------------------------------------------
# Native quick benchmarks


def _run_scenario_capacity(ctx: BenchContext) -> list[BenchResult]:
    from repro.serving.experiments import capacity
    stack = ctx.stack(_QUICK_MODELS)
    spec = _quick_spec()
    search = dict(count=ctx.queries, tolerance_qps=ctx.tolerance_qps,
                  low_qps=5.0, high_qps=400.0, seed=ctx.seed,
                  workers=ctx.workers)

    metrics: dict[str, float] = {}
    info: dict[str, object] = {}
    lines = [f"{'scenario':14s} {'policy':14s} {'capacity':>9s} "
             f"{'sat':>7s}"]
    # Legacy path (scenario=None) vs the "poisson" scenario: the
    # acceptance cross-check that the default scenario reproduces
    # pre-scenario capacity numbers.
    deltas = []
    for policy in ("layerwise", "veltair_full"):
        legacy = capacity(stack, policy, spec, **search)
        scen = capacity(stack, policy, spec, scenario="poisson", **search)
        metrics[f"capacity_{policy}"] = legacy.qps
        deltas.append(abs(legacy.qps - scen.qps))
        lines.append(f"{'(legacy)':14s} {policy:14s} {legacy.qps:8.0f}q "
                     f"{legacy.report.satisfaction_rate:7.2%}")
    metrics["poisson_equivalence_max_abs"] = max(deltas)

    for shape in _SHAPES:
        result = capacity(stack, "veltair_full", spec, scenario=shape,
                          **search)
        metrics[f"capacity_full_{shape}"] = result.qps
        lines.append(f"{shape:14s} {'veltair_full':14s} "
                     f"{result.qps:8.0f}q "
                     f"{result.report.satisfaction_rate:7.2%}")
    info["policies"] = ["layerwise", "veltair_full"]

    title = "Scenario capacity: QPS at 95% QoS per arrival shape"
    return [BenchResult(
        name="scenario_capacity", title=title, metrics=metrics,
        knobs=ctx.knobs(models=list(_QUICK_MODELS)), info=info,
        tables={title: "\n".join(lines)}, seed=ctx.seed)]


def _run_scenario_service(ctx: BenchContext) -> list[BenchResult]:
    from repro.serving.metrics import summarize
    from repro.serving.workload import scenario_queries

    stack = ctx.stack(_QUICK_MODELS)
    spec = _quick_spec()
    qps = 150.0
    seed = ctx.seed + 6  # offset: independent of the capacity stream
    metrics: dict[str, float] = {}
    lines = [f"{'scenario':14s} {'sat':>7s} {'avg':>9s} {'p99':>9s} "
             f"{'span':>7s}"]
    for shape in _SHAPES:
        queries = scenario_queries(stack.compiled, shape, qps,
                                   ctx.queries, seed=seed, spec=spec)
        completed, engine = stack.run("veltair_full", queries)
        report = summarize(completed, engine.metrics, qps)
        span = max(q.arrival_s for q in queries)
        metrics.update(_report_fields(report, shape))
        metrics[f"{shape}_empirical_qps"] = len(queries) / span
        lines.append(f"{shape:14s} {report.satisfaction_rate:7.2%} "
                     f"{report.average_latency_s * 1e3:7.2f}ms "
                     f"{report.p99_latency_s * 1e3:7.2f}ms "
                     f"{span:6.2f}s")
    title = (f"Scenario service: veltair_full at {qps:.0f} mean QPS "
             "per arrival shape")
    return [BenchResult(
        name="scenario_service", title=title, metrics=metrics,
        knobs=ctx.knobs(models=list(_QUICK_MODELS), qps=qps),
        tables={title: "\n".join(lines)}, seed=seed)]


def _run_trace_roundtrip(ctx: BenchContext) -> list[BenchResult]:
    import tempfile
    from pathlib import Path

    from repro.cluster import Cluster, homogeneous
    from repro.serving.metrics import summarize
    from repro.serving.workload import scenario_queries
    from repro.workloads import ArrivalTrace, record_trace

    stack = ctx.stack(_QUICK_MODELS)
    spec = _quick_spec()
    qps = 120.0
    seed = ctx.seed + 12  # offset: independent of the other suites

    def fresh_stream():
        # Engines mutate queries, so every consumer needs its own copy;
        # a fixed seed makes regenerations identical.
        return scenario_queries(stack.compiled, "bursty", qps,
                                ctx.queries, seed=seed, spec=spec)

    trace = record_trace(fresh_stream(), "bench-roundtrip",
                         meta={"scenario": "bursty", "qps": qps,
                               "seed": seed})
    with tempfile.TemporaryDirectory() as tmp:
        path = trace.save(Path(tmp) / "trace.json")
        loaded = ArrivalTrace.load(path)

    def node_report(qs):
        completed, engine = stack.run("veltair_full", qs)
        return summarize(completed, engine.metrics, qps)

    direct = node_report(fresh_stream())
    replay = node_report(loaded.replay(stack.compiled))
    single_delta = max(
        abs(getattr(direct, f.name) - getattr(replay, f.name))
        for f in dataclasses.fields(direct)
        if isinstance(getattr(direct, f.name), float))

    fleet = homogeneous(2)
    direct_fleet = Cluster(stack, fleet).serve(fresh_stream(),
                                               offered_qps=qps)
    replay_fleet = Cluster(stack, fleet).serve(
        loaded.replay(stack.compiled), offered_qps=qps)
    cluster_delta = max(
        abs(direct_fleet.satisfaction_rate
            - replay_fleet.satisfaction_rate),
        abs(direct_fleet.goodput_qps - replay_fleet.goodput_qps))

    metrics = {
        "single_node_max_abs_delta": single_delta,
        "cluster_max_abs_delta": cluster_delta,
        "replay_sat": replay.satisfaction_rate,
        "fleet_replay_sat": replay_fleet.satisfaction_rate,
        "trace_span_s": trace.span_s,
    }
    title = "Trace record/replay round trip (single node + fleet)"
    lines = [
        f"trace: {len(trace)} arrivals over {trace.span_s:.2f}s (bursty "
        f"@ {qps:.0f} mean QPS)",
        f"single-node report max |direct - replay| = {single_delta:.2e}",
        f"2-node fleet max |direct - replay| = {cluster_delta:.2e}",
        f"replay sat single={replay.satisfaction_rate:.2%} "
        f"fleet={replay_fleet.satisfaction_rate:.2%}",
    ]
    return [BenchResult(
        name="trace_roundtrip", title=title, metrics=metrics,
        knobs=ctx.knobs(models=list(_QUICK_MODELS), qps=qps),
        tables={title: "\n".join(lines)}, seed=seed)]


def _run_compile_cache(ctx: BenchContext) -> list[BenchResult]:
    """Cold-vs-warm artifact-store compile: speedup + bit-identity.

    Builds the *default-zoo* stack twice against one on-disk store —
    first cold (store empty, every layer compiles), then warm (every
    layer loads) — and A/B-verifies that the cached artifacts are
    bit-identical: version tables, latency tables, level maps, and a
    full ``veltair_full`` serving report must all match exactly.  The
    acceptance floor is a 5x warm speedup on the zoo build.
    """
    import tempfile
    from pathlib import Path

    from repro.compiler.artifacts import ArtifactStore
    from repro.serving.metrics import summarize
    from repro.serving.server import ServingStack
    from repro.serving.workload import poisson_queries

    spec = _quick_spec()
    qps = 150.0
    seed = ctx.seed + 23  # offset: independent of the other suites

    def build(store: ArtifactStore) -> tuple[ServingStack, float]:
        stack = ServingStack(trials=ctx.trials, seed=11,
                             use_proxy=False, artifact_store=store)
        start = time.perf_counter()
        stack.ensure_compiled()
        return stack, time.perf_counter() - start

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "store"
        cold_stack, cold_s = build(ArtifactStore(path))
        warm_stack, warm_s = build(ArtifactStore(path))

    tables_identical = all(
        a.versions == b.versions
        and a.latency_table == b.latency_table
        and a.version_for_level == b.version_for_level
        and a.levels == b.levels
        and a.qos_budget_s == b.qos_budget_s
        for name in cold_stack.model_names
        for a, b in zip(cold_stack.compiled[name].layers,
                        warm_stack.compiled[name].layers))

    def report(stack: ServingStack):
        queries = poisson_queries(stack.compiled, spec, qps,
                                  ctx.queries, seed=seed)
        completed, engine = stack.run("veltair_full", queries)
        return summarize(completed, engine.metrics, qps)

    cold_report, warm_report = report(cold_stack), report(warm_stack)
    report_delta = max(
        abs(getattr(cold_report, f.name) - getattr(warm_report, f.name))
        for f in dataclasses.fields(cold_report)
        if isinstance(getattr(cold_report, f.name), (int, float)))

    cold, warm = cold_stack.compiler.stats, warm_stack.compiler.stats
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    metrics = {
        "warm_speedup": speedup,
        "warm_speedup_at_least_5x": 1.0 if speedup >= 5.0 else 0.0,
        "version_tables_identical": 1.0 if tables_identical else 0.0,
        "report_max_abs_delta": report_delta,
        "unique_layers": float(cold_stack.compiler.unique_layers),
        "cold_fresh_compiles": float(cold.compiled_fresh),
        "cold_dedup_shared": float(cold.memo_hits),
        "warm_store_hits": float(warm.store_hits),
        "warm_fresh_compiles": float(warm.compiled_fresh),
    }
    title = "Compile cache: cold vs warm artifact-store stack build"
    lines = [
        f"models: full zoo ({len(cold_stack.model_names)} models, "
        f"trials={ctx.trials})",
        f"cold build {cold_s * 1e3:8.1f}ms  ({cold.compiled_fresh} "
        f"compiled, {cold.memo_hits} deduped of {cold.layers_total} "
        "layers)",
        f"warm build {warm_s * 1e3:8.1f}ms  ({warm.store_hits} store "
        f"hits, {warm.compiled_fresh} compiled)",
        f"speedup {speedup:8.1f}x  (acceptance floor: 5x)",
        f"version tables identical: {tables_identical}",
        f"serving report max |cold - warm| = {report_delta:.2e}",
    ]
    return [BenchResult(
        name="compile_cache", title=title, metrics=metrics,
        knobs=ctx.knobs(models=list(cold_stack.model_names), qps=qps),
        info={"cold_build_s": cold_s, "warm_build_s": warm_s},
        tables={title: "\n".join(lines)}, seed=seed)]


_SCENARIO_CAPACITY_TOL = {"poisson_equivalence_max_abs": _EXACT}
_TRACE_TOL = {"single_node_max_abs_delta": _EXACT,
              "cluster_max_abs_delta": _EXACT,
              "trace_span_s": Tolerance(rel=0.05, abs=0.01)}

register_benchmark(Benchmark(
    name="scenario_capacity", kind="native", quick=True,
    description="capacity per arrival shape + legacy/scenario "
                "Poisson cross-check",
    runner=_run_scenario_capacity,
    tolerances=_SCENARIO_CAPACITY_TOL, default_tolerance=_CAPACITY))
register_benchmark(Benchmark(
    name="scenario_service", kind="native", quick=True,
    description="QoS satisfaction and latency per scenario at fixed "
                "mean load",
    runner=_run_scenario_service, default_tolerance=_RATE))
register_benchmark(Benchmark(
    name="trace_roundtrip", kind="native", quick=True,
    description="trace record->save->load->replay equality, "
                "single-node and fleet",
    runner=_run_trace_roundtrip, tolerances=_TRACE_TOL,
    default_tolerance=_RATE))
register_benchmark(Benchmark(
    name="compile_cache", kind="native", quick=True,
    description="cold-vs-warm artifact-store stack build: speedup + "
                "bit-identity A/B",
    runner=_run_compile_cache,
    tolerances={
        # Identity and dedup counts are deterministic: gate exactly.
        "warm_speedup_at_least_5x": _EXACT,
        "version_tables_identical": _EXACT,
        "report_max_abs_delta": _EXACT,
        "unique_layers": _EXACT,
        "cold_fresh_compiles": _EXACT,
        "cold_dedup_shared": _EXACT,
        "warm_store_hits": _EXACT,
        "warm_fresh_compiles": _EXACT,
        # Wall-clock ratio: recorded for the CI artifact, effectively
        # ungated (machine-dependent); the 5x floor above is the gate.
        "warm_speedup": Tolerance(rel=0.0, abs=1e12,
                                  direction="higher_is_better"),
    },
    default_tolerance=_EXACT))

# ---------------------------------------------------------------------------
# Standalone scale gauges (scripts with their own acceptance checks)

register_benchmark(Benchmark(
    name="engine_scale", kind="script", quick=True,
    description="engine hot-path pushes/repricings per query, "
                "legacy vs incremental",
    path="bench_engine_scale.py",
    tolerances={"reports_identical": _EXACT},
    default_tolerance=Tolerance(rel=0.25, abs=0.5)))
register_benchmark(Benchmark(
    name="cluster_scale", kind="script", quick=True,
    description="fleet capacity per router; compile-pass sharing; "
                "reconciliation",
    path="bench_cluster_scale.py",
    tolerances={"totals_reconcile": _EXACT,
                "artifact_builds": _EXACT},
    default_tolerance=Tolerance(rel=0.30, abs=10.0)))
register_benchmark(Benchmark(
    name="hetero_fleet", kind="script", quick=True,
    description="mixed CPU+accelerator fleet capacity, device-affinity "
                "routing, accelerator scheduler A/B",
    path="bench_hetero_fleet.py",
    tolerances={"artifact_builds": _EXACT,
                "mixed_ge_cpu_only": _EXACT,
                "affinity_ge_pressure": _EXACT,
                "affinity_deterministic": _EXACT},
    default_tolerance=Tolerance(rel=0.30, abs=10.0)))
register_benchmark(Benchmark(
    name="telemetry_overhead", kind="script", quick=True,
    description="null-tracer overhead bound; tracing on/off report "
                "bit-identity; summarize-reproduces-report exactness",
    path="bench_telemetry_overhead.py",
    tolerances={
        # The telemetry contracts: pass/fail, ratcheted exactly.
        "reports_identical_on_off": _EXACT,
        "cluster_identical_on_off": _EXACT,
        "summarize_matches_report": _EXACT,
        "trace_wellformed": _EXACT,
        "null_overhead_le_2pct": _EXACT,
        # Emission volume is deterministic for a fixed stream.
        "records_per_query": Tolerance(rel=0.0, abs=1e-9),
        "guard_evaluations": Tolerance(rel=0.0, abs=1e-9),
        # Machine-dependent bound; the <=2% gate above is the ratchet.
        "null_overhead_pct": Tolerance(rel=0.0, abs=100.0),
    },
    default_tolerance=Tolerance(rel=0.30, abs=0.5)))
register_benchmark(Benchmark(
    name="closed_loop", kind="script", quick=True,
    description="request model: closed-loop feedback under shedding; "
                "accelerator dynamic batching >=1.3x goodput at "
                "equal-or-better p99",
    path="bench_closed_loop.py",
    tolerances={
        # The acceptance gates themselves: pass/fail, ratcheted exactly.
        "closed_totals_ok": _EXACT,
        "closed_shed_occurred_ok": _EXACT,
        "closed_below_open_ok": _EXACT,
        "closed_repeat_identical_ok": _EXACT,
        "batch_ratio_ok": _EXACT,
        "batch_p99_ok": _EXACT,
        # Past-knee numbers are chaotic by design (the plain side is a
        # collapsing queue); only the gates above are tight.
        "batch_goodput_ratio": Tolerance(rel=0.80, abs=0.5),
        "batch_plain_goodput_qps": Tolerance(rel=0.80, abs=200.0),
        "batch_plain_sat": Tolerance(rel=0.80, abs=200.0),
        "batch_plain_p99_ms": Tolerance(rel=0.80, abs=100.0),
    },
    default_tolerance=Tolerance(rel=0.30, abs=50.0)))
register_benchmark(Benchmark(
    name="autoscale", kind="script", quick=True,
    description="elastic fleet vs static peak: QoS ratio and "
                "node-seconds on diurnal/flash-crowd load",
    path="bench_autoscale.py",
    tolerances={
        # The acceptance gates themselves: pass/fail, ratcheted exactly.
        "diurnal_qos_ratio_ok": _EXACT,
        "diurnal_node_seconds_ok": _EXACT,
        "flash_qos_ratio_ok": _EXACT,
        "flash_node_seconds_ok": _EXACT,
    },
    default_tolerance=Tolerance(rel=0.25, abs=0.15)))

# ---------------------------------------------------------------------------
# Paper figures (pytest modules; full suite only)

_FIGURES: tuple[tuple[str, str, tuple[str, ...], str], ...] = (
    ("fig01", "bench_fig01_motivation.py", ("fig01a", "fig01b"),
     "latency vs cores; co-location slowdown"),
    ("fig02", "bench_fig02_tvm_vs_vendor.py", ("fig02",),
     "vendor library vs searched code"),
    ("fig03", "bench_fig03_granularity.py", ("fig03a", "fig03b"),
     "QoS satisfaction and latency vs QPS by granularity"),
    ("fig04", "bench_fig04_core_scaling.py", ("fig04a", "fig04b"),
     "speedup vs cores; core allocation"),
    ("fig05", "bench_fig05_conflict.py", ("fig05a", "fig05b"),
     "conflict rate vs QPS; per-layer conflict overhead"),
    ("fig06", "bench_fig06_versions.py", ("fig06",),
     "versions across interference levels"),
    ("fig07", "bench_fig07_version_need.py", ("fig07a", "fig07b"),
     "performance loss vs retained versions"),
    ("fig09", "bench_fig09_pareto.py", ("fig09",),
     "Pareto frontier pipeline"),
    ("fig10", "bench_fig10_blocks.py", ("fig10b",),
     "CPU usage by granularity"),
    ("fig11", "bench_fig11_proxy.py", ("fig11a", "fig11b"),
     "counter PCA; linear proxy accuracy"),
    ("fig12", "bench_fig12_qps.py", ("fig12",),
     "QPS at 95% QoS satisfied (headline)"),
    ("fig13", "bench_fig13_latency.py", ("fig13",),
     "latency normalised to isolated run"),
    ("fig14", "bench_fig14_sensitivity.py",
     ("fig14a", "fig14b", "fig14c"),
     "sensitivity: core usage, versions"),
    ("table2", "bench_table2_overhead.py", ("table2", "sec55_overhead"),
     "evaluated models; scheduler overhead"),
    ("ablations", "bench_ablations.py",
     ("ablation_thresholds", "ablation_proxy", "ablation_soon_filter"),
     "threshold / proxy / filter ablations"),
)

for _name, _path, _produces, _desc in _FIGURES:
    register_benchmark(Benchmark(
        name=_name, kind="pytest", quick=False, description=_desc,
        path=_path, produces=_produces,
        default_tolerance=Tolerance(rel=0.15, abs=0.05)))


# ---------------------------------------------------------------------------
# Shared run helper (used by the CLI)


def run_native(benchmark: Benchmark,
               ctx: BenchContext) -> tuple[list[BenchResult], float]:
    """Run a native benchmark, returning (results, wall seconds)."""
    start = time.perf_counter()
    results = benchmark.runner(ctx)
    return results, time.perf_counter() - start
