"""Baseline comparison — the perf ratchet's judgement layer.

A baseline is a previously blessed ``BENCH_<name>.json`` plus a
``tolerances`` block, committed under ``benchmarks/baselines/``.  CI
reruns the quick suite on fixed seeds and fails when any gated metric
leaves its tolerance band; ``--update-baselines`` re-blesses the
current numbers when a shift is intentional.

Tolerances are per metric: a relative band, an absolute floor (so
near-zero metrics don't demand impossible relative precision), and a
direction.  ``two_sided`` (the default) ratchets against *any* silent
drift — an unexplained improvement is a determinism bug until a human
blesses it; ``higher_is_better`` / ``lower_is_better`` only fail the
harmful direction.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from repro.bench.results import (
    BenchResult,
    result_from_payload,
    result_path,
    validate_payload,
)

DIRECTIONS = ("two_sided", "higher_is_better", "lower_is_better")


@dataclass(frozen=True)
class Tolerance:
    """Allowed drift for one metric."""

    rel: float = 0.10
    abs: float = 1e-9
    direction: str = "two_sided"

    def __post_init__(self) -> None:
        if self.rel < 0 or self.abs < 0:
            raise ValueError("tolerances must be non-negative")
        if self.direction not in DIRECTIONS:
            raise ValueError(f"direction must be one of {DIRECTIONS}")

    def band(self, baseline: float) -> float:
        return max(self.abs, self.rel * abs(baseline))

    def verdict(self, current: float, baseline: float) -> str | None:
        """``None`` if within tolerance, else a failure description."""
        delta = current - baseline
        band = self.band(baseline)
        if abs(delta) <= band:
            return None
        if self.direction == "higher_is_better" and delta > 0:
            return None
        if self.direction == "lower_is_better" and delta < 0:
            return None
        return (f"{current:g} vs baseline {baseline:g} "
                f"(drift {delta:+g}, band +/-{band:g}, "
                f"{self.direction})")

    def to_payload(self) -> dict:
        return {"rel": self.rel, "abs": self.abs,
                "direction": self.direction}

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "Tolerance":
        return cls(rel=float(payload.get("rel", 0.10)),
                   abs=float(payload.get("abs", 1e-9)),
                   direction=str(payload.get("direction", "two_sided")))


@dataclass(frozen=True)
class Regression:
    """One gated metric outside its tolerance band."""

    benchmark: str
    metric: str
    detail: str

    def __str__(self) -> str:
        return f"{self.benchmark}.{self.metric}: {self.detail}"


def baseline_path(directory: str | Path, name: str) -> Path:
    return result_path(directory, name)


def load_baseline(directory: str | Path,
                  name: str) -> tuple[BenchResult, dict[str, Tolerance]]:
    """(blessed result, per-metric tolerances) for one benchmark."""
    payload = json.loads(baseline_path(directory, name).read_text())
    tolerances = {
        metric: Tolerance.from_payload(spec)
        for metric, spec in payload.pop("tolerances", {}).items()}
    return result_from_payload(payload), tolerances


def write_baseline(result: BenchResult, directory: str | Path,
                   tolerances: Mapping[str, Tolerance],
                   default: Tolerance) -> Path:
    """Bless ``result`` as the new baseline, tolerance spec attached.

    Every metric gets an explicit tolerance in the file (the given one
    or ``default``), so the committed baseline is self-describing — a
    reviewer sees exactly what band each number is held to.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = result.to_payload()
    payload["tolerances"] = {
        metric: (tolerances.get(metric, default)).to_payload()
        for metric in sorted(result.metrics)}
    path = baseline_path(directory, result.name)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


def compare_result(current: BenchResult, baseline: BenchResult,
                   tolerances: Mapping[str, Tolerance],
                   default: Tolerance | None = None) -> list[Regression]:
    """Every gated drift of ``current`` outside the baseline's bands.

    Metrics present in the baseline but missing from the current run
    are regressions (a silently dropped metric is exactly what a
    ratchet exists to catch); new metrics without a baseline pass — the
    next ``--update-baselines`` picks them up.
    """
    default = default or Tolerance()
    schema_errors = validate_payload(current.to_payload())
    if schema_errors:
        return [Regression(current.name, "<schema>", error)
                for error in schema_errors]
    regressions = []
    for metric in sorted(baseline.metrics):
        tolerance = tolerances.get(metric, default)
        if metric not in current.metrics:
            regressions.append(Regression(
                current.name, metric,
                "present in baseline but missing from this run"))
            continue
        detail = tolerance.verdict(current.metrics[metric],
                                   baseline.metrics[metric])
        if detail is not None:
            regressions.append(Regression(current.name, metric, detail))
    return regressions
