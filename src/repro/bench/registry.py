"""The benchmark registry: one namespace over three benchmark kinds.

* ``native``  — a Python callable running inside this process against a
  :class:`BenchContext` (the scenario suite, the capacity cross-check).
* ``script``  — a standalone ``benchmarks/*.py`` with a ``--json`` flag
  (the engine/cluster scale gauges); run as a subprocess so its
  acceptance assertions keep their own exit code.
* ``pytest``  — a paper-figure module under ``benchmarks/``; run through
  pytest, results written by the benchmark's ``record(...)`` calls.

Each entry names the results it ``produces`` (one benchmark may emit
several, e.g. Fig. 3a and 3b), whether it belongs to the ``--quick``
suite CI ratchets on, and the tolerance spec its baselines are blessed
with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

from repro.bench.compare import Tolerance
from repro.bench.results import BenchResult

KINDS = ("native", "script", "pytest")


@dataclass
class BenchContext:
    """Everything a native benchmark needs to run.

    ``stack_cache`` memoises compiled :class:`ServingStack` instances
    across the suite (keyed by build arguments), because compilation
    dominates quick-mode wall clock and several benchmarks share one
    small stack.
    """

    quick: bool
    seed: int
    out_dir: Path
    bench_dir: Path
    queries: int
    trials: int
    tolerance_qps: float
    workers: int
    stack_cache: dict = field(default_factory=dict)

    def stack(self, models: tuple[str, ...], trials: int | None = None,
              seed: int = 11, proxy_scenarios: int = 60, cpu=None):
        """A memoised ServingStack (compile once per suite run)."""
        from repro.serving.server import ServingStack
        trials = trials if trials is not None else self.trials
        key = (models, trials, seed, proxy_scenarios,
               cpu.name if cpu is not None else None)
        if key not in self.stack_cache:
            self.stack_cache[key] = ServingStack(
                cpu=cpu, models=list(models), trials=trials,
                proxy_scenarios=proxy_scenarios, seed=seed)
        return self.stack_cache[key]

    def knobs(self, **extra) -> dict:
        base = {"quick": self.quick, "queries": self.queries,
                "trials": self.trials,
                "tolerance_qps": self.tolerance_qps}
        base.update(extra)
        return base


@dataclass(frozen=True)
class Benchmark:
    """One registered benchmark."""

    name: str
    description: str
    kind: str
    quick: bool = False
    runner: Callable[[BenchContext], list[BenchResult]] | None = None
    path: str | None = None
    script_args: tuple[str, ...] = ()
    produces: tuple[str, ...] = ()
    tolerances: Mapping[str, Tolerance] = field(default_factory=dict)
    default_tolerance: Tolerance = field(default_factory=Tolerance)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}")
        if self.kind == "native" and self.runner is None:
            raise ValueError(f"native benchmark {self.name!r} needs a "
                             "runner")
        if self.kind in ("script", "pytest") and not self.path:
            raise ValueError(f"{self.kind} benchmark {self.name!r} needs "
                             "a path")

    @property
    def result_names(self) -> tuple[str, ...]:
        return self.produces if self.produces else (self.name,)


_REGISTRY: dict[str, Benchmark] = {}


def register_benchmark(benchmark: Benchmark,
                       overwrite: bool = False) -> Benchmark:
    if not overwrite and benchmark.name in _REGISTRY:
        raise ValueError(f"benchmark {benchmark.name!r} already "
                         "registered")
    _REGISTRY[benchmark.name] = benchmark
    return benchmark


def get_benchmark(name: str) -> Benchmark:
    _ensure_suites()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; known: "
                       f"{sorted(_REGISTRY)}") from None


def registered_benchmarks() -> list[Benchmark]:
    _ensure_suites()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def select_benchmarks(only: list[str] | None = None,
                      quick: bool = True) -> list[Benchmark]:
    """The run set: the quick suite, the full suite, or ``--only`` picks.

    ``--only`` names win over the quick/full split — asking for a
    specific benchmark runs it in either mode.
    """
    benchmarks = registered_benchmarks()
    if only:
        resolved = []
        for asked in dict.fromkeys(only):  # preserve ask order, dedupe
            if asked in _REGISTRY:
                resolved.append(asked)
                continue
            matches = [name for name in sorted(_REGISTRY)
                       if name.startswith(asked)]
            if len(matches) == 1:  # unique prefix, e.g. "cluster"
                resolved.append(matches[0])
            elif matches:
                raise KeyError(f"{asked!r} is ambiguous: {matches}")
            else:
                raise KeyError(f"unknown benchmark {asked!r}; known: "
                               f"{sorted(_REGISTRY)}")
        return [_REGISTRY[name] for name in dict.fromkeys(resolved)]
    if quick:
        return [b for b in benchmarks if b.quick]
    return benchmarks


def _ensure_suites() -> None:
    """Idempotently load the built-in suite definitions."""
    import repro.bench.suites  # noqa: F401  (registers on import)
