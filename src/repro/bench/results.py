"""The machine-readable benchmark result schema and writer.

One :class:`BenchResult` per benchmark result, serialised as
``BENCH_<name>.json`` next to the human-readable ``<slug>.txt`` tables.
The JSON is what CI diffs; the tables are what humans read.

A ``MANIFEST.json`` in the results directory maps each stable result
*name* to the files it owns.  Renaming a figure title used to strand its
old ``results/*.txt`` forever (nothing knew the file belonged to the
figure); the manifest makes ownership explicit, so a rename deletes the
orphaned files the moment the renamed benchmark records again, and
:func:`prune_orphans` can sweep files no current benchmark claims.
"""

from __future__ import annotations

import json
import re
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Mapping

#: Bump on any incompatible change to the on-disk layout.
RESULT_SCHEMA = "repro.bench.result/1"

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9_.-]*$")


def slugify(title: str) -> str:
    """Portable filename stem for a human title (NTFS-safe)."""
    return re.sub(r"[^a-z0-9._-]+", "_", title.lower()).strip("_")


def git_sha() -> str | None:
    """The checked-out commit, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


@dataclass(frozen=True)
class BenchResult:
    """One benchmark's machine-readable outcome.

    ``metrics`` are the gated numbers the perf ratchet compares;
    ``info`` carries ungated observations (wall clocks, cache sizes —
    anything environment-dependent); ``knobs`` records the scale
    configuration (queries, trials, quick/full) so a reader knows what
    regime produced the numbers; ``tables`` are the paper-style text
    tables keyed by their display title.
    """

    name: str
    title: str
    metrics: Mapping[str, float]
    knobs: Mapping[str, object] = field(default_factory=dict)
    info: Mapping[str, object] = field(default_factory=dict)
    tables: Mapping[str, str] = field(default_factory=dict)
    seed: int | None = None
    sha: str | None = None
    created_utc: str | None = None

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValueError(f"bad benchmark name {self.name!r} (want "
                             "lowercase [a-z0-9_.-])")
        for key, value in self.metrics.items():
            if not isinstance(value, (int, float)) or isinstance(value,
                                                                 bool):
                raise ValueError(f"metric {key!r} of {self.name!r} is "
                                 f"{type(value).__name__}, not a number")

    def to_payload(self) -> dict:
        return {
            "schema": RESULT_SCHEMA,
            "name": self.name,
            "title": self.title,
            "metrics": {k: float(v) for k, v in self.metrics.items()},
            "knobs": dict(self.knobs),
            "info": dict(self.info),
            "tables": dict(self.tables),
            "seed": self.seed,
            "sha": self.sha if self.sha is not None else git_sha(),
            "created_utc": (self.created_utc if self.created_utc
                            is not None else utc_now()),
        }


def validate_payload(payload: Mapping[str, object]) -> list[str]:
    """Schema-check a loaded payload; returns human-readable errors."""
    errors: list[str] = []
    if payload.get("schema") != RESULT_SCHEMA:
        errors.append(f"schema is {payload.get('schema')!r}, expected "
                      f"{RESULT_SCHEMA!r}")
    name = payload.get("name")
    if not isinstance(name, str) or not _NAME_RE.match(name):
        errors.append(f"name {name!r} is not a valid benchmark name")
    if not isinstance(payload.get("title"), str):
        errors.append("title missing or not a string")
    metrics = payload.get("metrics")
    if not isinstance(metrics, Mapping):
        errors.append("metrics missing or not an object")
    else:
        for key, value in metrics.items():
            if not isinstance(value, (int, float)) or isinstance(value,
                                                                 bool):
                errors.append(f"metric {key!r} is not a number")
    for section in ("knobs", "info", "tables"):
        if section in payload and not isinstance(payload[section],
                                                 Mapping):
            errors.append(f"{section} is not an object")
    seed = payload.get("seed")
    if seed is not None and not isinstance(seed, int):
        errors.append("seed is neither null nor an integer")
    return errors


def result_from_payload(payload: Mapping[str, object]) -> BenchResult:
    errors = validate_payload(payload)
    if errors:
        raise ValueError("invalid bench result: " + "; ".join(errors))
    return BenchResult(
        name=payload["name"], title=payload["title"],
        metrics=dict(payload["metrics"]),
        knobs=dict(payload.get("knobs", {})),
        info=dict(payload.get("info", {})),
        tables=dict(payload.get("tables", {})),
        seed=payload.get("seed"), sha=payload.get("sha"),
        created_utc=payload.get("created_utc"))


def load_result(path: str | Path) -> BenchResult:
    return result_from_payload(json.loads(Path(path).read_text()))


def result_path(directory: str | Path, name: str) -> Path:
    return Path(directory) / f"BENCH_{name}.json"


# ---------------------------------------------------------------------------
# Manifest-tracked writing


def _load_manifest(directory: Path) -> dict[str, list[str]]:
    path = directory / "MANIFEST.json"
    if not path.exists():
        return {}
    try:
        manifest = json.loads(path.read_text())
    except (ValueError, OSError):
        return {}
    if not isinstance(manifest, dict):
        return {}
    return {str(k): [str(f) for f in v] for k, v in manifest.items()
            if isinstance(v, list)}


def _save_manifest(directory: Path, manifest: dict[str, list[str]]) -> None:
    (directory / "MANIFEST.json").write_text(
        json.dumps(manifest, indent=1, sort_keys=True) + "\n")


def write_result(result: BenchResult,
                 directory: str | Path) -> Path:
    """Write ``BENCH_<name>.json`` + per-table ``.txt`` files.

    Ownership is recorded in the directory manifest; files previously
    owned by this result name but no longer produced (a renamed figure
    title, a dropped table) are deleted, which is what keeps the
    results directory free of stale tables.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = result.to_payload()

    json_path = result_path(directory, result.name)
    json_path.write_text(json.dumps(payload, indent=1, sort_keys=True)
                         + "\n")
    owned = [json_path.name]
    for title, text in result.tables.items():
        table_path = directory / f"{slugify(title)}.txt"
        table_path.write_text(text.rstrip("\n") + "\n")
        owned.append(table_path.name)

    manifest = _load_manifest(directory)
    for stale in sorted(set(manifest.get(result.name, [])) - set(owned)):
        (directory / stale).unlink(missing_ok=True)
    manifest[result.name] = sorted(owned)
    _save_manifest(directory, manifest)
    return json_path


def prune_orphans(directory: str | Path,
                  known_names: set[str] | None = None) -> list[str]:
    """Delete result files no manifest entry (or current name) owns.

    With ``known_names`` given, manifest entries for benchmarks that no
    longer exist are dropped too (their files deleted).  Returns the
    deleted file names.  Non-result files (the manifest itself, hidden
    files) are never touched.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    manifest = _load_manifest(directory)
    if known_names is not None:
        for name in list(manifest):
            if name not in known_names:
                del manifest[name]
    owned = {f for files in manifest.values() for f in files}
    deleted = []
    for path in sorted(directory.iterdir()):
        if not path.is_file() or path.name == "MANIFEST.json":
            continue
        if path.suffix not in (".txt", ".json"):
            continue
        if path.name not in owned:
            path.unlink()
            deleted.append(path.name)
    _save_manifest(directory, manifest)
    return deleted
