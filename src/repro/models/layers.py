"""Layer specifications and their arithmetic/footprint math.

A :class:`LayerSpec` is the unit the compiler schedules and the runtime
allocates cores to.  Every concrete layer reduces to an *implicit GEMM*
shape ``(M, N, K)`` — the standard lowering used by CPU DNN compilers —
which the schedule space (tiling, parallel chunking) operates on:

* ``Conv2D``   -> ``M = H_out * W_out``, ``N = C_out``, ``K = C_in * KH * KW``
* ``DepthwiseConv2D`` -> per-channel small GEMMs folded into one shape
* ``Dense``    -> the GEMM itself
* ``Pool`` / ``Elementwise`` -> memory-bound pseudo-GEMMs (tiny K)

Flop counts use the multiply-accumulate = 2 flops convention, matching how
MLPerf and the paper quote model complexity (ResNet-50 ~8.2 GFLOPs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.config import FP32_BYTES


@dataclass(frozen=True)
class GemmShape:
    """Implicit-GEMM view of a layer: C[M, N] += A[M, K] @ B[K, N]."""

    m: int
    n: int
    k: int

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) <= 0:
            raise ValueError(f"GEMM dims must be positive, got {self}")

    @property
    def flops(self) -> int:
        return 2 * self.m * self.n * self.k


@dataclass(frozen=True)
class LayerSpec:
    """Base class for all layer specifications.

    Subclasses must populate :attr:`gemm` and the I/O byte counts; the rest
    of the library only consumes the base interface, so adding a new layer
    kind never touches the compiler or the schedulers.
    """

    name: str

    @property
    def kind(self) -> str:
        return type(self).__name__

    # -- interface ---------------------------------------------------------

    @property
    def gemm(self) -> GemmShape:
        raise NotImplementedError

    @property
    def input_bytes(self) -> int:
        raise NotImplementedError

    @property
    def output_bytes(self) -> int:
        raise NotImplementedError

    @property
    def weight_bytes(self) -> int:
        return 0

    # -- derived quantities --------------------------------------------------

    @property
    def signature(self) -> tuple:
        """Shape identity used to share compilation results across layers.

        Two layers with equal signatures behave identically under the cost
        model, so compiled version tables can be reused between them (and
        across models).
        """
        g = self.gemm
        return (self.kind, g.m, g.n, g.k, self.flops,
                self.input_bytes, self.weight_bytes, self.output_bytes)

    @property
    def flops(self) -> int:
        """Total floating-point operations for one inference of this layer."""
        return self.gemm.flops

    @property
    def data_bytes(self) -> int:
        """Compulsory traffic: inputs + outputs + weights, each touched once."""
        return self.input_bytes + self.output_bytes + self.weight_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per compulsory byte; low values mean memory-bound layers."""
        return self.flops / max(1, self.data_bytes)

    @property
    def is_memory_bound(self) -> bool:
        """True when even perfect reuse cannot make the layer compute-bound.

        The threshold (8 flops/byte) is roughly the machine balance point of
        the modelled platform (2.6 Tflop/s vs 95 GB/s would be ~28, but
        per-layer reuse raises effective intensity; 8 cleanly separates
        pools/elementwise from convolutions).
        """
        return self.arithmetic_intensity < 8.0

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        g = self.gemm
        return f"{self.kind}({self.name}, M={g.m}, N={g.n}, K={g.k})"


@dataclass(frozen=True)
class Conv2D(LayerSpec):
    """Standard 2-D convolution (NCHW, unit batch as in MLPerf server runs)."""

    height: int
    width: int
    in_channels: int
    out_channels: int
    kernel_h: int = 3
    kernel_w: int = 3
    stride: int = 1
    padding: int | None = None  # None = "same"-style (preserves size / stride)

    def __post_init__(self) -> None:
        if min(self.height, self.width, self.in_channels, self.out_channels,
               self.kernel_h, self.kernel_w, self.stride) <= 0:
            raise ValueError(f"conv dimensions must be positive: {self.name}")

    @property
    def out_height(self) -> int:
        return max(1, math.ceil(self.height / self.stride))

    @property
    def out_width(self) -> int:
        return max(1, math.ceil(self.width / self.stride))

    @property
    def gemm(self) -> GemmShape:
        return GemmShape(
            m=self.out_height * self.out_width,
            n=self.out_channels,
            k=self.in_channels * self.kernel_h * self.kernel_w,
        )

    @property
    def input_bytes(self) -> int:
        return self.height * self.width * self.in_channels * FP32_BYTES

    @property
    def output_bytes(self) -> int:
        return self.out_height * self.out_width * self.out_channels * FP32_BYTES

    @property
    def weight_bytes(self) -> int:
        return (self.kernel_h * self.kernel_w * self.in_channels
                * self.out_channels * FP32_BYTES)


@dataclass(frozen=True)
class DepthwiseConv2D(LayerSpec):
    """Depthwise convolution (MobileNet / EfficientNet building block)."""

    height: int
    width: int
    channels: int
    kernel_h: int = 3
    kernel_w: int = 3
    stride: int = 1

    def __post_init__(self) -> None:
        if min(self.height, self.width, self.channels,
               self.kernel_h, self.kernel_w, self.stride) <= 0:
            raise ValueError(f"dwconv dimensions must be positive: {self.name}")

    @property
    def out_height(self) -> int:
        return max(1, math.ceil(self.height / self.stride))

    @property
    def out_width(self) -> int:
        return max(1, math.ceil(self.width / self.stride))

    @property
    def gemm(self) -> GemmShape:
        # One tiny GEMM per channel; fold channels into M so the schedule
        # space sees the real amount of parallel work but a small K (which is
        # what makes depthwise layers memory-bound in practice).
        return GemmShape(
            m=self.out_height * self.out_width * self.channels,
            n=1,
            k=self.kernel_h * self.kernel_w,
        )

    @property
    def input_bytes(self) -> int:
        return self.height * self.width * self.channels * FP32_BYTES

    @property
    def output_bytes(self) -> int:
        return self.out_height * self.out_width * self.channels * FP32_BYTES

    @property
    def weight_bytes(self) -> int:
        return self.kernel_h * self.kernel_w * self.channels * FP32_BYTES


@dataclass(frozen=True)
class Dense(LayerSpec):
    """Fully-connected layer / plain GEMM (classifier heads, transformers)."""

    m: int
    n: int
    k: int

    @property
    def gemm(self) -> GemmShape:
        return GemmShape(self.m, self.n, self.k)

    @property
    def input_bytes(self) -> int:
        return self.m * self.k * FP32_BYTES

    @property
    def output_bytes(self) -> int:
        return self.m * self.n * FP32_BYTES

    @property
    def weight_bytes(self) -> int:
        return self.k * self.n * FP32_BYTES


@dataclass(frozen=True)
class Pool(LayerSpec):
    """Max/average pooling; memory-bound, negligible weights."""

    height: int
    width: int
    channels: int
    kernel: int = 2
    stride: int = 2

    def __post_init__(self) -> None:
        if min(self.height, self.width, self.channels,
               self.kernel, self.stride) <= 0:
            raise ValueError(f"pool dimensions must be positive: {self.name}")

    @property
    def out_height(self) -> int:
        return max(1, math.ceil(self.height / self.stride))

    @property
    def out_width(self) -> int:
        return max(1, math.ceil(self.width / self.stride))

    @property
    def gemm(self) -> GemmShape:
        return GemmShape(
            m=self.out_height * self.out_width * self.channels,
            n=1,
            k=self.kernel * self.kernel,
        )

    @property
    def input_bytes(self) -> int:
        return self.height * self.width * self.channels * FP32_BYTES

    @property
    def output_bytes(self) -> int:
        return self.out_height * self.out_width * self.channels * FP32_BYTES


@dataclass(frozen=True)
class Elementwise(LayerSpec):
    """Pointwise op over a tensor (ReLU, batch-norm inference, residual add,
    softmax row pass...).  ``ops_per_element`` scales the flop estimate."""

    elements: int
    ops_per_element: int = 1
    reads_second_input: bool = False  # residual adds read two tensors

    def __post_init__(self) -> None:
        if self.elements <= 0:
            raise ValueError(f"elementwise size must be positive: {self.name}")
        if self.ops_per_element <= 0:
            raise ValueError(f"ops_per_element must be positive: {self.name}")

    @property
    def gemm(self) -> GemmShape:
        return GemmShape(m=self.elements, n=1, k=self.ops_per_element)

    @property
    def flops(self) -> int:
        return self.elements * self.ops_per_element

    @property
    def input_bytes(self) -> int:
        factor = 2 if self.reads_second_input else 1
        return factor * self.elements * FP32_BYTES

    @property
    def output_bytes(self) -> int:
        return self.elements * FP32_BYTES


@dataclass(frozen=True)
class BatchedLayer(LayerSpec):
    """``batch`` independent instances of ``base`` as one fused kernel.

    The zoo is unit-batch (MLPerf server runs); when the runtime fuses a
    dynamic batch of same-model queries into one block stream, each
    layer's batch dim folds into the implicit-GEMM ``M`` (``batch``
    times the rows — the standard batched-conv lowering), activation
    traffic scales with the batch, and the *weight* tensor is shared —
    the reuse that makes batching pay.  The compiled unit-batch
    :class:`~repro.compiler.schedule.Schedule` versions stay valid
    (tiles clip to the larger GEMM), so batching never recompiles.
    """

    base: LayerSpec
    batch: int

    def __post_init__(self) -> None:
        if self.batch < 2:
            raise ValueError(f"batch must be >= 2, got {self.batch}")
        if isinstance(self.base, BatchedLayer):
            raise ValueError("cannot batch an already-batched layer")

    @property
    def kind(self) -> str:
        return self.base.kind

    @property
    def gemm(self) -> GemmShape:
        g = self.base.gemm
        return GemmShape(m=g.m * self.batch, n=g.n, k=g.k)

    @property
    def flops(self) -> int:
        return self.base.flops * self.batch

    @property
    def input_bytes(self) -> int:
        return self.base.input_bytes * self.batch

    @property
    def output_bytes(self) -> int:
        return self.base.output_bytes * self.batch

    @property
    def weight_bytes(self) -> int:
        return self.base.weight_bytes


def batched(layer: LayerSpec, batch: int) -> LayerSpec:
    """``layer`` at dynamic batch ``batch`` (identity for batch 1)."""
    if batch <= 1:
        return layer
    return BatchedLayer(name=f"{layer.name}x{batch}", base=layer,
                        batch=batch)


#: Layer kinds that a preceding compute layer can absorb (epilogue fusion);
#: mirrors the conv-relu / conv-batchnorm-relu patterns of paper Alg. 1.
FUSABLE_KINDS = ("Elementwise",)


@dataclass(frozen=True)
class FusedLayer(LayerSpec):
    """A compute layer with fused element-wise epilogues.

    The fused unit keeps the anchor's GEMM shape (the epilogue does not
    change the loop nest) while adding the epilogue flops and dropping the
    intermediate tensor traffic — which is exactly why compilers fuse.
    """

    anchor: LayerSpec
    epilogues: tuple[LayerSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for ep in self.epilogues:
            if ep.kind not in FUSABLE_KINDS:
                raise ValueError(
                    f"cannot fuse {ep.kind} into {self.anchor.kind}")

    @property
    def kind(self) -> str:
        return self.anchor.kind

    @property
    def gemm(self) -> GemmShape:
        return self.anchor.gemm

    @property
    def flops(self) -> int:
        return self.anchor.flops + sum(ep.flops for ep in self.epilogues)

    @property
    def input_bytes(self) -> int:
        extra = sum(ep.input_bytes - ep.elements * FP32_BYTES
                    for ep in self.epilogues
                    if isinstance(ep, Elementwise) and ep.reads_second_input)
        return self.anchor.input_bytes + extra

    @property
    def output_bytes(self) -> int:
        if self.epilogues:
            return self.epilogues[-1].output_bytes
        return self.anchor.output_bytes

    @property
    def weight_bytes(self) -> int:
        return self.anchor.weight_bytes
