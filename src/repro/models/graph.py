"""Model graphs: ordered layer sequences with fusion and block helpers.

The paper schedules DNNs as *sequences* of layers (blocks are contiguous
runs in execution order), so :class:`ModelGraph` stores layers in a fixed
topological order.  Optional DAG edges are retained for models with branches
(GoogLeNet inception modules, SSD heads); branch layers are executed in the
linearised order, which matches the paper's treatment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.models.layers import FUSABLE_KINDS, FusedLayer, LayerSpec


@dataclass(frozen=True)
class ModelGraph:
    """An inference model: a name plus its layers in execution order.

    ``edges`` holds (producer_index, consumer_index) pairs; when empty, a
    pure chain is implied.  Layer indices always refer to positions in
    :attr:`layers`.
    """

    name: str
    layers: tuple[LayerSpec, ...]
    edges: tuple[tuple[int, int], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError(f"model {self.name!r} has no layers")
        n = len(self.layers)
        for src, dst in self.edges:
            if not (0 <= src < n and 0 <= dst < n):
                raise ValueError(f"edge ({src}, {dst}) out of range for "
                                 f"{n}-layer model {self.name!r}")
            if src >= dst:
                raise ValueError(
                    f"edge ({src}, {dst}) violates topological order")

    # -- aggregate quantities ------------------------------------------------

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)

    @property
    def flops(self) -> int:
        """Total flops of one inference."""
        return sum(layer.flops for layer in self.layers)

    @property
    def weight_bytes(self) -> int:
        return sum(layer.weight_bytes for layer in self.layers)

    def op_fractions(self) -> list[float]:
        """Each layer's share of the model's flops.

        Used by paper Alg. 1 line 3 to split the model QoS target into
        per-layer latency budgets proportional to op count.
        """
        total = self.flops
        return [layer.flops / total for layer in self.layers]

    # -- transforms ----------------------------------------------------------

    def fuse_elementwise(self) -> "ModelGraph":
        """Fuse element-wise epilogues into the preceding compute layer.

        Mirrors the operator-fusion patterns the paper enables in the
        auto-scheduler (conv-relu, conv-batchnorm-relu).  Only chains are
        fused: an element-wise layer that is a branch target (has an edge
        from anywhere but its direct predecessor) is kept standalone so the
        DAG structure survives.
        """
        branch_targets = {dst for src, dst in self.edges if dst != src + 1}
        fused: list[LayerSpec] = []
        pending: list[LayerSpec] = []
        anchor: LayerSpec | None = None

        def flush() -> None:
            nonlocal anchor, pending
            if anchor is not None:
                if pending:
                    fused.append(FusedLayer(
                        name=anchor.name,
                        anchor=anchor,
                        epilogues=tuple(pending),
                    ))
                else:
                    fused.append(anchor)
            anchor, pending = None, []

        for idx, layer in enumerate(self.layers):
            fusable_here = (layer.kind in FUSABLE_KINDS
                            and anchor is not None
                            and idx not in branch_targets)
            if fusable_here:
                pending.append(layer)
            else:
                flush()
                if layer.kind in FUSABLE_KINDS:
                    fused.append(layer)  # orphan elementwise stays standalone
                else:
                    anchor = layer
        flush()
        return ModelGraph(name=self.name, layers=tuple(fused))

    # -- block helpers -------------------------------------------------------

    def block_slices(self, pivots: list[int]) -> list[tuple[int, int]]:
        """Turn splitting pivots into half-open (start, stop) layer ranges.

        A pivot is the index of a layer that *begins* a new block (paper
        Sec. 4.2).  Index 0 is implicitly a block start.
        """
        starts = sorted({0, *pivots})
        for pivot in starts:
            if not 0 <= pivot < len(self.layers):
                raise ValueError(f"pivot {pivot} out of range")
        stops = starts[1:] + [len(self.layers)]
        return list(zip(starts, stops))

    def fixed_blocks(self, block_size: int) -> list[tuple[int, int]]:
        """Contiguous blocks of ``block_size`` layers (last one may be short)."""
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        return [(start, min(start + block_size, len(self.layers)))
                for start in range(0, len(self.layers), block_size)]


def chain(name: str, layers: list[LayerSpec]) -> ModelGraph:
    """Convenience constructor for a branch-free model."""
    return ModelGraph(name=name, layers=tuple(layers))
