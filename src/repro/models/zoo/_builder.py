"""Small helpers shared by the zoo model builders.

The builders emit explicit conv / batch-norm / relu layers; callers that
want the compiler's view apply :meth:`ModelGraph.fuse_elementwise`, which
collapses the epilogues exactly like the paper's fusion-enabled
auto-scheduler run does.
"""

from __future__ import annotations

from repro.models.layers import Conv2D, DepthwiseConv2D, Elementwise, LayerSpec


class LayerBuilder:
    """Accumulates layers for a chain-style model definition."""

    def __init__(self) -> None:
        self.layers: list[LayerSpec] = []

    def add(self, layer: LayerSpec) -> LayerSpec:
        self.layers.append(layer)
        return layer

    def conv(self, name: str, size: int, c_in: int, c_out: int,
             kernel: int = 3, stride: int = 1, relu: bool = True,
             batch_norm: bool = True, width: int | None = None) -> Conv2D:
        """Conv2D followed by optional batch-norm and ReLU epilogues."""
        conv = Conv2D(name=name, height=size, width=width or size,
                      in_channels=c_in, out_channels=c_out,
                      kernel_h=kernel, kernel_w=kernel, stride=stride)
        self.add(conv)
        out_elems = conv.out_height * conv.out_width * conv.out_channels
        if batch_norm:
            self.add(Elementwise(name=f"{name}.bn", elements=out_elems,
                                 ops_per_element=2))
        if relu:
            self.add(Elementwise(name=f"{name}.relu", elements=out_elems))
        return conv

    def dwconv(self, name: str, size: int, channels: int, kernel: int = 3,
               stride: int = 1, relu: bool = True,
               batch_norm: bool = True) -> DepthwiseConv2D:
        """Depthwise conv followed by optional batch-norm and ReLU."""
        conv = DepthwiseConv2D(name=name, height=size, width=size,
                               channels=channels, kernel_h=kernel,
                               kernel_w=kernel, stride=stride)
        self.add(conv)
        out_elems = conv.out_height * conv.out_width * conv.channels
        if batch_norm:
            self.add(Elementwise(name=f"{name}.bn", elements=out_elems,
                                 ops_per_element=2))
        if relu:
            self.add(Elementwise(name=f"{name}.relu", elements=out_elems))
        return conv

    def residual_add(self, name: str, elements: int,
                     relu: bool = True) -> None:
        """Residual addition (+ optional ReLU) as fusable epilogues."""
        self.add(Elementwise(name=name, elements=elements,
                             reads_second_input=True))
        if relu:
            self.add(Elementwise(name=f"{name}.relu", elements=elements))
