"""EfficientNet-B0 (Tan & Le, ICML 2019) at 224x224.

Includes the squeeze-and-excitation (SE) sub-blocks as explicit
global-pool + two tiny GEMMs + channel-scale layers, which gives the model
its characteristic mix of large convolutions and near-zero-cost layers —
relevant to the scheduling-granularity experiments.
"""

from __future__ import annotations

from repro.models.graph import ModelGraph, chain
from repro.models.layers import Dense, Elementwise, Pool
from repro.models.zoo._builder import LayerBuilder

#: MBConv stage configs: (expansion, out channels, repeats, first stride,
#: kernel size) — Table 1 of the EfficientNet paper.
_STAGES = (
    (1, 16, 1, 1, 3),
    (6, 24, 2, 2, 3),
    (6, 40, 2, 2, 5),
    (6, 80, 3, 2, 3),
    (6, 112, 3, 1, 5),
    (6, 192, 4, 2, 5),
    (6, 320, 1, 1, 3),
)

#: SE bottleneck ratio relative to the block *input* channels.
_SE_RATIO = 0.25


def _squeeze_excite(b: LayerBuilder, tag: str, size: int, hidden: int,
                    c_in: int) -> None:
    """Global pool -> reduce GEMM -> expand GEMM -> channel scale."""
    se_mid = max(1, int(c_in * _SE_RATIO))
    b.add(Pool(name=f"{tag}.se_pool", height=size, width=size,
               channels=hidden, kernel=size, stride=size))
    b.add(Dense(name=f"{tag}.se_reduce", m=1, n=se_mid, k=hidden))
    b.add(Dense(name=f"{tag}.se_expand", m=1, n=hidden, k=se_mid))
    b.add(Elementwise(name=f"{tag}.se_scale", elements=size * size * hidden,
                      reads_second_input=True))


def _mbconv(b: LayerBuilder, tag: str, size: int, c_in: int, c_out: int,
            expansion: int, stride: int, kernel: int) -> int:
    """Emit one MBConv block; returns the output spatial size."""
    hidden = c_in * expansion
    out_size = max(1, size // stride)
    if expansion != 1:
        b.conv(f"{tag}.expand", size, c_in, hidden, kernel=1)
    b.dwconv(f"{tag}.dw", size, hidden, kernel=kernel, stride=stride)
    _squeeze_excite(b, tag, out_size, hidden, c_in)
    b.conv(f"{tag}.project", out_size, hidden, c_out, kernel=1, relu=False)
    if stride == 1 and c_in == c_out:
        b.residual_add(f"{tag}.add", out_size * out_size * c_out, relu=False)
    return out_size


def efficientnet_b0() -> ModelGraph:
    """Build EfficientNet-B0 as an explicit layer chain (pre-fusion)."""
    b = LayerBuilder()
    b.conv("stem", 224, 3, 32, kernel=3, stride=2)

    size, c_in = 112, 32
    for stage_idx, (t, c, n, s, k) in enumerate(_STAGES, 1):
        for block_idx in range(n):
            stride = s if block_idx == 0 else 1
            size = _mbconv(b, f"block{stage_idx}.{block_idx}",
                           size, c_in, c, t, stride, k)
            c_in = c

    b.conv("head", size, c_in, 1280, kernel=1)
    b.add(Pool(name="avgpool", height=size, width=size, channels=1280,
               kernel=size, stride=size))
    b.add(Dense(name="fc", m=1, n=1000, k=1280))
    return chain("efficientnet_b0", b.layers)
