"""BERT-Large (Devlin et al., NAACL 2019), SQuAD serving configuration.

MLPerf runs sequence length 384; at that size the modelled 64-core CPU
needs ~110 ms in isolation against the 130 ms QoS target, leaving no
co-location headroom at all (real CPU submissions serve single-digit QPS
there).  Per the reproduction's substitution rule we serve sequence
length 256 — the same architecture with QoS headroom comparable to the
paper's testbed.

Each encoder layer is lowered to the GEMMs a CPU compiler actually emits:
fused QKV projection, per-head score and context batched GEMMs (folded into
single GEMM shapes), output projection, and the two FFN GEMMs, with softmax
/ layer-norm / GELU as element-wise layers.
"""

from __future__ import annotations

from repro.models.graph import ModelGraph, chain
from repro.models.layers import Dense, Elementwise, LayerSpec

_LAYERS = 24
_HIDDEN = 1024
_HEADS = 16
_HEAD_DIM = _HIDDEN // _HEADS
_FFN = 4096
_SEQ = 256


def _encoder_layer(tag: str) -> list[LayerSpec]:
    seq, hid = _SEQ, _HIDDEN
    layers: list[LayerSpec] = [
        Dense(name=f"{tag}.qkv", m=seq, n=3 * hid, k=hid),
        # Batched per-head GEMMs folded: heads x (seq x seq x head_dim).
        Dense(name=f"{tag}.scores", m=_HEADS * seq, n=seq, k=_HEAD_DIM),
        Elementwise(name=f"{tag}.softmax", elements=_HEADS * seq * seq,
                    ops_per_element=4),
        Dense(name=f"{tag}.context", m=_HEADS * seq, n=_HEAD_DIM, k=seq),
        Dense(name=f"{tag}.out_proj", m=seq, n=hid, k=hid),
        Elementwise(name=f"{tag}.add_ln1", elements=seq * hid,
                    ops_per_element=4, reads_second_input=True),
        Dense(name=f"{tag}.ffn1", m=seq, n=_FFN, k=hid),
        Elementwise(name=f"{tag}.gelu", elements=seq * _FFN,
                    ops_per_element=6),
        Dense(name=f"{tag}.ffn2", m=seq, n=hid, k=_FFN),
        Elementwise(name=f"{tag}.add_ln2", elements=seq * hid,
                    ops_per_element=4, reads_second_input=True),
    ]
    return layers


def bert_large() -> ModelGraph:
    """Build BERT-Large (seq len 256) as an explicit layer chain."""
    layers: list[LayerSpec] = [
        Elementwise(name="embeddings", elements=_SEQ * _HIDDEN,
                    ops_per_element=3),
    ]
    for idx in range(_LAYERS):
        layers.extend(_encoder_layer(f"encoder{idx}"))
    # SQuAD span head.
    layers.append(Dense(name="qa_head", m=_SEQ, n=2, k=_HIDDEN))
    return chain("bert_large", layers)
