"""ResNet-50 (He et al., CVPR 2016) at 224x224, the paper's workhorse model.

Layer census after element-wise fusion: 53 convolutions (1 stem + 48
bottleneck convs + 4 downsample projections), 2 pools and 1 GEMM — matching
the "55 layers (53 conv and 2 GEMM)" accounting of paper Sec. 3.2 up to how
pools are counted.
"""

from __future__ import annotations

from repro.models.graph import ModelGraph, chain
from repro.models.layers import Dense, Pool
from repro.models.zoo._builder import LayerBuilder

#: (blocks, mid_channels, out_channels, first_stride) per stage.
_STAGES = (
    (3, 64, 256, 1),
    (4, 128, 512, 2),
    (6, 256, 1024, 2),
    (3, 512, 2048, 2),
)


def _bottleneck(b: LayerBuilder, tag: str, size: int, c_in: int,
                c_mid: int, c_out: int, stride: int,
                project: bool) -> int:
    """Emit one bottleneck; returns the output spatial size."""
    out_size = max(1, size // stride)
    b.conv(f"{tag}.conv1", size, c_in, c_mid, kernel=1)
    b.conv(f"{tag}.conv2", size, c_mid, c_mid, kernel=3, stride=stride)
    b.conv(f"{tag}.conv3", out_size, c_mid, c_out, kernel=1, relu=False)
    if project:
        b.conv(f"{tag}.downsample", size, c_in, c_out, kernel=1,
               stride=stride, relu=False)
    b.residual_add(f"{tag}.add", out_size * out_size * c_out)
    return out_size


def resnet50() -> ModelGraph:
    """Build ResNet-50 as an explicit layer chain (pre-fusion)."""
    b = LayerBuilder()
    b.conv("conv1", 224, 3, 64, kernel=7, stride=2)
    b.add(Pool(name="maxpool", height=112, width=112, channels=64,
               kernel=3, stride=2))

    size, c_in = 56, 64
    for stage_idx, (blocks, c_mid, c_out, first_stride) in enumerate(_STAGES, 1):
        for block_idx in range(blocks):
            stride = first_stride if block_idx == 0 else 1
            project = block_idx == 0
            size = _bottleneck(b, f"layer{stage_idx}.{block_idx}",
                               size, c_in, c_mid, c_out, stride, project)
            c_in = c_out

    b.add(Pool(name="avgpool", height=7, width=7, channels=2048,
               kernel=7, stride=7))
    b.add(Dense(name="fc", m=1, n=1000, k=2048))
    return chain("resnet50", b.layers)
