"""Concrete model builders (one module per paper Table 2 model)."""

from repro.models.zoo.bert import bert_large
from repro.models.zoo.efficientnet import efficientnet_b0
from repro.models.zoo.googlenet import googlenet
from repro.models.zoo.mobilenet import mobilenet_v2
from repro.models.zoo.resnet import resnet50
from repro.models.zoo.ssd import ssd_resnet34
from repro.models.zoo.yolo import tiny_yolov2

__all__ = [
    "bert_large", "efficientnet_b0", "googlenet", "mobilenet_v2",
    "resnet50", "ssd_resnet34", "tiny_yolov2",
]
