"""SSD with a ResNet-34 backbone, the MLPerf heavy object-detection model.

MLPerf runs SSD-ResNet34 at 1200x1200; on the modelled 64-core CPU that
would exceed the 100 ms QoS target even in isolation, so — following the
reproduction's substitution rule — we build the same architecture at
800x800, which keeps it the by-far heaviest vision workload (~10x ResNet-50)
while leaving QoS headroom comparable to the paper's testbed.
"""

from __future__ import annotations

from repro.models.graph import ModelGraph, chain
from repro.models.layers import Pool
from repro.models.zoo._builder import LayerBuilder

_INPUT = 800

#: ResNet-34 stages: (basic blocks, channels, first stride).
_STAGES = (
    (3, 64, 1),
    (4, 128, 2),
    (6, 256, 2),
)

#: Extra SSD feature layers: (tag, mid channels, out channels, stride).
_EXTRAS = (
    ("extra1", 256, 512, 2),
    ("extra2", 256, 512, 2),
    ("extra3", 128, 256, 2),
    ("extra4", 128, 256, 2),
)

#: Detection heads: (feature size, channels, anchors per location).
_HEADS = (
    (100, 256, 4),
    (50, 512, 6),
    (25, 512, 6),
    (13, 256, 6),
    (7, 256, 4),
    (4, 256, 4),
)

_NUM_CLASSES = 81  # COCO classes + background


def _basic_block(b: LayerBuilder, tag: str, size: int, c_in: int,
                 c_out: int, stride: int) -> int:
    out_size = max(1, size // stride)
    b.conv(f"{tag}.conv1", size, c_in, c_out, kernel=3, stride=stride)
    b.conv(f"{tag}.conv2", out_size, c_out, c_out, kernel=3, relu=False)
    if stride != 1 or c_in != c_out:
        b.conv(f"{tag}.downsample", size, c_in, c_out, kernel=1,
               stride=stride, relu=False)
    b.residual_add(f"{tag}.add", out_size * out_size * c_out)
    return out_size


def ssd_resnet34() -> ModelGraph:
    """Build SSD-ResNet34 as an explicit layer chain (pre-fusion)."""
    b = LayerBuilder()
    b.conv("stem", _INPUT, 3, 64, kernel=7, stride=2)
    b.add(Pool(name="stem.pool", height=_INPUT // 2, width=_INPUT // 2,
               channels=64, kernel=3, stride=2))

    size, c_in = _INPUT // 4, 64
    for stage_idx, (blocks, channels, first_stride) in enumerate(_STAGES, 1):
        for block_idx in range(blocks):
            stride = first_stride if block_idx == 0 else 1
            size = _basic_block(b, f"layer{stage_idx}.{block_idx}",
                                size, c_in, channels, stride)
            c_in = channels

    for tag, c_mid, c_out, stride in _EXTRAS:
        b.conv(f"{tag}.reduce", size, c_in, c_mid, kernel=1)
        size = max(1, size // stride)
        b.conv(f"{tag}.conv", size * stride, c_mid, c_out,
               kernel=3, stride=stride)
        c_in = c_out

    for idx, (feat_size, channels, anchors) in enumerate(_HEADS, 1):
        b.conv(f"head{idx}.loc", feat_size, channels, anchors * 4,
               kernel=3, relu=False, batch_norm=False)
        b.conv(f"head{idx}.conf", feat_size, channels,
               anchors * _NUM_CLASSES, kernel=3, relu=False,
               batch_norm=False)
    return chain("ssd_resnet34", b.layers)
