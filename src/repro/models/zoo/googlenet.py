"""GoogLeNet / Inception-v1 (Szegedy et al., CVPR 2015) at 224x224.

Inception branches are emitted in a fixed order (1x1, 3x3 tower, 5x5 tower,
pool tower) and executed in that linearised order, as the paper's schedulers
also treat models as layer sequences.
"""

from __future__ import annotations

from repro.models.graph import ModelGraph, chain
from repro.models.layers import Dense, Pool
from repro.models.zoo._builder import LayerBuilder

#: Inception module channel configs:
#: (c_in, b1, b2_reduce, b2, b3_reduce, b3, b4_pool_proj)
_INCEPTION = {
    "3a": (192, 64, 96, 128, 16, 32, 32),
    "3b": (256, 128, 128, 192, 32, 96, 64),
    "4a": (480, 192, 96, 208, 16, 48, 64),
    "4b": (512, 160, 112, 224, 24, 64, 64),
    "4c": (512, 128, 128, 256, 24, 64, 64),
    "4d": (512, 112, 144, 288, 32, 64, 64),
    "4e": (528, 256, 160, 320, 32, 128, 128),
    "5a": (832, 256, 160, 320, 32, 128, 128),
    "5b": (832, 384, 192, 384, 48, 128, 128),
}


def _inception(b: LayerBuilder, tag: str, size: int) -> int:
    """Emit one inception module; returns its output channel count."""
    c_in, b1, b2r, b2, b3r, b3, b4 = _INCEPTION[tag]
    b.conv(f"{tag}.b1", size, c_in, b1, kernel=1)
    b.conv(f"{tag}.b2_reduce", size, c_in, b2r, kernel=1)
    b.conv(f"{tag}.b2", size, b2r, b2, kernel=3)
    b.conv(f"{tag}.b3_reduce", size, c_in, b3r, kernel=1)
    b.conv(f"{tag}.b3", size, b3r, b3, kernel=5)
    b.add(Pool(name=f"{tag}.pool", height=size, width=size,
               channels=c_in, kernel=3, stride=1))
    b.conv(f"{tag}.b4_proj", size, c_in, b4, kernel=1)
    return b1 + b2 + b3 + b4


def googlenet() -> ModelGraph:
    """Build GoogLeNet as an explicit layer chain (pre-fusion)."""
    b = LayerBuilder()
    b.conv("conv1", 224, 3, 64, kernel=7, stride=2)
    b.add(Pool(name="pool1", height=112, width=112, channels=64,
               kernel=3, stride=2))
    b.conv("conv2_reduce", 56, 64, 64, kernel=1)
    b.conv("conv2", 56, 64, 192, kernel=3)
    b.add(Pool(name="pool2", height=56, width=56, channels=192,
               kernel=3, stride=2))

    _inception(b, "3a", 28)
    _inception(b, "3b", 28)
    b.add(Pool(name="pool3", height=28, width=28, channels=480,
               kernel=3, stride=2))
    for tag in ("4a", "4b", "4c", "4d", "4e"):
        _inception(b, tag, 14)
    b.add(Pool(name="pool4", height=14, width=14, channels=832,
               kernel=3, stride=2))
    _inception(b, "5a", 7)
    _inception(b, "5b", 7)

    b.add(Pool(name="avgpool", height=7, width=7, channels=1024,
               kernel=7, stride=7))
    b.add(Dense(name="fc", m=1, n=1000, k=1024))
    return chain("googlenet", b.layers)
