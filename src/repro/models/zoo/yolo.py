"""Tiny-YOLOv2 (Redmon & Farhadi, CVPR 2017) at 416x416, VOC head."""

from __future__ import annotations

from repro.models.graph import ModelGraph, chain
from repro.models.layers import Pool
from repro.models.zoo._builder import LayerBuilder

#: Backbone convs: (out channels, pool stride after the conv; 0 = no pool).
_BACKBONE = (
    (16, 2),
    (32, 2),
    (64, 2),
    (128, 2),
    (256, 2),
    (512, 1),
)


def tiny_yolov2() -> ModelGraph:
    """Build Tiny-YOLOv2 as an explicit layer chain (pre-fusion)."""
    b = LayerBuilder()
    size, c_in = 416, 3
    for idx, (c_out, pool_stride) in enumerate(_BACKBONE, 1):
        b.conv(f"conv{idx}", size, c_in, c_out, kernel=3)
        b.add(Pool(name=f"pool{idx}", height=size, width=size,
                   channels=c_out, kernel=2, stride=pool_stride))
        size = max(1, size // pool_stride)
        c_in = c_out

    b.conv("conv7", size, 512, 1024, kernel=3)
    b.conv("conv8", size, 1024, 1024, kernel=3)
    # Detection head: 5 anchors x (5 box coords + 20 VOC classes) = 125.
    b.conv("head", size, 1024, 125, kernel=1, relu=False, batch_norm=False)
    return chain("tiny_yolov2", b.layers)
