"""MobileNet-V2 (Sandler et al., CVPR 2018) at 224x224."""

from __future__ import annotations

from repro.models.graph import ModelGraph, chain
from repro.models.layers import Dense, Pool
from repro.models.zoo._builder import LayerBuilder

#: Inverted-residual stage configs: (expansion t, out channels c, repeats n,
#: first stride s) — Table 2 of the MobileNet-V2 paper.
_STAGES = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


def _inverted_residual(b: LayerBuilder, tag: str, size: int, c_in: int,
                       c_out: int, expansion: int, stride: int) -> int:
    """Emit one inverted-residual block; returns output spatial size."""
    hidden = c_in * expansion
    out_size = max(1, size // stride)
    if expansion != 1:
        b.conv(f"{tag}.expand", size, c_in, hidden, kernel=1)
    b.dwconv(f"{tag}.dw", size, hidden, kernel=3, stride=stride)
    b.conv(f"{tag}.project", out_size, hidden, c_out, kernel=1, relu=False)
    if stride == 1 and c_in == c_out:
        b.residual_add(f"{tag}.add", out_size * out_size * c_out, relu=False)
    return out_size


def mobilenet_v2() -> ModelGraph:
    """Build MobileNet-V2 as an explicit layer chain (pre-fusion)."""
    b = LayerBuilder()
    b.conv("conv1", 224, 3, 32, kernel=3, stride=2)

    size, c_in = 112, 32
    for stage_idx, (t, c, n, s) in enumerate(_STAGES, 1):
        for block_idx in range(n):
            stride = s if block_idx == 0 else 1
            size = _inverted_residual(
                b, f"block{stage_idx}.{block_idx}", size, c_in, c, t, stride)
            c_in = c

    b.conv("conv_last", size, c_in, 1280, kernel=1)
    b.add(Pool(name="avgpool", height=size, width=size, channels=1280,
               kernel=size, stride=size))
    b.add(Dense(name="fc", m=1, n=1000, k=1280))
    return chain("mobilenet_v2", b.layers)
