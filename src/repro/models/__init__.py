"""DNN model substrate: layer specs, graphs, and the MLPerf-style zoo."""

from repro.models.graph import ModelGraph, chain
from repro.models.layers import (
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Elementwise,
    FusedLayer,
    GemmShape,
    LayerSpec,
    Pool,
)
from repro.models.registry import (
    HEAVY,
    LIGHT,
    MEDIUM,
    ModelEntry,
    get_entry,
    get_model,
    model_names,
    models_by_class,
)

__all__ = [
    "Conv2D", "Dense", "DepthwiseConv2D", "Elementwise", "FusedLayer",
    "GemmShape", "LayerSpec", "Pool", "ModelGraph", "chain",
    "ModelEntry", "get_entry", "get_model", "model_names",
    "models_by_class", "LIGHT", "MEDIUM", "HEAVY",
]
