"""Model registry and the paper's Table 2 serving configuration.

Each entry binds a zoo builder to its MLPerf-guided QoS (latency) target and
workload class.  Models are built once and cached; callers receive the
*fused* graph (element-wise epilogues folded into their compute layers),
which is the form the compiler and schedulers consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.models.graph import ModelGraph
from repro.models.zoo.bert import bert_large
from repro.models.zoo.efficientnet import efficientnet_b0
from repro.models.zoo.googlenet import googlenet
from repro.models.zoo.mobilenet import mobilenet_v2
from repro.models.zoo.resnet import resnet50
from repro.models.zoo.ssd import ssd_resnet34
from repro.models.zoo.yolo import tiny_yolov2

#: Workload classes from paper Table 2.
LIGHT = "light"
MEDIUM = "medium"
HEAVY = "heavy"

WORKLOAD_CLASSES = (LIGHT, MEDIUM, HEAVY)


@dataclass(frozen=True)
class ModelEntry:
    """Registry record: builder + Table 2 serving parameters."""

    name: str
    builder: Callable[[], ModelGraph]
    qos_ms: float
    workload_class: str
    category: str

    @property
    def qos_s(self) -> float:
        return self.qos_ms / 1e3


#: Paper Table 2, verbatim QoS targets.
_REGISTRY: dict[str, ModelEntry] = {
    entry.name: entry
    for entry in (
        ModelEntry("resnet50", resnet50, 15.0, MEDIUM, "classification"),
        ModelEntry("googlenet", googlenet, 15.0, MEDIUM, "classification"),
        ModelEntry("efficientnet_b0", efficientnet_b0, 10.0, LIGHT,
                   "classification"),
        ModelEntry("mobilenet_v2", mobilenet_v2, 10.0, LIGHT,
                   "classification"),
        ModelEntry("ssd_resnet34", ssd_resnet34, 100.0, HEAVY, "detection"),
        ModelEntry("tiny_yolov2", tiny_yolov2, 10.0, LIGHT, "detection"),
        ModelEntry("bert_large", bert_large, 130.0, HEAVY, "nmt"),
    )
}

#: Friendly aliases accepted by :func:`get_entry`.
_ALIASES = {
    "resnet-50": "resnet50",
    "efficientnet": "efficientnet_b0",
    "mobilenet": "mobilenet_v2",
    "mobilenet-v2": "mobilenet_v2",
    "ssd": "ssd_resnet34",
    "tiny-yolov2": "tiny_yolov2",
    "bert": "bert_large",
    "bert-large": "bert_large",
}


def model_names() -> list[str]:
    """All canonical model names, Table 2 order."""
    return list(_REGISTRY)


def get_entry(name: str) -> ModelEntry:
    """Look up a registry entry by canonical name or alias."""
    key = name.lower()
    key = _ALIASES.get(key, key)
    if key not in _REGISTRY:
        known = ", ".join(_REGISTRY)
        raise KeyError(f"unknown model {name!r}; known models: {known}")
    return _REGISTRY[key]


@lru_cache(maxsize=None)
def get_model(name: str, fused: bool = True) -> ModelGraph:
    """Build (and cache) a model graph.

    Parameters
    ----------
    name:
        Canonical name or alias (see :func:`model_names`).
    fused:
        When true (default), element-wise epilogues are folded into their
        compute layers — the compiler's view of the model.
    """
    entry = get_entry(name)
    graph = entry.builder()
    if fused:
        graph = graph.fuse_elementwise()
    return graph


def models_by_class(workload_class: str) -> list[ModelEntry]:
    """All Table 2 entries in one workload class (light/medium/heavy)."""
    if workload_class not in WORKLOAD_CLASSES:
        raise ValueError(f"unknown workload class {workload_class!r}")
    return [e for e in _REGISTRY.values()
            if e.workload_class == workload_class]
