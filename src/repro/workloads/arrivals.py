"""Arrival-process shapes behind the scenario library.

Each process is a frozen *shape*: its parameters describe burstiness,
periodicity, or churn, and :meth:`ArrivalProcess.sample_times` scales
that shape to any offered load.  Every generator draws exclusively from
the ``numpy`` generator it is handed, so a fixed seed reproduces the
stream bit for bit — the same contract the legacy Poisson path has
always had.

Two invariants make the shapes composable with capacity searches:

* **Rate normalisation** — for the stationary processes (Poisson,
  uniform, MMPP, tenant churn) and whole periods of the diurnal ramp,
  the long-run mean arrival rate equals ``qps`` exactly.  The
  flash-crowd process deliberately exceeds ``qps`` inside its spike
  window (the transient overload *is* the scenario) and matches it
  outside.
* **Span-relative time constants** — a ``count``-query stream spans
  roughly ``count / qps`` seconds, so a burst cycle fixed in absolute
  seconds would degenerate as a bisection drives ``qps`` up (the stream
  would end before the first burst).  Non-stationary shapes therefore
  express their time constants as fractions of the expected span: a
  capacity search probes the *same shape* at every offered load.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ArrivalProcess(abc.ABC):
    """A load *shape* scalable to any mean offered rate.

    Subclasses implement :meth:`sample_times`; frozen-dataclass equality
    lets scenario tuples be compared across process boundaries (the
    sweep pools reject mismatched scenarios by ``==``).
    """

    @property
    def kind(self) -> str:
        return type(self).__name__

    @abc.abstractmethod
    def sample_times(self, qps: float, count: int,
                     rng: np.random.Generator) -> np.ndarray:
        """``count`` increasing arrival instants with mean rate ``qps``."""

    def _validate(self, qps: float, count: int) -> None:
        if qps <= 0:
            raise ValueError("qps must be positive")
        if count <= 0:
            raise ValueError("count must be positive")


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """The paper's stationary Poisson stream (MLPerf server scenario).

    Draw-for-draw identical to the legacy
    :func:`repro.serving.workload.poisson_queries` arrival generation:
    one vectorised exponential gap draw, then a cumulative sum.
    """

    def sample_times(self, qps: float, count: int,
                     rng: np.random.Generator) -> np.ndarray:
        self._validate(qps, count)
        gaps = rng.exponential(scale=1.0 / qps, size=count)
        return np.cumsum(gaps)


@dataclass(frozen=True)
class UniformArrivals(ArrivalProcess):
    """Deterministic uniform arrivals (the Fig. 3 granularity protocol).

    Consumes no randomness: arrival ``i`` lands at ``(i + 1) / qps``,
    matching :func:`repro.serving.workload.uniform_queries`.
    """

    def sample_times(self, qps: float, count: int,
                     rng: np.random.Generator) -> np.ndarray:
        self._validate(qps, count)
        period = 1.0 / qps
        return period * np.arange(1, count + 1, dtype=float)


@dataclass(frozen=True)
class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (bursty load).

    The process alternates between a *calm* and a *burst* state with
    exponentially distributed dwell times; arrivals are Poisson at the
    state's rate.  ``burst_ratio`` is the burst/calm rate ratio,
    ``burst_fraction`` the long-run fraction of *time* spent bursting,
    and ``cycles`` the expected number of calm+burst cycles per stream
    (span-relative, see the module docstring).  Rates solve::

        rate_calm * (1 - f) + rate_calm * ratio * f = qps

    so the time-averaged rate is exactly ``qps``.  Sampling uses the
    memorylessness race between "next arrival at the state rate" and
    "state flips": whichever exponential fires first wins, which is an
    exact MMPP simulation (no thinning bias).
    """

    burst_ratio: float = 6.0
    burst_fraction: float = 0.2
    cycles: float = 5.0

    def __post_init__(self) -> None:
        if self.burst_ratio <= 1.0:
            raise ValueError("burst_ratio must exceed 1")
        if not 0.0 < self.burst_fraction < 1.0:
            raise ValueError("burst_fraction must be in (0, 1)")
        if self.cycles <= 0.0:
            raise ValueError("cycles must be positive")

    def state_rates(self, qps: float) -> tuple[float, float]:
        """(calm rate, burst rate) whose time average is ``qps``."""
        f = self.burst_fraction
        calm = qps / ((1.0 - f) + f * self.burst_ratio)
        return calm, calm * self.burst_ratio

    def dwell_means(self, qps: float, count: int) -> tuple[float, float]:
        """Mean (calm, burst) dwell times for a ``count``-query stream."""
        cycle_s = (count / qps) / self.cycles
        return (cycle_s * (1.0 - self.burst_fraction),
                cycle_s * self.burst_fraction)

    def sample_times(self, qps: float, count: int,
                     rng: np.random.Generator) -> np.ndarray:
        self._validate(qps, count)
        rates = self.state_rates(qps)
        dwells = self.dwell_means(qps, count)
        times = np.empty(count)
        now = 0.0
        state = 0  # start calm: the steady regime, bursts punctuate it
        produced = 0
        while produced < count:
            gap = rng.exponential(scale=1.0 / rates[state])
            flip = rng.exponential(scale=dwells[state])
            if flip < gap:
                now += flip
                state = 1 - state
                continue
            now += gap
            times[produced] = now
            produced += 1
        return times


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal diurnal ramp: rate(t) = qps * (1 + a * sin(2 pi t / T)).

    An inhomogeneous Poisson process sampled by Lewis-Shedler thinning
    against the peak rate ``qps * (1 + amplitude)``; the time-averaged
    rate over whole periods is exactly ``qps``.  ``periods`` compresses
    that many simulated "days" into the expected stream span
    (span-relative, see the module docstring).
    """

    amplitude: float = 0.6
    periods: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 < self.amplitude < 1.0:
            raise ValueError("amplitude must be in (0, 1)")
        if self.periods <= 0.0:
            raise ValueError("periods must be positive")

    def period_s(self, qps: float, count: int) -> float:
        return (count / qps) / self.periods

    def rate_at(self, qps: float, t: float, period_s: float) -> float:
        return qps * (1.0 + self.amplitude
                      * math.sin(2.0 * math.pi * t / period_s))

    def sample_times(self, qps: float, count: int,
                     rng: np.random.Generator) -> np.ndarray:
        self._validate(qps, count)
        period = self.period_s(qps, count)
        peak = qps * (1.0 + self.amplitude)
        times = np.empty(count)
        now = 0.0
        produced = 0
        while produced < count:
            now += rng.exponential(scale=1.0 / peak)
            if rng.random() * peak <= self.rate_at(qps, now, period):
                times[produced] = now
                produced += 1
        return times


@dataclass(frozen=True)
class FlashCrowdArrivals(ArrivalProcess):
    """Baseline Poisson load with one flash-crowd spike window.

    Rate is ``qps`` outside the window and ``spike_ratio * qps`` inside
    it; the window starts ``start_frac`` of the way into the expected
    stream span and lasts ``width_frac`` of it (span-relative, see the
    module docstring) — the transient overload regime admission control
    exists for.  The stream's realised mean rate therefore *exceeds*
    ``qps``; that is the scenario, not a bug.
    """

    spike_ratio: float = 8.0
    start_frac: float = 0.4
    width_frac: float = 0.15

    def __post_init__(self) -> None:
        if self.spike_ratio <= 1.0:
            raise ValueError("spike_ratio must exceed 1")
        if self.start_frac < 0.0:
            raise ValueError("start_frac must be non-negative")
        if self.width_frac <= 0.0:
            raise ValueError("width_frac must be positive")

    def spike_window(self, qps: float, count: int) -> tuple[float, float]:
        span = count / qps
        start = span * self.start_frac
        return start, start + span * self.width_frac

    def sample_times(self, qps: float, count: int,
                     rng: np.random.Generator) -> np.ndarray:
        self._validate(qps, count)
        start, stop = self.spike_window(qps, count)
        peak = qps * self.spike_ratio
        times = np.empty(count)
        now = 0.0
        produced = 0
        while produced < count:
            now += rng.exponential(scale=1.0 / peak)
            rate = peak if start <= now < stop else qps
            if rng.random() * peak <= rate:
                times[produced] = now
                produced += 1
        return times


@dataclass(frozen=True)
class TenantChurnArrivals(ArrivalProcess):
    """Tenant join/leave churn over a shared service (M/M/inf tenants).

    ``mean_tenants`` independent tenants are active in steady state,
    each issuing Poisson queries; tenants leave at a per-tenant rate
    chosen so each turns over ``turnovers`` times per expected stream
    span (span-relative, see the module docstring), and join at rate
    ``mean_tenants`` times that, so the active population is an
    M/M/inf birth-death process whose mean is ``mean_tenants``.  The
    per-tenant query rate is ``qps / mean_tenants``, making the
    long-run mean arrival rate ``qps`` while the instantaneous rate
    wanders with the population.  Simulated exactly by Gillespie
    competition between query arrival, tenant join, and tenant leave.
    """

    mean_tenants: int = 8
    turnovers: float = 4.0

    def __post_init__(self) -> None:
        if self.mean_tenants < 1:
            raise ValueError("mean_tenants must be at least 1")
        if self.turnovers <= 0.0:
            raise ValueError("turnovers must be positive")

    def sample_times(self, qps: float, count: int,
                     rng: np.random.Generator) -> np.ndarray:
        self._validate(qps, count)
        per_tenant = qps / self.mean_tenants
        churn_per_s = self.turnovers / (count / qps)
        join_rate = self.mean_tenants * churn_per_s
        times = np.empty(count)
        now = 0.0
        active = self.mean_tenants  # start at the steady-state mean
        produced = 0
        while produced < count:
            query_rate = active * per_tenant
            leave_rate = active * churn_per_s
            total = query_rate + join_rate + leave_rate
            now += rng.exponential(scale=1.0 / total)
            draw = rng.random() * total
            if draw < query_rate:
                times[produced] = now
                produced += 1
            elif draw < query_rate + join_rate:
                active += 1
            elif active > 0:
                active -= 1
        return times


@dataclass(frozen=True)
class TraceArrivals(ArrivalProcess):
    """Replay of recorded arrival instants (see ``repro.workloads.trace``).

    Ignores ``qps`` and the generator entirely: the times are the trace.
    ``count`` may truncate the trace but never extend it.
    """

    times: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.times:
            raise ValueError("trace has no arrivals")
        if any(b < a for a, b in zip(self.times, self.times[1:])):
            raise ValueError("trace times must be non-decreasing")

    def sample_times(self, qps: float, count: int,
                     rng: np.random.Generator) -> np.ndarray:
        if count > len(self.times):
            raise ValueError(
                f"trace holds {len(self.times)} arrivals, {count} asked")
        return np.array(self.times[:count], dtype=float)
