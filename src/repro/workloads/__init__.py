"""Trace-driven scenario subsystem: arrival processes, traces, scenarios.

The paper evaluates under a single stationary Poisson stream; real
datacenter traces show diurnal ramps, bursts, flash crowds, and tenant
churn.  This package opens those scenarios to every experiment driver:

* :mod:`repro.workloads.arrivals` — :class:`ArrivalProcess` shapes
  (Poisson, MMPP bursty, diurnal, flash crowd, tenant churn, uniform),
  all normalised so ``qps`` is the process's long-run mean rate.
* :mod:`repro.workloads.trace` — :class:`ArrivalTrace` record/replay:
  save any generated stream to schema-versioned JSON and replay it
  bit-identically into any engine or fleet.
* :mod:`repro.workloads.scenario` — :class:`ScenarioSpec` combining
  arrival process x workload mix x QoS class scaling, plus the named
  scenario registry (``get_scenario("bursty")`` ...).

The ``"poisson"`` scenario is the library default and reproduces the
legacy :func:`repro.serving.workload.poisson_queries` stream draw for
draw, so pre-scenario results stay bit-identical.
"""

from repro.workloads.arrivals import (
    ArrivalProcess,
    DiurnalArrivals,
    FlashCrowdArrivals,
    MMPPArrivals,
    PoissonArrivals,
    TenantChurnArrivals,
    TraceArrivals,
    UniformArrivals,
)
from repro.workloads.requests import (
    ClosedLoopSpec,
    ClosedLoopTenant,
    PipelineQuery,
    PipelineSpec,
    RequestStream,
    build_pipeline,
)
from repro.workloads.scenario import (
    SCENARIO_NAMES,
    ScenarioSpec,
    default_scenario,
    get_scenario,
    register_scenario,
    resolve_scenario,
    scenario_names,
)
from repro.workloads.trace import (
    TRACE_SCHEMA,
    ArrivalTrace,
    record_trace,
)

__all__ = [
    "ArrivalProcess", "PoissonArrivals", "UniformArrivals",
    "MMPPArrivals", "DiurnalArrivals", "FlashCrowdArrivals",
    "TenantChurnArrivals", "TraceArrivals",
    "ScenarioSpec", "register_scenario", "get_scenario",
    "resolve_scenario", "scenario_names", "default_scenario",
    "SCENARIO_NAMES",
    "ArrivalTrace", "record_trace", "TRACE_SCHEMA",
    "ClosedLoopSpec", "ClosedLoopTenant", "PipelineQuery",
    "PipelineSpec", "RequestStream", "build_pipeline",
]
