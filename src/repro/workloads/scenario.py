"""Named scenarios: arrival process x workload mix x QoS classes.

A :class:`ScenarioSpec` is the full description of a load scenario.  The
arrival process gives the stream its *shape* (scaled to the offered
``qps``), the workload mix picks which model each query runs (either
bundled into the scenario or supplied by the experiment), and the QoS
class scaling tightens or relaxes deadlines per paper workload class
(light / medium / heavy).

Query generation follows the legacy draw order exactly — one arrival
draw, then one mixture draw from the *same* generator — so the
``"poisson"`` scenario reproduces
:func:`repro.serving.workload.poisson_queries` bit for bit and all
pre-scenario results stay valid.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.config import make_rng
from repro.compiler.library import CompiledModel
from repro.models.registry import WORKLOAD_CLASSES, get_entry
from repro.runtime.tasks import Query
from repro.serving.workload import WorkloadSpec, full_mix
from repro.workloads.requests import (
    ClosedLoopSpec,
    ClosedLoopTenant,
    PipelineSpec,
    RequestStream,
    build_pipeline,
)
from repro.workloads.arrivals import (
    ArrivalProcess,
    DiurnalArrivals,
    FlashCrowdArrivals,
    MMPPArrivals,
    PoissonArrivals,
    TenantChurnArrivals,
    UniformArrivals,
)


@dataclass(frozen=True)
class ScenarioSpec:
    """One named load scenario.

    ``workload=None`` means the scenario is mix-agnostic: experiments
    supply the mix (exactly like the legacy ``spec`` argument) and the
    scenario contributes arrival shape and QoS scaling.  A bundled
    workload wins over the experiment's when both are present.

    ``qos_scale`` maps paper workload classes to deadline multipliers,
    e.g. ``(("light", 0.5),)`` halves every light model's QoS budget.
    """

    name: str
    arrival: ArrivalProcess = field(default_factory=PoissonArrivals)
    workload: WorkloadSpec | None = None
    qos_scale: tuple[tuple[str, float], ...] = ()
    #: Request-model extensions (PR 10).  A scenario with either set
    #: emits a :class:`~repro.workloads.requests.RequestStream` via
    #: :meth:`stream` instead of a flat query list.
    pipeline: PipelineSpec | None = None
    closed_loop: ClosedLoopSpec | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
        for workload_class, scale in self.qos_scale:
            if workload_class not in WORKLOAD_CLASSES:
                raise ValueError(
                    f"scenario {self.name!r}: unknown workload class "
                    f"{workload_class!r}")
            if scale <= 0:
                raise ValueError(f"scenario {self.name!r}: QoS scale for "
                                 f"{workload_class!r} must be positive")

    def resolve_workload(self,
                         spec: WorkloadSpec | None = None) -> WorkloadSpec:
        workload = self.workload if self.workload is not None else spec
        if workload is None:
            raise ValueError(f"scenario {self.name!r} bundles no workload "
                             "mix; pass one")
        return workload

    def qos_for(self, model_name: str) -> float:
        """The model's QoS budget under this scenario's class scaling."""
        entry = get_entry(model_name)
        scale = dict(self.qos_scale).get(entry.workload_class, 1.0)
        return entry.qos_s * scale

    def queries(self, compiled: Mapping[str, CompiledModel], qps: float,
                count: int, seed: int | None = None,
                spec: WorkloadSpec | None = None) -> list[Query]:
        """``count`` queries of this scenario at mean offered ``qps``.

        Deterministic per ``(scenario, qps, count, seed)``; the rng is
        consumed arrival-shape first, mixture second, mirroring the
        legacy Poisson generator.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if self.request_model:
            raise ValueError(
                f"scenario {self.name!r} uses the request model "
                "(closed-loop/pipeline); draw it with stream()")
        workload = self.resolve_workload(spec)
        missing = [n for n in workload.models if n not in compiled]
        if missing:
            raise KeyError(f"workload {workload.name!r} needs uncompiled "
                           f"models: {missing}")
        rng = make_rng(seed)
        arrivals = self.arrival.sample_times(qps, count, rng)
        choices = rng.choice(len(workload.models), size=count,
                             p=workload.probabilities())
        queries = []
        for index in range(count):
            name = workload.models[int(choices[index])]
            queries.append(Query(
                query_id=index,
                model=compiled[name],
                arrival_s=float(arrivals[index]),
                qos_s=self.qos_for(name),
            ))
        return queries

    @property
    def request_model(self) -> bool:
        """True when this scenario needs completion-hook driving."""
        return self.pipeline is not None or self.closed_loop is not None

    def stream(self, compiled: Mapping[str, CompiledModel], qps: float,
               count: int, seed: int | None = None,
               spec: WorkloadSpec | None = None) -> RequestStream:
        """Draw this scenario as a :class:`RequestStream`.

        Open-loop scenarios come back as plain ``queries`` (the same
        draw as :meth:`queries`); a ``closed_loop`` scenario yields
        tenants with ``count`` split evenly across them (``qps`` is
        ignored — a closed loop's offered rate is completion-driven);
        a ``pipeline`` scenario yields ``count`` pipeline requests at
        the arrival process's times, each stage budgeted by
        :meth:`qos_for` times the pipeline's ``qos_scale``.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if self.closed_loop is not None:
            loop = self.closed_loop
            workload = self.resolve_workload(spec)
            base, extra = divmod(count, loop.tenants)
            tenants = []
            for session in range(loop.tenants):
                budget = base + (1 if session < extra else 0)
                if budget <= 0:
                    continue
                tenants.append(ClosedLoopTenant(
                    session=session, compiled=compiled, workload=workload,
                    qos_for=self.qos_for, budget=budget,
                    concurrency=loop.concurrency, think_s=loop.think_s,
                    base_seed=seed))
            return RequestStream(tenants=tenants)
        if self.pipeline is not None:
            rng = make_rng(seed)
            arrivals = self.arrival.sample_times(qps, count, rng)
            pipelines = [
                build_pipeline(compiled, self.pipeline, pipeline_id=index,
                               arrival_s=float(arrivals[index]),
                               qos_for=self.qos_for)
                for index in range(count)]
            return RequestStream(pipelines=pipelines)
        return RequestStream(
            queries=self.queries(compiled, qps, count, seed=seed, spec=spec))

    def with_workload(self, workload: WorkloadSpec) -> "ScenarioSpec":
        """A copy of this scenario bundling ``workload``."""
        return replace(self, name=f"{self.name}+{workload.name}",
                       workload=workload)


# ---------------------------------------------------------------------------
# Registry

_REGISTRY: dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec,
                      overwrite: bool = False) -> ScenarioSpec:
    """Add a scenario to the global registry (returned for chaining)."""
    if not overwrite and spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; known: "
                       f"{sorted(_REGISTRY)}") from None


def resolve_scenario(scenario) -> ScenarioSpec | None:
    """Registered name -> spec; specs and ``None`` pass through.

    The one resolution path every ``scenario=`` parameter funnels
    through (serving experiments, cluster experiments, the facades).
    """
    if scenario is None or isinstance(scenario, ScenarioSpec):
        return scenario
    return get_scenario(scenario)


def scenario_names() -> list[str]:
    return sorted(_REGISTRY)


def default_scenario() -> ScenarioSpec:
    """The library default — the paper's stationary Poisson stream."""
    return get_scenario("poisson")


# The built-in library.  Mix-agnostic shapes first: they compose with
# any experiment's workload spec.
register_scenario(ScenarioSpec(name="poisson", arrival=PoissonArrivals()))
register_scenario(ScenarioSpec(name="uniform", arrival=UniformArrivals()))
register_scenario(ScenarioSpec(name="bursty", arrival=MMPPArrivals()))
register_scenario(ScenarioSpec(
    name="bursty_extreme",
    arrival=MMPPArrivals(burst_ratio=12.0, burst_fraction=0.1,
                         cycles=3.0)))
register_scenario(ScenarioSpec(name="diurnal", arrival=DiurnalArrivals()))
register_scenario(ScenarioSpec(name="flash_crowd",
                               arrival=FlashCrowdArrivals()))
register_scenario(ScenarioSpec(name="tenant_churn",
                               arrival=TenantChurnArrivals()))
# Bundled scenarios: arrival shape x mix x QoS classes in one name.
register_scenario(ScenarioSpec(
    name="prod_day",
    arrival=DiurnalArrivals(amplitude=0.5, periods=1.0),
    workload=full_mix()))
register_scenario(ScenarioSpec(
    name="launch_spike",
    arrival=FlashCrowdArrivals(spike_ratio=6.0, start_frac=0.25,
                               width_frac=0.25),
    workload=full_mix(),
    qos_scale=(("heavy", 1.5),)))
# Throughput-dominated mix with a latency-critical minority: the
# heterogeneous-fleet benchmark's scenario.  Batch-friendly heavies
# carry most of the load (and get a relaxed deadline — offline/batch
# traffic), while the light model keeps a hard real-time QoS, so
# placement quality (which device kind serves whom) decides capacity.
register_scenario(ScenarioSpec(
    name="batch_heavy",
    arrival=PoissonArrivals(),
    workload=WorkloadSpec(name="batch_heavy",
                          entries=(("ssd_resnet34", 3.0),
                                   ("resnet50", 1.5),
                                   ("mobilenet_v2", 2.0))),
    qos_scale=(("heavy", 1.25),)))
# Request-model scenarios (PR 10): draw with stream(), not queries().
# Closed-loop agent sessions — six tenants, two requests in flight
# each, a short think time; offered load is completion-driven, so a
# saturated or shedding fleet sees *less* demand, not a growing queue.
register_scenario(ScenarioSpec(
    name="agent_loop",
    closed_loop=ClosedLoopSpec(tenants=6, concurrency=2, think_s=0.005),
    workload=WorkloadSpec(name="agent_mix",
                          entries=(("mobilenet_v2", 2.0),
                                   ("googlenet", 1.0),
                                   ("resnet50", 1.0)))))
# Detector → classifier chain: stage 1 is submitted when stage 0
# completes; a shed stage fails the whole pipeline's QoS.
register_scenario(ScenarioSpec(
    name="vision_pipeline",
    arrival=PoissonArrivals(),
    pipeline=PipelineSpec(name="detect_classify",
                          stages=("ssd_resnet34", "resnet50"))))

SCENARIO_NAMES = tuple(scenario_names())
