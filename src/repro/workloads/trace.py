"""Arrival-trace record/replay: frozen query streams as JSON.

A trace captures everything needed to re-inject a stream into any
engine or fleet: per-query arrival instant, model name, and QoS budget.
JSON float serialisation uses ``repr`` round-tripping, so a saved trace
replays *bit-identically* — the replayed queries carry the exact same
``arrival_s``/``qos_s`` floats the generator produced, and a simulation
over them is indistinguishable from one over the original stream.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.compiler.library import CompiledModel
from repro.runtime.tasks import Query

#: Bump on any incompatible change to the on-disk layout.
TRACE_SCHEMA = "repro.workloads.trace/1"


@dataclass(frozen=True)
class TraceEntry:
    """One recorded query offer."""

    arrival_s: float
    model: str
    qos_s: float


@dataclass(frozen=True)
class ArrivalTrace:
    """A named, replayable arrival stream.

    ``meta`` is free-form provenance (scenario name, qps, seed, ...);
    it never affects replay.
    """

    name: str
    entries: tuple[TraceEntry, ...]
    meta: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.entries:
            raise ValueError(f"trace {self.name!r} is empty")
        arrivals = [entry.arrival_s for entry in self.entries]
        if any(b < a for a, b in zip(arrivals, arrivals[1:])):
            raise ValueError(f"trace {self.name!r} arrivals must be "
                             "non-decreasing")

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def times(self) -> tuple[float, ...]:
        return tuple(entry.arrival_s for entry in self.entries)

    @property
    def models(self) -> tuple[str, ...]:
        return tuple(entry.model for entry in self.entries)

    @property
    def span_s(self) -> float:
        return self.entries[-1].arrival_s - self.entries[0].arrival_s

    def replay(self, compiled: Mapping[str, CompiledModel],
               count: int | None = None) -> list[Query]:
        """Fresh :class:`Query` objects replaying this trace exactly.

        Every replay builds new queries (engines mutate them), so a
        trace can feed any number of engines or fleet nodes.  ``count``
        may truncate but never extend the trace.
        """
        entries = self.entries
        if count is not None:
            if count > len(entries):
                raise ValueError(f"trace {self.name!r} holds "
                                 f"{len(entries)} arrivals, {count} asked")
            entries = entries[:count]
        missing = sorted({e.model for e in entries} - set(compiled))
        if missing:
            raise KeyError(f"trace {self.name!r} needs uncompiled models: "
                           f"{missing}")
        return [Query(query_id=index, model=compiled[entry.model],
                      arrival_s=entry.arrival_s, qos_s=entry.qos_s)
                for index, entry in enumerate(entries)]

    # -- persistence ---------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "schema": TRACE_SCHEMA,
            "name": self.name,
            "meta": dict(self.meta),
            "entries": [[e.arrival_s, e.model, e.qos_s]
                        for e in self.entries],
        }

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_payload(), indent=1) + "\n")
        return path

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "ArrivalTrace":
        schema = payload.get("schema")
        if schema != TRACE_SCHEMA:
            raise ValueError(f"unsupported trace schema {schema!r} "
                             f"(expected {TRACE_SCHEMA!r})")
        entries = tuple(
            TraceEntry(arrival_s=float(arrival), model=str(model),
                       qos_s=float(qos))
            for arrival, model, qos in payload["entries"])
        return cls(name=str(payload["name"]), entries=entries,
                   meta=dict(payload.get("meta", {})))

    @classmethod
    def load(cls, path: str | Path) -> "ArrivalTrace":
        return cls.from_payload(json.loads(Path(path).read_text()))


def record_trace(queries: Iterable[Query], name: str,
                 meta: Mapping[str, object] | None = None) -> ArrivalTrace:
    """Freeze a generated query stream into a replayable trace."""
    entries = tuple(TraceEntry(arrival_s=q.arrival_s, model=q.model.name,
                               qos_s=q.qos_s)
                    for q in sorted(queries, key=lambda q: (q.arrival_s,
                                                            q.query_id)))
    return ArrivalTrace(name=name, entries=entries, meta=dict(meta or {}))
