"""Generalized request model: closed-loop sessions and pipeline chains.

The open-loop :class:`~repro.runtime.tasks.Query` stream is drawn up
front, submitted once, and completed or shed — so feedback effects (the
regime where admission control, autoscaling, and adaptive scheduling
earn their keep) never appear.  This module adds the missing half:

* :class:`ClosedLoopTenant` — a session with fixed concurrency that
  issues its next request only when one completes (or is shed), so slow
  or shed queries *reduce* offered load instead of vanishing.  Driven
  through the engine/cluster completion-hook seam
  (``Engine.on_complete``).
* :class:`PipelineQuery` — a model chain (e.g. detector → classifier)
  expressed as staged resource requirements: stage *k+1* is submitted
  when stage *k* completes, the QoS budget is apportioned across
  stages, and a shed stage fails the whole pipeline's QoS.
* :class:`RequestStream` — what a request-model scenario emits instead
  of a flat query list; drivers dispatch on :attr:`RequestStream.interactive`.

Determinism: every tenant owns its own generator seeded
``base_seed + session`` (so per-session draws are independent of issue
interleaving), and stage/request query ids are derived arithmetically —
no global counters, no wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.compiler.library import CompiledModel
from repro.config import make_rng
from repro.runtime.tasks import Query
from repro.serving.workload import WorkloadSpec

#: Session ids partition the query-id space: request ``serial`` of
#: session ``s`` gets qid ``s * _SESSION_STRIDE + serial``.  Keeps qids
#: unique and self-describing across tenants without a global counter.
_SESSION_STRIDE = 10**6


@dataclass(frozen=True)
class PipelineSpec:
    """A model chain run as one logical request.

    ``stages`` are model names executed in order; the pipeline's total
    QoS budget is the sum of per-stage budgets (each stage's scenario
    QoS times ``qos_scale``), so the apportionment is explicit and a
    stage that overruns its share can still be rescued by a fast
    successor.
    """

    name: str
    stages: tuple[str, ...]
    qos_scale: float = 1.0

    def __post_init__(self) -> None:
        if len(self.stages) < 2:
            raise ValueError(
                f"pipeline {self.name!r} needs >= 2 stages")
        if self.qos_scale <= 0:
            raise ValueError(
                f"pipeline {self.name!r}: qos_scale must be positive")


@dataclass
class PipelineQuery:
    """One in-flight pipeline request: a chain of stage queries.

    Every stage :class:`~repro.runtime.tasks.Query` carries the
    pipeline's id as its ``query_id`` (the qid link telemetry and
    reports join on) and its stage index in ``stage``.  Stage 0's
    arrival is the pipeline arrival; later stages get their
    ``arrival_s`` stamped at hand-off time, so per-stage latency is
    measured from when the stage became runnable.
    """

    pipeline_id: int
    spec: PipelineSpec
    stages: tuple[Query, ...]
    arrival_s: float
    #: Total end-to-end budget (sum of per-stage budgets).
    qos_s: float
    session: int | None = None
    #: Index of the first stage not yet completed.
    next_stage: int = 0
    finished_s: float | None = None
    #: Stage index shed by admission, or None.  A shed stage fails the
    #: whole pipeline (no later stage runs, QoS counted as missed).
    shed_stage: int | None = None

    @property
    def done(self) -> bool:
        return self.finished_s is not None or self.shed_stage is not None

    @property
    def failed(self) -> bool:
        return self.shed_stage is not None

    @property
    def latency_s(self) -> float:
        if self.finished_s is None:
            raise ValueError(f"pipeline {self.pipeline_id} not finished")
        return self.finished_s - self.arrival_s

    @property
    def satisfied(self) -> bool:
        return (self.finished_s is not None
                and self.shed_stage is None
                and self.latency_s <= self.qos_s)


def build_pipeline(compiled: Mapping[str, CompiledModel],
                   spec: PipelineSpec, pipeline_id: int, arrival_s: float,
                   qos_for: Callable[[str], float],
                   session: int | None = None) -> PipelineQuery:
    """Materialise one pipeline request's stage queries.

    ``qos_for`` maps a model name to its scenario QoS budget; each
    stage's budget is that times ``spec.qos_scale``.  Only stage 0 gets
    the pipeline arrival — later stages' ``arrival_s`` is stamped by
    the driver at hand-off.
    """
    stages = []
    total_qos = 0.0
    for index, name in enumerate(spec.stages):
        budget = qos_for(name) * spec.qos_scale
        total_qos += budget
        stages.append(Query(
            query_id=pipeline_id,
            model=compiled[name],
            arrival_s=arrival_s if index == 0 else float("nan"),
            qos_s=budget,
            session=session,
            stage=index,
        ))
    return PipelineQuery(
        pipeline_id=pipeline_id, spec=spec, stages=tuple(stages),
        arrival_s=arrival_s, qos_s=total_qos, session=session)


@dataclass(frozen=True)
class ClosedLoopSpec:
    """Shape of a closed-loop scenario: tenants x concurrency x think."""

    tenants: int = 4
    concurrency: int = 2
    #: Pause between a completion and the tenant's next issue.
    think_s: float = 0.0

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise ValueError("tenants must be >= 1")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.think_s < 0:
            raise ValueError("think_s must be >= 0")


class ClosedLoopTenant:
    """One closed-loop session: fixed concurrency, completion-driven.

    The tenant starts ``concurrency`` requests at ``start_s`` and
    issues the next one only when a completion (or shed) hands control
    back — the feedback loop open-loop traces can't express.  Each
    tenant draws its models from its own generator seeded
    ``base_seed + session``, so a tenant's request sequence is
    reproducible regardless of how sessions interleave at runtime.
    """

    def __init__(self, session: int, compiled: Mapping[str, CompiledModel],
                 workload: WorkloadSpec,
                 qos_for: Callable[[str], float],
                 budget: int, concurrency: int,
                 think_s: float = 0.0, base_seed: int | None = None,
                 start_s: float = 0.0) -> None:
        if budget < 1:
            raise ValueError("budget must be >= 1")
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.session = session
        self.compiled = compiled
        self.workload = workload
        self.qos_for = qos_for
        #: Requests this tenant may still issue (issued counts down).
        self.remaining = budget
        self.concurrency = concurrency
        self.think_s = think_s
        self.start_s = start_s
        seed = (base_seed or 0) + session
        self._rng = make_rng(seed)
        self._serial = 0
        #: Requests issued / completed / satisfied / shed, for rollups.
        self.issued: list[Query] = []
        self.completed = 0
        self.satisfied = 0
        self.shed = 0

    def _draw(self, arrival_s: float) -> Query:
        index = int(self._rng.choice(len(self.workload.models),
                                     p=self.workload.probabilities()))
        name = self.workload.models[index]
        query = Query(
            query_id=self.session * _SESSION_STRIDE + self._serial,
            model=self.compiled[name],
            arrival_s=arrival_s,
            qos_s=self.qos_for(name),
            session=self.session,
        )
        self._serial += 1
        self.remaining -= 1
        self.issued.append(query)
        return query

    def initial_requests(self, start_s: float | None = None) -> list[Query]:
        """The first ``concurrency`` requests, all arriving at start."""
        at = self.start_s if start_s is None else start_s
        return [self._draw(at)
                for _ in range(min(self.concurrency, self.remaining))]

    def next_request(self, now: float) -> Query | None:
        """The follow-up issued by a completion at ``now``, if any."""
        if self.remaining <= 0:
            return None
        return self._draw(now + self.think_s)

    def observe(self, query: Query, shed: bool = False) -> None:
        """Account one of this tenant's requests reaching an outcome."""
        if shed:
            self.shed += 1
            return
        self.completed += 1
        if query.satisfied:
            self.satisfied += 1


@dataclass
class RequestStream:
    """What a request-model scenario emits instead of a flat list.

    ``queries`` are plain open-loop arrivals (empty for closed-loop
    scenarios), ``pipelines`` the staged requests, ``tenants`` the
    closed-loop sessions.  :attr:`interactive` tells a driver whether
    the stream needs the completion-hook machinery at all — a stream
    with only ``queries`` runs on the legacy open-loop path untouched.
    """

    queries: list[Query] = field(default_factory=list)
    pipelines: list[PipelineQuery] = field(default_factory=list)
    tenants: list[ClosedLoopTenant] = field(default_factory=list)

    @property
    def interactive(self) -> bool:
        return bool(self.pipelines) or bool(self.tenants)
