"""Workload generation, metrics, and serving-facade tests."""

import numpy as np
import pytest

from repro.runtime.engine import SimulationMetrics
from repro.serving.metrics import max_qps_at_satisfaction, summarize
from repro.serving.server import POLICIES
from repro.serving.workload import (
    WorkloadSpec,
    class_mix,
    full_mix,
    poisson_queries,
    single_model,
    uniform_queries,
)


class TestWorkloadSpec:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", entries=())

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", entries=(("resnet50", -1.0),))

    def test_probabilities_normalised(self):
        spec = WorkloadSpec(name="x", entries=(("a", 1.0), ("b", 3.0)))
        assert spec.probabilities().sum() == pytest.approx(1.0)
        assert spec.probabilities()[1] == pytest.approx(0.75)

    def test_class_mixes(self):
        assert set(class_mix("light").models) == {
            "efficientnet_b0", "mobilenet_v2", "tiny_yolov2"}
        assert set(class_mix("heavy").models) == {
            "ssd_resnet34", "bert_large"}

    def test_full_mix_weights_inverse_qos(self):
        spec = full_mix()
        weights = dict(spec.entries)
        assert weights["mobilenet_v2"] > weights["bert_large"]

    def test_single_model(self):
        assert single_model("resnet50").models == ["resnet50"]


class TestQueryGeneration:
    def test_poisson_deterministic_and_rate(self, resnet_stack):
        spec = single_model("resnet50")
        a = poisson_queries(resnet_stack.compiled, spec, 100, 500, seed=1)
        b = poisson_queries(resnet_stack.compiled, spec, 100, 500, seed=1)
        assert [q.arrival_s for q in a] == [q.arrival_s for q in b]
        gaps = np.diff([0.0] + [q.arrival_s for q in a])
        assert gaps.mean() == pytest.approx(1 / 100, rel=0.2)

    def test_poisson_rejects_unknown_model(self, resnet_stack):
        spec = single_model("bert_large")
        with pytest.raises(KeyError):
            poisson_queries(resnet_stack.compiled, spec, 100, 10)

    def test_poisson_rejects_bad_rate(self, resnet_stack):
        with pytest.raises(ValueError):
            poisson_queries(resnet_stack.compiled,
                            single_model("resnet50"), 0, 10)

    def test_uniform_exact_spacing(self, resnet_stack):
        queries = uniform_queries(resnet_stack.compiled, "resnet50", 50, 10)
        gaps = np.diff([q.arrival_s for q in queries])
        assert np.allclose(gaps, 0.02)

    def test_qos_from_table2(self, resnet_stack):
        queries = uniform_queries(resnet_stack.compiled, "resnet50", 50, 2)
        assert queries[0].qos_s == pytest.approx(0.015)


class TestSummarize:
    def test_empty_run(self):
        report = summarize([], SimulationMetrics(), offered_qps=100)
        assert report.satisfaction_rate == 0.0
        assert report.average_latency_s == float("inf")
        assert report.conflict_rate == 0.0

    def test_empty_run_reports_conflicts_from_blocks(self):
        # Saturated loads probed by the capacity bisection can start
        # (and conflict) many blocks while completing zero queries; the
        # conflict rate must come from block accounting, not be zeroed.
        metrics = SimulationMetrics(conflicts=6, blocks_started=24)
        report = summarize([], metrics, offered_qps=900)
        assert report.completed == 0
        assert report.conflict_rate == pytest.approx(6 / 24)
        assert report.blocks_started == 24

    def test_empty_run_conflict_rate_matches_normal_path(self, resnet_stack):
        queries = uniform_queries(resnet_stack.compiled, "resnet50", 20, 4)
        for query in queries:
            query.started_s = query.arrival_s
            query.finished_s = query.arrival_s + 0.010
        metrics = SimulationMetrics(conflicts=3, blocks_started=12)
        with_completed = summarize(queries, metrics, offered_qps=20)
        without_completed = summarize([], metrics, offered_qps=20)
        assert (without_completed.conflict_rate
                == with_completed.conflict_rate)

    def test_counts_satisfied(self, resnet_stack):
        queries = uniform_queries(resnet_stack.compiled, "resnet50", 20, 4)
        for index, query in enumerate(queries):
            query.started_s = query.arrival_s
            query.finished_s = query.arrival_s + (
                0.010 if index < 3 else 0.030)
        report = summarize(queries, SimulationMetrics(blocks_started=4),
                           offered_qps=20)
        assert report.satisfaction_rate == pytest.approx(0.75)
        assert report.completed == 4


class TestMaxQpsSearch:
    def test_bisection_finds_step(self):
        def run(qps):
            report = summarize([], SimulationMetrics(), qps)
            # A passing probe must look like one: completed > 0.  A
            # zero-completion report never passes, whatever its rate.
            object.__setattr__(report, "completed",
                               100 if qps <= 330 else 0)
            object.__setattr__(report, "satisfaction_rate",
                               1.0 if qps <= 330 else 0.0)
            return report

        qps, report = max_qps_at_satisfaction(run, low_qps=10,
                                              high_qps=400,
                                              tolerance_qps=5)
        assert 320 <= qps <= 335

    def test_failing_floor_returned(self):
        def run(qps):
            return summarize([], SimulationMetrics(), qps)

        qps, report = max_qps_at_satisfaction(run, low_qps=10)
        assert qps == 10
        assert report.satisfaction_rate == 0.0

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            max_qps_at_satisfaction(lambda q: None, target=0.0)


class TestServingStack:
    def test_policy_names_all_construct(self, resnet_stack):
        for policy in POLICIES:
            assert resnet_stack.make_scheduler(policy) is not None

    def test_unknown_policy_raises(self, resnet_stack):
        with pytest.raises(ValueError):
            resnet_stack.make_scheduler("magic")

    def test_report_smoke(self, resnet_stack):
        report = resnet_stack.report("veltair_full",
                                     single_model("resnet50"),
                                     qps=40, count=20)
        assert report.completed == 20
        assert report.satisfaction_rate > 0.9

    def test_isolated_latency_below_qos(self, resnet_stack):
        latency = resnet_stack.isolated_model_latency("resnet50")
        assert latency < resnet_stack.compiled["resnet50"].qos_s

    def test_isolated_latency_improves_with_cores(self, resnet_stack):
        assert (resnet_stack.isolated_model_latency("resnet50", cores=64)
                < resnet_stack.isolated_model_latency("resnet50", cores=8))
