"""Shared fixtures: one small compiled stack reused across the suite.

Compilation and profiling are the expensive steps, so they are built once
per session with reduced search budgets; tests that need heavier setups
build their own.
"""

from __future__ import annotations

import pytest

from repro.compiler.costmodel import CostModel
from repro.compiler.library import ModelCompiler
from repro.compiler.multiversion import SinglePassCompiler
from repro.hardware.platform import THREADRIPPER_3990X
from repro.models.layers import Conv2D, Dense, Elementwise, Pool
from repro.serving.server import ServingStack


@pytest.fixture(scope="session")
def cpu():
    return THREADRIPPER_3990X


@pytest.fixture(scope="session")
def cost_model(cpu):
    return CostModel(cpu)


@pytest.fixture(scope="session")
def conv_layer():
    """The paper's Fig. 6 running example: 14x14, 256->256, 3x3."""
    return Conv2D(name="fig6", height=14, width=14,
                  in_channels=256, out_channels=256)


@pytest.fixture(scope="session")
def small_layers():
    """A spread of layer kinds for parametrised substrate tests."""
    return [
        Conv2D(name="c3", height=28, width=28, in_channels=128,
               out_channels=128),
        Conv2D(name="c1", height=56, width=56, in_channels=64,
               out_channels=256, kernel_h=1, kernel_w=1),
        Dense(name="fc", m=64, n=1000, k=2048),
        Pool(name="pool", height=56, width=56, channels=64),
        Elementwise(name="relu", elements=100_000),
    ]


@pytest.fixture(scope="session")
def compiler(cost_model):
    return ModelCompiler(
        cost_model, SinglePassCompiler(cost_model, trials=96, seed=1))


@pytest.fixture(scope="session")
def resnet_stack():
    """A ResNet-50-only serving stack with small search budgets."""
    return ServingStack(models=["resnet50"], trials=96,
                        proxy_scenarios=60, seed=11)


@pytest.fixture(scope="session")
def light_stack():
    """Two light models for multi-model serving tests."""
    return ServingStack(models=["mobilenet_v2", "googlenet"], trials=96,
                        proxy_scenarios=60, seed=11)
