"""Persistent artifact store: keys, round trips, dedup, fallback."""

import json

import pytest

from repro.compiler.artifacts import (
    STORE_ENV,
    ArtifactStore,
    artifact_key,
    compile_layers,
    compiler_context,
    context_fingerprint,
    layer_from_payload,
    layer_payload,
    resolve_store,
)
from repro.compiler.costmodel import CostModel, CostModelParams
from repro.compiler.library import ModelCompiler
from repro.compiler.multiversion import SinglePassCompiler
from repro.hardware.platform import EDGE_NODE_32, THREADRIPPER_3990X
from repro.models.registry import get_entry, get_model
from repro.serving.server import ServingStack
from repro.serving.workload import poisson_queries, single_model


@pytest.fixture()
def single_pass(cost_model):
    return SinglePassCompiler(cost_model, trials=64, seed=3)


@pytest.fixture()
def compiled_conv(single_pass, conv_layer):
    return single_pass.compile_layer(conv_layer, qos_budget_s=500e-6)


def _tables(model):
    return [(entry.versions, entry.latency_table, entry.version_for_level,
             entry.levels, entry.qos_budget_s, entry.dominant_count,
             entry.sample_count) for entry in model.layers]


class TestKeySchema:
    def test_fingerprint_is_stable(self, single_pass):
        context = compiler_context(single_pass)
        assert (context_fingerprint(context)
                == context_fingerprint(compiler_context(single_pass)))

    @pytest.mark.parametrize("change", [
        dict(trials=128), dict(seed=4), dict(max_versions=3),
        dict(keep_threshold=0.9), dict(tuning_cores=8),
    ])
    def test_fingerprint_covers_knobs(self, cost_model, change):
        base = SinglePassCompiler(cost_model, trials=64, seed=3)
        varied = SinglePassCompiler(cost_model,
                                    **{"trials": 64, "seed": 3, **change})
        assert (context_fingerprint(compiler_context(base))
                != context_fingerprint(compiler_context(varied)))

    def test_fingerprint_covers_platform_and_params(self):
        a = SinglePassCompiler(CostModel(THREADRIPPER_3990X), seed=3)
        b = SinglePassCompiler(CostModel(EDGE_NODE_32), seed=3)
        c = SinglePassCompiler(
            CostModel(THREADRIPPER_3990X,
                      CostModelParams(cache_sensitivity=9.0)), seed=3)
        fps = {context_fingerprint(compiler_context(s)) for s in (a, b, c)}
        assert len(fps) == 3

    def test_key_covers_signature_and_budget(self, single_pass,
                                             conv_layer, small_layers):
        fp = context_fingerprint(compiler_context(single_pass))
        base = artifact_key(fp, conv_layer.signature, 500e-6)
        assert artifact_key(fp, conv_layer.signature, 500e-6) == base
        assert artifact_key(fp, conv_layer.signature, 600e-6) != base
        assert artifact_key(fp, small_layers[0].signature, 500e-6) != base


class TestPayloadRoundTrip:
    def test_rebuild_is_bit_identical(self, compiled_conv, conv_layer):
        payload = layer_payload("k", "ctx", compiled_conv)
        # JSON round trip included: floats must survive exactly.
        payload = json.loads(json.dumps(payload))
        rebuilt = layer_from_payload(payload, conv_layer)
        assert rebuilt.versions == compiled_conv.versions
        assert rebuilt.latency_table == compiled_conv.latency_table
        assert rebuilt.version_for_level == compiled_conv.version_for_level
        assert rebuilt.levels == compiled_conv.levels
        assert rebuilt.qos_budget_s == compiled_conv.qos_budget_s
        assert rebuilt.dominant_count == compiled_conv.dominant_count
        assert rebuilt.sample_count == compiled_conv.sample_count
        assert rebuilt.layer is conv_layer

    def test_version_selection_survives_round_trip(self, compiled_conv,
                                                   conv_layer):
        payload = json.loads(json.dumps(
            layer_payload("k", "ctx", compiled_conv)))
        rebuilt = layer_from_payload(payload, conv_layer)
        for k in range(0, 101):
            pressure = k / 100.0
            assert (rebuilt.version_index_for(pressure)
                    == compiled_conv.version_index_for(pressure))


class TestArtifactStore:
    def test_get_put_round_trip(self, tmp_path, single_pass,
                                compiled_conv, conv_layer):
        store = ArtifactStore(tmp_path / "store")
        fp = context_fingerprint(compiler_context(single_pass))
        key = artifact_key(fp, conv_layer.signature, 500e-6)
        assert store.get(key, fp, conv_layer, 500e-6) is None
        store.put(key, fp, compiled_conv)
        # A fresh store instance must read it back from disk.
        fresh = ArtifactStore(tmp_path / "store")
        loaded = fresh.get(key, fp, conv_layer, 500e-6)
        assert loaded is not None
        assert loaded.versions == compiled_conv.versions
        assert loaded.latency_table == compiled_conv.latency_table
        assert fresh.stats.hits == 1

    def test_budget_mismatch_is_a_miss(self, tmp_path, single_pass,
                                       compiled_conv, conv_layer):
        # A digest collision between two budgets of one layer must
        # degrade to a miss: the recorded budget is part of the key
        # material get() verifies.
        store = ArtifactStore(tmp_path / "store")
        fp = context_fingerprint(compiler_context(single_pass))
        key = artifact_key(fp, conv_layer.signature, 500e-6)
        store.put(key, fp, compiled_conv)
        fresh = ArtifactStore(tmp_path / "store")
        assert fresh.get(key, fp, conv_layer, 600e-6) is None
        assert fresh.get(key, fp, conv_layer, 500e-6) is not None

    def test_context_mismatch_is_a_miss(self, tmp_path, single_pass,
                                        compiled_conv, conv_layer):
        store = ArtifactStore(tmp_path / "store")
        fp = context_fingerprint(compiler_context(single_pass))
        key = artifact_key(fp, conv_layer.signature, 500e-6)
        store.put(key, fp, compiled_conv)
        fresh = ArtifactStore(tmp_path / "store")
        assert fresh.get(key, "other-context", conv_layer, 500e-6) is None

    def test_corrupt_file_is_a_miss(self, tmp_path, single_pass,
                                    compiled_conv, conv_layer):
        store = ArtifactStore(tmp_path / "store")
        fp = context_fingerprint(compiler_context(single_pass))
        key = artifact_key(fp, conv_layer.signature, 500e-6)
        store.put(key, fp, compiled_conv)
        (tmp_path / "store" / f"art_{key}.json").write_text("{not json")
        fresh = ArtifactStore(tmp_path / "store")
        assert fresh.get(key, fp, conv_layer, 500e-6) is None
        assert fresh.stats.corrupt == 1

    def test_schema_mismatch_is_a_miss_and_gc_prunes(
            self, tmp_path, single_pass, compiled_conv, conv_layer):
        store = ArtifactStore(tmp_path / "store")
        fp = context_fingerprint(compiler_context(single_pass))
        key = artifact_key(fp, conv_layer.signature, 500e-6)
        store.put(key, fp, compiled_conv)
        path = tmp_path / "store" / f"art_{key}.json"
        payload = json.loads(path.read_text())
        payload["schema"] = "repro.compiler.artifact/0"
        path.write_text(json.dumps(payload))
        fresh = ArtifactStore(tmp_path / "store")
        assert fresh.get(key, fp, conv_layer, 500e-6) is None
        assert fresh.gc() == [path.name]
        assert fresh.entries() == []

    def test_gc_keeps_valid_entries(self, tmp_path, single_pass,
                                    compiled_conv, conv_layer):
        store = ArtifactStore(tmp_path / "store")
        fp = context_fingerprint(compiler_context(single_pass))
        key = artifact_key(fp, conv_layer.signature, 500e-6)
        store.put(key, fp, compiled_conv)
        (tmp_path / "store" / "art_dead.json").write_text("junk")
        assert store.gc() == ["art_dead.json"]
        assert len(store.entries()) == 1
        assert store.gc(drop_all=True) == [f"art_{key}.json"]

    def test_unwritable_directory_degrades_to_memory(
            self, tmp_path, single_pass, compiled_conv, conv_layer):
        import os
        import sys

        if sys.platform == "win32" or os.geteuid() == 0:
            pytest.skip("chmod-based read-only dir needs non-root posix")
        locked = tmp_path / "locked"
        locked.mkdir()
        locked.chmod(0o500)
        try:
            store = ArtifactStore(locked / "store")
            fp = context_fingerprint(compiler_context(single_pass))
            key = artifact_key(fp, conv_layer.signature, 500e-6)
            store.put(key, fp, compiled_conv)  # must not raise
            # Served from memory despite the failed disk write.
            assert store.get(key, fp, conv_layer, 500e-6) is not None
        finally:
            locked.chmod(0o700)

    def test_load_and_save(self, tmp_path, single_pass, compiled_conv,
                           conv_layer):
        fp = context_fingerprint(compiler_context(single_pass))
        key = artifact_key(fp, conv_layer.signature, 500e-6)
        memory_only = ArtifactStore()
        memory_only.put(key, fp, compiled_conv)
        with pytest.raises(ValueError):
            memory_only.save()
        disk = ArtifactStore(tmp_path / "store")
        disk._memory.update(memory_only._memory)
        assert disk.save() == 1
        fresh = ArtifactStore(tmp_path / "store")
        assert fresh.load() == 1
        assert len(fresh) == 1

    def test_resolve_store(self, tmp_path, monkeypatch):
        monkeypatch.delenv(STORE_ENV, raising=False)
        assert resolve_store(None) is None
        assert resolve_store("auto") is None
        monkeypatch.setenv(STORE_ENV, str(tmp_path / "env-store"))
        via_env = resolve_store("auto")
        assert via_env is not None
        assert via_env.path == tmp_path / "env-store"
        explicit = ArtifactStore(tmp_path / "explicit")
        assert resolve_store(explicit) is explicit
        assert resolve_store(tmp_path / "p").path == tmp_path / "p"


class TestCompilerStore:
    def test_cold_then_warm_is_bit_identical(self, tmp_path, cost_model):
        graph = get_model("mobilenet_v2")
        qos = get_entry("mobilenet_v2").qos_s

        def build(store):
            compiler = ModelCompiler(
                cost_model, SinglePassCompiler(cost_model, trials=64,
                                               seed=3), store=store)
            return compiler, compiler.compile_model(graph, qos)

        cold_compiler, cold = build(ArtifactStore(tmp_path / "s"))
        warm_compiler, warm = build(ArtifactStore(tmp_path / "s"))
        assert _tables(cold) == _tables(warm)
        assert cold_compiler.stats.store_hits == 0
        assert cold_compiler.stats.compiled_fresh > 0
        assert warm_compiler.stats.compiled_fresh == 0
        assert (warm_compiler.stats.store_hits
                == cold_compiler.stats.compiled_fresh)

    def test_store_matches_storeless_compile(self, tmp_path, cost_model):
        graph = get_model("mobilenet_v2")
        qos = get_entry("mobilenet_v2").qos_s
        plain = ModelCompiler(
            cost_model,
            SinglePassCompiler(cost_model, trials=64, seed=3))
        stored = ModelCompiler(
            cost_model,
            SinglePassCompiler(cost_model, trials=64, seed=3),
            store=ArtifactStore(tmp_path / "s"))
        assert (_tables(plain.compile_model(graph, qos))
                == _tables(stored.compile_model(graph, qos)))

    def test_dedup_across_models_sharing_signatures(self, cost_model):
        # resnet50 and ssd_resnet34 share backbone conv signatures at
        # matching budgets only rarely (budgets differ per model QoS),
        # but *within* the batch every repeated (signature, budget)
        # compiles exactly once — the batched two-model compile must
        # never run Alg. 1 twice for the same cell.
        compiler = ModelCompiler(
            cost_model, SinglePassCompiler(cost_model, trials=64, seed=3))
        specs = [(get_model(n), get_entry(n).qos_s)
                 for n in ("mobilenet_v2", "efficientnet_b0")]
        models = compiler.compile_models(specs)
        total = sum(len(g.layers) for g, _ in specs)
        assert compiler.stats.layers_total == total
        assert compiler.stats.compiled_fresh == compiler.unique_layers
        assert compiler.unique_layers < total  # shared cells existed
        assert compiler.stats.memo_hits == total - compiler.unique_layers
        for (graph, _), model in zip(specs, models):
            assert len(model) == len(graph.layers)
            # Every compiled entry is bound to its own layer instance.
            for layer, entry in zip(graph.layers, model.layers):
                assert entry.layer is layer

    def test_corrupt_store_falls_back_to_recompile(self, tmp_path,
                                                   cost_model):
        graph = get_model("mobilenet_v2")
        qos = get_entry("mobilenet_v2").qos_s
        store = ArtifactStore(tmp_path / "s")
        first = ModelCompiler(
            cost_model, SinglePassCompiler(cost_model, trials=64, seed=3),
            store=store)
        reference = first.compile_model(graph, qos)
        for entry in store._disk_entries():
            entry.write_text("{broken")
        recovered_compiler = ModelCompiler(
            cost_model, SinglePassCompiler(cost_model, trials=64, seed=3),
            store=ArtifactStore(tmp_path / "s"))
        recovered = recovered_compiler.compile_model(graph, qos)
        assert recovered_compiler.stats.store_hits == 0
        assert recovered_compiler.stats.compiled_fresh > 0
        assert _tables(recovered) == _tables(reference)

    def test_parallel_compile_matches_serial(self, cost_model):
        graph = get_model("mobilenet_v2")
        qos = get_entry("mobilenet_v2").qos_s
        serial = ModelCompiler(
            cost_model, SinglePassCompiler(cost_model, trials=64, seed=3),
            workers=1)
        parallel = ModelCompiler(
            cost_model, SinglePassCompiler(cost_model, trials=64, seed=3),
            workers=4)
        assert (_tables(serial.compile_model(graph, qos))
                == _tables(parallel.compile_model(graph, qos)))

    def test_compile_layers_helper_orders_results(self, single_pass,
                                                  small_layers):
        work = [(layer, 500e-6) for layer in small_layers[:3]]
        serial = compile_layers(single_pass, work, workers=1)
        fanned = compile_layers(single_pass, work, workers=2)
        for a, b in zip(serial, fanned):
            # Fork workers return unpickled copies: equality, not
            # identity (ModelCompiler rebinds identity afterwards).
            assert a.layer == b.layer
            assert a.versions == b.versions
            assert a.latency_table == b.latency_table


class TestServingStackStore:
    def test_cold_vs_warm_end_to_end_report(self, tmp_path):
        def build(path):
            stack = ServingStack(models=["mobilenet_v2"], trials=64,
                                 seed=7, use_proxy=False,
                                 artifact_store=ArtifactStore(path))
            queries = poisson_queries(stack.compiled,
                                      single_model("mobilenet_v2"),
                                      qps=80, count=40, seed=7)
            completed, engine = stack.run("veltair_full", queries)
            return stack, [(q.query_id, q.started_s, q.finished_s)
                           for q in completed]

        cold_stack, cold_outcome = build(tmp_path / "s")
        warm_stack, warm_outcome = build(tmp_path / "s")
        assert warm_stack.compiler.stats.compiled_fresh == 0
        assert warm_stack.compiler.stats.store_hits > 0
        assert cold_outcome == warm_outcome
        assert (_tables(cold_stack.compiled["mobilenet_v2"])
                == _tables(warm_stack.compiled["mobilenet_v2"]))

    def test_lazy_compile_only_touches_requested_model(self):
        stack = ServingStack(models=["mobilenet_v2", "googlenet"],
                             trials=64, seed=7, use_proxy=False,
                             artifact_store=None)
        assert stack.compiler.stats.layers_total == 0
        _ = stack.compiled["mobilenet_v2"]
        mobilenet_layers = len(get_model("mobilenet_v2").layers)
        assert stack.compiler.stats.layers_total == mobilenet_layers
        # Iteration forces the remainder in one batch.
        assert len(stack.compiled.values()) == 2
        total = mobilenet_layers + len(get_model("googlenet").layers)
        assert stack.compiler.stats.layers_total == total
        assert stack.artifact_builds == 1

    def test_ensure_compiled_is_idempotent(self):
        stack = ServingStack(models=["mobilenet_v2"], trials=64, seed=7,
                             use_proxy=False, artifact_store=None)
        stack.ensure_compiled()
        seen = stack.compiler.stats.layers_total
        stack.ensure_compiled()
        assert stack.compiler.stats.layers_total == seen

    def test_mapping_surface_matches_plain_dict(self):
        stack = ServingStack(models=["mobilenet_v2"], trials=64, seed=7,
                             use_proxy=False, artifact_store=None)
        assert list(stack.compiled) == ["mobilenet_v2"]
        assert len(stack.compiled) == 1
        assert "mobilenet_v2" in stack.compiled
        assert "bert_large" not in stack.compiled
        # Membership probes must not compile as a side effect.
        assert stack.compiler.stats.layers_total == 0
        with pytest.raises(KeyError):
            _ = stack.compiled["bert_large"]
        assert [name for name, _ in stack.compiled.items()] == [
            "mobilenet_v2"]
        assert stack.profiles["mobilenet_v2"].compiled is (
            stack.compiled["mobilenet_v2"])

    def test_unknown_model_fails_at_construction(self):
        with pytest.raises(KeyError):
            ServingStack(models=["not_a_model"], trials=64,
                         use_proxy=False, artifact_store=None)

    def test_sweep_pool_forces_artifacts_before_fork(self):
        from repro.serving.experiments import sweep_pool, sweep_qps

        stack = ServingStack(models=["mobilenet_v2"], trials=64, seed=7,
                             use_proxy=False, artifact_store=None)
        spec = single_model("mobilenet_v2")
        assert stack.compiler.stats.layers_total == 0
        with sweep_pool(stack, "veltair_full", spec, count=20,
                        seed=7, workers=2) as pool:
            # Compile + profiles happened in the parent, pre-fork, so
            # workers inherit them copy-on-write.
            assert stack.compiler.stats.layers_total > 0
            assert stack.profiles["mobilenet_v2"] is not None
            reports = sweep_qps(stack, "veltair_full", spec, [50.0, 80.0],
                                count=20, seed=7, pool=pool)
        serial = sweep_qps(stack, "veltair_full", spec, [50.0, 80.0],
                           count=20, seed=7)
        assert [r.average_latency_s for r in reports] == [
            r.average_latency_s for r in serial]

    def test_sweep_pool_skips_proxy_fit_for_non_proxy_policies(self):
        from repro.serving.experiments import sweep_pool

        stack = ServingStack(models=["mobilenet_v2"], trials=64, seed=7,
                             proxy_scenarios=60, artifact_store=None)
        spec = single_model("mobilenet_v2")
        with sweep_pool(stack, "layerwise", spec, count=10, seed=7,
                        workers=2):
            # layerwise never reads the proxy: the pre-fork warm-up
            # must not pay the fit for it.
            assert not stack._proxy_ready
        with sweep_pool(stack, "veltair_full", spec, count=10, seed=7,
                        workers=2):
            assert stack._proxy_ready  # proxy-driven: fitted pre-fork

    def test_fork_pool_fails_soft_in_daemonic_worker(self):
        # Pool workers are daemonic and may not have children (Pool()
        # raises AssertionError, not OSError), so a sweep worker that
        # lazily compiles with compile_workers > 1 must degrade to the
        # serial path instead of crashing the sweep.
        import multiprocessing

        from repro.parallel import fork_worker_pool

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform has no fork start method")
        context = multiprocessing.get_context("fork")
        queue = context.Queue()

        def probe(q):
            with fork_worker_pool(2) as pool:
                q.put(pool is None)

        process = context.Process(target=probe, args=(queue,),
                                  daemon=True)
        process.start()
        try:
            assert queue.get(timeout=30) is True
        finally:
            process.join(timeout=30)

    def test_store_resolved_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV, str(tmp_path / "env-store"))
        stack = ServingStack(models=["mobilenet_v2"], trials=64, seed=7,
                             use_proxy=False)
        stack.ensure_compiled()
        assert stack.artifact_store is not None
        assert len(stack.artifact_store.entries()) > 0
        # A second stack with identical knobs compiles nothing.
        again = ServingStack(models=["mobilenet_v2"], trials=64, seed=7,
                             use_proxy=False)
        again.ensure_compiled()
        assert again.compiler.stats.compiled_fresh == 0
