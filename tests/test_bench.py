"""Bench-harness coverage: result schema, manifest pruning, ratchet.

Pure-unit tests over :mod:`repro.bench` — no stacks are compiled, so
this file pins the CI contract cheaply: schema validation, the JSON
writer's rename/orphan hygiene, tolerance semantics, baseline
round-trips, and registry selection.
"""

import json

import pytest

from repro.bench import (
    BenchResult,
    RESULT_SCHEMA,
    Tolerance,
    compare_result,
    load_result,
    select_benchmarks,
    slugify,
    validate_payload,
    write_baseline,
    write_result,
)
from repro.bench.compare import load_baseline
from repro.bench.results import prune_orphans, result_path


def make_result(name="demo", title="Demo: table", metrics=None,
                tables=None):
    return BenchResult(
        name=name, title=title,
        metrics={"speed": 2.5, "sat": 0.95} if metrics is None
        else metrics,
        knobs={"queries": 10}, tables=tables if tables is not None
        else {title: "a  b\n1  2"},
        seed=7, sha="deadbeef", created_utc="2026-07-30T00:00:00+00:00")


class TestBenchResult:
    def test_rejects_bad_names(self):
        with pytest.raises(ValueError, match="name"):
            make_result(name="Bad Name")
        with pytest.raises(ValueError, match="name"):
            make_result(name="")

    def test_rejects_non_numeric_metrics(self):
        with pytest.raises(ValueError, match="not a number"):
            make_result(metrics={"oops": "fast"})
        with pytest.raises(ValueError, match="not a number"):
            make_result(metrics={"oops": True})

    def test_payload_is_schema_valid(self):
        payload = make_result().to_payload()
        assert payload["schema"] == RESULT_SCHEMA
        assert validate_payload(payload) == []

    def test_validate_catches_corruption(self):
        payload = make_result().to_payload()
        payload["schema"] = "other/0"
        payload["metrics"]["bad"] = "nope"
        del payload["title"]
        errors = validate_payload(payload)
        assert len(errors) == 3

    def test_write_load_round_trip(self, tmp_path):
        path = write_result(make_result(), tmp_path)
        assert path.name == "BENCH_demo.json"
        loaded = load_result(path)
        assert loaded.metrics == {"speed": 2.5, "sat": 0.95}
        assert loaded.tables["Demo: table"].startswith("a  b")

    def test_slugify_is_portable(self):
        assert slugify("Fig 12: QPS at 95% QoS") == "fig_12_qps_at_95_qos"


class TestManifestHygiene:
    def test_rename_deletes_stale_table(self, tmp_path):
        write_result(make_result(title="Old title",
                                 tables={"Old title": "x"}), tmp_path)
        assert (tmp_path / "old_title.txt").exists()
        # Same benchmark name, renamed figure title: the stale .txt is
        # deleted the moment the renamed result records again — the
        # pre-JSON writer leaked it forever.
        write_result(make_result(title="New title",
                                 tables={"New title": "y"}), tmp_path)
        assert not (tmp_path / "old_title.txt").exists()
        assert (tmp_path / "new_title.txt").exists()

    def test_prune_orphans_by_known_names(self, tmp_path):
        write_result(make_result(name="alive"), tmp_path)
        write_result(make_result(name="renamed_away",
                                 title="Gone: soon",
                                 tables={"Gone: soon": "z"}), tmp_path)
        (tmp_path / "stray.txt").write_text("leftover")
        deleted = prune_orphans(tmp_path, known_names={"alive"})
        assert sorted(deleted) == ["BENCH_renamed_away.json",
                                   "gone_soon.txt", "stray.txt"]
        assert result_path(tmp_path, "alive").exists()

    def test_prune_missing_dir_is_noop(self, tmp_path):
        assert prune_orphans(tmp_path / "nope") == []


class TestTolerance:
    def test_two_sided_band(self):
        tol = Tolerance(rel=0.10, abs=0.0)
        assert tol.verdict(108.0, 100.0) is None
        assert tol.verdict(92.0, 100.0) is None
        assert tol.verdict(111.0, 100.0) is not None
        assert tol.verdict(89.0, 100.0) is not None

    def test_abs_floor_protects_near_zero(self):
        tol = Tolerance(rel=0.10, abs=0.5)
        assert tol.verdict(0.4, 0.0) is None
        assert tol.verdict(0.6, 0.0) is not None

    def test_directional(self):
        higher = Tolerance(rel=0.05, direction="higher_is_better")
        assert higher.verdict(200.0, 100.0) is None
        assert higher.verdict(90.0, 100.0) is not None
        lower = Tolerance(rel=0.05, direction="lower_is_better")
        assert lower.verdict(50.0, 100.0) is None
        assert lower.verdict(110.0, 100.0) is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            Tolerance(rel=-0.1)
        with pytest.raises(ValueError):
            Tolerance(direction="sideways")


class TestRatchet:
    def test_within_tolerance_passes(self):
        baseline = make_result()
        current = make_result(metrics={"speed": 2.6, "sat": 0.94})
        assert compare_result(current, baseline, {},
                              Tolerance(rel=0.10, abs=0.02)) == []

    def test_regression_detected(self):
        baseline = make_result()
        current = make_result(metrics={"speed": 1.0, "sat": 0.95})
        regressions = compare_result(current, baseline, {},
                                     Tolerance(rel=0.10))
        assert len(regressions) == 1
        assert regressions[0].metric == "speed"
        assert "drift" in regressions[0].detail

    def test_missing_metric_is_a_regression(self):
        baseline = make_result()
        current = make_result(metrics={"speed": 2.5})
        regressions = compare_result(current, baseline, {}, Tolerance())
        assert [r.metric for r in regressions] == ["sat"]

    def test_new_metric_passes_until_blessed(self):
        baseline = make_result(metrics={"speed": 2.5})
        current = make_result(metrics={"speed": 2.5, "extra": 9.0})
        assert compare_result(current, baseline, {}, Tolerance()) == []

    def test_per_metric_tolerance_wins_over_default(self):
        baseline = make_result()
        current = make_result(metrics={"speed": 2.4, "sat": 0.5})
        regressions = compare_result(
            current, baseline, {"sat": Tolerance(rel=0.9)},
            Tolerance(rel=0.10))
        assert regressions == []

    def test_baseline_round_trip_with_tolerances(self, tmp_path):
        blessed = write_baseline(make_result(), tmp_path,
                                 {"sat": Tolerance(rel=0.0, abs=0.01)},
                                 Tolerance(rel=0.2))
        payload = json.loads(blessed.read_text())
        assert set(payload["tolerances"]) == {"speed", "sat"}
        baseline, tolerances = load_baseline(tmp_path, "demo")
        assert baseline.metrics["speed"] == 2.5
        assert tolerances["sat"].abs == 0.01
        assert tolerances["speed"].rel == 0.2


class TestRegistrySelection:
    def test_quick_suite_contents(self):
        quick = {b.name for b in select_benchmarks(quick=True)}
        assert {"scenario_capacity", "scenario_service",
                "trace_roundtrip", "engine_scale",
                "cluster_scale"} <= quick
        assert "fig12" not in quick

    def test_full_suite_includes_figures(self):
        names = {b.name for b in select_benchmarks(quick=False)}
        assert {"fig01", "fig12", "fig14", "table2", "ablations"} <= names

    def test_only_overrides_mode_and_resolves_prefixes(self):
        picked = select_benchmarks(["fig12", "cluster"], quick=True)
        assert [b.name for b in picked] == ["fig12", "cluster_scale"]

    def test_only_rejects_ambiguous_and_unknown(self):
        with pytest.raises(KeyError, match="ambiguous"):
            select_benchmarks(["fig1"], quick=True)
        with pytest.raises(KeyError, match="unknown benchmark"):
            select_benchmarks(["nope"], quick=True)

    def test_pytest_figures_declare_results(self):
        fig14 = next(b for b in select_benchmarks(quick=False)
                     if b.name == "fig14")
        assert fig14.result_names == ("fig14a", "fig14b", "fig14c")
