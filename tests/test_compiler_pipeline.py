"""Auto-scheduler, multi-pass baseline, and Alg. 1 multi-version tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import make_rng
from repro.models.layers import Dense
from repro.models.registry import get_entry, get_model
from repro.compiler.autoscheduler import AutoScheduler, Measured
from repro.compiler.interference_aware import (
    default_levels,
    multi_pass_search,
)
from repro.compiler.multiversion import (
    SinglePassCompiler,
    extract_dominant,
    uniform_pick,
)
from repro.compiler.schedule import Schedule
from repro.compiler.space import ScheduleSpace
from repro.compiler.vendor import VendorLibrary, vendor_schedule


@pytest.fixture(scope="module")
def searcher(cost_model):
    return AutoScheduler(cost_model)


class TestAutoScheduler:
    def test_deterministic_with_seed(self, searcher, conv_layer):
        a = searcher.search(conv_layer, trials=128, seed=3)
        b = searcher.search(conv_layer, trials=128, seed=3)
        assert a.best_schedule == b.best_schedule
        assert a.trials == b.trials

    def test_respects_trial_budget(self, searcher, conv_layer):
        result = searcher.search(conv_layer, trials=150, seed=0)
        assert result.trials <= 150

    def test_beats_random_baseline(self, searcher, cost_model, conv_layer):
        result = searcher.search(conv_layer, trials=256, seed=0)
        random_best = min(
            cost_model.latency(conv_layer, s, cost_model.cpu.cores, 0.0)
            for s in ScheduleSpace.for_layer(conv_layer).sample_many(
                64, make_rng(99)))
        assert result.best.latency_s <= random_best * 1.05

    def test_terminates_on_tiny_space(self, searcher):
        # SE-block-sized layer: fewer legal schedules than trials.
        tiny = Dense(name="se", m=1, n=8, k=32)
        result = searcher.search(tiny, trials=512, seed=0)
        assert 0 < result.trials < 512

    def test_rejects_trials_below_population(self, searcher, conv_layer):
        with pytest.raises(ValueError):
            searcher.search(conv_layer, trials=4, seed=0)

    def test_objective_interference_changes_winner(self, searcher,
                                                   conv_layer):
        iso = searcher.search(conv_layer, interference=0.0, trials=256,
                              seed=1)
        hot = searcher.search(conv_layer, interference=1.0, trials=256,
                              seed=1)
        assert iso.best_schedule != hot.best_schedule

    def test_survivor_pool_never_exceeds_population(self, cost_model,
                                                    conv_layer):
        # Regression: immigrants used to append past the
        # population-bounded fill, ratcheting the survivor pool above
        # ``population`` every evolution round.
        searcher = AutoScheduler(cost_model, population=16)
        result = searcher.search(conv_layer, trials=256, seed=5)
        assert result.trials <= 256
        assert searcher.last_pool_sizes  # evolution rounds happened
        assert max(searcher.last_pool_sizes) <= searcher.population

    def test_pool_cap_preserves_search_results(self, cost_model,
                                               conv_layer):
        # The cap keeps the best ``population`` members, whose top
        # ``elites`` are the parents either way — so capping must not
        # change what the search evaluates or returns.  Compared
        # against a faithful replica of the pre-fix (uncapped) loop.
        from repro.compiler.space import ScheduleSpace

        def uncapped_reference(searcher, layer, trials, seed):
            # The pre-fix search loop, verbatim minus the re-cap.
            rng = make_rng(seed)
            space = ScheduleSpace.for_layer(layer)
            evaluated = {}

            def measure(schedule):
                cached = evaluated.get(schedule)
                if cached is None:
                    cached = cost_model.latency(
                        layer, schedule, cost_model.cpu.cores, 0.0)
                    evaluated[schedule] = cached
                return cached

            for schedule in space.sample_many(trials // 2, rng):
                measure(schedule)
            pool = space.sample_many(searcher.population, rng)
            for schedule in pool:
                measure(schedule)
            elites = max(2, int(searcher.population
                                * searcher.elite_fraction))
            previous_count = -1
            while (len(evaluated) < trials
                   and len(evaluated) > previous_count):
                previous_count = len(evaluated)
                pool.sort(key=measure)
                parents = pool[:elites]
                children = list(parents)
                while (len(children) < searcher.population
                       and len(evaluated) + len(children) - elites
                       < trials):
                    parent = parents[int(rng.integers(0, len(parents)))]
                    children.append(space.neighbours(parent, rng))
                if len(children) <= elites:
                    break
                for child in children[elites:]:
                    measure(child)
                if len(evaluated) < trials:
                    for schedule in space.sample_many(
                            max(2, searcher.population // 8), rng):
                        if len(evaluated) >= trials:
                            break
                        measure(schedule)
                        children.append(schedule)
                pool = children  # pre-fix: no re-cap, pool ratchets
            return evaluated

        searcher = AutoScheduler(cost_model, population=16)
        capped = searcher.search(conv_layer, trials=200, seed=9)
        reference = uncapped_reference(searcher, conv_layer, 200, 9)
        assert dict((m.schedule, m.latency_s)
                    for m in capped.samples) == reference


class TestMultiPass:
    def test_levels_span_unit_interval(self):
        levels = default_levels(4)
        assert levels[0] == 0.0
        assert levels[-1] == 1.0

    def test_rejects_single_level(self):
        with pytest.raises(ValueError):
            default_levels(1)

    def test_multi_pass_costs_levels_times_trials(self, searcher,
                                                  conv_layer):
        result = multi_pass_search(searcher, conv_layer, levels=3,
                                   trials_per_pass=128, seed=0)
        assert len(result.passes) == 3
        assert result.total_trials <= 3 * 128

    def test_best_for_maps_to_nearest_level(self, searcher, conv_layer):
        result = multi_pass_search(searcher, conv_layer, levels=3,
                                   trials_per_pass=128, seed=0)
        assert result.best_for(0.05) == result.passes[0].best_schedule
        assert result.best_for(0.95) == result.passes[-1].best_schedule


def _measured(blocking_m, blocking_n, chunks, latency):
    return Measured(
        schedule=Schedule(tile_m=blocking_m, tile_n=blocking_n, tile_k=8,
                          parallel_chunks=chunks, unroll=1),
        latency_s=latency)


class TestExtractDominant:
    def test_dominated_point_removed(self):
        frontier = extract_dominant([
            _measured(4, 4, 1, 1.0),     # blocking 16, par 1
            _measured(8, 8, 2, 1.0),     # blocking 64, par 2: dominated
        ])
        assert len(frontier) == 1
        assert frontier[0].schedule.blocking_size == 16

    def test_tradeoff_points_kept(self):
        frontier = extract_dominant([
            _measured(4, 4, 8, 1.0),     # small blocking, high par
            _measured(16, 16, 1, 1.0),   # big blocking, low par
        ])
        assert len(frontier) == 2

    def test_tie_keeps_fastest(self):
        frontier = extract_dominant([
            _measured(4, 4, 2, 2.0),
            _measured(4, 4, 2, 1.0),
        ])
        assert len(frontier) == 1
        assert frontier[0].latency_s == 1.0

    @given(st.lists(st.tuples(st.integers(1, 64), st.integers(1, 64),
                              st.floats(0.1, 10)),
                    min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_matches_bruteforce_minimal_set(self, points):
        samples = [_measured(m, 1, c, lat) for m, c, lat in points]
        frontier = extract_dominant(samples)
        keys = {(s.schedule.blocking_size, s.parallelism)
                for s in frontier}
        # No frontier point may dominate another frontier point.
        for a in keys:
            for b in keys:
                if a != b:
                    assert not (a[0] <= b[0] and a[1] <= b[1])
        # Every sample is dominated-or-equal by some frontier point.
        for s in samples:
            point = (s.schedule.blocking_size, s.parallelism)
            assert any(f[0] <= point[0] and f[1] <= point[1] for f in keys)


class TestUniformPick:
    def test_keeps_all_when_few(self):
        frontier = [_measured(4, 4, 1, 1.0), _measured(8, 8, 1, 1.0)]
        assert uniform_pick(frontier, 5) == frontier

    def test_includes_both_ends(self):
        frontier = [_measured(2 ** i, 4, 1, 1.0) for i in range(1, 10)]
        picks = uniform_pick(frontier, 3)
        assert picks[0] is frontier[0]
        assert picks[-1] is frontier[-1]
        assert len(picks) == 3

    def test_rejects_zero_versions(self):
        with pytest.raises(ValueError):
            uniform_pick([_measured(4, 4, 1, 1.0)], 0)


class TestSinglePassCompiler:
    @pytest.fixture(scope="class")
    def compiled(self, cost_model, conv_layer):
        compiler = SinglePassCompiler(cost_model, trials=256, seed=2)
        return compiler.compile_layer(conv_layer, qos_budget_s=500e-6)

    def test_version_count_within_limit(self, compiled):
        assert 1 <= compiled.version_count <= 5

    def test_versions_sorted_by_blocking_desc(self, compiled):
        blockings = [v.blocking_size for v in compiled.versions]
        assert blockings == sorted(blockings, reverse=True)

    def test_level_map_is_argmin_of_table(self, compiled):
        for li in range(len(compiled.levels)):
            chosen = compiled.version_for_level[li]
            column = [row[li] for row in compiled.latency_table]
            assert column[chosen] == min(column)

    def test_version_for_interpolates(self, compiled):
        assert compiled.version_for(0.0) == compiled.static_version()
        assert compiled.version_for(1.0) in compiled.versions

    def test_versions_all_legal(self, compiled, conv_layer):
        for version in compiled.versions:
            assert version.is_legal_for(conv_layer.gemm)

    def test_rejects_zero_budget(self, cost_model, conv_layer):
        compiler = SinglePassCompiler(cost_model, trials=128)
        with pytest.raises(ValueError):
            compiler.compile_layer(conv_layer, qos_budget_s=0.0)

    def test_impossible_budget_still_compiles(self, cost_model,
                                              conv_layer):
        compiler = SinglePassCompiler(cost_model, trials=128, seed=4)
        compiled = compiler.compile_layer(conv_layer, qos_budget_s=1e-9)
        assert compiled.version_count >= 1

    def test_level_index_bisect_matches_nearest_scan(self, compiled):
        # The bisect over precomputed thresholds replaced an O(levels)
        # scan on the pricing-miss hot path; selection must be
        # bit-identical across a dense pressure grid, exact midpoints,
        # and their ulp neighbours (where float tie-breaks live).
        import math

        def nearest_scan(levels, pressure):
            return min(range(len(levels)),
                       key=lambda i: abs(levels[i] - pressure))

        probes = [k / 1000.0 for k in range(-50, 1051)]
        for i in range(len(compiled.levels) - 1):
            mid = (compiled.levels[i] + compiled.levels[i + 1]) / 2.0
            probes += [math.nextafter(mid, -1.0), mid,
                       math.nextafter(mid, 2.0)]
        for pressure in probes:
            assert (compiled.level_index(pressure)
                    == nearest_scan(compiled.levels, pressure)), pressure
        # Version selection rides on the index: spot-check the mapping.
        for pressure in (0.0, 0.33, 0.5, 1.0):
            level = nearest_scan(compiled.levels, pressure)
            assert (compiled.version_index_for(pressure)
                    == compiled.version_for_level[level])


class TestModelCompiler:
    def test_compiled_model_aligns_with_graph(self, compiler):
        graph = get_model("mobilenet_v2")
        compiled = compiler.compile_model(graph, get_entry(
            "mobilenet_v2").qos_s)
        assert len(compiled) == len(graph)
        assert compiled.name == "mobilenet_v2"

    def test_signature_cache_shares_tables(self, compiler):
        graph = get_model("resnet50")
        compiled = compiler.compile_model(graph, 0.015)
        # Repeated bottleneck convs share shapes -> identical tables.
        by_sig = {}
        for entry in compiled.layers:
            sig = entry.layer.signature
            if sig in by_sig:
                assert entry.versions == by_sig[sig].versions
            by_sig[sig] = entry

    def test_static_compilation_has_one_version(self, compiler):
        graph = get_model("mobilenet_v2")
        static = compiler.compile_static(graph, 0.010)
        assert all(e.version_count == 1 for e in static.layers)

    def test_budget_floor_keeps_layers_feasible(self, compiler):
        graph = get_model("resnet50")
        budgets = compiler._layer_budgets(graph, 0.015)
        assert min(budgets) >= 1e-6
        assert sum(budgets) <= 0.015 * compiler.qos_margin + 1e-9

    def test_rejects_zero_qos(self, compiler):
        with pytest.raises(ValueError):
            compiler.compile_model(get_model("mobilenet_v2"), 0.0)


class TestVendorLibrary:
    def test_vendor_schedule_always_legal(self, small_layers):
        for layer in small_layers:
            assert vendor_schedule(layer).is_legal_for(layer.gemm)

    def test_vendor_models_single_version(self, cost_model):
        library = VendorLibrary(cost_model)
        compiled = library.compile_model(get_model("mobilenet_v2"), 0.010)
        assert all(e.version_count == 1 for e in compiled.layers)

    def test_tuned_beats_vendor(self, cost_model, compiler):
        graph = get_model("mobilenet_v2")
        tuned = compiler.compile_model(graph, 0.010)
        vendor_total = sum(
            cost_model.latency(layer, vendor_schedule(layer), 64, 0.0)
            for layer in graph.layers)
        tuned_total = sum(
            cost_model.latency(layer, tuned.layers[i].static_version(),
                               64, 0.0)
            for i, layer in enumerate(graph.layers))
        assert tuned_total < vendor_total
