"""Request-model tests: batching, completion hooks, pipelines, sessions.

Covers the PR 10 surface end to end on the light two-model stack:
engine-side dynamic batching (fusion mechanics, per-member attribution,
and the batching-off bit-identity guarantee), the ``on_complete`` hook
seam and :meth:`Engine.drain` ordering contract, pipeline hand-off on a
single node and shed-stage-fails-pipeline on a guarded cluster,
closed-loop determinism (double-run and fork-pool), trace record/replay
round-trips over realized feedback streams, the scenario registry's
request-model entries, and the deprecated ``cpu_specs``/``cpu_name``
aliases.
"""

import math

import pytest

from repro.cluster import AdmissionPolicy, Cluster, homogeneous
from repro.models.registry import get_entry
from repro.parallel import fork_worker_pool
from repro.runtime.engine import BatchPolicy
from repro.runtime.tasks import Query
from repro.scheduling.base import batch_profile
from repro.serving import WorkloadSpec
from repro.serving.workload import poisson_queries
from repro.workloads import (
    SCENARIO_NAMES,
    ArrivalTrace,
    ClosedLoopSpec,
    ClosedLoopTenant,
    PipelineSpec,
    RequestStream,
    ScenarioSpec,
    get_scenario,
    record_trace,
)

_MIX = WorkloadSpec(name="req-mix", entries=(("mobilenet_v2", 2.0),
                                             ("googlenet", 1.0)))
_MONO = WorkloadSpec(name="req-mono", entries=(("mobilenet_v2", 1.0),))


def _loop_scenario() -> ScenarioSpec:
    return ScenarioSpec(
        name="test-loop", workload=_MIX,
        closed_loop=ClosedLoopSpec(tenants=3, concurrency=2,
                                   think_s=0.005))


def _chain_scenario() -> ScenarioSpec:
    return ScenarioSpec(
        name="test-chain",
        pipeline=PipelineSpec(name="mn-gn",
                              stages=("mobilenet_v2", "googlenet")))


def _guarded(stack) -> Cluster:
    return Cluster(stack, homogeneous(1),
                   admission=AdmissionPolicy(max_outstanding_per_core=0.05,
                                             max_defers=1))


def _report_key(report) -> tuple:
    """The fields a determinism test compares bit-exactly."""
    return (report.offered, report.admitted, report.completed,
            report.satisfied, report.shed,
            report.average_latency_s, report.p99_latency_s,
            tuple((s.session, s.issued, s.completed, s.satisfied, s.shed,
                   s.average_latency_s) for s in report.sessions))


# Fork-pool worker state: set before entering the pool (fork captures
# module globals by copy-on-write; nothing is pickled in).
_FORK_STATE = None


def _closed_loop_cell(seed: int) -> tuple:
    stack, count = _FORK_STATE
    stream = _loop_scenario().stream(stack.compiled, qps=0.0,
                                     count=count, seed=seed)
    return _report_key(_guarded(stack).serve_stream(stream))


class TestBatchPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_batch"):
            BatchPolicy(max_batch=1)
        with pytest.raises(ValueError, match="max_wait"):
            BatchPolicy(max_wait_s=-0.001)

    def test_batching_off_is_bit_identical(self, light_stack):
        queries = poisson_queries(light_stack.compiled, _MIX, qps=60.0,
                                  count=40, seed=13)
        legacy, _ = light_stack.run("veltair_full", queries)
        stream = RequestStream(
            queries=poisson_queries(light_stack.compiled, _MIX, qps=60.0,
                                    count=40, seed=13))
        outcome = light_stack.run_stream("veltair_full", stream)
        key = lambda qs: [(q.query_id, q.finished_s, q.core_seconds,
                           q.blocks) for q in qs]
        assert key(outcome.completed) == key(legacy)

    def test_fusion_and_member_attribution(self, light_stack):
        queries = poisson_queries(light_stack.compiled, _MONO, qps=2000.0,
                                  count=32, seed=5)
        for query in queries:
            query.qos_s *= 8.0
        completed, engine = light_stack.run(
            "veltair_full", queries,
            batching=BatchPolicy(max_batch=4, max_wait_s=0.005))
        # Every member completes individually, with its own latency.
        assert len(completed) == 32
        assert sorted(q.query_id for q in completed) == list(range(32))
        for query in completed:
            assert query.finished_s is not None
            assert query.finished_s > query.arrival_s
            assert query.batch == 1  # members stay unit-sized
            assert query.core_seconds > 0.0
        # Dense same-model arrivals actually fused: some batch closes
        # with >= 2 members, which then share one completion instant.
        finish_counts: dict[float, int] = {}
        for query in completed:
            finish_counts[query.finished_s] = (
                finish_counts.get(query.finished_s, 0) + 1)
        assert max(finish_counts.values()) >= 2
        # Completion order is the drain contract: nondecreasing finish.
        finishes = [q.finished_s for q in completed]
        assert finishes == sorted(finishes)
        assert engine.outstanding == 0


class TestOnCompleteAndDrain:
    def test_hook_fires_per_completion_in_order(self, light_stack):
        queries = poisson_queries(light_stack.compiled, _MIX, qps=80.0,
                                  count=24, seed=9)
        seen: list[tuple[int, float, int]] = []

        def hook(engine, query):
            # The contract pinned by Engine.drain's docstring: the hook
            # fires immediately after the append, with engine.now at
            # the completion instant.
            assert engine.completed[-1] is query
            seen.append((query.query_id, engine.now,
                         len(engine.completed)))

        completed, engine = light_stack.run("veltair_full", queries,
                                            on_complete=hook)
        assert len(seen) == len(completed) == 24
        assert [qid for qid, _, _ in seen] == [q.query_id
                                               for q in completed]
        for (_, now, depth), query in zip(seen, completed):
            assert now == query.finished_s
        assert [depth for _, _, depth in seen] == list(range(1, 25))
        # Append-only, nondecreasing finish order.
        finishes = [q.finished_s for q in completed]
        assert finishes == sorted(finishes)

    def test_hook_can_submit_followups(self, light_stack):
        queries = poisson_queries(light_stack.compiled, _MIX, qps=80.0,
                                  count=12, seed=9)
        extra = {"sent": False}

        def hook(engine, query):
            if not extra["sent"]:
                extra["sent"] = True
                engine.submit(Query(
                    query_id=10_000,
                    model=light_stack.compiled["mobilenet_v2"],
                    arrival_s=engine.now,
                    qos_s=get_entry("mobilenet_v2").qos_s))

        completed, _ = light_stack.run("veltair_full", queries,
                                       on_complete=hook)
        assert len(completed) == 13
        assert any(q.query_id == 10_000 for q in completed)


class TestPipelines:
    def test_single_node_handoff(self, light_stack):
        stream = _chain_scenario().stream(light_stack.compiled, qps=30.0,
                                          count=6, seed=3)
        assert len(stream.pipelines) == 6 and not stream.tenants
        # Later stages are unscheduled until hand-off.
        for pipeline in stream.pipelines:
            assert math.isnan(pipeline.stages[1].arrival_s)
        outcome = light_stack.run_stream("veltair_full", stream)
        assert len(outcome.completed) == 12  # both stages of every chain
        assert len(outcome.issued) == 12
        for pipeline in outcome.pipelines:
            assert pipeline.done and not pipeline.failed
            stage0, stage1 = pipeline.stages
            # Stage k+1 was submitted the instant stage k completed.
            assert stage1.arrival_s == stage0.finished_s
            assert pipeline.finished_s == stage1.finished_s
            assert pipeline.latency_s >= (stage0.finished_s
                                          - stage0.arrival_s)
            assert pipeline.qos_s == stage0.qos_s + stage1.qos_s

    def test_shed_stage_fails_pipeline(self, light_stack):
        stream = _chain_scenario().stream(light_stack.compiled, qps=800.0,
                                          count=16, seed=3)
        report = _guarded(light_stack).serve_stream(stream,
                                                    offered_qps=800.0)
        rollup = report.pipelines
        assert rollup is not None and rollup.offered == 16
        assert rollup.failed >= 1, "overload must shed at least one stage"
        assert rollup.completed + rollup.failed == 16
        for pipeline in stream.pipelines:
            assert pipeline.done
            if pipeline.failed:
                assert pipeline.shed_stage is not None
                assert pipeline.finished_s is None
                assert not pipeline.satisfied
                # No stage after the shed one ever ran.
                for stage in pipeline.stages[pipeline.shed_stage:]:
                    assert stage.finished_s is None
        assert rollup.failed == sum(p.failed for p in stream.pipelines)


class TestClosedLoop:
    def test_feedback_accounting(self, light_stack):
        stream = _loop_scenario().stream(light_stack.compiled, qps=0.0,
                                         count=30, seed=11)
        assert len(stream.tenants) == 3 and not stream.pipelines
        report = _guarded(light_stack).serve_stream(stream)
        # Closed loop: every issued request is offered exactly once,
        # and sheds hand control back (the tenant issues its next).
        assert report.offered == 30
        assert report.admitted + report.shed == 30
        assert len(report.sessions) == 3
        assert sum(s.issued for s in report.sessions) == 30
        for session, tenant in zip(report.sessions, stream.tenants):
            assert session.session == tenant.session
            assert session.issued == len(tenant.issued)
            assert session.completed + session.shed == session.issued
            assert tenant.remaining == 0

    def test_tenant_sequence_is_interleaving_independent(self, light_stack):
        def draws(order):
            tenant = ClosedLoopTenant(
                session=4, compiled=light_stack.compiled, workload=_MIX,
                qos_for=lambda name: get_entry(name).qos_s,
                budget=8, concurrency=2, think_s=0.001, base_seed=11)
            out = [q.model.name for q in tenant.initial_requests()]
            for now in order:
                query = tenant.next_request(now)
                if query is not None:
                    out.append(query.model.name)
            return out

        # Different runtime interleavings, same per-tenant rng stream.
        assert draws([0.1, 0.2, 0.3, 0.4, 0.5, 0.6]) == \
            draws([0.05, 0.9, 1.1, 1.15, 2.0, 3.0])

    def test_double_run_bit_identical(self, light_stack):
        keys = []
        for _ in range(2):
            stream = _loop_scenario().stream(light_stack.compiled, qps=0.0,
                                             count=30, seed=11)
            keys.append(_report_key(_guarded(light_stack)
                                    .serve_stream(stream)))
        assert keys[0] == keys[1]

    def test_fork_pool_matches_serial(self, light_stack):
        global _FORK_STATE
        _FORK_STATE = (light_stack, 30)
        serial = _closed_loop_cell(11)  # also pre-warms lazy artifacts
        with fork_worker_pool(2) as pool:
            if pool is None:
                pytest.skip("platform without fork")
            forked = pool.map(_closed_loop_cell, [11])[0]
        _FORK_STATE = None
        assert forked == serial


class TestTraceRoundTrip:
    def test_closed_loop_record_replay(self, light_stack, tmp_path):
        stream = _loop_scenario().stream(light_stack.compiled, qps=0.0,
                                         count=24, seed=7)
        cluster = Cluster(light_stack, homogeneous(1))
        cluster.serve_stream(stream)
        assert cluster.last_offered is not None
        assert len(cluster.last_offered) == 24
        trace = record_trace(cluster.last_offered, name="loop-trace",
                             meta={"scenario": "test-loop"})
        loaded = ArrivalTrace.load(trace.save(tmp_path / "loop.json"))
        key = lambda qs: [(q.arrival_s, q.model.name, q.qos_s)
                          for q in qs]
        replayed = trace.replay(light_stack.compiled)
        assert key(replayed) == key(loaded.replay(light_stack.compiled))
        # The realized feedback stream replays open-loop: reports from
        # two independent replays are bit-identical.
        reports = [
            _report_key(Cluster(light_stack, homogeneous(1))
                        .serve(loaded.replay(light_stack.compiled)))
            for _ in range(2)]
        assert reports[0] == reports[1]
        assert reports[0][2] == 24  # all replayed arrivals complete

    def test_pipeline_record_replay(self, light_stack, tmp_path):
        stream = _chain_scenario().stream(light_stack.compiled, qps=30.0,
                                          count=5, seed=3)
        outcome = light_stack.run_stream("veltair_full", stream)
        trace = record_trace(outcome.issued, name="chain-trace")
        assert len(trace.entries) == 10  # both stages, realized arrivals
        loaded = ArrivalTrace.load(trace.save(tmp_path / "chain.json"))
        replayed = loaded.replay(light_stack.compiled)
        assert [e.model for e in loaded.entries] == \
            [q.model.name for q in replayed]
        completed, _ = light_stack.run("veltair_full", replayed)
        assert len(completed) == 10
        assert all(q.finished_s is not None for q in completed)


class TestScenarioRegistry:
    def test_request_model_entries_registered(self):
        assert "agent_loop" in SCENARIO_NAMES
        assert "vision_pipeline" in SCENARIO_NAMES
        assert len(SCENARIO_NAMES) == 12
        loop = get_scenario("agent_loop")
        assert loop.request_model and loop.closed_loop.tenants == 6
        chain = get_scenario("vision_pipeline")
        assert chain.request_model
        assert chain.pipeline.stages == ("ssd_resnet34", "resnet50")

    def test_queries_raises_for_request_model(self, light_stack):
        with pytest.raises(ValueError, match="request model"):
            _loop_scenario().queries(light_stack.compiled, qps=10.0,
                                     count=4, seed=1)

    def test_open_loop_sweeps_reject_request_model(self, light_stack):
        from repro.serving.experiments import sweep_qps
        with pytest.raises(ValueError, match="request model"):
            sweep_qps(light_stack, "veltair_full", _MIX, [10.0], count=4,
                      scenario="agent_loop")


class TestDeprecatedAliases:
    def test_cluster_spec_cpu_specs_warns(self):
        fleet = homogeneous(2)
        with pytest.warns(DeprecationWarning, match="cpu_specs"):
            specs = fleet.cpu_specs
        assert specs == fleet.device_specs

    def test_node_report_cpu_name_warns(self, light_stack):
        queries = poisson_queries(light_stack.compiled, _MIX, qps=40.0,
                                  count=4, seed=2)
        report = Cluster(light_stack, homogeneous(1)).serve(queries)
        node = report.nodes[0]
        with pytest.warns(DeprecationWarning, match="cpu_name"):
            name = node.cpu_name
        assert name == node.device_name


class TestBatchProfiles:
    def test_budgets_scale_with_batch(self, light_stack):
        unit = light_stack.profiles["mobilenet_v2"]
        fat = batch_profile(light_stack.cost_model, unit, 4)
        assert fat.layer_budgets_s == tuple(b * 4
                                            for b in unit.layer_budgets_s)
        assert fat.isolated_service_s > unit.isolated_service_s
        assert batch_profile(light_stack.cost_model, unit, 1) is unit

    def test_profile_for_memoises_per_batch(self, light_stack):
        scheduler = light_stack.make_scheduler("veltair_full")
        compiled = light_stack.compiled["mobilenet_v2"]
        unit = Query(query_id=0, model=compiled, arrival_s=0.0,
                     qos_s=get_entry("mobilenet_v2").qos_s)
        fused = Query(query_id=1, model=compiled, arrival_s=0.0,
                      qos_s=get_entry("mobilenet_v2").qos_s, batch=4)
        assert scheduler.profile_for(unit) is \
            light_stack.profiles["mobilenet_v2"]
        first = scheduler.profile_for(fused)
        assert first is scheduler.profile_for(fused)
        assert first is not scheduler.profile_for(unit)
        assert first.layer_budgets_s[0] == \
            4 * scheduler.profile_for(unit).layer_budgets_s[0]
