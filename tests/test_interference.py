"""Interference state, counters, PCA, and linear-proxy tests."""

import pytest

from repro.hardware.counters import COUNTER_NAMES, counters_from_execution
from repro.interference.model import InterferenceState, RunningTask
from repro.interference.proxy import (
    collect_aggregate_samples,
    collect_samples,
    fit_proxy,
    pca_analysis,
    proxy_accuracy,
)
from repro.compiler.space import ScheduleSpace


class TestRunningTask:
    def test_rejects_out_of_range_pressure(self):
        with pytest.raises(ValueError):
            RunningTask(task_id=1, pressure=1.5)

    def test_rejects_bad_remaining(self):
        with pytest.raises(ValueError):
            RunningTask(task_id=1, pressure=0.5, remaining_fraction=-0.1)


class TestInterferenceState:
    def _state(self):
        state = InterferenceState()
        state.add(RunningTask(task_id=1, pressure=0.3))
        state.add(RunningTask(task_id=2, pressure=0.4))
        return state

    def test_excludes_self(self):
        state = self._state()
        assert state.pressure_for(1) == pytest.approx(0.4)
        assert state.pressure_for(2) == pytest.approx(0.3)

    def test_newcomer_sees_everything(self):
        assert self._state().pressure_for(None) == pytest.approx(0.7)

    def test_caps_at_one(self):
        state = self._state()
        state.add(RunningTask(task_id=3, pressure=0.9))
        assert state.pressure_for(None) == 1.0

    def test_soon_to_finish_filter(self):
        state = self._state()
        state.update_remaining(2, 0.05)  # below the 10% threshold
        assert state.pressure_for(1, planning=True) == pytest.approx(0.0)
        assert state.pressure_for(1, planning=False) == pytest.approx(0.4)

    def test_remove(self):
        state = self._state()
        state.remove(1)
        assert len(state) == 1
        assert state.total_pressure() == pytest.approx(0.4)


class TestCounters:
    def test_counter_vector_matches_names(self, cost_model, conv_layer):
        sched = ScheduleSpace.for_layer(conv_layer).default_schedule()
        exe = cost_model.execution(conv_layer, sched, 16, 0.3)
        counters = counters_from_execution(exe,
                                           cost_model.cpu.frequency_hz)
        assert len(counters.as_vector()) == len(COUNTER_NAMES)

    def test_miss_rate_rises_with_interference(self, cost_model,
                                               conv_layer):
        sched = ScheduleSpace.for_layer(conv_layer).make(196, 64, 2304, 64)
        freq = cost_model.cpu.frequency_hz
        iso = counters_from_execution(
            cost_model.execution(conv_layer, sched, 16, 0.0), freq)
        hot = counters_from_execution(
            cost_model.execution(conv_layer, sched, 16, 1.0), freq)
        assert hot.l3_miss_rate >= iso.l3_miss_rate


class TestProxyPipeline:
    @pytest.fixture(scope="class")
    def samples(self, resnet_stack):
        return collect_samples(resnet_stack.cost_model,
                               list(resnet_stack.compiled.values()),
                               scenarios=200, seed=3)

    def test_sample_count(self, samples):
        assert len(samples) == 200

    def test_pca_l3_dominates(self, samples):
        report = pca_analysis(samples)
        dominant = report.dominant_counters(threshold=0.05)
        assert "l3_miss_rate" in dominant or "l3_accesses_per_s" in dominant
        # Code-shape counters carry no interference signal (Fig. 11a).
        assert "branch_miss_rate" not in dominant
        assert report.explained_ratio[0] > 0.4

    def test_pca_needs_samples(self, samples):
        with pytest.raises(ValueError):
            pca_analysis(samples[:2])

    def test_linear_proxy_accuracy(self, samples):
        import numpy as np

        proxy = fit_proxy(samples)
        stats = proxy_accuracy(proxy, samples)
        # Per-task windows are far noisier than the chip-wide monitor the
        # runtime uses (see TestAggregateSamples): layer identity dominates
        # a single task's miss rate.  Require bounded error and a positive
        # pressure signal rather than a tight fit.
        assert stats["mae"] < 0.3
        predicted = np.array([proxy.predict_sample(s) for s in samples])
        actual = np.array([s.measured_interference for s in samples])
        assert np.corrcoef(predicted, actual)[0, 1] > 0.1

    def test_proxy_prediction_clamped(self, samples):
        proxy = fit_proxy(samples)
        assert 0.0 <= proxy.predict(0.0, 0.0) <= 1.0
        assert 0.0 <= proxy.predict(1.0, 1e12) <= 1.0

    def test_fit_needs_samples(self, samples):
        with pytest.raises(ValueError):
            fit_proxy(samples[:3])


class TestAggregateSamples:
    def test_aggregate_windows(self, resnet_stack):
        samples = collect_aggregate_samples(
            resnet_stack.cost_model, list(resnet_stack.compiled.values()),
            scenarios=100, seed=5)
        assert len(samples) == 100
        assert all(0.0 <= s.measured_interference <= 1.0 for s in samples)
        assert all(s.measured_slowdown >= 1.0 for s in samples)

    def test_aggregate_proxy_usable(self, resnet_stack):
        samples = collect_aggregate_samples(
            resnet_stack.cost_model, list(resnet_stack.compiled.values()),
            scenarios=200, seed=6)
        proxy = fit_proxy(samples)
        stats = proxy_accuracy(proxy, samples)
        assert stats["mae"] < 0.2
