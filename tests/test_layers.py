"""Layer specification math tests."""

import pytest

from repro.config import FP32_BYTES
from repro.models.layers import (
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Elementwise,
    FusedLayer,
    GemmShape,
    Pool,
)


class TestGemmShape:
    def test_flops_is_2mnk(self):
        assert GemmShape(4, 5, 6).flops == 2 * 4 * 5 * 6

    def test_rejects_zero_dim(self):
        with pytest.raises(ValueError):
            GemmShape(0, 5, 6)


class TestConv2D:
    def test_gemm_lowering(self):
        conv = Conv2D(name="c", height=14, width=14, in_channels=256,
                      out_channels=512, kernel_h=3, kernel_w=3)
        assert conv.gemm == GemmShape(m=196, n=512, k=256 * 9)

    def test_flops_hand_calculation(self):
        conv = Conv2D(name="c", height=14, width=14, in_channels=256,
                      out_channels=512)
        assert conv.flops == 2 * 14 * 14 * 512 * 256 * 9

    def test_strided_output_size(self):
        conv = Conv2D(name="c", height=224, width=224, in_channels=3,
                      out_channels=64, kernel_h=7, kernel_w=7, stride=2)
        assert conv.out_height == 112
        assert conv.out_width == 112

    def test_byte_counts(self):
        conv = Conv2D(name="c", height=8, width=8, in_channels=4,
                      out_channels=16, kernel_h=1, kernel_w=1)
        assert conv.input_bytes == 8 * 8 * 4 * FP32_BYTES
        assert conv.output_bytes == 8 * 8 * 16 * FP32_BYTES
        assert conv.weight_bytes == 4 * 16 * FP32_BYTES

    def test_rejects_zero_channels(self):
        with pytest.raises(ValueError):
            Conv2D(name="c", height=8, width=8, in_channels=0,
                   out_channels=16)

    def test_compute_bound_conv(self):
        conv = Conv2D(name="c", height=14, width=14, in_channels=256,
                      out_channels=256)
        assert not conv.is_memory_bound


class TestDepthwiseConv2D:
    def test_flops_hand_calculation(self):
        dw = DepthwiseConv2D(name="d", height=56, width=56, channels=32)
        assert dw.flops == 2 * 56 * 56 * 32 * 9

    def test_channels_folded_into_m(self):
        dw = DepthwiseConv2D(name="d", height=14, width=14, channels=64)
        assert dw.gemm.m == 14 * 14 * 64
        assert dw.gemm.n == 1

    def test_is_memory_bound(self):
        dw = DepthwiseConv2D(name="d", height=56, width=56, channels=32)
        assert dw.is_memory_bound


class TestDense:
    def test_gemm_passthrough(self):
        fc = Dense(name="f", m=1, n=1000, k=2048)
        assert fc.gemm == GemmShape(1, 1000, 2048)
        assert fc.flops == 2 * 1000 * 2048

    def test_weight_bytes(self):
        fc = Dense(name="f", m=1, n=10, k=20)
        assert fc.weight_bytes == 10 * 20 * FP32_BYTES


class TestPool:
    def test_output_shrinks_by_stride(self):
        pool = Pool(name="p", height=112, width=112, channels=64,
                    kernel=3, stride=2)
        assert pool.out_height == 56
        assert pool.weight_bytes == 0

    def test_memory_bound(self):
        pool = Pool(name="p", height=56, width=56, channels=64)
        assert pool.is_memory_bound


class TestElementwise:
    def test_flops_scale_with_ops(self):
        ew = Elementwise(name="e", elements=1000, ops_per_element=4)
        assert ew.flops == 4000

    def test_residual_reads_two_inputs(self):
        add = Elementwise(name="a", elements=100, reads_second_input=True)
        assert add.input_bytes == 2 * 100 * FP32_BYTES

    def test_rejects_zero_elements(self):
        with pytest.raises(ValueError):
            Elementwise(name="e", elements=0)


class TestFusedLayer:
    def _fused(self):
        conv = Conv2D(name="c", height=8, width=8, in_channels=4,
                      out_channels=8, kernel_h=1, kernel_w=1)
        relu = Elementwise(name="c.relu", elements=8 * 8 * 8)
        return conv, relu, FusedLayer(name="c", anchor=conv,
                                      epilogues=(relu,))

    def test_keeps_anchor_gemm(self):
        conv, _, fused = self._fused()
        assert fused.gemm == conv.gemm
        assert fused.kind == "Conv2D"

    def test_adds_epilogue_flops(self):
        conv, relu, fused = self._fused()
        assert fused.flops == conv.flops + relu.flops

    def test_rejects_non_elementwise_epilogue(self):
        conv, _, _ = self._fused()
        with pytest.raises(ValueError):
            FusedLayer(name="x", anchor=conv, epilogues=(conv,))

    def test_residual_epilogue_adds_second_input(self):
        conv, _, plain = self._fused()
        add = Elementwise(name="c.add", elements=8 * 8 * 8,
                          reads_second_input=True)
        fused = FusedLayer(name="c", anchor=conv, epilogues=(add,))
        assert fused.input_bytes == conv.input_bytes + 8 * 8 * 8 * FP32_BYTES


class TestSignature:
    def test_same_shape_same_signature(self):
        a = Conv2D(name="a", height=14, width=14, in_channels=64,
                   out_channels=64)
        b = Conv2D(name="b", height=14, width=14, in_channels=64,
                   out_channels=64)
        assert a.signature == b.signature

    def test_different_kind_different_signature(self):
        conv = Conv2D(name="a", height=4, width=4, in_channels=2,
                      out_channels=2, kernel_h=1, kernel_w=1)
        pool = Pool(name="b", height=4, width=4, channels=2)
        assert conv.signature != pool.signature

    def test_arithmetic_intensity_positive(self):
        conv = Conv2D(name="a", height=14, width=14, in_channels=64,
                      out_channels=64)
        assert conv.arithmetic_intensity > 0
