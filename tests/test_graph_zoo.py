"""Model graph and zoo tests — structure, fusion, and known model stats."""

import pytest

from repro.models.graph import ModelGraph, chain
from repro.models.layers import Conv2D, Dense, Elementwise
from repro.models.registry import (
    HEAVY,
    LIGHT,
    MEDIUM,
    get_entry,
    get_model,
    model_names,
    models_by_class,
)


def _tiny_chain():
    conv = Conv2D(name="c", height=8, width=8, in_channels=4,
                  out_channels=8, kernel_h=1, kernel_w=1)
    relu = Elementwise(name="c.relu", elements=8 * 8 * 8)
    fc = Dense(name="fc", m=1, n=10, k=512)
    return chain("tiny", [conv, relu, fc])


class TestModelGraph:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ModelGraph(name="x", layers=())

    def test_rejects_backward_edge(self):
        g = _tiny_chain()
        with pytest.raises(ValueError):
            ModelGraph(name="x", layers=g.layers, edges=((2, 1),))

    def test_rejects_out_of_range_edge(self):
        g = _tiny_chain()
        with pytest.raises(ValueError):
            ModelGraph(name="x", layers=g.layers, edges=((0, 9),))

    def test_flops_sum(self):
        g = _tiny_chain()
        assert g.flops == sum(layer.flops for layer in g.layers)

    def test_op_fractions_sum_to_one(self):
        g = _tiny_chain()
        assert sum(g.op_fractions()) == pytest.approx(1.0)

    def test_fusion_merges_relu(self):
        g = _tiny_chain().fuse_elementwise()
        assert len(g) == 2
        assert g.layers[0].kind == "Conv2D"
        assert g.layers[0].flops > 0

    def test_fusion_preserves_total_flops(self):
        raw = _tiny_chain()
        assert raw.fuse_elementwise().flops == raw.flops

    def test_orphan_elementwise_survives(self):
        ew = Elementwise(name="solo", elements=100)
        fc = Dense(name="fc", m=1, n=10, k=100)
        g = chain("x", [ew, fc]).fuse_elementwise()
        assert len(g) == 2

    def test_block_slices_from_pivots(self):
        g = _tiny_chain()
        assert g.block_slices([2]) == [(0, 2), (2, 3)]
        assert g.block_slices([]) == [(0, 3)]

    def test_block_slices_rejects_bad_pivot(self):
        with pytest.raises(ValueError):
            _tiny_chain().block_slices([7])

    def test_fixed_blocks_cover_everything(self):
        g = _tiny_chain()
        blocks = g.fixed_blocks(2)
        assert blocks == [(0, 2), (2, 3)]

    def test_fixed_blocks_rejects_zero(self):
        with pytest.raises(ValueError):
            _tiny_chain().fixed_blocks(0)


class TestZooStats:
    """Known architecture facts — guards against silent zoo regressions."""

    def test_all_models_build(self):
        for name in model_names():
            graph = get_model(name)
            assert len(graph) > 5
            assert graph.flops > 0

    def test_resnet50_conv_census(self):
        graph = get_model("resnet50")
        convs = [layer for layer in graph.layers
                 if layer.kind == "Conv2D"]
        assert len(convs) == 53  # paper Sec. 3.2: 53 conv layers

    def test_resnet50_flops_near_8_2_gflops(self):
        assert get_model("resnet50").flops / 1e9 == pytest.approx(8.2,
                                                                  rel=0.05)

    def test_googlenet_flops(self):
        assert 2.5 < get_model("googlenet").flops / 1e9 < 4.0

    def test_mobilenet_flops(self):
        assert 0.4 < get_model("mobilenet_v2").flops / 1e9 < 0.9

    def test_efficientnet_flops(self):
        assert 0.5 < get_model("efficientnet_b0").flops / 1e9 < 1.2

    def test_bert_large_is_heaviest(self):
        flops = {n: get_model(n).flops for n in model_names()}
        assert max(flops, key=flops.get) == "bert_large"

    def test_bert_weights_over_1gb(self):
        assert get_model("bert_large").weight_bytes > 1e9

    def test_ssd_heavier_than_resnet(self):
        assert (get_model("ssd_resnet34").flops
                > 5 * get_model("resnet50").flops)

    def test_fusion_shrinks_models(self):
        for name in model_names():
            fused = get_model(name)
            raw = get_entry(name).builder()
            assert len(fused) < len(raw)


class TestRegistry:
    def test_table2_qos_targets(self):
        expected = {
            "resnet50": 15.0, "googlenet": 15.0, "efficientnet_b0": 10.0,
            "mobilenet_v2": 10.0, "ssd_resnet34": 100.0,
            "tiny_yolov2": 10.0, "bert_large": 130.0,
        }
        for name, qos_ms in expected.items():
            assert get_entry(name).qos_ms == qos_ms

    def test_aliases_resolve(self):
        assert get_entry("ResNet-50").name == "resnet50"
        assert get_entry("bert").name == "bert_large"
        assert get_entry("SSD").name == "ssd_resnet34"

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            get_entry("alexnet")

    def test_workload_classes_cover_table2(self):
        assert len(models_by_class(LIGHT)) == 3
        assert len(models_by_class(MEDIUM)) == 2
        assert len(models_by_class(HEAVY)) == 2

    def test_unknown_class_raises(self):
        with pytest.raises(ValueError):
            models_by_class("extreme")

    def test_model_cache_returns_same_object(self):
        assert get_model("resnet50") is get_model("resnet50")
