"""Cluster subsystem tests: specs, routers, admission, fleet driver,
and the engine's incremental-driving hooks the fleet rides on."""

import pytest

from repro.cluster import (
    ROUTERS,
    AdmissionPolicy,
    Cluster,
    ClusterSpec,
    NodeSpec,
    cluster_capacity,
    fleet_pressure,
    homogeneous,
    make_router,
    mixed_fleet,
    sweep_cluster_qps,
)
from repro.hardware.platform import (
    EDGE_NODE_32,
    PRODUCTION_SERVER_256,
    THREADRIPPER_3990X,
)
from repro.runtime.engine import Engine
from repro.scheduling.veltair import VeltairScheduler
from repro.serving.workload import WorkloadSpec, poisson_queries

MIX = WorkloadSpec(name="mix2", entries=(("mobilenet_v2", 1.0),
                                         ("googlenet", 1.0)))


class TestClusterSpec:
    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            ClusterSpec(name="x", nodes=())

    def test_rejects_duplicate_node_names(self):
        node = NodeSpec(name="a", cpu=THREADRIPPER_3990X)
        with pytest.raises(ValueError):
            ClusterSpec(name="x", nodes=(node, node))

    def test_rejects_empty_node_name(self):
        with pytest.raises(ValueError):
            NodeSpec(name="", cpu=THREADRIPPER_3990X)

    def test_homogeneous(self):
        spec = homogeneous(3)
        assert len(spec) == 3
        assert spec.total_cores == 3 * 64
        with pytest.warns(DeprecationWarning, match="cpu_specs"):
            assert spec.cpu_specs == (THREADRIPPER_3990X,)
        with pytest.raises(ValueError):
            homogeneous(0)

    def test_mixed_fleet_shape(self):
        spec = mixed_fleet()
        assert len(spec) == 4
        assert spec.total_cores == 64 + 64 + 256 + 32
        with pytest.warns(DeprecationWarning, match="cpu_specs"):
            assert set(spec.cpu_specs) == {THREADRIPPER_3990X,
                                           PRODUCTION_SERVER_256,
                                           EDGE_NODE_32}


class _StubEngine:
    def __init__(self, queued: int, running: int) -> None:
        self.queued = queued
        self.outstanding = queued + running


class _StubNode:
    def __init__(self, index: int, cores: int, queued: int = 0,
                 running: int = 0, pressure: float = 0.0) -> None:
        self.index = index
        self.cores = cores
        self.width = cores
        self.engine = _StubEngine(queued, running)
        self._pressure = pressure

    def pressure_estimate(self) -> float:
        return self._pressure


class _StubQuery:
    def __init__(self, qos_s: float) -> None:
        self.qos_s = qos_s


class TestRouters:
    def test_registry_constructs_all(self):
        for name in ROUTERS:
            assert make_router(name).name == name
        with pytest.raises(ValueError):
            make_router("teleport")

    def test_round_robin_cycles(self):
        router = make_router("round_robin")
        nodes = [_StubNode(i, 64) for i in range(3)]
        picks = [router.choose(nodes, _StubQuery(0.01), 0.0).index
                 for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_least_outstanding_counts_running(self):
        nodes = [_StubNode(0, 64, queued=0, running=5),
                 _StubNode(1, 64, queued=2, running=0)]
        assert make_router("least_outstanding").choose(
            nodes, _StubQuery(0.01), 0.0).index == 1
        # JSQ ignores executing queries: node 0 looks idle.
        assert make_router("join_shortest_queue").choose(
            nodes, _StubQuery(0.01), 0.0).index == 0

    def test_pressure_aware_prefers_quiet_node(self):
        nodes = [_StubNode(0, 64, queued=1, pressure=0.8),
                 _StubNode(1, 64, queued=1, pressure=0.1)]
        assert make_router("pressure_aware").choose(
            nodes, _StubQuery(0.01), 0.0).index == 1

    def test_pressure_aware_width_normalises_depth(self):
        # Equal pressure, equal backlog: the wide node has the lower
        # per-width depth and takes the query.
        nodes = [_StubNode(0, 64, queued=8, pressure=0.2),
                 _StubNode(1, 256, queued=8, pressure=0.2)]
        assert make_router("pressure_aware").choose(
            nodes, _StubQuery(0.01), 0.0).index == 1

    def test_pressure_aware_urgency_weighting(self):
        # Tight-QoS queries avoid the pressured node even when it has
        # the shorter queue; loose-QoS queries take the short queue.
        nodes = [_StubNode(0, 64, queued=1, pressure=0.6),
                 _StubNode(1, 64, queued=3, pressure=0.0)]
        router = make_router("pressure_aware")
        assert router.choose(nodes, _StubQuery(0.010), 0.0).index == 1
        assert router.choose(nodes, _StubQuery(0.130), 0.0).index == 0


class TestIncrementalDrive:
    """begin/submit/run_until/drain must replay run() exactly."""

    def test_feeding_matches_run(self, light_stack):
        queries_a = poisson_queries(light_stack.compiled, MIX, 250, 60,
                                    seed=4)
        queries_b = poisson_queries(light_stack.compiled, MIX, 250, 60,
                                    seed=4)
        engine_a = Engine(light_stack.cost_model,
                          price_cache=light_stack.price_cache)
        done_a = engine_a.run(queries_a,
                              light_stack.make_scheduler("veltair_full"))

        engine_b = Engine(light_stack.cost_model,
                          price_cache=light_stack.price_cache)
        engine_b.begin([], light_stack.make_scheduler("veltair_full"))
        for query in sorted(queries_b, key=lambda q: (q.arrival_s,
                                                      q.query_id)):
            engine_b.run_until(query.arrival_s)
            engine_b.submit(query)
        done_b = engine_b.drain()

        assert len(done_a) == len(done_b) == 60
        finished_a = {q.query_id: q.finished_s for q in done_a}
        finished_b = {q.query_id: q.finished_s for q in done_b}
        assert finished_a == pytest.approx(finished_b)

    def test_submit_never_rewinds_the_clock(self, light_stack):
        queries = poisson_queries(light_stack.compiled, MIX, 100, 4,
                                  seed=1)
        engine = Engine(light_stack.cost_model,
                        price_cache=light_stack.price_cache)
        engine.begin([], light_stack.make_scheduler("veltair_full"))
        engine.submit(queries[0])       # something to advance through
        engine.run_until(10.0)
        assert engine.now == 10.0
        late = queries[1]
        late.arrival_s = 1.0  # already in the past
        engine.submit(late)
        engine.drain()
        assert late.started_s >= 10.0

    def test_drive_requires_scheduler(self, light_stack):
        engine = Engine(light_stack.cost_model)
        with pytest.raises(RuntimeError):
            engine.drain()

    def test_quantize_pressure(self, light_stack):
        engine = Engine(light_stack.cost_model, pressure_quantum=0.05)
        assert engine.quantize_pressure(0.237) == pytest.approx(0.25)
        assert engine.quantize_pressure(0.0) == 0.0
        assert engine.quantize_pressure(5.0) == 1.0
        coarse = Engine(light_stack.cost_model, pressure_quantum=0.2)
        assert coarse.quantize_pressure(0.237) == pytest.approx(0.2)

    def test_planning_pressure_uses_engine_quantum(self, light_stack):
        """Satellite fix: no more hard-coded round(estimate, 2)."""
        scheduler = VeltairScheduler(light_stack.cost_model,
                                     light_stack.profiles, proxy=None)
        engine = Engine(light_stack.cost_model, pressure_quantum=0.2)
        engine.pressure = lambda exclude_task=None, planning=False: 0.237
        assert scheduler.planning_pressure(engine) == pytest.approx(0.2)


class TestClusterServe:
    def test_reconciles_exactly(self, light_stack):
        cluster = Cluster(light_stack, homogeneous(2),
                          router="pressure_aware")
        report = cluster.report(MIX, qps=300, count=80, seed=3)
        assert report.offered == 80
        assert report.shed == 0
        assert report.admitted == sum(n.assigned for n in report.nodes)
        assert report.completed == sum(n.completed for n in report.nodes)
        assert report.satisfied == sum(n.satisfied for n in report.nodes)
        assert report.offered == report.admitted + report.shed
        assert report.completed == 80  # nothing lost without admission

    def test_round_robin_splits_evenly(self, light_stack):
        cluster = Cluster(light_stack, homogeneous(2), router="round_robin")
        report = cluster.report(MIX, qps=300, count=81, seed=3)
        assigned = sorted(n.assigned for n in report.nodes)
        assert assigned == [40, 41]
        assert report.load_imbalance == pytest.approx(41 / 40.5)

    def test_deterministic_per_seed(self, light_stack):
        cluster = Cluster(light_stack, homogeneous(2),
                          router="pressure_aware")
        first = cluster.report(MIX, qps=300, count=60, seed=9)
        second = cluster.report(MIX, qps=300, count=60, seed=9)
        assert first == second

    def test_pressure_aware_respects_width(self, light_stack):
        spec = ClusterSpec(name="het", nodes=(
            NodeSpec(name="small", cpu=EDGE_NODE_32),
            NodeSpec(name="big", cpu=THREADRIPPER_3990X)))
        cluster = Cluster(light_stack, spec, router="pressure_aware")
        report = cluster.report(MIX, qps=350, count=120, seed=3)
        by_name = {n.name: n for n in report.nodes}
        # 2/3 of the cores live on the big node; a width-aware router
        # must send it clearly more than the 50% a blind split would.
        assert by_name["big"].assigned > 0.55 * report.admitted

    def test_shared_artifacts_single_compile(self, light_stack):
        spec = ClusterSpec(name="het", nodes=(
            NodeSpec(name="small", cpu=EDGE_NODE_32),
            NodeSpec(name="big", cpu=THREADRIPPER_3990X)))
        Cluster(light_stack, spec).report(MIX, qps=200, count=40, seed=3)
        assert light_stack.artifact_builds == 1
        # Per-CPU runtimes are memoised and the reference CPU reuses the
        # stack's own cache; foreign CPUs get their own (prices are
        # bound to one cost model and cannot be shared across widths).
        reference = light_stack.runtime_for(light_stack.cpu)
        assert reference.price_cache is light_stack.price_cache
        edge = light_stack.runtime_for(EDGE_NODE_32)
        assert edge is light_stack.runtime_for(EDGE_NODE_32)
        assert edge.price_cache is not light_stack.price_cache
        assert edge.profiles.keys() == light_stack.profiles.keys()

    def test_serve_rejects_empty_stream(self, light_stack):
        with pytest.raises(ValueError):
            Cluster(light_stack, homogeneous(1)).serve([])


class TestAdmission:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_fleet_pressure=1.5)
        with pytest.raises(ValueError):
            AdmissionPolicy(mode="panic")
        with pytest.raises(ValueError):
            AdmissionPolicy(defer_s=0.0)

    def test_shed_mode_bounds_backlog(self, light_stack):
        policy = AdmissionPolicy(max_fleet_pressure=1.0,
                                 max_outstanding_per_core=0.02,
                                 mode="shed")
        cluster = Cluster(light_stack, homogeneous(1),
                          router="round_robin", admission=policy)
        report = cluster.report(MIX, qps=800, count=120, seed=3)
        assert report.shed > 0
        assert report.admitted >= 1  # an idle fleet always admits
        assert report.offered == report.admitted + report.shed
        assert report.completed == report.admitted
        assert report.shed_rate == pytest.approx(report.shed / 120)
        # Shed queries are QoS violations: satisfaction is measured
        # against everything offered, not just what got in.
        assert report.satisfaction_rate <= report.satisfied / max(
            1, report.admitted)

    def test_defer_mode_retries_then_sheds(self, light_stack):
        policy = AdmissionPolicy(max_fleet_pressure=1.0,
                                 max_outstanding_per_core=0.02,
                                 mode="defer", defer_s=0.005,
                                 max_defers=2)
        cluster = Cluster(light_stack, homogeneous(1),
                          router="round_robin", admission=policy)
        report = cluster.report(MIX, qps=800, count=120, seed=3)
        assert report.deferrals > 0
        assert report.offered == report.admitted + report.shed
        assert report.completed == report.admitted

    def test_fleet_pressure_core_weighted(self):
        nodes = [_StubNode(0, 64, pressure=1.0),
                 _StubNode(1, 192, pressure=0.0)]
        assert fleet_pressure(nodes) == pytest.approx(0.25)

    def test_node_offered_share_divides_by_admitted(self, light_stack):
        """Satellite fix: per-node offered QPS shares what was admitted.

        Shed queries never reach a node; dividing a node's share by the
        full offered count under-stated every node's load whenever the
        controller shed, and the per-node rates no longer summed to the
        fleet rate.
        """
        policy = AdmissionPolicy(max_fleet_pressure=1.0,
                                 max_outstanding_per_core=0.02,
                                 mode="shed")
        cluster = Cluster(light_stack, homogeneous(2),
                          router="round_robin", admission=policy)
        report = cluster.report(MIX, qps=800, count=120, seed=3)
        assert report.shed > 0
        assert sum(n.report.offered_qps for n in report.nodes) == (
            pytest.approx(report.offered_qps))

    def test_defer_accounting_and_reoffer_ordering(self, light_stack,
                                                   monkeypatch):
        """Defer -> shed bookkeeping plus the offer heap's ordering.

        Every decision the controller makes is recorded: deferred
        queries must be re-offered exactly ``defer_s`` later with the
        attempt count bumped, interleaved in time order with later
        arrivals, and the ``deferrals``/``shed`` counters must equal
        the recorded decision stream.
        """
        from repro.cluster.admission import AdmissionController

        log = []

        class Recorder(AdmissionController):
            def decide(self, nodes, query, attempts):
                decision = super().decide(nodes, query, attempts)
                log.append((query.query_id, attempts, decision))
                return decision

        instances = []

        class Tracked(Recorder):
            def __init__(self, policy):
                super().__init__(policy)
                instances.append(self)

        monkeypatch.setattr("repro.cluster.fleet.AdmissionController",
                            Tracked)
        policy = AdmissionPolicy(max_fleet_pressure=1.0,
                                 max_outstanding_per_core=0.02,
                                 mode="defer", defer_s=0.005,
                                 max_defers=2)
        cluster = Cluster(light_stack, homogeneous(1),
                          router="round_robin", admission=policy)
        report = cluster.report(MIX, qps=800, count=120, seed=3)
        (controller,) = instances

        decisions = [entry[2] for entry in log]
        assert report.deferrals == controller.deferrals == (
            decisions.count("defer"))
        assert report.shed == controller.shed == decisions.count("shed")
        assert report.admitted == controller.admitted == (
            decisions.count("admit"))
        assert report.offered == report.admitted + report.shed

        # Per-query offer chains: attempts count 0, 1, ... and stop at
        # max_defers; only a defer extends the chain.
        by_query: dict[int, list] = {}
        for query_id, attempts, decision in log:
            by_query.setdefault(query_id, []).append((attempts, decision))
        assert any(len(chain) > 1 for chain in by_query.values())
        for chain in by_query.values():
            assert [a for a, _ in chain] == list(range(len(chain)))
            for _, decision in chain[:-1]:
                assert decision == "defer"
            assert len(chain) - 1 <= policy.max_defers
            if len(chain) - 1 == policy.max_defers:
                assert chain[-1][1] in ("admit", "shed")

    def test_reoffers_interleave_with_later_arrivals(self, light_stack,
                                                     monkeypatch):
        """A deferred re-offer is decided at arrival + k * defer_s, in
        time order with arrivals landing inside the deferral window."""
        from repro.cluster.admission import AdmissionController

        offers = []

        class Recorder(AdmissionController):
            def decide(self, nodes, query, attempts):
                offers.append((query.arrival_s
                               + attempts * self.policy.defer_s,
                               query.query_id, attempts))
                return super().decide(nodes, query, attempts)

        monkeypatch.setattr("repro.cluster.fleet.AdmissionController",
                            Recorder)
        policy = AdmissionPolicy(max_fleet_pressure=1.0,
                                 max_outstanding_per_core=0.02,
                                 mode="defer", defer_s=0.005,
                                 max_defers=3)
        cluster = Cluster(light_stack, homogeneous(1),
                          router="round_robin", admission=policy)
        cluster.report(MIX, qps=800, count=120, seed=3)

        times = [time for time, _, _ in offers]
        assert times == sorted(times)
        deferred = [entry for entry in offers if entry[2] > 0]
        assert deferred, "the overload must actually defer something"


class TestClusterExperiments:
    def test_sweep_shapes_and_determinism(self, light_stack):
        serial = sweep_cluster_qps(light_stack, homogeneous(2), MIX,
                                   [150.0, 300.0], count=40, seed=3)
        assert [r.offered_qps for r in serial] == [150.0, 300.0]
        again = sweep_cluster_qps(light_stack, homogeneous(2), MIX,
                                  [150.0, 300.0], count=40, seed=3)
        assert serial == again

    def test_capacity_returns_passing_report(self, light_stack):
        result = cluster_capacity(light_stack, homogeneous(2), MIX,
                                  count=40, router="pressure_aware",
                                  target=0.8, low_qps=20.0,
                                  high_qps=160.0, tolerance_qps=80.0,
                                  seed=3)
        assert result.qps >= 20.0
        assert result.report.satisfaction_rate >= 0.8
        assert result.router == "pressure_aware"
