"""Cost model tests: the paper's performance phenomena as invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import make_rng
from repro.hardware.platform import THREADRIPPER_3990X
from repro.models.layers import Conv2D, Pool
from repro.compiler.costmodel import CostModel, CostModelParams
from repro.compiler.schedule import Schedule
from repro.compiler.space import ScheduleSpace


@pytest.fixture(scope="module")
def model():
    return CostModel(THREADRIPPER_3990X)


@pytest.fixture(scope="module")
def schedule(conv_layer):
    return ScheduleSpace.for_layer(conv_layer).make(
        tile_m=49, tile_n=64, tile_k=512, parallel_chunks=64)


class TestBasicProperties:
    def test_latency_positive(self, model, conv_layer, schedule):
        assert model.latency(conv_layer, schedule, 16) > 0

    def test_rejects_zero_cores(self, model, conv_layer, schedule):
        with pytest.raises(ValueError):
            model.latency(conv_layer, schedule, 0)

    def test_interference_clamped(self, model, conv_layer, schedule):
        low = model.latency(conv_layer, schedule, 16, -5.0)
        base = model.latency(conv_layer, schedule, 16, 0.0)
        high = model.latency(conv_layer, schedule, 16, 7.0)
        capped = model.latency(conv_layer, schedule, 16, 1.0)
        assert low == base
        assert high == capped

    def test_memoization_returns_identical(self, model, conv_layer,
                                           schedule):
        a = model.execution(conv_layer, schedule, 16, 0.5)
        b = model.execution(conv_layer, schedule, 16, 0.5)
        assert a is b

    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_latency_monotonic_in_interference(self, i1, i2):
        model = CostModel(THREADRIPPER_3990X)
        layer = Conv2D(name="c", height=14, width=14, in_channels=256,
                       out_channels=256)
        sched = ScheduleSpace.for_layer(layer).make(49, 64, 512, 64)
        lo, hi = sorted((i1, i2))
        assert (model.latency(layer, sched, 16, lo)
                <= model.latency(layer, sched, 16, hi) + 1e-12)

    def test_more_cores_helps_at_low_counts(self, model, conv_layer,
                                            schedule):
        assert (model.latency(conv_layer, schedule, 8)
                < model.latency(conv_layer, schedule, 2))

    def test_cores_capped_by_chunks(self, model, conv_layer):
        one_chunk = Schedule(tile_m=196, tile_n=256, tile_k=2304,
                             parallel_chunks=1)
        exe = model.execution(conv_layer, one_chunk, 64)
        assert exe.cores_used == 1

    def test_slowdown_reported(self, model, conv_layer, schedule):
        exe = model.execution(conv_layer, schedule, 16, 0.8)
        assert exe.slowdown > 1.0
        iso = model.execution(conv_layer, schedule, 16, 0.0)
        assert iso.slowdown == pytest.approx(1.0)


class TestPaperPhenomena:
    """The compilation insights of paper Sec. 3.3 / 4.1, as assertions."""

    def _best(self, model, layer, interference, cores=32, count=800):
        space = ScheduleSpace.for_layer(layer)
        samples = space.sample_many(count, make_rng(1))
        return min(samples,
                   key=lambda s: model.latency(layer, s, cores,
                                               interference))

    def test_iso_best_degrades_by_multiples(self, model, conv_layer):
        best = self._best(model, conv_layer, 0.0)
        degradation = (model.latency(conv_layer, best, 32, 1.0)
                       / model.latency(conv_layer, best, 32, 0.0))
        assert degradation > 2.5  # paper Fig. 6a: up to ~7x

    def test_tolerant_version_stays_flat(self, model, conv_layer):
        tolerant = self._best(model, conv_layer, 1.0)
        degradation = (model.latency(conv_layer, tolerant, 32, 1.0)
                       / model.latency(conv_layer, tolerant, 32, 0.0))
        assert degradation < 1.6

    def test_crossover_exists(self, model, conv_layer):
        iso_best = self._best(model, conv_layer, 0.0)
        tolerant = self._best(model, conv_layer, 1.0)
        assert (model.latency(conv_layer, iso_best, 32, 0.0)
                <= model.latency(conv_layer, tolerant, 32, 0.0))
        assert (model.latency(conv_layer, tolerant, 32, 1.0)
                < model.latency(conv_layer, iso_best, 32, 1.0))

    def test_speedup_saturates(self, model, conv_layer, schedule):
        t8 = model.latency(conv_layer, schedule, 8)
        t56 = model.latency(conv_layer, schedule, 56)
        speedup = t8 / t56
        assert 1.5 < speedup < 7.0  # paper Fig. 4a range


class TestRequiredCores:
    def test_meets_budget(self, model, conv_layer, schedule):
        generous = model.latency(conv_layer, schedule, 4)
        cores = model.required_cores(conv_layer, schedule, generous)
        assert cores is not None
        assert model.latency(conv_layer, schedule, cores) <= generous

    def test_minimality(self, model, conv_layer, schedule):
        budget = model.latency(conv_layer, schedule, 16) * 1.01
        cores = model.required_cores(conv_layer, schedule, budget)
        assert cores is not None
        if cores > 1:
            assert model.latency(conv_layer, schedule, cores - 1) > budget

    def test_impossible_budget_returns_none(self, model, conv_layer,
                                            schedule):
        assert model.required_cores(conv_layer, schedule, 1e-9) is None

    def test_zero_budget_returns_none(self, model, conv_layer, schedule):
        assert model.required_cores(conv_layer, schedule, 0.0) is None


class TestCountersAndPressure:
    def test_miss_rate_bounded(self, model, conv_layer, schedule):
        for interference in (0.0, 0.5, 1.0):
            exe = model.execution(conv_layer, schedule, 16, interference)
            assert 0.0 <= exe.llc_miss_rate <= 1.0

    def test_misses_grow_with_interference(self, model, conv_layer,
                                           schedule):
        iso = model.execution(conv_layer, schedule, 16, 0.0)
        hot = model.execution(conv_layer, schedule, 16, 1.0)
        assert hot.dram_bytes >= iso.dram_bytes

    def test_pressure_contribution_in_unit_interval(self, model,
                                                    small_layers):
        for layer in small_layers:
            sched = ScheduleSpace.for_layer(layer).default_schedule()
            assert 0.0 <= model.pressure_contribution(layer, sched,
                                                      16) <= 1.0

    def test_llc_occupancy_bounded_by_data(self, model, conv_layer,
                                           schedule):
        occupancy = model.llc_occupancy(conv_layer, schedule, 16)
        assert 0 < occupancy <= conv_layer.data_bytes

    def test_bandwidth_demand_positive(self, model, conv_layer, schedule):
        assert model.bandwidth_demand(conv_layer, schedule, 16) > 0

    def test_memory_bound_layer_accounts_memory_time(self, model):
        pool = Pool(name="p", height=56, width=56, channels=256)
        sched = ScheduleSpace.for_layer(pool).default_schedule()
        exe = model.execution(pool, sched, 16)
        assert exe.mem_s > 0
        assert exe.total_s >= exe.mem_s


class TestOverheads:
    def test_spawn_grows_with_cores(self, model):
        assert model.spawn_overhead(32) > model.spawn_overhead(4) > 0

    def test_expand_matches_paper_scale(self, model):
        # Paper Fig. 5b: conflict overhead mean ~220us; growing by ~30
        # cores should land in the right decade.
        overhead = model.expand_overhead(30)
        assert 50e-6 < overhead < 1e-3

    def test_params_are_tunable(self):
        params = CostModelParams(cache_sensitivity=2.0)
        model = CostModel(THREADRIPPER_3990X, params)
        assert model.params.cache_sensitivity == 2.0
