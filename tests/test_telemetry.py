"""Telemetry layer: tracer core, traced runs, exports, CLI, guards."""

from __future__ import annotations

import json

import pytest

from repro.cluster import Cluster, homogeneous
from repro.cluster.autoscale import AutoscalePolicy
from repro.cluster.spec import NodeSpec
from repro.hardware.platform import THREADRIPPER_3990X
from repro.runtime.engine import SimulationMetrics
from repro.serving.metrics import (
    max_qps_at_satisfaction,
    summarize,
)
from repro.serving.workload import WorkloadSpec
from repro.telemetry import (
    TRACE_DIR_ENV,
    TRACE_SCHEMA,
    FLEET_SIGNAL_FIELDS,
    Trace,
    TraceRecord,
    Tracer,
    prometheus_text,
    save_env_trace,
    summarize_trace,
    to_chrome,
    tracer_from_env,
    validate_chrome,
    validate_trace,
)
from repro.telemetry.__main__ import main as telemetry_cli

MIX = WorkloadSpec(name="mix2", entries=(("mobilenet_v2", 1.0),
                                         ("googlenet", 1.0)))


@pytest.fixture(scope="module")
def traced_run(light_stack):
    """One traced single-node serve + its untraced twin."""
    tracer = Tracer(run_id="test-run", meta={"qps": 300.0})
    report = light_stack.report("veltair_full", MIX, qps=300, count=80,
                                seed=3, tracer=tracer)
    report_off = light_stack.report("veltair_full", MIX, qps=300,
                                    count=80, seed=3)
    return tracer.trace(), report, report_off


class TestTracerCore:
    def test_empty_tracer_is_truthy(self):
        tracer = Tracer()
        assert len(tracer) == 0
        assert tracer, "a sink is truthy by existence, not fill level"

    def test_bind_stamps_node(self):
        tracer = Tracer()
        node = tracer.bind("node3")
        node.event("arrival", 0.5)
        node.span("q", 0.5, 0.1, cat="query", qid=7)
        node.counter("engine", 0.6, {"pressure": 0.2})
        assert all(r.node == "node3" for r in tracer.records)
        node.event("route", 0.7, node="other")
        assert tracer.records[-1].node == "other"

    def test_payload_roundtrip(self):
        record = TraceRecord(kind="span", name="q", ts=0.125, dur=0.5,
                             cat="query", node="n0", qid=3,
                             args={"satisfied": True})
        assert TraceRecord.from_payload(record.to_payload()) == record
        bare = TraceRecord(kind="event", name="arrival", ts=1.0)
        payload = bare.to_payload()
        assert set(payload) == {"kind", "name", "ts"}
        assert TraceRecord.from_payload(payload) == bare

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            TraceRecord.from_payload({"kind": "blob", "name": "x",
                                      "ts": 0.0})

    def test_save_load_roundtrip(self, tmp_path):
        tracer = Tracer(run_id="rt", meta={"seed": 1})
        tracer.span("q", 0.1, 0.2, cat="query", qid=0)
        tracer.event("arrival", 0.1, qid=0)
        path = tracer.save(tmp_path / "t.jsonl")
        loaded = Trace.load(path)
        assert loaded.run_id == "rt"
        assert loaded.meta == {"seed": 1}
        assert loaded.records == tracer.records
        header = json.loads(path.read_text().splitlines()[0])
        assert header["schema"] == TRACE_SCHEMA

    def test_load_rejects_truncation_and_schema(self, tmp_path):
        tracer = Tracer()
        tracer.event("arrival", 0.0)
        tracer.event("arrival", 1.0)
        path = tracer.save(tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        (tmp_path / "cut.jsonl").write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="declares"):
            Trace.load(tmp_path / "cut.jsonl")
        bad = dict(json.loads(lines[0]), schema="other/9")
        (tmp_path / "bad.jsonl").write_text(json.dumps(bad) + "\n")
        with pytest.raises(ValueError, match="schema"):
            Trace.load(tmp_path / "bad.jsonl")


class TestTracedRun:
    def test_tracing_leaves_report_bit_identical(self, traced_run):
        _, report, report_off = traced_run
        assert report == report_off

    def test_trace_wellformed(self, traced_run):
        trace, report, _ = traced_run
        assert validate_trace(trace) == []
        assert len(trace.spans("query")) == report.completed
        assert len(trace.spans("phase")) == report.completed
        assert len(trace.spans("block")) >= report.completed

    def test_summarize_reproduces_report_exactly(self, traced_run):
        trace, report, _ = traced_run
        summary = summarize_trace(trace)
        assert summary.completed == report.completed
        assert summary.average_latency_s == report.average_latency_s
        assert summary.satisfaction_rate == report.satisfaction_rate
        assert summary.p99_latency_s == report.p99_latency_s

    def test_phase_breakdown_consistent(self, traced_run):
        trace, _, _ = traced_run
        overall = summarize_trace(trace).overall
        assert overall.queries > 0
        for phase_s in (overall.queue_s, overall.execute_s,
                        overall.inter_block_s, overall.stall_s):
            assert phase_s >= 0.0
        # Queue + execute + scheduler gaps account for the full latency
        # (stall overlaps execute; it is a refinement, not an addend).
        total = (overall.queue_s + overall.execute_s
                 + overall.inter_block_s)
        assert total == pytest.approx(overall.latency_s, rel=1e-9)
        assert overall.stall_s <= overall.execute_s

    def test_chrome_export_validates(self, traced_run):
        trace, _, _ = traced_run
        payload = to_chrome(trace)
        assert validate_chrome(payload) == []
        kinds = {event["ph"] for event in payload["traceEvents"]}
        assert {"X", "b", "e", "M", "C"} <= kinds

    def test_prometheus_text(self, traced_run):
        trace, report, _ = traced_run
        text = prometheus_text(trace)
        assert "repro_query_latency_seconds_count" in text
        assert f" {report.completed}" in text

    def test_jsonl_roundtrip_preserves_summary(self, traced_run,
                                               tmp_path):
        trace, report, _ = traced_run
        loaded = Trace.load(trace.save(tmp_path / "run.jsonl"))
        assert len(loaded) == len(trace)
        assert (summarize_trace(loaded).average_latency_s
                == report.average_latency_s)


def _fast_policy() -> AutoscalePolicy:
    template = NodeSpec(name="auto", cpu=THREADRIPPER_3990X)
    return AutoscalePolicy(
        template=template, min_nodes=1, max_nodes=3,
        tick_s=0.02, warmup_s=0.04, cooldown_s=0.08,
        up_pressure=0.45, down_pressure=0.20,
        up_backlog_per_core=0.05, down_backlog_per_core=0.015,
        up_violation_rate=0.10, down_violation_rate=0.02,
        slo_window_s=0.15, panic_severity=2.0, quiet_ticks=3)


class TestClusterTrace:
    def test_fleet_reports_identical_and_routes_scored(self,
                                                       light_stack):
        def serve(tracer):
            cluster = Cluster(light_stack, homogeneous(2),
                              router="pressure_aware")
            return cluster.report(MIX, qps=300, count=60, seed=9,
                                  tracer=tracer)

        plain = serve(None)
        tracer = Tracer(run_id="fleet")
        traced = serve(tracer)
        assert traced == plain

        trace = tracer.trace()
        routes = trace.events("route")
        assert len(routes) == traced.admitted
        for route in routes:
            assert route.node, "route events carry the chosen node"
            scores = route.args["scores"]
            assert len(scores) == 2
            assert route.node in scores
        assert validate_trace(trace) == []
        assert validate_chrome(to_chrome(trace)) == []

    def test_autoscaled_serve_emits_signals_and_scaling(self,
                                                        light_stack):
        tracer = Tracer(run_id="elastic")
        cluster = Cluster(light_stack, homogeneous(1),
                          router="pressure_aware",
                          autoscale=_fast_policy())
        report = cluster.report(MIX, qps=400, count=200, seed=5,
                                scenario="diurnal", tracer=tracer)
        trace = tracer.trace()
        signals = trace.counters("fleet.signals")
        assert signals, "control ticks must surface as counters"
        for sample in signals:
            assert set(sample.args) == set(FLEET_SIGNAL_FIELDS)
        scale_events = [r for r in trace.events()
                        if r.name.startswith("scale.")]
        assert len(scale_events) == len(report.scaling_timeline)
        for event, logged in zip(scale_events, report.scaling_timeline):
            assert event.name == f"scale.{logged.action}"
            assert event.ts == logged.time_s
            assert event.node == logged.node


class TestZeroCompletionGuard:
    """A zero-completion probe can never read as serving capacity."""

    def test_forced_rate_with_no_completions_never_passes(self):
        def run(qps):
            report = summarize([], SimulationMetrics(), qps)
            object.__setattr__(report, "satisfaction_rate", 1.0)
            return report

        qps, report = max_qps_at_satisfaction(run, low_qps=10,
                                              high_qps=400)
        assert qps == 10
        assert report.completed == 0


class TestCLI:
    @pytest.fixture()
    def trace_path(self, traced_run, tmp_path):
        trace, _, _ = traced_run
        return trace.save(tmp_path / "run.jsonl")

    def test_summarize(self, trace_path, traced_run, capsys):
        _, report, _ = traced_run
        assert telemetry_cli(["summarize", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert f"average_latency_s={report.average_latency_s!r}" in out

    def test_export_chrome_and_prom(self, trace_path, capsys):
        assert telemetry_cli(["export", str(trace_path)]) == 0
        chrome = trace_path.with_suffix(".chrome.json")
        assert chrome.exists()
        payload = json.loads(chrome.read_text())
        assert validate_chrome(payload) == []
        assert telemetry_cli(["export", str(trace_path),
                              "--format", "prom"]) == 0
        assert trace_path.with_suffix(".prom").exists()

    def test_validate_and_diff(self, trace_path, capsys):
        assert telemetry_cli(["validate", str(trace_path)]) == 0
        assert telemetry_cli(["diff", str(trace_path),
                              str(trace_path)]) == 0

    def test_validate_flags_broken_nesting(self, tmp_path, capsys):
        tracer = Tracer(run_id="bad")
        tracer.span("m", 0.0, 0.1, cat="query", qid=0)
        tracer.span("m[0:1)", 0.05, 0.2, cat="block", qid=0)
        path = tracer.save(tmp_path / "bad.jsonl")
        assert telemetry_cli(["validate", str(path)]) == 1


class TestEnvHelpers:
    def test_tracer_from_env_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        tracer = tracer_from_env(run_id="envtest")
        assert tracer is not None
        tracer.event("arrival", 0.0)
        path = save_env_trace(tracer)
        assert path is not None and path.exists()
        assert len(Trace.load(path)) == 1

    def test_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv(TRACE_DIR_ENV, raising=False)
        assert tracer_from_env() is None
        assert save_env_trace(None) is None
