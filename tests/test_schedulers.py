"""Policy tests: each scheduler's defining behaviour on small streams."""

import pytest

from repro.runtime.engine import Engine
from repro.serving.workload import poisson_queries, uniform_queries
from repro.serving.metrics import summarize
from repro.scheduling.dynamic_block import ProportionalThresholdPolicy


def _serve(stack, policy, model="resnet50", qps=50, count=40):
    queries = uniform_queries(stack.compiled, model, qps, count)
    engine = Engine(stack.cost_model)
    scheduler = stack.make_scheduler(policy)
    done = engine.run(queries, scheduler)
    return done, engine


class TestAllPoliciesServeLowLoad:
    @pytest.mark.parametrize("policy", [
        "model_fcfs", "layerwise", "block6", "block11",
        "veltair_as", "veltair_ac", "veltair_full", "prema",
    ])
    def test_low_load_all_queries_complete(self, resnet_stack, policy):
        done, engine = _serve(resnet_stack, policy, qps=30, count=25)
        assert len(done) == 25
        assert engine.allocator.used == 0


class TestModelWiseFcfs:
    def test_whole_model_single_block(self, resnet_stack):
        done, engine = _serve(resnet_stack, "model_fcfs", count=10)
        assert all(q.blocks == 1 for q in done)

    def test_no_conflicts_by_design(self, resnet_stack):
        done, engine = _serve(resnet_stack, "model_fcfs", qps=200,
                              count=40)
        assert engine.metrics.conflicts == 0

    def test_fixed_grant(self, resnet_stack):
        profile = resnet_stack.profiles["resnet50"]
        done, engine = _serve(resnet_stack, "model_fcfs", count=5)
        assert engine.metrics.max_cores_used % profile.model_cores == 0


class TestLayerWise:
    def test_one_block_per_layer(self, resnet_stack):
        done, _ = _serve(resnet_stack, "layerwise", qps=20, count=5)
        layers = len(resnet_stack.compiled["resnet50"].layers)
        assert all(q.blocks == layers for q in done)

    def test_conflicts_rise_with_load(self, resnet_stack):
        _, quiet = _serve(resnet_stack, "layerwise", qps=30, count=40)
        _, busy = _serve(resnet_stack, "layerwise", qps=150, count=40)
        quiet_rate = quiet.metrics.conflicts / quiet.metrics.blocks_started
        busy_rate = busy.metrics.conflicts / busy.metrics.blocks_started
        assert busy_rate >= quiet_rate

    def test_conflicted_blocks_grow(self, resnet_stack):
        _, engine = _serve(resnet_stack, "layerwise", qps=150, count=40)
        assert engine.metrics.grows > 0


class TestFixedBlocks:
    def test_block_count_matches_size(self, resnet_stack):
        done, _ = _serve(resnet_stack, "block6", qps=20, count=5)
        layers = len(resnet_stack.compiled["resnet50"].layers)
        expected = -(-layers // 6)
        assert all(q.blocks == expected for q in done)

    def test_fewer_conflicts_than_layerwise(self, resnet_stack):
        _, lw = _serve(resnet_stack, "layerwise", qps=150, count=40)
        _, blk = _serve(resnet_stack, "block11", qps=150, count=40)
        lw_rate = lw.metrics.conflicts / lw.metrics.blocks_started
        blk_rate = blk.metrics.conflicts / blk.metrics.blocks_started
        assert blk_rate <= lw_rate

    def test_rejects_zero_block_size(self, resnet_stack):
        with pytest.raises(ValueError):
            stack = resnet_stack
            from repro.scheduling.fixed_block import FixedBlockScheduler
            FixedBlockScheduler(stack.cost_model, stack.profiles,
                                block_size=0)


class TestDynamicBlocks:
    def test_blocks_fewer_than_layers(self, resnet_stack):
        done, _ = _serve(resnet_stack, "veltair_as", qps=20, count=5)
        layers = len(resnet_stack.compiled["resnet50"].layers)
        assert all(q.blocks < layers for q in done)

    def test_threshold_shrinks_with_load(self, resnet_stack):
        scheduler = resnet_stack.make_scheduler("veltair_as")
        policy = ProportionalThresholdPolicy()
        queries = uniform_queries(resnet_stack.compiled, "resnet50",
                                  10, 3)
        engine = Engine(resnet_stack.cost_model)
        idle_thres = policy.threshold_for(scheduler, engine, queries[0])

        profile = resnet_stack.profiles["resnet50"]
        engine.waiting.extend(queries)
        engine.start_block(queries[1], len(queries[1].model.layers), 20,
                           profile.static_versions)
        engine.start_block(queries[2], len(queries[2].model.layers), 20,
                           profile.static_versions)
        busy_thres = policy.threshold_for(scheduler, engine, queries[0])
        assert busy_thres <= idle_thres

    def test_grant_capped_by_avg_plus_threshold(self, resnet_stack):
        scheduler = resnet_stack.make_scheduler("veltair_as")
        queries = uniform_queries(resnet_stack.compiled, "resnet50", 10, 1)
        engine = Engine(resnet_stack.cost_model)
        plan = scheduler.plan(engine, queries[0])
        assert plan.desired_cores <= resnet_stack.cpu.cores
        assert plan.desired_cores >= 1

    def test_headroom_validation(self, resnet_stack):
        from repro.scheduling.dynamic_block import DynamicBlockScheduler
        with pytest.raises(ValueError):
            DynamicBlockScheduler(resnet_stack.cost_model,
                                  resnet_stack.profiles,
                                  budget_headroom=0.0)


class TestVeltairFull:
    def test_uses_proxy_estimate(self, resnet_stack):
        scheduler = resnet_stack.make_scheduler("veltair_full")
        assert scheduler.proxy is not None
        engine = Engine(resnet_stack.cost_model)
        assert 0.0 <= scheduler.planning_pressure(engine) <= 1.0

    def test_oracle_mode_without_proxy(self, resnet_stack):
        from repro.scheduling.veltair import VeltairScheduler
        scheduler = VeltairScheduler(resnet_stack.cost_model,
                                     resnet_stack.profiles, proxy=None)
        engine = Engine(resnet_stack.cost_model)
        assert scheduler.planning_pressure(engine) == 0.0

    def test_version_adapts_to_pressure(self, resnet_stack):
        compiled = resnet_stack.compiled["resnet50"]
        multi = [e for e in compiled.layers if e.version_count > 1]
        assert multi, "expected at least one multi-version layer"
        entry = multi[0]
        assert entry.version_for(0.0) != entry.version_for(1.0)


class TestPrema:
    def test_one_task_at_a_time(self, resnet_stack):
        scheduler = resnet_stack.make_scheduler("prema")
        queries = uniform_queries(resnet_stack.compiled, "resnet50",
                                  1000, 4)
        engine = Engine(resnet_stack.cost_model)

        max_running = 0
        original = scheduler.schedule

        def spy(eng):
            nonlocal max_running
            max_running = max(max_running, len(eng.running))
            original(eng)

        scheduler.schedule = spy
        engine.run(queries, scheduler)
        assert max_running <= 1

    def test_tight_qos_preempts(self, light_stack):
        """Light (tight-QoS) queries get priority over waiting peers."""
        queries = poisson_queries(light_stack.compiled, _mix_spec(), 200,
                                  30, seed=3)
        engine = Engine(light_stack.cost_model)
        done = engine.run(queries, light_stack.make_scheduler("prema"))
        assert len(done) == 30

    def test_rejects_bad_quantum(self, resnet_stack):
        from repro.scheduling.prema import PremaScheduler
        with pytest.raises(ValueError):
            PremaScheduler(resnet_stack.cost_model, resnet_stack.profiles,
                           quantum_s=0.0)


def _mix_spec():
    from repro.serving.workload import WorkloadSpec
    return WorkloadSpec(name="duo", entries=(("mobilenet_v2", 1.0),
                                             ("googlenet", 1.0)))


class TestMultiModelServing:
    def test_mixed_stream_completes(self, light_stack):
        queries = poisson_queries(light_stack.compiled, _mix_spec(), 100,
                                  40, seed=5)
        engine = Engine(light_stack.cost_model)
        done = engine.run(queries, light_stack.make_scheduler(
            "veltair_full"))
        assert len(done) == 40
        served_models = {q.model.name for q in done}
        assert served_models == {"mobilenet_v2", "googlenet"}

    def test_veltair_beats_layerwise_at_load(self, light_stack):
        queries = poisson_queries(light_stack.compiled, _mix_spec(), 400,
                                  80, seed=6)
        results = {}
        for policy in ("layerwise", "veltair_full"):
            engine = Engine(light_stack.cost_model)
            done = engine.run(list(queries_copy(queries, light_stack)),
                              light_stack.make_scheduler(policy))
            results[policy] = summarize(done, engine.metrics, 400)
        assert (results["veltair_full"].satisfaction_rate
                >= results["layerwise"].satisfaction_rate)


def queries_copy(queries, stack):
    """Fresh Query objects (queries are mutated by the engine)."""
    from repro.runtime.tasks import Query
    return [Query(query_id=q.query_id, model=q.model,
                  arrival_s=q.arrival_s, qos_s=q.qos_s) for q in queries]
