"""Schedule, schedule-space, and traffic-math tests (incl. hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import make_rng
from repro.models.layers import Conv2D, GemmShape
from repro.compiler.schedule import (
    Schedule,
    fit_tiles_to_budget,
    gemm_traffic_bytes,
    num_tiles,
)
from repro.compiler.space import ScheduleSpace, UNROLL_CANDIDATES

GEMMS = st.builds(
    GemmShape,
    m=st.integers(min_value=1, max_value=4096),
    n=st.integers(min_value=1, max_value=2048),
    k=st.integers(min_value=1, max_value=4096),
)


class TestSchedule:
    def test_rejects_non_positive_fields(self):
        with pytest.raises(ValueError):
            Schedule(tile_m=0, tile_n=1, tile_k=1, parallel_chunks=1)

    def test_paper_metrics(self):
        s = Schedule(tile_m=32, tile_n=64, tile_k=128, parallel_chunks=16,
                     unroll=4)
        assert s.parallelism == 64
        assert s.blocking_size == 32 * 64

    def test_footprint_formula(self):
        s = Schedule(tile_m=2, tile_n=3, tile_k=5, parallel_chunks=1)
        assert s.tile_footprint_bytes == 4 * (2 * 5 + 5 * 3 + 2 * 3)

    def test_legality(self):
        gemm = GemmShape(16, 16, 16)
        assert Schedule(tile_m=16, tile_n=16, tile_k=16,
                        parallel_chunks=1).is_legal_for(gemm)
        assert not Schedule(tile_m=32, tile_n=16, tile_k=16,
                            parallel_chunks=1).is_legal_for(gemm)
        # Too many chunks for one tile.
        assert not Schedule(tile_m=16, tile_n=16, tile_k=16,
                            parallel_chunks=2).is_legal_for(gemm)

    @given(GEMMS)
    @settings(max_examples=60, deadline=None)
    def test_clipped_always_legal(self, gemm):
        raw = Schedule(tile_m=4096, tile_n=4096, tile_k=4096,
                       parallel_chunks=4096, unroll=16)
        assert raw.clipped_to(gemm).is_legal_for(gemm)

    def test_num_tiles(self):
        gemm = GemmShape(100, 60, 7)
        s = Schedule(tile_m=32, tile_n=32, tile_k=7, parallel_chunks=1)
        assert num_tiles(gemm, s) == 4 * 2


class TestGemmTraffic:
    def test_full_tiles_give_compulsory(self):
        gemm = GemmShape(64, 64, 64)
        traffic = gemm_traffic_bytes(gemm, 64, 64, 64)
        compulsory = 4 * (64 * 64 * 4)
        assert traffic == pytest.approx(compulsory)

    @given(GEMMS, st.integers(1, 256), st.integers(1, 256))
    @settings(max_examples=60, deadline=None)
    def test_never_below_compulsory(self, gemm, tile_m, tile_n):
        compulsory = 4.0 * (gemm.m * gemm.k + gemm.k * gemm.n
                            + 2 * gemm.m * gemm.n)
        assert gemm_traffic_bytes(gemm, tile_m, tile_n,
                                  gemm.k) >= compulsory - 1e-6

    @given(GEMMS)
    @settings(max_examples=60, deadline=None)
    def test_bigger_tiles_never_more_traffic(self, gemm):
        small = gemm_traffic_bytes(gemm, 8, 8, 8)
        large = gemm_traffic_bytes(gemm, 64, 64, 64)
        assert large <= small + 1e-6


class TestFitTilesToBudget:
    def test_untouched_when_fits(self):
        assert fit_tiles_to_budget(8, 8, 8, budget_bytes=1e9) == (8, 8, 8)

    @given(st.integers(4, 2048), st.integers(4, 2048), st.integers(8, 2048),
           st.floats(min_value=1e3, max_value=1e8))
    @settings(max_examples=80, deadline=None)
    def test_shrinks_m_n_only_and_never_grows(self, tm, tn, tk, budget):
        fm, fn, fk = fit_tiles_to_budget(tm, tn, tk, budget)
        assert fk == tk
        assert 1 <= fm <= tm
        assert 1 <= fn <= tn

    def test_zero_budget_floors(self):
        fm, fn, fk = fit_tiles_to_budget(128, 128, 64, 0.0)
        assert (fm, fn) == (4, 4)


class TestScheduleSpace:
    def test_candidates_bounded_by_extent(self, conv_layer):
        space = ScheduleSpace.for_layer(conv_layer)
        gemm = conv_layer.gemm
        assert max(space.tile_m_candidates()) == gemm.m
        assert max(space.tile_n_candidates()) == gemm.n
        assert max(space.tile_k_candidates()) == gemm.k

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_samples_always_legal(self, seed):
        layer = Conv2D(name="c", height=14, width=14, in_channels=256,
                       out_channels=256)
        space = ScheduleSpace.for_layer(layer)
        sample = space.sample(make_rng(seed))
        assert sample.is_legal_for(layer.gemm)
        assert sample.unroll in UNROLL_CANDIDATES

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_neighbours_always_legal(self, seed):
        layer = Conv2D(name="c", height=14, width=14, in_channels=256,
                       out_channels=256)
        space = ScheduleSpace.for_layer(layer)
        rng = make_rng(seed)
        schedule = space.sample(rng)
        for _ in range(5):
            schedule = space.neighbours(schedule, rng)
            assert schedule.is_legal_for(layer.gemm)

    def test_sample_many_unique(self, conv_layer):
        space = ScheduleSpace.for_layer(conv_layer)
        samples = space.sample_many(100, make_rng(0))
        assert len(samples) == len(set(samples))

    def test_default_schedule_legal(self, small_layers):
        for layer in small_layers:
            space = ScheduleSpace.for_layer(layer)
            assert space.default_schedule().is_legal_for(layer.gemm)

    def test_make_clips(self, conv_layer):
        space = ScheduleSpace.for_layer(conv_layer)
        schedule = space.make(10_000, 10_000, 10_000, 10_000)
        assert schedule.is_legal_for(conv_layer.gemm)

    def test_space_size_positive(self, conv_layer):
        assert ScheduleSpace.for_layer(conv_layer).size() > 100
