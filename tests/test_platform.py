"""Hardware platform spec tests."""

import pytest

from repro.hardware.platform import (
    THREADRIPPER_3990X,
    CacheSpec,
    CpuSpec,
    MemorySpec,
    threadripper_3990x,
)


class TestCacheSpec:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            CacheSpec(capacity_bytes=0, bandwidth_bytes_per_s=1e9)

    def test_rejects_negative_bandwidth(self):
        with pytest.raises(ValueError):
            CacheSpec(capacity_bytes=1024, bandwidth_bytes_per_s=-1.0)

    def test_shared_flag_default_false(self):
        spec = CacheSpec(capacity_bytes=1024, bandwidth_bytes_per_s=1e9)
        assert not spec.shared


class TestMemorySpec:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            MemorySpec(capacity_bytes=0, bandwidth_bytes_per_s=1e9)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            MemorySpec(capacity_bytes=1024, bandwidth_bytes_per_s=0.0)


class TestCpuSpec:
    def test_preset_matches_paper_platform(self):
        cpu = THREADRIPPER_3990X
        assert cpu.cores == 64
        assert cpu.frequency_hz == pytest.approx(2.9e9)
        assert cpu.llc.capacity_bytes == 256 * 1024 * 1024
        assert cpu.llc.shared

    def test_preset_factory_returns_equal_spec(self):
        assert threadripper_3990x() == THREADRIPPER_3990X

    def test_peak_flops_composition(self):
        cpu = THREADRIPPER_3990X
        assert cpu.peak_flops_per_core == pytest.approx(
            cpu.frequency_hz * cpu.flops_per_cycle)
        assert cpu.peak_flops == pytest.approx(
            cpu.peak_flops_per_core * cpu.cores)

    def test_sustained_below_peak(self):
        cpu = THREADRIPPER_3990X
        assert 0 < cpu.sustained_flops_per_core < cpu.peak_flops_per_core

    def test_rejects_bad_sustained_fraction(self):
        with pytest.raises(ValueError):
            CpuSpec(name="x", cores=4, frequency_hz=1e9,
                    flops_per_cycle=8.0, sustained_fraction=1.5,
                    l2=THREADRIPPER_3990X.l2, llc=THREADRIPPER_3990X.llc,
                    dram=THREADRIPPER_3990X.dram)

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            CpuSpec(name="x", cores=0, frequency_hz=1e9,
                    flops_per_cycle=8.0, sustained_fraction=0.5,
                    l2=THREADRIPPER_3990X.l2, llc=THREADRIPPER_3990X.llc,
                    dram=THREADRIPPER_3990X.dram)


class TestLlcShare:
    def test_zero_cores_zero_share(self):
        assert THREADRIPPER_3990X.llc_share(0) == 0.0

    def test_full_machine_gets_full_llc(self):
        cpu = THREADRIPPER_3990X
        assert cpu.llc_share(cpu.cores) == pytest.approx(
            cpu.llc.capacity_bytes)

    def test_share_monotonic_in_cores(self):
        cpu = THREADRIPPER_3990X
        shares = [cpu.llc_share(c) for c in range(1, cpu.cores + 1)]
        assert all(a <= b for a, b in zip(shares, shares[1:]))

    def test_small_task_floored_at_one_bank(self):
        cpu = THREADRIPPER_3990X
        one_bank = cpu.llc.capacity_bytes / (cpu.cores // 4)
        assert cpu.llc_share(1) == pytest.approx(one_bank)
