"""repro.checks: per-rule fixtures, suppressions, schema drift, CLI.

The fixture snippets under ``tests/checks_fixtures/`` are deliberate
rule violations (excluded from the default walk); every rule is tested
against a known-bad and a known-good file, the frozen-key-schema rule
against a mutated ``CpuSpec`` copy, and the whole tree must come back
clean — the checker is part of tier-1, like the ratchet.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.checks import (CheckConfig, HashRule, IterationRule, RngRule,
                          SchemaRule, TracerRule, WallclockRule,
                          all_rules, rule_by_name, run_checks,
                          update_snapshot)
from repro.checks.__main__ import main as checks_main

ROOT = Path(__file__).resolve().parent.parent
FIXTURES = ROOT / "tests" / "checks_fixtures"

#: A config that walks nothing by default and scopes nothing, so each
#: test aims exactly one rule at exactly one fixture file.
OPEN_CONFIG = CheckConfig(roots=(), exclude=(), scopes={})

RULE_FIXTURES = [
    (WallclockRule, "wallclock", 4),
    (HashRule, "hash", 3),
    (RngRule, "rng", 4),
    (TracerRule, "tracer", 4),
    (IterationRule, "iteration", 5),
]


def check_fixture(rule, name):
    return run_checks(ROOT, config=OPEN_CONFIG, rules=[rule()],
                      paths=[str(FIXTURES / name)])


class TestRuleFixtures:
    @pytest.mark.parametrize("rule,stem,expected",
                             RULE_FIXTURES,
                             ids=[stem for _, stem, _ in RULE_FIXTURES])
    def test_bad_fixture_fires(self, rule, stem, expected):
        findings = check_fixture(rule, f"{stem}_bad.py")
        assert len(findings) == expected, \
            [f.text() for f in findings]
        assert all(f.rule == rule.name for f in findings)
        # Location info must be real: every finding names the fixture
        # and a positive line.
        assert all(f.path.endswith(f"{stem}_bad.py") and f.line > 0
                   for f in findings)

    @pytest.mark.parametrize("rule,stem,expected",
                             RULE_FIXTURES,
                             ids=[stem for _, stem, _ in RULE_FIXTURES])
    def test_good_fixture_clean(self, rule, stem, expected):
        assert check_fixture(rule, f"{stem}_good.py") == []

    def test_findings_sorted_and_deduped(self):
        findings = check_fixture(IterationRule, "iteration_bad.py")
        assert findings == sorted(findings)
        assert len({(f.line, f.col) for f in findings}) == len(findings)


class TestSuppressions:
    def test_wellformed_suppressions_silence(self):
        findings = run_checks(ROOT, config=OPEN_CONFIG,
                              paths=[str(FIXTURES / "suppressed.py")])
        # Full rule set: unused suppressions would be reported, so an
        # empty result proves both suppressions matched a finding.
        assert findings == []

    def test_malformed_and_unused_reported(self):
        findings = run_checks(
            ROOT, config=OPEN_CONFIG,
            paths=[str(FIXTURES / "suppression_malformed.py")])
        rules = sorted(f.rule for f in findings)
        assert rules == ["malformed-suppression", "no-wallclock",
                         "unused-suppression"]

    def test_rule_subset_skips_unused_reporting(self):
        # With a rule subset the unused-suppression report is off (a
        # suppression for an unselected rule is merely unchecked), but
        # malformed suppressions are still findings.
        findings = run_checks(
            ROOT, config=OPEN_CONFIG, rules=[WallclockRule()],
            paths=[str(FIXTURES / "suppression_malformed.py")])
        assert sorted(f.rule for f in findings) == \
            ["malformed-suppression", "no-wallclock"]


class TestTreeClean:
    def test_repo_is_clean(self):
        # The acceptance gate: the committed tree has zero unsuppressed
        # findings under the default (CI) configuration.
        assert run_checks(ROOT) == []

    def test_rule_registry(self):
        names = [rule.name for rule in all_rules()]
        assert len(names) == len(set(names)) == 6
        assert rule_by_name("no-wallclock").name == "no-wallclock"
        with pytest.raises(KeyError):
            rule_by_name("no-such-rule")


class TestSchemaRule:
    def _mutated_config(self, tmp_path, platform_edit=None,
                        artifacts_edit=None):
        """A config whose schema sources are editable tmp copies."""
        platform = tmp_path / "platform.py"
        costmodel = tmp_path / "costmodel.py"
        artifacts = tmp_path / "artifacts.py"
        snapshot = tmp_path / "schema_snapshot.json"
        shutil.copy(ROOT / "src/repro/hardware/platform.py", platform)
        shutil.copy(ROOT / "src/repro/compiler/costmodel.py", costmodel)
        shutil.copy(ROOT / "src/repro/compiler/artifacts.py", artifacts)
        shutil.copy(ROOT / "src/repro/checks/schema_snapshot.json",
                    snapshot)
        if platform_edit:
            platform.write_text(platform_edit(platform.read_text()))
        if artifacts_edit:
            artifacts.write_text(artifacts_edit(artifacts.read_text()))
        return CheckConfig(
            roots=(), exclude=(), scopes={},
            snapshot_path=str(snapshot),
            schema_classes={"CpuSpec": str(platform),
                            "AcceleratorSpec": str(platform),
                            "CostModelParams": str(costmodel)},
            artifacts_path=str(artifacts))

    def test_unmutated_copies_match_snapshot(self, tmp_path):
        config = self._mutated_config(tmp_path)
        assert SchemaRule().check_tree(ROOT, config) == []

    def test_added_cpuspec_field_fires(self, tmp_path):
        config = self._mutated_config(
            tmp_path,
            platform_edit=lambda src: src.replace(
                "    thread_spawn_s: float = 12e-6",
                "    thread_spawn_s: float = 12e-6\n"
                "    numa_domains: int = 4"))
        findings = SchemaRule().check_tree(ROOT, config)
        assert len(findings) == 1
        assert findings[0].rule == "frozen-key-schema"
        assert "CpuSpec" in findings[0].message
        assert "numa_domains" in findings[0].message
        assert "ARTIFACT_SCHEMA" in findings[0].message

    def test_default_change_fires(self, tmp_path):
        config = self._mutated_config(
            tmp_path,
            platform_edit=lambda src: src.replace(
                "    thread_spawn_s: float = 12e-6",
                "    thread_spawn_s: float = 13e-6"))
        findings = SchemaRule().check_tree(ROOT, config)
        assert len(findings) == 1
        assert "annotation or default changed" in findings[0].message

    def test_context_key_drift_fires(self, tmp_path):
        config = self._mutated_config(
            tmp_path,
            artifacts_edit=lambda src: src.replace(
                '"seed": single_pass.seed,',
                '"seed": single_pass.seed,\n'
                '        "flavor": "spicy",'))
        findings = SchemaRule().check_tree(ROOT, config)
        assert len(findings) == 1
        assert "compiler_context" in findings[0].message
        assert "flavor" in findings[0].message

    def test_update_refuses_without_schema_bump(self, tmp_path):
        config = self._mutated_config(
            tmp_path,
            platform_edit=lambda src: src.replace(
                "    thread_spawn_s: float = 12e-6",
                "    thread_spawn_s: float = 12e-6\n"
                "    numa_domains: int = 4"))
        ok, message = update_snapshot(ROOT, config)
        assert not ok
        assert "bump" in message

    def test_update_succeeds_with_schema_bump(self, tmp_path):
        config = self._mutated_config(
            tmp_path,
            platform_edit=lambda src: src.replace(
                "    thread_spawn_s: float = 12e-6",
                "    thread_spawn_s: float = 12e-6\n"
                "    numa_domains: int = 4"),
            artifacts_edit=lambda src: src.replace(
                'ARTIFACT_SCHEMA = "repro.compiler.artifact/1"',
                'ARTIFACT_SCHEMA = "repro.compiler.artifact/2"'))
        ok, message = update_snapshot(ROOT, config)
        assert ok, message
        # After regeneration the mutated tree is clean again.
        assert SchemaRule().check_tree(ROOT, config) == []

    def test_missing_snapshot_fires(self, tmp_path):
        config = self._mutated_config(tmp_path)
        (tmp_path / "schema_snapshot.json").unlink()
        findings = SchemaRule().check_tree(ROOT, config)
        assert len(findings) == 1
        assert "missing" in findings[0].message


class TestCli:
    def _bad_copy(self, tmp_path, stem):
        # Under src/ so the default per-rule scopes (some rules only
        # run on library code) all apply to the copy.
        (tmp_path / "src").mkdir(exist_ok=True)
        shutil.copy(FIXTURES / f"{stem}_bad.py",
                    tmp_path / "src" / f"{stem}_bad.py")
        return f"src/{stem}_bad.py"

    def test_clean_tree_exits_zero(self):
        assert checks_main(["--root", str(ROOT)]) == 0

    def test_list(self, capsys):
        assert checks_main(["--list"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.name in out

    @pytest.mark.parametrize("stem,rule_name", [
        ("wallclock", "no-wallclock"),
        ("hash", "no-salted-hash"),
        ("rng", "seeded-rng-only"),
        ("tracer", "tracer-observational"),
        ("iteration", "deterministic-iteration"),
    ])
    def test_bad_fixture_exits_nonzero(self, tmp_path, capsys,
                                       stem, rule_name):
        name = self._bad_copy(tmp_path, stem)
        code = checks_main(["--root", str(tmp_path), "--rule",
                            rule_name, name])
        assert code == 1
        assert rule_name in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        name = self._bad_copy(tmp_path, "wallclock")
        code = checks_main(["--root", str(tmp_path), "--rule",
                            "no-wallclock", "--json", name])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 4
        assert payload[0]["rule"] == "no-wallclock"
        assert payload[0]["path"].endswith("wallclock_bad.py")

    def test_github_format(self, tmp_path, capsys):
        name = self._bad_copy(tmp_path, "wallclock")
        code = checks_main(["--root", str(tmp_path), "--rule",
                            "no-wallclock", "--format", "github", name])
        assert code == 1
        out = capsys.readouterr().out
        assert "::error file=" in out
        assert "title=repro.checks[no-wallclock]" in out

    def test_unknown_rule_exits_two(self, capsys):
        assert checks_main(["--root", str(ROOT), "--rule",
                            "nope"]) == 2

    def test_update_schema_noop_on_clean_tree(self, capsys):
        assert checks_main(["--root", str(ROOT),
                            "--update-schema"]) == 0
        assert "up to date" in capsys.readouterr().out
